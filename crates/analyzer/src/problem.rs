//! The first-class decision problem: one typed value for the paper's §8
//! menu.
//!
//! A [`Problem`] is the canonical, self-contained statement of one
//! decision question — it *owns* its parsed query ASTs and DTDs (behind
//! [`Arc`], so handing one around is cheap), not names or source strings.
//! Its derived `Hash`/`Eq` are structural: the same logical problem built
//! twice — from registered names, inline sources, or by hand — compares
//! equal, which is what makes it the memo-cache key of the engine, while
//! two distinct problems can never alias the way rendered-string keys
//! could.
//!
//! [`Analyzer::solve`](crate::Analyzer::solve) is the single entry point
//! that decides a `Problem` under a [`Limits`](crate::Limits) budget; the
//! per-operation convenience methods on [`Analyzer`](crate::Analyzer) are
//! thin wrappers that build the corresponding variant.

use std::sync::Arc;

use treetypes::Dtd;
use xpath::Expr;

/// One decision problem of §8, owning its queries and type constraints.
///
/// # Example
///
/// ```
/// use analyzer::{Analyzer, Limits, Problem};
///
/// let p = Problem::contains(
///     xpath::parse("child::c/preceding-sibling::a[child::b]")?,
///     None,
///     xpath::parse("child::c[child::b]")?,
///     None,
/// );
/// let mut az = Analyzer::new();
/// let v = az.solve(&p, &Limits::default())?;
/// assert!(!v.holds); // the Fig 18 example: e1 ⊄ e2
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Problem {
    /// Does the query select no node in any tree (of the type)?
    Empty {
        /// The query.
        query: Arc<Expr>,
        /// Optional type constraint.
        ty: Option<Arc<Dtd>>,
    },
    /// Does the query select a node in some tree (of the type)?
    Sat {
        /// The query.
        query: Arc<Expr>,
        /// Optional type constraint.
        ty: Option<Arc<Dtd>>,
    },
    /// Is every node selected by `lhs` also selected by `rhs`?
    Contains {
        /// The contained query.
        lhs: Arc<Expr>,
        /// Type constraint of `lhs`.
        ltype: Option<Arc<Dtd>>,
        /// The containing query.
        rhs: Arc<Expr>,
        /// Type constraint of `rhs`.
        rtype: Option<Arc<Dtd>>,
    },
    /// Can the two queries select a common node?
    Overlap {
        /// First query.
        lhs: Arc<Expr>,
        /// Type constraint of `lhs`.
        ltype: Option<Arc<Dtd>>,
        /// Second query.
        rhs: Arc<Expr>,
        /// Type constraint of `rhs`.
        rtype: Option<Arc<Dtd>>,
    },
    /// Is every node selected by `query` selected by at least one of the
    /// covering queries?
    Covers {
        /// The covered query.
        query: Arc<Expr>,
        /// Its type constraint.
        ty: Option<Arc<Dtd>>,
        /// The covering queries with their per-query type constraints.
        by: Vec<(Arc<Expr>, Option<Arc<Dtd>>)>,
    },
    /// Containment in both directions.
    Equiv {
        /// First query.
        lhs: Arc<Expr>,
        /// Type constraint of `lhs`.
        ltype: Option<Arc<Dtd>>,
        /// Second query.
        rhs: Arc<Expr>,
        /// Type constraint of `rhs`.
        rtype: Option<Arc<Dtd>>,
    },
    /// Is every node selected by `query` under the input type a valid root
    /// of the output type?
    TypeCheck {
        /// The annotated query.
        query: Arc<Expr>,
        /// Input type.
        input: Arc<Dtd>,
        /// Output type.
        output: Arc<Dtd>,
    },
}

impl Problem {
    /// The canonical operation name (the engine protocol's `op` echo).
    pub fn op_name(&self) -> &'static str {
        match self {
            Problem::Empty { .. } => "empty",
            Problem::Sat { .. } => "sat",
            Problem::Contains { .. } => "contains",
            Problem::Overlap { .. } => "overlap",
            Problem::Covers { .. } => "covers",
            Problem::Equiv { .. } => "equiv",
            Problem::TypeCheck { .. } => "typecheck",
        }
    }

    /// An emptiness problem from owned parts.
    pub fn empty(query: impl Into<Arc<Expr>>, ty: Option<Arc<Dtd>>) -> Problem {
        Problem::Empty {
            query: query.into(),
            ty,
        }
    }

    /// A satisfiability problem from owned parts.
    pub fn sat(query: impl Into<Arc<Expr>>, ty: Option<Arc<Dtd>>) -> Problem {
        Problem::Sat {
            query: query.into(),
            ty,
        }
    }

    /// A containment problem `lhs ⊆ rhs` from owned parts.
    pub fn contains(
        lhs: impl Into<Arc<Expr>>,
        ltype: Option<Arc<Dtd>>,
        rhs: impl Into<Arc<Expr>>,
        rtype: Option<Arc<Dtd>>,
    ) -> Problem {
        Problem::Contains {
            lhs: lhs.into(),
            ltype,
            rhs: rhs.into(),
            rtype,
        }
    }

    /// An overlap problem from owned parts.
    pub fn overlap(
        lhs: impl Into<Arc<Expr>>,
        ltype: Option<Arc<Dtd>>,
        rhs: impl Into<Arc<Expr>>,
        rtype: Option<Arc<Dtd>>,
    ) -> Problem {
        Problem::Overlap {
            lhs: lhs.into(),
            ltype,
            rhs: rhs.into(),
            rtype,
        }
    }

    /// An equivalence problem from owned parts.
    pub fn equiv(
        lhs: impl Into<Arc<Expr>>,
        ltype: Option<Arc<Dtd>>,
        rhs: impl Into<Arc<Expr>>,
        rtype: Option<Arc<Dtd>>,
    ) -> Problem {
        Problem::Equiv {
            lhs: lhs.into(),
            ltype,
            rhs: rhs.into(),
            rtype,
        }
    }

    /// A coverage problem where one type (or none) constrains every query.
    pub fn covers(
        query: impl Into<Arc<Expr>>,
        ty: Option<Arc<Dtd>>,
        by: impl IntoIterator<Item = Arc<Expr>>,
    ) -> Problem {
        Problem::Covers {
            query: query.into(),
            ty: ty.clone(),
            by: by.into_iter().map(|e| (e, ty.clone())).collect(),
        }
    }

    /// A static type-checking problem from owned parts.
    pub fn type_check(
        query: impl Into<Arc<Expr>>,
        input: impl Into<Arc<Dtd>>,
        output: impl Into<Arc<Dtd>>,
    ) -> Problem {
        Problem::TypeCheck {
            query: query.into(),
            input: input.into(),
            output: output.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn q(src: &str) -> Arc<Expr> {
        Arc::new(xpath::parse(src).unwrap())
    }

    #[test]
    fn canonical_keys_ignore_provenance() {
        let a = Problem::contains(q("a/b"), None, q("a/*"), None);
        let b = Problem::contains(q("a/b"), None, q("a/*"), None);
        assert_eq!(a, b);
        let mut m = HashMap::new();
        m.insert(a, 1);
        assert_eq!(m.get(&b), Some(&1));
        // Swapped sides are a different problem.
        let c = Problem::contains(q("a/*"), None, q("a/b"), None);
        assert!(!m.contains_key(&c));
    }

    #[test]
    fn op_names_are_canonical() {
        let dtd = Arc::new(Dtd::parse("<!ELEMENT r EMPTY>").unwrap());
        let cases: Vec<(Problem, &str)> = vec![
            (Problem::empty(q("a"), None), "empty"),
            (Problem::sat(q("a"), None), "sat"),
            (Problem::contains(q("a"), None, q("b"), None), "contains"),
            (Problem::overlap(q("a"), None, q("b"), None), "overlap"),
            (Problem::covers(q("a"), None, vec![q("b")]), "covers"),
            (Problem::equiv(q("a"), None, q("b"), None), "equiv"),
            (
                Problem::type_check(q("a"), Arc::clone(&dtd), dtd),
                "typecheck",
            ),
        ];
        for (p, name) in cases {
            assert_eq!(p.op_name(), name);
        }
    }

    #[test]
    fn covers_shares_the_type_across_covering_queries() {
        let dtd = Arc::new(Dtd::parse("<!ELEMENT r EMPTY>").unwrap());
        let p = Problem::covers(q("child::*"), Some(Arc::clone(&dtd)), vec![q("a"), q("b")]);
        let Problem::Covers { by, ty, .. } = &p else {
            panic!("expected covers");
        };
        assert_eq!(ty.as_ref(), Some(&dtd));
        assert!(by.iter().all(|(_, t)| t.as_ref() == Some(&dtd)));
    }
}

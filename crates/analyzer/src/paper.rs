//! The paper's evaluation workload (§8): the twelve XPath expressions of
//! Fig 21 and the decision problems of Table 2.

use treetypes::Dtd;
use xpath::Expr;

/// The XPath expressions e1–e12 of Fig 21 (1-indexed source strings).
pub const QUERIES: [&str; 12] = [
    "/a[.//b[c/*//d]/b[c//d]/b[c/d]]",
    "/a[.//b[c/*//d]/b[c/d]]",
    "a/b//c/foll-sibling::d/e",
    "a/b//d[prec-sibling::c]/e",
    "a/c/following::d/e",
    "a/b[//c]/following::d/e ∩ a/d[preceding::c]/e",
    "*//switch[ancestor::head]//seq//audio[prec-sibling::video]",
    "descendant::a[ancestor::a]",
    "/descendant::*",
    "html/(head | body)",
    "html/head/descendant::*",
    "html/body/descendant::*",
];

/// Parses query `eᵢ` of Fig 21 (`i` in `1..=12`).
///
/// # Panics
///
/// Panics if `i` is out of range (the queries themselves always parse).
pub fn query(i: usize) -> Expr {
    assert!((1..=12).contains(&i), "queries are e1..e12");
    xpath::parse(QUERIES[i - 1]).expect("paper query parses")
}

/// Which DTD a Table 2 row uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeUsed {
    /// No type constraint.
    None,
    /// SMIL 1.0.
    Smil,
    /// XHTML 1.0 Strict.
    Xhtml,
}

impl TypeUsed {
    /// Loads the DTD, if any.
    pub fn dtd(self) -> Option<Dtd> {
        match self {
            TypeUsed::None => None,
            TypeUsed::Smil => Some(treetypes::smil_1_0()),
            TypeUsed::Xhtml => Some(treetypes::xhtml_1_0_strict()),
        }
    }
}

/// One row of the paper's Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Human-readable description, as printed in the paper.
    pub description: &'static str,
    /// The type constraint column.
    pub type_used: TypeUsed,
    /// Milliseconds reported by the paper (JAVA, Pentium 4 3 GHz, 2007).
    pub paper_ms: u64,
    /// The decision problem.
    pub problem: Table2Problem,
}

/// The decision problem of a Table 2 row.
#[derive(Debug, Clone)]
pub enum Table2Problem {
    /// `e_i ⊆ e_j` and `e_j ⊄ e_i` (indices into Fig 21).
    ContainmentAsymmetric {
        /// Index of the contained query.
        lhs: usize,
        /// Index of the containing query.
        rhs: usize,
    },
    /// `e_i ⊆ e_j` (one direction checked both ways by the paper's row 2).
    ContainmentBoth {
        /// Index of the contained query.
        lhs: usize,
        /// Index of the containing query.
        rhs: usize,
    },
    /// `e_i` is satisfiable under the type.
    Satisfiable {
        /// Query index.
        query: usize,
    },
    /// `e ⊆ e_a ∪ e_b ∪ e_c` (coverage).
    Coverage {
        /// Covered query index.
        covered: usize,
        /// Covering query indices.
        covering: [usize; 3],
    },
}

/// The six rows of Table 2.
pub fn table2() -> Vec<Table2Row> {
    vec![
        Table2Row {
            description: "e1 ⊆ e2 and e2 ⊄ e1",
            type_used: TypeUsed::None,
            paper_ms: 353,
            problem: Table2Problem::ContainmentAsymmetric { lhs: 1, rhs: 2 },
        },
        Table2Row {
            description: "e4 ⊆ e3 and e3 ⊆ e4",
            type_used: TypeUsed::None,
            paper_ms: 45,
            problem: Table2Problem::ContainmentBoth { lhs: 4, rhs: 3 },
        },
        Table2Row {
            description: "e6 ⊆ e5 and e5 ⊄ e6",
            type_used: TypeUsed::None,
            paper_ms: 41,
            problem: Table2Problem::ContainmentAsymmetric { lhs: 6, rhs: 5 },
        },
        Table2Row {
            description: "e7 is satisfiable",
            type_used: TypeUsed::Smil,
            paper_ms: 157,
            problem: Table2Problem::Satisfiable { query: 7 },
        },
        Table2Row {
            description: "e8 is satisfiable",
            type_used: TypeUsed::Xhtml,
            paper_ms: 2630,
            problem: Table2Problem::Satisfiable { query: 8 },
        },
        Table2Row {
            description: "e9 ⊆ (e10 ∪ e11 ∪ e12)",
            type_used: TypeUsed::Xhtml,
            paper_ms: 2872,
            problem: Table2Problem::Coverage {
                covered: 9,
                covering: [10, 11, 12],
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_parse_and_roundtrip() {
        for i in 1..=12 {
            let e = query(i);
            let canon = e.to_string();
            let e2 = xpath::parse(&canon).unwrap();
            assert_eq!(e2.to_string(), canon, "e{i}");
        }
    }

    #[test]
    fn table_has_six_rows() {
        let rows = table2();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[3].type_used, TypeUsed::Smil);
        assert!(rows[3].type_used.dtd().is_some());
        assert!(rows[0].type_used.dtd().is_none());
    }
}

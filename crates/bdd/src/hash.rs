//! A fast, non-cryptographic hasher for the unique and operation caches.
//!
//! The std `HashMap` default (SipHash) is safe against adversarial keys but
//! slow for the tiny fixed-size integer keys BDD operations hash millions of
//! times. This is the classic multiply-xor scheme (as used by rustc's
//! `FxHasher`), implemented locally to keep the crate dependency-free.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher over machine words.
#[derive(Default)]
pub struct FastHasher {
    state: u64,
}

/// The multiply-rotate mixing constant, shared by the hasher, the unique
/// table's probe hash and the operation cache's slot hash.
pub(crate) const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `HashMap` build-hasher using [`FastHasher`].
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_small_keys() {
        let mut buckets = [0usize; 16];
        for i in 0u64..4096 {
            let mut h = FastHasher::default();
            h.write_u64(i);
            buckets[(h.finish() % 16) as usize] += 1;
        }
        // Every bucket gets a reasonable share.
        assert!(buckets.iter().all(|&b| b > 128), "{buckets:?}");
    }

    #[test]
    fn map_works() {
        let mut m: FastMap<(u32, u32), u32> = FastMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
    }
}

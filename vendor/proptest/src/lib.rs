//! A vendored, minimal property-testing shim.
//!
//! The workspace builds offline, so the real `proptest` crate cannot be
//! fetched from crates.io. This crate reimplements the *subset* of its API
//! that the test suites use — strategies (`prop_map`, `boxed`,
//! `prop_recursive`, tuples, ranges, `Just`, `sample::select`,
//! `sample::Index`, `collection::vec`, `prop_oneof!`) and the `proptest!`
//! runner macro with `prop_assert*` / `prop_assume!` — with deterministic
//! pseudo-random generation and without shrinking.
//!
//! Generation is seeded from the test's module path and name, so failures
//! reproduce across runs. Set `PROPTEST_CASES` to override the per-test
//! case count, e.g. `PROPTEST_CASES=16 cargo test` for a quick pass.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Weighted or unweighted choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{:?} == {:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Discards the current test case (retried with fresh inputs) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (
        config = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __cases = __config.effective_cases();
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let __strategy = ($($strat,)+);
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __cases {
                __attempts += 1;
                if __attempts > __cases.saturating_mul(32).saturating_add(256) {
                    panic!(
                        "proptest: too many rejected cases ({} accepted of {} attempts)",
                        __accepted, __attempts
                    );
                }
                let ($($pat,)+) = $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let mut __case = || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                };
                match __case() {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed: {}", msg)
                    }
                }
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

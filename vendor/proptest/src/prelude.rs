//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::any;
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::Config as ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

/// The `prop::` module path used by the real crate's prelude
/// (`prop::collection::vec`, `prop::sample::select`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

//! The truth-assignment relation `ϕ ∈̇ t` of Fig 15, evaluated over an
//! arbitrary boolean algebra.
//!
//! A ψ-type `t ⊆ Lean(ψ)` determines the truth of every formula in
//! `cl*(ψ)`: lean members are read off directly, boolean connectives
//! decompose, and naked fixpoints are unfolded once with `exp(·)` (the
//! number of naked fixpoints strictly decreases, so the recursion
//! terminates on guarded formulas).
//!
//! Abstracting the booleans lets one evaluator drive two solvers:
//!
//! * the explicit solver instantiates `Value = bool`, reading bits of a
//!   concrete type vector;
//! * the symbolic solver instantiates `Value = bdd node`, producing the
//!   *characteristic function* `status_ϕ(t̄)` of §7.1 in one pass.

use std::collections::HashMap;

use crate::closure::Lean;
use crate::syntax::{Formula, FormulaKind};
use crate::Logic;

/// A boolean algebra over which [`status`] evaluates formulas.
pub trait BoolAlg {
    /// Truth values (e.g. `bool`, or a BDD node).
    type Value: Clone;
    /// Truth.
    fn tt(&mut self) -> Self::Value;
    /// Falsity.
    fn ff(&mut self) -> Self::Value;
    /// The value of the lean atom with the given index.
    fn var(&mut self, lean_index: usize) -> Self::Value;
    /// Complement.
    fn not(&mut self, v: Self::Value) -> Self::Value;
    /// Meet.
    fn and(&mut self, a: Self::Value, b: Self::Value) -> Self::Value;
    /// Join.
    fn or(&mut self, a: Self::Value, b: Self::Value) -> Self::Value;
}

/// Evaluates `status_ϕ` over the algebra `alg` (the `ϕ ∈̇ t` relation).
///
/// `memo` caches results per formula id and may be reused across calls with
/// the same `(lean, alg)` pair — the solver evaluates every lean argument
/// and the goal formula against the same cache.
///
/// # Panics
///
/// Panics if `f` is not part of `cl*(ψ)` for the ψ whose lean is given
/// (e.g. a modality that is not a lean atom), if `f` contains a free
/// variable or greatest fixpoint, or if an unguarded fixpoint loops.
pub fn status<A: BoolAlg>(
    lg: &mut Logic,
    lean: &Lean,
    f: Formula,
    alg: &mut A,
    memo: &mut HashMap<Formula, A::Value>,
) -> A::Value {
    if let Some(v) = memo.get(&f) {
        return v.clone();
    }
    let v = match lg.kind(f).clone() {
        FormulaKind::True => alg.tt(),
        FormulaKind::False => alg.ff(),
        FormulaKind::Prop(l) => {
            let i = lean
                .prop_index(l)
                .unwrap_or_else(|| panic!("status: proposition {l} not in lean"));
            alg.var(i)
        }
        FormulaKind::NotProp(l) => {
            let i = lean
                .prop_index(l)
                .unwrap_or_else(|| panic!("status: proposition {l} not in lean"));
            let x = alg.var(i);
            alg.not(x)
        }
        FormulaKind::Start => alg.var(lean.start_index()),
        FormulaKind::NotStart => {
            let x = alg.var(lean.start_index());
            alg.not(x)
        }
        FormulaKind::Or(a, b) => {
            let va = status(lg, lean, a, alg, memo);
            let vb = status(lg, lean, b, alg, memo);
            alg.or(va, vb)
        }
        FormulaKind::And(a, b) => {
            let va = status(lg, lean, a, alg, memo);
            let vb = status(lg, lean, b, alg, memo);
            alg.and(va, vb)
        }
        FormulaKind::Diam(a, p) => {
            if matches!(lg.kind(p), FormulaKind::True) {
                alg.var(lean.diam_true_index(a))
            } else {
                let (i, negated) = lean
                    .diam_lookup(a, p)
                    .unwrap_or_else(|| panic!("status: modality not in lean"));
                if negated {
                    // ⟨a⟩¬ξ = ⟨a⟩⊤ ∧ ¬⟨a⟩ξ (deterministic successors).
                    let hastep = alg.var(lean.diam_true_index(a));
                    let atom = alg.var(i);
                    let natom = alg.not(atom);
                    alg.and(hastep, natom)
                } else {
                    alg.var(i)
                }
            }
        }
        FormulaKind::NotDiamTrue(a) => {
            let x = alg.var(lean.diam_true_index(a));
            alg.not(x)
        }
        FormulaKind::Mu(..) => {
            let e = lg.exp(f);
            assert_ne!(e, f, "status: unguarded fixpoint does not unfold");
            status(lg, lean, e, alg, memo)
        }
        FormulaKind::Nu(..) => panic!("status: greatest fixpoint; collapse_nu first"),
        FormulaKind::Var(v) => panic!("status: free variable {}", lg.var_name(v)),
    };
    memo.insert(f, v.clone());
    v
}

/// A [`BoolAlg`] over plain booleans reading a concrete bit-vector type.
///
/// Used by the explicit solver and by tests.
#[derive(Debug)]
pub struct BitsAlg<'a> {
    bits: &'a [bool],
}

impl<'a> BitsAlg<'a> {
    /// Wraps a type given as one bool per lean atom.
    pub fn new(bits: &'a [bool]) -> Self {
        BitsAlg { bits }
    }
}

impl BoolAlg for BitsAlg<'_> {
    type Value = bool;
    fn tt(&mut self) -> bool {
        true
    }
    fn ff(&mut self) -> bool {
        false
    }
    fn var(&mut self, i: usize) -> bool {
        self.bits[i]
    }
    fn not(&mut self, v: bool) -> bool {
        !v
    }
    fn and(&mut self, a: bool, b: bool) -> bool {
        a && b
    }
    fn or(&mut self, a: bool, b: bool) -> bool {
        a || b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Closure;
    use ftree::{Direction, Label};

    #[test]
    fn status_reads_lean_bits() {
        let mut lg = Logic::new();
        let a = lg.prop(Label::new("a"));
        let b = lg.prop(Label::new("b"));
        let x = lg.fresh_var("X");
        let xv = lg.var(x);
        let d2 = lg.diam(Direction::Down2, xv);
        let or = lg.or(b, d2);
        let mu = lg.mu1(x, or);
        let d1 = lg.diam(Direction::Down1, mu);
        let psi = lg.and(a, d1);
        let cl = Closure::compute(&mut lg, psi);
        let lean = Lean::compute(&mut lg, &cl);

        // Type: {a, ⟨1⟩⊤, ⟨1⟩µ…}
        let mut bits = vec![false; lean.len()];
        bits[lean.prop_index(Label::new("a")).unwrap()] = true;
        bits[lean.diam_true_index(Direction::Down1)] = true;
        bits[lean.diam_index(Direction::Down1, mu).unwrap()] = true;

        let mut alg = BitsAlg::new(&bits);
        let mut memo = HashMap::new();
        assert!(status(&mut lg, &lean, psi, &mut alg, &mut memo));

        // Drop the diamond bit: ψ no longer holds.
        let mut bits2 = bits.clone();
        bits2[lean.diam_index(Direction::Down1, mu).unwrap()] = false;
        let mut alg2 = BitsAlg::new(&bits2);
        let mut memo2 = HashMap::new();
        assert!(!status(&mut lg, &lean, psi, &mut alg2, &mut memo2));
    }

    #[test]
    fn status_unfolds_fixpoints() {
        let mut lg = Logic::new();
        // µX. b ∨ ⟨2⟩X is true at a type containing b.
        let b = lg.prop(Label::new("b"));
        let x = lg.fresh_var("X");
        let xv = lg.var(x);
        let d2 = lg.diam(Direction::Down2, xv);
        let or = lg.or(b, d2);
        let mu = lg.mu1(x, or);
        let cl = Closure::compute(&mut lg, mu);
        let lean = Lean::compute(&mut lg, &cl);
        let mut bits = vec![false; lean.len()];
        bits[lean.prop_index(Label::new("b")).unwrap()] = true;
        let mut alg = BitsAlg::new(&bits);
        let mut memo = HashMap::new();
        assert!(status(&mut lg, &lean, mu, &mut alg, &mut memo));
    }

    #[test]
    fn negated_atoms() {
        let mut lg = Logic::new();
        let a = lg.prop(Label::new("a"));
        let na = lg.not(a);
        let psi = lg.or(a, na); // tautology over one bit
        let cl = Closure::compute(&mut lg, psi);
        let lean = Lean::compute(&mut lg, &cl);
        for v in [false, true] {
            let mut bits = vec![false; lean.len()];
            bits[lean.prop_index(Label::new("a")).unwrap()] = v;
            let mut alg = BitsAlg::new(&bits);
            let mut memo = HashMap::new();
            assert!(status(&mut lg, &lean, psi, &mut alg, &mut memo));
        }
    }
}

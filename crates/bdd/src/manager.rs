//! The BDD manager: node store, unique table and core operations.

use crate::hash::FastMap;

/// Handle to a BDD node (a boolean function) within one [`Bdd`] manager.
///
/// The constants [`Bdd::zero`] and [`Bdd::one`] are the terminals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

const FALSE: NodeId = NodeId(0);
const TRUE: NodeId = NodeId(1);
/// Sentinel level for terminals: larger than any real variable.
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: NodeId,
    hi: NodeId,
}

/// A BDD manager: owns the nodes and all operation caches.
///
/// Variables are `u32` levels; the variable order is the numeric order.
/// Reduction invariants (no redundant node, shared structure) are maintained
/// by construction, so two [`NodeId`]s are equal iff they denote the same
/// boolean function.
#[derive(Debug)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: FastMap<(u32, NodeId, NodeId), NodeId>,
    ite_cache: FastMap<(NodeId, NodeId, NodeId), NodeId>,
    not_cache: FastMap<NodeId, NodeId>,
    shift_cache: FastMap<(NodeId, i32), NodeId>,
    pub(crate) quant_sets: Vec<Vec<u32>>,
    pub(crate) exists_cache: FastMap<(u32, NodeId), NodeId>,
    pub(crate) and_exists_cache: FastMap<(u32, NodeId, NodeId), NodeId>,
}

impl Default for Bdd {
    fn default() -> Self {
        Bdd::new()
    }
}

impl Bdd {
    /// Creates a manager containing only the two terminals.
    pub fn new() -> Self {
        Bdd {
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: FALSE,
                    hi: FALSE,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: TRUE,
                    hi: TRUE,
                },
            ],
            unique: FastMap::default(),
            ite_cache: FastMap::default(),
            not_cache: FastMap::default(),
            shift_cache: FastMap::default(),
            quant_sets: Vec::new(),
            exists_cache: FastMap::default(),
            and_exists_cache: FastMap::default(),
        }
    }

    /// The constant false function.
    pub fn zero(&self) -> NodeId {
        FALSE
    }

    /// The constant true function.
    pub fn one(&self) -> NodeId {
        TRUE
    }

    /// Number of live nodes (terminals included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn var_of(&self, f: NodeId) -> u32 {
        self.nodes[f.0 as usize].var
    }

    pub(crate) fn lo(&self, f: NodeId) -> NodeId {
        self.nodes[f.0 as usize].lo
    }

    pub(crate) fn hi(&self, f: NodeId) -> NodeId {
        self.nodes[f.0 as usize].hi
    }

    /// Whether `f` is one of the two terminal nodes.
    pub fn is_terminal(&self, f: NodeId) -> bool {
        f == FALSE || f == TRUE
    }

    /// Creates (or reuses) the node `(var, lo, hi)`.
    pub(crate) fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        debug_assert!(var < self.var_of(lo) && var < self.var_of(hi));
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return id;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("bdd node overflow"));
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        id
    }

    /// The single-variable function `v`.
    pub fn var(&mut self, v: u32) -> NodeId {
        self.mk(v, FALSE, TRUE)
    }

    /// The negated single-variable function `¬v`.
    pub fn nvar(&mut self, v: u32) -> NodeId {
        self.mk(v, TRUE, FALSE)
    }

    fn cofactor(&self, f: NodeId, v: u32) -> (NodeId, NodeId) {
        if self.var_of(f) == v {
            (self.lo(f), self.hi(f))
        } else {
            (f, f)
        }
    }

    /// If-then-else: `f ? g : h`.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal shortcuts.
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let v = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactor(f, v);
        let (g0, g1) = self.cofactor(g, v);
        let (h0, h1) = self.cofactor(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        self.ite(f, g, FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        self.ite(f, TRUE, g)
    }

    /// Complement.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        if f == TRUE {
            return FALSE;
        }
        if f == FALSE {
            return TRUE;
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return r;
        }
        let (lo, hi) = (self.lo(f), self.hi(f));
        let nlo = self.not(lo);
        let nhi = self.not(hi);
        let r = self.mk(self.var_of(f), nlo, nhi);
        self.not_cache.insert(f, r);
        self.not_cache.insert(r, f);
        r
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, TRUE)
    }

    /// Equivalence `f ↔ g`.
    pub fn iff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Checks `f → g` as a decision (no new nodes beyond the cache).
    pub fn implies_check(&mut self, f: NodeId, g: NodeId) -> bool {
        self.implies(f, g) == TRUE
    }

    /// Renames every variable `v` of `f` to `v + delta`.
    ///
    /// The map is monotone, so the result is a well-ordered BDD built in one
    /// traversal. Used to move set functions between the interleaved `x̄`
    /// (even) and `ȳ` (odd) rails.
    ///
    /// # Panics
    ///
    /// Panics if a shifted variable would be negative.
    pub fn shift(&mut self, f: NodeId, delta: i32) -> NodeId {
        if self.is_terminal(f) || delta == 0 {
            return f;
        }
        if let Some(&r) = self.shift_cache.get(&(f, delta)) {
            return r;
        }
        let v = self.var_of(f);
        let nv = u32::try_from(i64::from(v) + i64::from(delta)).expect("negative variable");
        let (lo, hi) = (self.lo(f), self.hi(f));
        let nlo = self.shift(lo, delta);
        let nhi = self.shift(hi, delta);
        let r = self.mk(nv, nlo, nhi);
        self.shift_cache.insert((f, delta), r);
        r
    }

    /// The set of variables on which `f` depends.
    pub fn support(&self, f: NodeId) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if self.is_terminal(n) || !seen.insert(n) {
                continue;
            }
            vars.insert(self.var_of(n));
            stack.push(self.lo(n));
            stack.push(self.hi(n));
        }
        vars.into_iter().collect()
    }

    /// Number of nodes reachable from `f` (its size as a diagram).
    pub fn size(&self, f: NodeId) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut n = 0;
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            n += 1;
            if !self.is_terminal(x) {
                stack.push(self.lo(x));
                stack.push(self.hi(x));
            }
        }
        n
    }

    /// One satisfying assignment of `f` as `(variable, value)` pairs for the
    /// variables along the chosen path, or `None` if `f` is unsatisfiable.
    ///
    /// Variables absent from the result are don't-cares.
    pub fn sat_one(&self, f: NodeId) -> Option<Vec<(u32, bool)>> {
        if f == FALSE {
            return None;
        }
        let mut out = Vec::new();
        let mut cur = f;
        while cur != TRUE {
            let v = self.var_of(cur);
            if self.lo(cur) != FALSE {
                out.push((v, false));
                cur = self.lo(cur);
            } else {
                out.push((v, true));
                cur = self.hi(cur);
            }
        }
        Some(out)
    }

    /// Number of satisfying assignments of `f` over variables `0..nvars`.
    ///
    /// Returns `f64` because counts are astronomically large for wide leans;
    /// used for statistics only.
    pub fn sat_count(&self, f: NodeId, nvars: u32) -> f64 {
        fn go(bdd: &Bdd, f: NodeId, memo: &mut FastMap<NodeId, f64>, nvars: u32) -> f64 {
            if f == FALSE {
                return 0.0;
            }
            if f == TRUE {
                return 1.0;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let v = bdd.var_of(f);
            let lo = go(bdd, bdd.lo(f), memo, nvars);
            let hi = go(bdd, bdd.hi(f), memo, nvars);
            // Scale each branch by the variables skipped below this node.
            let lv = bdd.var_of(bdd.lo(f)).min(nvars);
            let hv = bdd.var_of(bdd.hi(f)).min(nvars);
            let c = lo * 2f64.powi((lv - v - 1) as i32) + hi * 2f64.powi((hv - v - 1) as i32);
            memo.insert(f, c);
            c
        }
        if f == FALSE {
            return 0.0;
        }
        let mut memo = FastMap::default();
        let top = self.var_of(f).min(nvars);
        go(self, f, &mut memo, nvars) * 2f64.powi(top as i32)
    }

    /// Mark-compact garbage collection.
    ///
    /// Keeps exactly the nodes reachable from `roots` (and the terminals),
    /// compacts the node store, rewrites every root in place, and drops all
    /// operation caches. Handles *not* passed as roots are invalidated —
    /// callers own the root inventory.
    pub fn gc(&mut self, roots: &mut [&mut NodeId]) {
        let n = self.nodes.len();
        let mut live = vec![false; n];
        live[0] = true;
        live[1] = true;
        let mut stack: Vec<NodeId> = roots.iter().map(|r| **r).collect();
        while let Some(f) = stack.pop() {
            let i = f.0 as usize;
            if live[i] {
                continue;
            }
            live[i] = true;
            stack.push(self.nodes[i].lo);
            stack.push(self.nodes[i].hi);
        }
        // Children precede parents in the store (nodes are created bottom
        // up), so a single forward pass can remap in place.
        let mut remap: Vec<NodeId> = vec![FALSE; n];
        remap[0] = FALSE;
        remap[1] = TRUE;
        let mut new_nodes: Vec<Node> = Vec::with_capacity(2 + live.iter().filter(|&&b| b).count());
        new_nodes.push(self.nodes[0]);
        new_nodes.push(self.nodes[1]);
        let mut unique = FastMap::default();
        for i in 2..n {
            if !live[i] {
                continue;
            }
            let old = self.nodes[i];
            let node = Node {
                var: old.var,
                lo: remap[old.lo.0 as usize],
                hi: remap[old.hi.0 as usize],
            };
            let id = NodeId(new_nodes.len() as u32);
            unique.insert((node.var, node.lo, node.hi), id);
            new_nodes.push(node);
            remap[i] = id;
        }
        for r in roots.iter_mut() {
            **r = remap[r.0 as usize];
        }
        self.nodes = new_nodes;
        self.unique = unique;
        self.ite_cache = FastMap::default();
        self.not_cache = FastMap::default();
        self.shift_cache = FastMap::default();
        self.exists_cache = FastMap::default();
        self.and_exists_cache = FastMap::default();
    }

    /// Evaluates `f` under a total assignment (`assignment[v]` for var `v`).
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !self.is_terminal(cur) {
            let v = self.var_of(cur) as usize;
            cur = if assignment[v] {
                self.hi(cur)
            } else {
                self.lo(cur)
            };
        }
        cur == TRUE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals() {
        let m = Bdd::new();
        assert_ne!(m.zero(), m.one());
        assert!(m.is_terminal(m.zero()));
    }

    #[test]
    fn boolean_laws() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let nx = m.not(x);
        assert_eq!(m.and(x, nx), m.zero());
        assert_eq!(m.or(x, nx), m.one());
        assert_eq!(m.not(nx), x);
        let xy = m.and(x, y);
        let yx = m.and(y, x);
        assert_eq!(xy, yx);
        // De Morgan.
        let lhs = m.not(xy);
        let ny = m.not(y);
        let rhs = m.or(nx, ny);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn iff_xor() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let e = m.iff(x, y);
        let xo = m.xor(x, y);
        assert_eq!(m.not(e), xo);
        let ee = m.iff(x, x);
        assert_eq!(ee, m.one());
    }

    #[test]
    fn shift_is_monotone_rename() {
        let mut m = Bdd::new();
        let x0 = m.var(0);
        let x2 = m.var(2);
        let f = m.and(x0, x2);
        let g = m.shift(f, 1);
        assert_eq!(m.support(g), vec![1, 3]);
        let back = m.shift(g, -1);
        assert_eq!(back, f);
    }

    #[test]
    fn sat_one_and_eval() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let ny = m.not(y);
        let f = m.and(x, ny);
        let sat = m.sat_one(f).unwrap();
        let mut assignment = vec![false; 2];
        for (v, b) in sat {
            assignment[v as usize] = b;
        }
        assert!(m.eval(f, &assignment));
        assert!(m.sat_one(m.zero()).is_none());
    }

    #[test]
    fn sat_count_small() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.or(x, y);
        assert_eq!(m.sat_count(f, 2), 3.0);
        assert_eq!(m.sat_count(m.one(), 3), 8.0);
        assert_eq!(m.sat_count(m.zero(), 3), 0.0);
        assert_eq!(m.sat_count(x, 2), 2.0);
    }

    #[test]
    fn support_and_size() {
        let mut m = Bdd::new();
        let x = m.var(3);
        let y = m.var(7);
        let f = m.xor(x, y);
        assert_eq!(m.support(f), vec![3, 7]);
        assert_eq!(m.size(f), 5); // 2 terminals + x-node + two y-nodes
    }
}

#[cfg(test)]
mod gc_tests {
    use super::*;

    #[test]
    fn gc_preserves_roots_and_semantics() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let mut f = m.and(x, y);
        let mut g = m.or(f, z);
        // Garbage: a function we drop.
        let ny = m.not(y);
        let _dead = m.xor(ny, z);
        let before = m.node_count();
        m.gc(&mut [&mut f, &mut g]);
        assert!(m.node_count() < before);
        // Semantics preserved: f = x∧y, g = x∧y ∨ z.
        assert!(m.eval(f, &[true, true, false]));
        assert!(!m.eval(f, &[true, false, false]));
        assert!(m.eval(g, &[false, false, true]));
        // New operations still work and hash-consing still holds.
        let x2 = m.var(0);
        let y2 = m.var(1);
        let f2 = m.and(x2, y2);
        assert_eq!(f2, f);
    }

    #[test]
    fn gc_with_no_roots_keeps_terminals() {
        let mut m = Bdd::new();
        let x = m.var(5);
        let _ = m.not(x);
        m.gc(&mut []);
        assert_eq!(m.node_count(), 2);
        assert_eq!(m.zero(), NodeId(0));
        assert_eq!(m.one(), NodeId(1));
    }
}

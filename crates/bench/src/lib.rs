//! Shared helpers for the benchmark harness: construction of the paper's
//! decision problems (Table 2) and synthetic workload families.

use analyzer::{paper, Analyzer};
use mulogic::{Formula, Logic};
use solver::SymbolicOptions;
use treetypes::Dtd;

/// Builds the goal formula of one Table 2 containment sub-problem so benches
/// can time the solver in isolation from parsing/translation.
pub fn containment_goal(az: &mut Analyzer, lhs: usize, rhs: usize, dtd: Option<&Dtd>) -> Formula {
    let e1 = paper::query(lhs);
    let e2 = paper::query(rhs);
    let f1 = az.query_formula(&e1, dtd);
    let f2 = az.query_formula(&e2, dtd);
    let lg: &mut Logic = az.logic_mut();
    let nf2 = lg.not(f2);
    lg.and(f1, nf2)
}

/// Goal formula for "query is satisfiable under type".
pub fn satisfiability_goal(az: &mut Analyzer, query: usize, dtd: Option<&Dtd>) -> Formula {
    let e = paper::query(query);
    az.query_formula(&e, dtd)
}

/// Goal formula for the coverage row: `e ∧ ¬e_a ∧ ¬e_b ∧ ¬e_c` (all under
/// XHTML 1.0 Strict, as in Table 2).
pub fn coverage_goal(az: &mut Analyzer, covered: usize, covering: [usize; 3]) -> Formula {
    let dtd = treetypes::xhtml_1_0_strict();
    let e = paper::query(covered);
    let mut goal = az.query_formula(&e, Some(&dtd));
    for i in covering {
        let ei = paper::query(i);
        let fi = az.query_formula(&ei, Some(&dtd));
        let lg = az.logic_mut();
        let nfi = lg.not(fi);
        goal = lg.and(goal, nfi);
    }
    goal
}

/// A synthetic containment family `l1/l2/…/ln ⊆ l1/l2/…/ln[self::*]` whose
/// lean grows linearly with `n` — used by the scaling bench (Lemma 6.7).
/// The containment holds, so the solver runs to its full fixpoint.
pub fn chain_containment(az: &mut Analyzer, n: usize, distinct_labels: bool) -> Formula {
    let steps: Vec<String> = (0..n)
        .map(|i| {
            if distinct_labels {
                format!("l{i}")
            } else {
                "a".to_owned()
            }
        })
        .collect();
    let src = steps.join("/");
    let e1 = xpath::parse(&src).expect("chain query parses");
    let src2 = format!("{src}[self::*]");
    let e2 = xpath::parse(&src2).expect("chain query parses");
    let f1 = az.query_formula(&e1, None);
    let f2 = az.query_formula(&e2, None);
    let lg = az.logic_mut();
    let nf2 = lg.not(f2);
    lg.and(f1, nf2)
}

/// Ablation configurations: (name, options).
pub fn ablation_configs() -> Vec<(&'static str, SymbolicOptions)> {
    use solver::VarOrder;
    vec![
        (
            "early-quantification+bfs",
            SymbolicOptions {
                monolithic_delta: false,
                var_order: VarOrder::Bfs,
                ..SymbolicOptions::default()
            },
        ),
        (
            "monolithic-delta+bfs",
            SymbolicOptions {
                monolithic_delta: true,
                var_order: VarOrder::Bfs,
                ..SymbolicOptions::default()
            },
        ),
        (
            "early-quantification+reversed",
            SymbolicOptions {
                monolithic_delta: false,
                var_order: VarOrder::Reversed,
                ..SymbolicOptions::default()
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goals_build() {
        let mut az = Analyzer::new();
        let g = containment_goal(&mut az, 1, 2, None);
        assert!(az.logic_mut().is_closed(g));
        let g = chain_containment(&mut az, 4, true);
        assert!(az.logic_mut().is_closed(g));
    }

    #[test]
    fn chain_goal_is_unsat() {
        let mut az = Analyzer::new();
        let g = chain_containment(&mut az, 3, true);
        let s = az.solve_formula(g).unwrap();
        assert!(!s.outcome.is_satisfiable());
    }
}

//! High-level static analysis of XPath queries under regular tree types —
//! the decision problems of the paper's §8, as a first-class typed API.
//!
//! An [`Analyzer`] owns a formula arena and reduces each decision problem
//! to Lµ satisfiability, solved by a selectable backend
//! ([`BackendChoice`]: the symbolic BDD engine by default, the explicit or
//! witnessed reference algorithms, the dual symbolic/explicit
//! cross-check, or the portfolio mode racing every feasible backend and
//! returning the first verdict). The problems themselves are values: a
//! [`Problem`] names
//! one question of the §8 menu —
//!
//! * **emptiness** — does a query ever select a node?
//! * **containment** — `e1 ⊆ e2`: is every node selected by `e1` also
//!   selected by `e2`? (`E→⟦e1⟧ ∧ ¬E→⟦e2⟧` unsatisfiable);
//! * **overlap** — can two queries select a common node?
//! * **coverage** — is `e` always within the union of other queries?
//! * **static type-checking** — are all nodes selected by `e` under an
//!   input type valid roots of an output type?
//! * **equivalence** — containment both ways —
//!
//! and [`Analyzer::solve`] is the single dispatch point that decides one,
//! governed by a [`Limits`] budget (wall-clock deadline, BDD node budget,
//! fixpoint iteration cap, lean-diamond cap for the enumerating backends).
//! A budget hit is the typed third verdict
//! [`SolveError::ResourceExhausted`] — never a panic, never an unbounded
//! run. The per-operation methods ([`Analyzer::contains`],
//! [`Analyzer::is_empty`], …) are thin wrappers that build the
//! corresponding [`Problem`] and solve it under [`Limits::default`].
//!
//! Each verdict carries solver statistics and, when the property fails, an
//! XML counter-example tree annotated with the start mark.
//!
//! # Example
//!
//! ```
//! use analyzer::{Analyzer, Limits, Problem};
//! use xpath::parse;
//!
//! let mut az = Analyzer::new();
//! let p = Problem::contains(
//!     parse("child::c/preceding-sibling::a[child::b]")?,
//!     None,
//!     parse("child::c[child::b]")?,
//!     None,
//! );
//! let v = az.solve(&p, &Limits::default())?;
//! assert!(!v.holds); // the Fig 18 example: e1 ⊄ e2
//! assert!(v.counter_example.is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Bounding a solve and catching the third verdict:
//!
//! ```
//! use analyzer::{Analyzer, Limits, Problem, SolveError};
//!
//! let mut az = Analyzer::new();
//! let p = Problem::sat(xpath::parse("a/b")?, None);
//! let starved = Limits { max_bdd_nodes: Some(2), ..Limits::default() };
//! match az.solve(&p, &starved) {
//!     Err(SolveError::ResourceExhausted { resource, .. }) => {
//!         assert_eq!(resource.as_str(), "bdd_nodes");
//!     }
//!     other => panic!("expected exhaustion, got {other:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;
pub mod problem;
pub mod types;
pub mod witness;

use std::sync::Arc;
use std::time::Instant;

use mulogic::{Formula, Logic};
use obs::{FieldValue, Recorder};
use solver::{solve_with_traced, Model, Outcome, Stats, SymbolicOptions};
use treetypes::Dtd;
use xpath::Expr;

pub use problem::Problem;
pub use solver::{
    BackendChoice, BddCounters, CrossCheckError, Exhausted, Limits, Resource, SolveError, Telemetry,
};

/// The result of one decision problem.
#[derive(Debug)]
pub struct Analysis {
    /// Whether the queried property holds.
    pub holds: bool,
    /// A witness against the property (for containment, coverage, emptiness
    /// and type-checking) or for it (for overlap and satisfiability), when
    /// one exists.
    pub counter_example: Option<Model>,
    /// Solver statistics.
    pub stats: Stats,
    /// The backend that produced the verdict.
    pub backend: BackendChoice,
}

/// The outcome of one decision problem: the analysis, or a
/// [`SolveError`] — a typed resource exhaustion (deadline, BDD node
/// budget, iteration cap, or a lean beyond the enumeration cap of the
/// explicit/witnessed/dual backends), or a dual-mode cross-check
/// disagreement. Under [`Limits::default`] the symbolic backend never
/// fails.
pub type AnalysisResult = Result<Analysis, SolveError>;

/// Construction-time options of an [`Analyzer`].
#[derive(Debug, Clone, Default)]
pub struct AnalyzerOptions {
    /// Which solver backend answers satisfiability queries.
    pub backend: BackendChoice,
    /// Tuning knobs of the symbolic backend (also the symbolic half of
    /// dual mode and the symbolic racer of the portfolio).
    pub symbolic: SymbolicOptions,
}

/// The analysis engine: a formula arena plus a selectable solver backend.
#[derive(Debug, Default)]
pub struct Analyzer {
    lg: Logic,
    options: AnalyzerOptions,
    /// The long-lived BDD manager behind every symbolic (and dual) solve
    /// this analyzer performs. It is generationally reset per problem —
    /// never reallocated — so a worker that answers thousands of requests
    /// keeps one warm arena, unique table and operation cache.
    bdd: bdd::Bdd,
    /// Cache of compiled type formulas, keyed by the DTD's structural
    /// `Hash`/`Eq` (start symbol plus declarations). Sharing one formula
    /// across the queries of a problem keeps the lean small: a coverage
    /// check against four queries under the same type must not carry four
    /// isomorphic copies of the type translation. Keying on the structure
    /// itself — rather than a rendered string — means two distinct DTDs can
    /// never alias (a label containing `;` or `=` used to be able to
    /// collide with the old `start=…;name=model;…` rendering).
    type_cache: std::collections::HashMap<Dtd, Formula>,
}

impl Analyzer {
    /// Creates an analyzer with the paper-faithful solver options and the
    /// symbolic backend.
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Creates an analyzer with custom options (backend choice,
    /// ablations).
    pub fn with_options(options: AnalyzerOptions) -> Self {
        Analyzer {
            lg: Logic::new(),
            options,
            bdd: bdd::Bdd::new(),
            type_cache: std::collections::HashMap::new(),
        }
    }

    /// The backend answering this analyzer's queries.
    pub fn backend(&self) -> BackendChoice {
        self.options.backend
    }

    /// Switches the solver backend; compiled formulas and the type cache
    /// are kept (they are backend-independent).
    pub fn set_backend(&mut self, backend: BackendChoice) {
        self.options.backend = backend;
    }

    /// The (cached) Lµ translation of a DTD.
    pub(crate) fn type_formula(&mut self, dtd: &Dtd) -> Formula {
        if let Some(&f) = self.type_cache.get(dtd) {
            return f;
        }
        let f = dtd.formula(&mut self.lg);
        self.type_cache.insert(dtd.clone(), f);
        f
    }

    /// The underlying formula arena (for advanced uses: custom formulas,
    /// display, model checking).
    pub fn logic_mut(&mut self) -> &mut Logic {
        &mut self.lg
    }

    /// `E→⟦e⟧χ` with χ the type's formula (or ⊤): the query translation
    /// used by all decision problems (§8).
    ///
    /// The type context is *root-anchored*: the context node must be the
    /// document root (`¬⟨1̄⟩⊤ ∧ ¬⟨2̄⟩⊤`) of a tree of the type, so the
    /// analysis quantifies exactly over the valid documents, evaluating the
    /// query from their root. This is the additional root restriction §5.2
    /// recommends when a type constrains a query. Use
    /// [`Analyzer::query_formula_floating`] for the unanchored variant.
    pub fn query_formula(&mut self, e: &Expr, ty: Option<&Dtd>) -> Formula {
        let chi = match ty {
            Some(dtd) => {
                let t = self.type_formula(dtd);
                let no_parent = self.lg.not_diam_true(mulogic::Program::Up1);
                let no_left = self.lg.not_diam_true(mulogic::Program::Up2);
                let at_root = self.lg.and(no_parent, no_left);
                self.lg.and(t, at_root)
            }
            None => self.lg.tt(),
        };
        xpath::compile_expr(&mut self.lg, e, chi)
    }

    /// Like [`Analyzer::query_formula`] but without anchoring the typed
    /// context node at the document root: the context satisfies the type
    /// formula wherever it sits in a larger tree (the bare translation of
    /// §5.2/§8).
    pub fn query_formula_floating(&mut self, e: &Expr, ty: Option<&Dtd>) -> Formula {
        let chi = match ty {
            Some(dtd) => self.type_formula(dtd),
            None => self.lg.tt(),
        };
        xpath::compile_expr(&mut self.lg, e, chi)
    }

    /// Decides satisfiability of an arbitrary Lµ formula on the configured
    /// backend, reusing this analyzer's long-lived BDD manager, under
    /// [`Limits::default`].
    pub fn solve_formula(&mut self, f: Formula) -> Result<solver::Solved, SolveError> {
        self.solve_formula_bounded(f, &Limits::default())
    }

    /// [`Analyzer::solve_formula`] under the caller's [`Limits`].
    pub fn solve_formula_bounded(
        &mut self,
        f: Formula,
        limits: &Limits,
    ) -> Result<solver::Solved, SolveError> {
        self.solve_formula_traced(f, limits, &Recorder::noop())
    }

    /// [`Analyzer::solve_formula_bounded`] with phase events recorded on
    /// `rec` (lean construction, BDD build, per-iteration fixpoint steps,
    /// budget hits). A noop recorder makes this identical to the untraced
    /// path.
    pub fn solve_formula_traced(
        &mut self,
        f: Formula,
        limits: &Limits,
        rec: &Recorder,
    ) -> Result<solver::Solved, SolveError> {
        solve_with_traced(
            &mut self.lg,
            f,
            self.options.backend,
            &self.options.symbolic,
            &mut self.bdd,
            limits,
            rec,
        )
    }

    /// Solves one typed decision [`Problem`] under the given [`Limits`] —
    /// the single dispatch point every decision method of this analyzer
    /// (and the engine's protocol layer) funnels through.
    ///
    /// The limits govern the whole problem: a multi-goal problem (an
    /// equivalence solves two containments) charges each sub-solve against
    /// the one wall-clock deadline, while per-solve budgets (BDD nodes)
    /// apply to each sub-solve, whose manager is reset in between. A
    /// budget hit returns [`SolveError::ResourceExhausted`] naming the
    /// resource — the property is then neither proved nor refuted, and the
    /// caller may retry with a larger budget.
    pub fn solve(&mut self, problem: &Problem, limits: &Limits) -> AnalysisResult {
        self.solve_traced(problem, limits, &Recorder::noop())
    }

    /// [`Analyzer::solve`] with the solve's phases recorded on `rec`: a
    /// `solve_begin`/`solve_end` event pair bracketing the whole problem
    /// (operation name, backend, final status, wall time), a `compile`
    /// phase per goal construction, and whatever the backend emits
    /// (lean/build/enumerate phases, per-iteration `step` events, `limit`
    /// events on budget hits). A noop recorder makes this identical to
    /// [`Analyzer::solve`].
    pub fn solve_traced(
        &mut self,
        problem: &Problem,
        limits: &Limits,
        rec: &Recorder,
    ) -> AnalysisResult {
        let started = rec.enabled().then(Instant::now);
        rec.event(
            "solve_begin",
            &[
                ("op", FieldValue::Str(problem.op_name())),
                ("backend", FieldValue::Str(self.options.backend.as_str())),
            ],
        );
        let result = self.solve_inner(problem, limits, rec);
        if let Some(started) = started {
            let status = match &result {
                Ok(a) if a.holds => "holds",
                Ok(_) => "fails",
                Err(SolveError::ResourceExhausted { .. }) => "unknown",
                Err(_) => "error",
            };
            rec.event(
                "solve_end",
                &[
                    ("status", FieldValue::Str(status)),
                    (
                        "wall_us",
                        FieldValue::U64(started.elapsed().as_micros() as u64),
                    ),
                ],
            );
        }
        result
    }

    fn solve_inner(
        &mut self,
        problem: &Problem,
        limits: &Limits,
        rec: &Recorder,
    ) -> AnalysisResult {
        match problem {
            Problem::Empty { query, ty } => {
                let span = rec.span("compile");
                let f = self.query_formula(query, ty.as_deref());
                drop(span);
                self.check_unsat_traced(f, limits, rec, &dtd_refs(&[ty]))
            }
            Problem::Sat { query, ty } => {
                let span = rec.span("compile");
                let f = self.query_formula(query, ty.as_deref());
                drop(span);
                self.check_sat(f, limits, rec, &dtd_refs(&[ty]))
            }
            Problem::Contains {
                lhs,
                ltype,
                rhs,
                rtype,
            } => {
                let span = rec.span("compile");
                let goal = self.containment_goal(lhs, ltype.as_deref(), rhs, rtype.as_deref());
                drop(span);
                // A containment witness inhabits the *left* type only: the
                // right-hand query (and its type) appear negated in the goal.
                self.check_unsat_traced(goal, limits, rec, &dtd_refs(&[ltype]))
            }
            Problem::Overlap {
                lhs,
                ltype,
                rhs,
                rtype,
            } => {
                let span = rec.span("compile");
                let f1 = self.query_formula(lhs, ltype.as_deref());
                let f2 = self.query_formula(rhs, rtype.as_deref());
                let goal = self.lg.and(f1, f2);
                drop(span);
                self.check_sat(goal, limits, rec, &dtd_refs(&[ltype, rtype]))
            }
            Problem::Covers { query, ty, by } => {
                let span = rec.span("compile");
                let mut goal = self.query_formula(query, ty.as_deref());
                for (ei, ti) in by {
                    let fi = self.query_formula(ei, ti.as_deref());
                    let nfi = self.lg.not(fi);
                    goal = self.lg.and(goal, nfi);
                }
                drop(span);
                self.check_unsat_traced(goal, limits, rec, &dtd_refs(&[ty]))
            }
            Problem::TypeCheck {
                query,
                input,
                output,
            } => {
                let span = rec.span("compile");
                let f = self.query_formula(query, Some(input));
                let out = self.type_formula(output);
                let nout = self.lg.not(out);
                let goal = self.lg.and(f, nout);
                drop(span);
                // The witness is a valid *input* document on which the query
                // selects a node outside the output type.
                self.check_unsat_traced(goal, limits, rec, &[input.as_ref()])
            }
            Problem::Equiv {
                lhs,
                ltype,
                rhs,
                rtype,
            } => {
                // Both containments are charged against one deadline; the
                // second direction runs on whatever wall clock remains.
                let started = Instant::now();
                let span = rec.span("compile");
                let fwd_goal = self.containment_goal(lhs, ltype.as_deref(), rhs, rtype.as_deref());
                drop(span);
                let fwd = self.check_unsat_traced(fwd_goal, limits, rec, &dtd_refs(&[ltype]))?;
                let remaining = limits.after(started.elapsed())?;
                let span = rec.span("compile");
                let bwd_goal = self.containment_goal(rhs, rtype.as_deref(), lhs, ltype.as_deref());
                drop(span);
                let bwd =
                    self.check_unsat_traced(bwd_goal, &remaining, rec, &dtd_refs(&[rtype]))?;
                Ok(Analysis {
                    holds: fwd.holds && bwd.holds,
                    // The witness is whichever direction failed first.
                    counter_example: fwd.counter_example.or(bwd.counter_example),
                    stats: fwd.stats.merge(bwd.stats),
                    backend: self.options.backend,
                })
            }
        }
    }

    /// `E→⟦e1⟧⟦T1⟧ ∧ ¬E→⟦e2⟧⟦T2⟧` — unsatisfiable iff `e1 ⊆ e2`.
    fn containment_goal(
        &mut self,
        e1: &Expr,
        t1: Option<&Dtd>,
        e2: &Expr,
        t2: Option<&Dtd>,
    ) -> Formula {
        let f1 = self.query_formula(e1, t1);
        let f2 = self.query_formula(e2, t2);
        let nf2 = self.lg.not(f2);
        self.lg.and(f1, nf2)
    }

    pub(crate) fn check_unsat(&mut self, f: Formula, limits: &Limits) -> AnalysisResult {
        self.check_unsat_traced(f, limits, &Recorder::noop(), &[])
    }

    fn check_unsat_traced(
        &mut self,
        f: Formula,
        limits: &Limits,
        rec: &Recorder,
        dtds: &[&Dtd],
    ) -> AnalysisResult {
        let solved = self.solve_formula_traced(f, limits, rec)?;
        Ok(match solved.outcome {
            Outcome::Unsatisfiable => Analysis {
                holds: true,
                counter_example: None,
                stats: solved.stats,
                backend: self.options.backend,
            },
            Outcome::Satisfiable(m) => {
                witness::verify_model(&self.lg, f, &m, dtds)?;
                Analysis {
                    holds: false,
                    counter_example: Some(m),
                    stats: solved.stats,
                    backend: self.options.backend,
                }
            }
        })
    }

    fn check_sat(
        &mut self,
        f: Formula,
        limits: &Limits,
        rec: &Recorder,
        dtds: &[&Dtd],
    ) -> AnalysisResult {
        let solved = self.solve_formula_traced(f, limits, rec)?;
        Ok(match solved.outcome {
            Outcome::Satisfiable(m) => {
                witness::verify_model(&self.lg, f, &m, dtds)?;
                Analysis {
                    holds: true,
                    counter_example: Some(m),
                    stats: solved.stats,
                    backend: self.options.backend,
                }
            }
            Outcome::Unsatisfiable => Analysis {
                holds: false,
                counter_example: None,
                stats: solved.stats,
                backend: self.options.backend,
            },
        })
    }

    /// XPath emptiness: `e` selects no node in any tree (of the type).
    /// Delegates to [`Analyzer::solve`] under [`Limits::default`].
    pub fn is_empty(&mut self, e: &Expr, ty: Option<&Dtd>) -> AnalysisResult {
        let p = Problem::empty(e.clone(), arc_dtd(ty));
        self.solve(&p, &Limits::default())
    }

    /// XPath satisfiability: `e` selects a node in some tree of the type
    /// (the `e7`/`e8` rows of Table 2). The witness is a satisfying tree.
    /// Delegates to [`Analyzer::solve`] under [`Limits::default`].
    pub fn is_satisfiable(&mut self, e: &Expr, ty: Option<&Dtd>) -> AnalysisResult {
        let p = Problem::sat(e.clone(), arc_dtd(ty));
        self.solve(&p, &Limits::default())
    }

    /// XPath containment `e1 ⊆ e2` under per-side type constraints:
    /// `E→⟦e1⟧⟦T1⟧ ∧ ¬E→⟦e2⟧⟦T2⟧` must be unsatisfiable. Delegates to
    /// [`Analyzer::solve`] under [`Limits::default`].
    pub fn contains(
        &mut self,
        e1: &Expr,
        t1: Option<&Dtd>,
        e2: &Expr,
        t2: Option<&Dtd>,
    ) -> AnalysisResult {
        let p = Problem::contains(e1.clone(), arc_dtd(t1), e2.clone(), arc_dtd(t2));
        self.solve(&p, &Limits::default())
    }

    /// XPath overlap: some node is selected by both queries. Delegates to
    /// [`Analyzer::solve`] under [`Limits::default`].
    pub fn overlaps(
        &mut self,
        e1: &Expr,
        t1: Option<&Dtd>,
        e2: &Expr,
        t2: Option<&Dtd>,
    ) -> AnalysisResult {
        let p = Problem::overlap(e1.clone(), arc_dtd(t1), e2.clone(), arc_dtd(t2));
        self.solve(&p, &Limits::default())
    }

    /// XPath coverage: every node selected by `e` is selected by at least
    /// one of `covers` (each under its own optional type constraint).
    /// Delegates to [`Analyzer::solve`] under [`Limits::default`].
    pub fn covers(
        &mut self,
        e: &Expr,
        ty: Option<&Dtd>,
        covers: &[(&Expr, Option<&Dtd>)],
    ) -> AnalysisResult {
        let p = Problem::Covers {
            query: Arc::new(e.clone()),
            ty: arc_dtd(ty),
            by: covers
                .iter()
                .map(|&(ei, ti)| (Arc::new(ei.clone()), arc_dtd(ti)))
                .collect(),
        };
        self.solve(&p, &Limits::default())
    }

    /// Static type-checking of an annotated query: every node selected by
    /// `e` under the input type is a valid root of the output type
    /// (`E→⟦e⟧⟦T_in⟧ ∧ ¬⟦T_out⟧` unsatisfiable). Delegates to
    /// [`Analyzer::solve`] under [`Limits::default`].
    pub fn type_checks(&mut self, e: &Expr, input: &Dtd, output: &Dtd) -> AnalysisResult {
        let p = Problem::type_check(e.clone(), input.clone(), output.clone());
        self.solve(&p, &Limits::default())
    }

    /// XPath equivalence under type constraints: containment both ways.
    /// Returns the two directions (`e1 ⊆ e2`, `e2 ⊆ e1`); for the single
    /// merged verdict, solve a [`Problem::Equiv`] through
    /// [`Analyzer::solve`].
    pub fn equivalent(
        &mut self,
        e1: &Expr,
        t1: Option<&Dtd>,
        e2: &Expr,
        t2: Option<&Dtd>,
    ) -> Result<(Analysis, Analysis), SolveError> {
        let fwd = self.contains(e1, t1, e2, t2)?;
        let bwd = self.contains(e2, t2, e1, t1)?;
        Ok((fwd, bwd))
    }
}

/// Clones an optional borrowed DTD into the `Arc` ownership a [`Problem`]
/// carries.
fn arc_dtd(ty: Option<&Dtd>) -> Option<Arc<Dtd>> {
    ty.map(|d| Arc::new(d.clone()))
}

/// The governing DTDs of a (sub-)problem: the present ones among the type
/// slots whose query appears *positively* in the goal. These are the types a
/// witness document must inhabit, so [`witness::verify_model`] re-validates
/// against each.
fn dtd_refs<'a>(tys: &[&'a Option<Arc<Dtd>>]) -> Vec<&'a Dtd> {
    tys.iter().filter_map(|t| t.as_deref()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath::parse;

    #[test]
    fn fig18_containment() {
        let mut az = Analyzer::new();
        let e1 = parse("child::c/preceding-sibling::a[child::b]").unwrap();
        let e2 = parse("child::c[child::b]").unwrap();
        let v = az.contains(&e1, None, &e2, None).unwrap();
        assert!(!v.holds);
        let m = v.counter_example.unwrap();
        // The paper's counter-example has an `a` with a `b` child followed
        // by a `c` sibling.
        let xml = m.xml();
        assert!(xml.contains("<a>"), "{xml}");
        assert!(xml.contains("<b"), "{xml}");
        assert!(xml.contains("<c"), "{xml}");
    }

    #[test]
    fn self_containment_and_equivalence() {
        let mut az = Analyzer::new();
        let e = parse("a/b[c]").unwrap();
        let v = az.contains(&e, None, &e, None).unwrap();
        assert!(v.holds);
        let (f, b) = az.equivalent(&e, None, &e, None).unwrap();
        assert!(f.holds && b.holds);
    }

    #[test]
    fn emptiness() {
        let mut az = Analyzer::new();
        // a ∩ b at the same node: empty.
        let e = parse("child::a ∩ child::b").unwrap();
        let v = az.is_empty(&e, None).unwrap();
        assert!(v.holds);
        let e2 = parse("child::a").unwrap();
        let v2 = az.is_empty(&e2, None).unwrap();
        assert!(!v2.holds);
        assert!(v2.counter_example.is_some());
    }

    #[test]
    fn overlap() {
        let mut az = Analyzer::new();
        let e1 = parse("child::*[child::b]").unwrap();
        let e2 = parse("child::a").unwrap();
        let v = az.overlaps(&e1, None, &e2, None).unwrap();
        assert!(v.holds);
        let w = v.counter_example.unwrap();
        assert!(w.xml().contains("<a"), "{w}");
        let e3 = parse("child::c").unwrap();
        assert!(!az.overlaps(&e2, None, &e3, None).unwrap().holds);
    }

    #[test]
    fn coverage() {
        let mut az = Analyzer::new();
        let e = parse("child::*").unwrap();
        let ea = parse("child::a").unwrap();
        let estar = parse("child::*[not(self::a)]").unwrap();
        let v = az.covers(&e, None, &[(&ea, None), (&estar, None)]).unwrap();
        assert!(v.holds);
        // Dropping one disjunct breaks coverage.
        let v2 = az.covers(&e, None, &[(&ea, None)]).unwrap();
        assert!(!v2.holds);
    }

    #[test]
    fn containment_under_type() {
        // Under <!ELEMENT r (x, y)> …, child::* from the root is covered by
        // child::x | child::y.
        let dtd = Dtd::parse("<!ELEMENT r (x, y)> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY>").unwrap();
        let mut az = Analyzer::new();
        let all = parse("child::*").unwrap();
        let xy = parse("child::x | child::y").unwrap();
        let v = az.contains(&all, Some(&dtd), &xy, Some(&dtd)).unwrap();
        assert!(v.holds, "{:?}", v.counter_example.map(|m| m.xml()));
        // Without the type it fails.
        let v2 = az.contains(&all, None, &xy, None).unwrap();
        assert!(!v2.holds);
    }

    #[test]
    fn type_checking() {
        // The output type's start variable is `x(C, ε)` (Fig 14): it also
        // constrains the selected node to have no following sibling, so the
        // input type uses a single occurrence of x.
        let input = Dtd::parse("<!ELEMENT r (x)> <!ELEMENT x (y)> <!ELEMENT y EMPTY>").unwrap();
        let out_ok = Dtd::parse("<!ELEMENT x (y)> <!ELEMENT y EMPTY>").unwrap();
        let out_bad = Dtd::parse("<!ELEMENT x EMPTY>").unwrap();
        let mut az = Analyzer::new();
        let e = parse("child::x").unwrap();
        assert!(az.type_checks(&e, &input, &out_ok).unwrap().holds);
        let v = az.type_checks(&e, &input, &out_bad).unwrap();
        assert!(!v.holds);
        assert!(v.counter_example.is_some());
    }

    #[test]
    fn solve_is_the_single_dispatch_point() {
        // Every per-op wrapper and the corresponding Problem variant must
        // produce the same verdict.
        let mut az = Analyzer::new();
        let e1 = parse("child::c/preceding-sibling::a[child::b]").unwrap();
        let e2 = parse("child::c[child::b]").unwrap();
        let wrapped = az.contains(&e1, None, &e2, None).unwrap();
        let p = Problem::contains(e1.clone(), None, e2.clone(), None);
        let solved = az.solve(&p, &Limits::default()).unwrap();
        assert_eq!(wrapped.holds, solved.holds);
        assert_eq!(
            wrapped.counter_example.as_ref().map(Model::xml),
            solved.counter_example.as_ref().map(Model::xml)
        );
        // Equiv through solve merges the two directions into one verdict.
        let eq = Problem::equiv(e1, None, e2, None);
        let v = az.solve(&eq, &Limits::default()).unwrap();
        assert!(!v.holds);
        assert!(v.counter_example.is_some());
        assert!(v.stats.iterations > 0);
    }

    #[test]
    fn exhausted_solves_name_the_resource() {
        let mut az = Analyzer::new();
        let p = Problem::sat(parse("a/b[c]").unwrap(), None);
        // A starved node budget: the typed third verdict, not a panic.
        let starved = Limits {
            max_bdd_nodes: Some(4),
            ..Limits::default()
        };
        match az.solve(&p, &starved) {
            Err(SolveError::ResourceExhausted {
                resource: solver::Resource::BddNodes,
                spent,
                limit,
            }) => {
                assert!(spent > limit);
            }
            other => panic!("expected node exhaustion, got {other:?}"),
        }
        // A zero deadline exhausts the wall clock on an equivalence too
        // (the two containments share one deadline).
        let eq = Problem::equiv(parse("a/b").unwrap(), None, parse("a/*").unwrap(), None);
        let instant = Limits {
            deadline: Some(std::time::Duration::ZERO),
            ..Limits::default()
        };
        match az.solve(&eq, &instant) {
            Err(SolveError::ResourceExhausted {
                resource: solver::Resource::WallClock,
                ..
            }) => {}
            other => panic!("expected wall-clock exhaustion, got {other:?}"),
        }
        // The same problems decide fine once the budgets are lifted
        // (a/b ≡ a/* fails in the a/* ⊆ a/b direction, with a witness).
        assert!(az.solve(&p, &Limits::default()).unwrap().holds);
        let v = az.solve(&eq, &Limits::default()).unwrap();
        assert!(!v.holds);
        assert!(v.counter_example.is_some());
    }

    #[test]
    fn traced_solves_bracket_the_problem() {
        use obs::MemorySink;
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        let mut az = Analyzer::new();
        let p = Problem::contains(
            parse("child::c/preceding-sibling::a[child::b]").unwrap(),
            None,
            parse("child::c[child::b]").unwrap(),
            None,
        );
        let v = az.solve_traced(&p, &Limits::default(), &rec).unwrap();
        assert!(!v.holds);
        let events = sink.drain();
        // The stream opens with solve_begin naming the op and backend…
        let begin = &events[0];
        assert_eq!(begin.kind, "solve_begin");
        assert!(begin
            .fields
            .iter()
            .any(|(k, v)| *k == "op" && *v == FieldValue::Str("contains")));
        assert!(begin
            .fields
            .iter()
            .any(|(k, v)| *k == "backend" && *v == FieldValue::Str("symbolic")));
        // …closes with solve_end carrying the verdict status…
        let end = events.last().unwrap();
        assert_eq!(end.kind, "solve_end");
        assert!(end
            .fields
            .iter()
            .any(|(k, v)| *k == "status" && *v == FieldValue::Str("fails")));
        assert!(end
            .fields
            .iter()
            .any(|(k, v)| matches!((*k, v), ("wall_us", FieldValue::U64(_)))));
        // …and records the compile and fixpoint phases in between.
        let phases: Vec<_> = events
            .iter()
            .filter(|e| e.kind == "phase")
            .filter_map(|e| {
                e.fields.iter().find_map(|(k, v)| match (k, v) {
                    (&"phase", FieldValue::Str(s)) => Some(*s),
                    _ => None,
                })
            })
            .collect();
        assert!(phases.contains(&"compile"), "{phases:?}");
        assert!(phases.contains(&"fixpoint"), "{phases:?}");
        // An untraced solve agrees and emits nothing.
        let quiet = az.solve(&p, &Limits::default()).unwrap();
        assert_eq!(quiet.holds, v.holds);
        assert!(sink.drain().is_empty());
        // Exhaustion maps to the "unknown" status.
        let starved = Limits {
            max_bdd_nodes: Some(2),
            ..Limits::default()
        };
        az.solve_traced(&p, &starved, &rec).unwrap_err();
        let events = sink.drain();
        let end = events.last().unwrap();
        assert_eq!(end.kind, "solve_end");
        assert!(end
            .fields
            .iter()
            .any(|(k, v)| *k == "status" && *v == FieldValue::Str("unknown")));
        assert!(events.iter().any(|e| e.kind == "limit"));
    }

    #[test]
    fn type_cache_is_structural() {
        let mut az = Analyzer::new();
        let a = Dtd::parse("<!ELEMENT r (x)> <!ELEMENT x EMPTY>").unwrap();
        let b = Dtd::parse("<!ELEMENT r (x)>  <!ELEMENT x EMPTY>").unwrap();
        let c = Dtd::parse("<!ELEMENT r (x*)> <!ELEMENT x EMPTY>").unwrap();
        let fa = az.type_formula(&a);
        let fb = az.type_formula(&b);
        let fc = az.type_formula(&c);
        // Structurally equal DTDs share one compiled formula…
        assert_eq!(fa, fb);
        assert_eq!(az.type_cache.len(), 2);
        // …and structurally distinct ones never alias.
        assert_ne!(fa, fc);
    }

    #[test]
    fn type_checking_rejects_extra_siblings() {
        // With x* in the input, a selected x may have a following x
        // sibling, which the output type's root (no next sibling) rejects.
        let input = Dtd::parse("<!ELEMENT r (x*)> <!ELEMENT x (y)> <!ELEMENT y EMPTY>").unwrap();
        let out = Dtd::parse("<!ELEMENT x (y)> <!ELEMENT y EMPTY>").unwrap();
        let mut az = Analyzer::new();
        let e = parse("child::x").unwrap();
        let v = az.type_checks(&e, &input, &out).unwrap();
        assert!(!v.holds);
    }
}

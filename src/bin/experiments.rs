//! Regenerates the paper's evaluation (§8): Table 1, Table 2, and the
//! figure examples (Fig 13/14 type compilation, Fig 18 solver run).
//!
//! ```text
//! cargo run --release --bin experiments            # everything but the slow XHTML rows
//! cargo run --release --bin experiments -- all     # everything (minutes)
//! cargo run --release --bin experiments -- table1
//! cargo run --release --bin experiments -- table2        # rows 1-4
//! cargo run --release --bin experiments -- table2-xhtml  # rows 5-6 (slow)
//! cargo run --release --bin experiments -- fig13
//! cargo run --release --bin experiments -- fig18
//! ```
//!
//! Timings are not expected to match the paper's milliseconds (different
//! machine, different decade, different BDD engine); the verdicts and their
//! relative difficulty are.

use std::time::Instant;

use xsat::analyzer::{paper, Analyzer};
use xsat::mulogic::Logic;
use xsat::treetypes::{smil_1_0, wikipedia, xhtml_1_0_strict, BinaryType};
use xsat::xpath::parse;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "fast".to_owned());
    match arg.as_str() {
        "table1" => table1(),
        "table2" => table2_fast(),
        "table2-xhtml" => table2_xhtml(),
        "fig13" => fig13(),
        "fig18" => fig18(),
        "all" => {
            table1();
            fig13();
            fig18();
            table2_fast();
            table2_xhtml();
        }
        "fast" => {
            table1();
            fig13();
            fig18();
            table2_fast();
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            std::process::exit(2);
        }
    }
}

fn table1() {
    println!("== Table 1: types used in experiments ==");
    println!(
        "{:<22} {:>8} {:>8} {:>12} {:>14}",
        "DTD", "symbols", "(paper)", "binary vars", "(paper)"
    );
    for (name, dtd, paper_syms, paper_vars) in [
        ("SMIL 1.0", smil_1_0(), 19, 11),
        ("XHTML 1.0 Strict", xhtml_1_0_strict(), 77, 325),
        ("Wikipedia (Fig 12)", wikipedia(), 9, 9),
    ] {
        let bt = BinaryType::from_dtd(&dtd);
        println!(
            "{:<22} {:>8} {:>8} {:>12} {:>14}",
            name,
            dtd.symbol_count(),
            paper_syms,
            bt.var_count(),
            paper_vars
        );
    }
    println!();
}

struct RowResult {
    description: &'static str,
    paper_ms: u64,
    measured_ms: u128,
    verdicts: String,
    lean: usize,
}

fn print_rows(rows: &[RowResult]) {
    println!(
        "{:<28} {:>6} {:>12} {:>12}  verdicts",
        "problem", "lean", "paper (ms)", "ours (ms)"
    );
    for r in rows {
        println!(
            "{:<28} {:>6} {:>12} {:>12}  {}",
            r.description, r.lean, r.paper_ms, r.measured_ms, r.verdicts
        );
    }
    println!();
}

fn table2_fast() {
    println!("== Table 2 (rows 1-4): decision problems ==");
    let mut rows = Vec::new();

    // Row 1: e1 ⊆ e2 and e2 ⊄ e1.
    rows.push(containment_row("e1 ⊆ e2 and e2 ⊄ e1", 1, 2, 353, false));
    // Row 2: e4 ⊆ e3 both ways.
    rows.push(containment_row("e4 ⊆ e3 and e3 ⊆ e4", 4, 3, 45, true));
    // Row 3: e6 ⊆ e5 and e5 ⊄ e6.
    rows.push(containment_row("e6 ⊆ e5 and e5 ⊄ e6", 6, 5, 41, false));

    // Row 4: e7 satisfiable under SMIL 1.0.
    {
        let dtd = smil_1_0();
        let e7 = paper::query(7);
        let mut az = Analyzer::new();
        let t = Instant::now();
        let v = az.is_satisfiable(&e7, Some(&dtd)).unwrap();
        let ms = t.elapsed().as_millis();
        rows.push(RowResult {
            description: "e7 is satisfiable (SMIL)",
            paper_ms: 157,
            measured_ms: ms,
            verdicts: format!("satisfiable={}", v.holds),
            lean: v.stats.lean_size,
        });
        if let Some(m) = &v.counter_example {
            println!("  e7 witness: {}", m.xml());
        }
    }
    print_rows(&rows);
}

fn containment_row(
    description: &'static str,
    lhs: usize,
    rhs: usize,
    paper_ms: u64,
    expect_reverse: bool,
) -> RowResult {
    let e_l = paper::query(lhs);
    let e_r = paper::query(rhs);
    let mut az = Analyzer::new();
    let t = Instant::now();
    let fwd = az.contains(&e_l, None, &e_r, None).unwrap();
    let bwd = az.contains(&e_r, None, &e_l, None).unwrap();
    let ms = t.elapsed().as_millis();
    let verdicts = format!(
        "e{lhs}⊆e{rhs}={} e{rhs}⊆e{lhs}={}{}",
        fwd.holds,
        bwd.holds,
        if bwd.holds == expect_reverse {
            ""
        } else {
            " (!)"
        }
    );
    RowResult {
        description,
        paper_ms,
        measured_ms: ms,
        verdicts,
        lean: fwd.stats.lean_size.max(bwd.stats.lean_size),
    }
}

fn table2_xhtml() {
    println!("== Table 2 (rows 5-6): XHTML problems (slow) ==");
    let mut rows = Vec::new();
    let dtd = xhtml_1_0_strict();

    // Row 5: e8 satisfiable under XHTML.
    {
        let e8 = paper::query(8);
        let mut az = Analyzer::new();
        let t = Instant::now();
        let v = az.is_satisfiable(&e8, Some(&dtd)).unwrap();
        let ms = t.elapsed().as_millis();
        rows.push(RowResult {
            description: "e8 is satisfiable (XHTML)",
            paper_ms: 2630,
            measured_ms: ms,
            verdicts: format!("satisfiable={}", v.holds),
            lean: v.stats.lean_size,
        });
        if let Some(m) = &v.counter_example {
            println!("  e8 witness (anchors nest!): {}", m.xml());
        }
    }

    // Row 6: e9 ⊆ e10 ∪ e11 ∪ e12 under XHTML.
    {
        let e9 = paper::query(9);
        let e10 = paper::query(10);
        let e11 = paper::query(11);
        let e12 = paper::query(12);
        let mut az = Analyzer::new();
        let t = Instant::now();
        let v = az
            .covers(
                &e9,
                Some(&dtd),
                &[(&e10, Some(&dtd)), (&e11, Some(&dtd)), (&e12, Some(&dtd))],
            )
            .unwrap();
        let ms = t.elapsed().as_millis();
        rows.push(RowResult {
            description: "e9 ⊆ (e10 ∪ e11 ∪ e12)",
            paper_ms: 2872,
            measured_ms: ms,
            verdicts: format!("covered={}", v.holds),
            lean: v.stats.lean_size,
        });
        if let Some(m) = &v.counter_example {
            println!("  coverage counter-example: {}", m.xml());
        }
    }
    print_rows(&rows);
}

fn fig13() {
    println!("== Fig 13/14: Wikipedia DTD compilation ==");
    let dtd = wikipedia();
    let bt = BinaryType::from_dtd(&dtd);
    println!("{}", bt.display());
    let mut lg = Logic::new();
    let f = bt.formula(&mut lg);
    println!("\nLµ formula:\n{}\n", lg.display(f));
}

fn fig18() {
    println!("== Fig 18: example run (containment with counter-example) ==");
    let e1 = parse("child::c/preceding-sibling::a[child::b]").expect("parses");
    let e2 = parse("child::c[child::b]").expect("parses");
    let mut az = Analyzer::new();
    let t = Instant::now();
    let v = az.contains(&e1, None, &e2, None).unwrap();
    println!(
        "e1 ⊆ e2: {} ({} lean atoms, {} iterations, {:?})",
        v.holds,
        v.stats.lean_size,
        v.stats.iterations,
        t.elapsed()
    );
    if let Some(m) = &v.counter_example {
        println!("counter-example: {}\n", m.xml());
    }
}

//! Parser for the XPath fragment, with the usual abbreviations.
//!
//! Supported surface syntax (everything appearing in the paper's Fig 21):
//!
//! * full steps `axis::test` with the paper's axis names and the W3C long
//!   forms (`following-sibling`, `descendant-or-self`, …);
//! * abbreviations: a bare name is a `child` step, `*` is `child::*`, `.` is
//!   `self::*`, `..` is `parent::*`, and `//` stands for
//!   `/desc-or-self::*/`;
//! * qualifiers `[q]` with `and`, `or`, `not(·)` and nested paths; absolute
//!   paths in qualifiers (`[//c]`, `[/a/b]`) are desugared to
//!   `anc-or-self::*[not(parent::*)]/…`, anchoring them at the root;
//! * expression-level union `|` (also `∪`, `union`) and intersection
//!   `intersect` (also `∩`);
//! * path-level union `(p1 | p2)` as used by `html/(head | body)`.

use std::error::Error;
use std::fmt;

use ftree::Label;

use crate::ast::{Axis, Expr, NodeTest, Path, Qualifier};

/// Error returned by [`Expr::parse`] and [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXPathError {
    msg: String,
    at: usize,
}

impl ParseXPathError {
    fn new(msg: impl Into<String>, at: usize) -> Self {
        ParseXPathError {
            msg: msg.into(),
            at,
        }
    }

    /// Byte offset of the error in the input.
    pub fn offset(&self) -> usize {
        self.at
    }
}

impl fmt::Display for ParseXPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xpath syntax error at byte {}: {}", self.at, self.msg)
    }
}

impl Error for ParseXPathError {}

/// Parses an XPath expression.
///
/// # Errors
///
/// Returns [`ParseXPathError`] on malformed input.
///
/// # Example
///
/// ```
/// use xpath::parse;
///
/// let e = parse("a/b//c/foll-sibling::d/e").unwrap();
/// assert_eq!(
///     e.to_string(),
///     "child::a/child::b/desc-or-self::*/child::c/foll-sibling::d/child::e"
/// );
/// ```
pub fn parse(input: &str) -> Result<Expr, ParseXPathError> {
    let mut p = Parser { input, pos: 0 };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

impl Expr {
    /// Parses an XPath expression (see [`parse`]).
    ///
    /// # Errors
    ///
    /// Returns [`ParseXPathError`] on malformed input.
    pub fn parse(input: &str) -> Result<Expr, ParseXPathError> {
        parse(input)
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

fn desc_or_self_star() -> Path {
    Path::Step(Axis::DescOrSelf, NodeTest::Star)
}

/// `anc-or-self::*[not(parent::*)]` — climbs to the document root; used to
/// anchor absolute paths appearing inside qualifiers.
fn to_root() -> Path {
    Path::Step(Axis::AncOrSelf, NodeTest::Star).filter(Qualifier::Not(Box::new(Qualifier::Path(
        Box::new(Path::Step(Axis::Parent, NodeTest::Star)),
    ))))
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseXPathError {
        ParseXPathError::new(msg, self.pos)
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..]
            .chars()
            .next()
            .is_some_and(char::is_whitespace)
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.input[self.pos..].chars().next()
    }

    fn starts_with(&mut self, s: &str) -> bool {
        self.skip_ws();
        self.input[self.pos..].starts_with(s)
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseXPathError> {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.err(format!("expected {c:?}")))
        }
    }

    fn peek_name(&mut self) -> Option<&str> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || "_.".contains(*c) || *c == '-'))
            .map_or(rest.len(), |(i, _)| i);
        // A name must not start with a digit, '.' or '-'.
        match rest.chars().next() {
            Some(c) if c.is_alphabetic() || c == '_' => Some(&rest[..end]),
            _ => None,
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_name() == Some(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    // ----- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseXPathError> {
        let mut acc = self.path_expr()?;
        loop {
            self.skip_ws();
            if self.eat_str("|") || self.eat_str("∪") {
                let rhs = self.path_expr()?;
                acc = Expr::Union(Box::new(acc), Box::new(rhs));
            } else if self.eat_str("∩") {
                let rhs = self.path_expr()?;
                acc = Expr::Intersect(Box::new(acc), Box::new(rhs));
            } else if self.peek_name() == Some("union") {
                self.pos += "union".len();
                let rhs = self.path_expr()?;
                acc = Expr::Union(Box::new(acc), Box::new(rhs));
            } else if self.peek_name() == Some("intersect") {
                self.pos += "intersect".len();
                let rhs = self.path_expr()?;
                acc = Expr::Intersect(Box::new(acc), Box::new(rhs));
            } else {
                return Ok(acc);
            }
        }
    }

    fn path_expr(&mut self) -> Result<Expr, ParseXPathError> {
        self.skip_ws();
        if self.eat_str("//") {
            let p = self.rel_path()?;
            return Ok(Expr::Absolute(desc_or_self_star().then(p)));
        }
        if self.eat_str("/") {
            let p = self.rel_path()?;
            return Ok(Expr::Absolute(p));
        }
        let p = self.rel_path()?;
        Ok(Expr::Relative(p))
    }

    // ----- paths ------------------------------------------------------------

    fn rel_path(&mut self) -> Result<Path, ParseXPathError> {
        let mut acc = self.step()?;
        loop {
            self.skip_ws();
            if self.eat_str("//") {
                let s = self.step()?;
                acc = acc.then(desc_or_self_star()).then(s);
            } else if self.starts_with("/") && !self.starts_with("//") {
                self.pos += 1;
                let s = self.step()?;
                acc = acc.then(s);
            } else {
                return Ok(acc);
            }
        }
    }

    /// One step (possibly a parenthesized path union), with its qualifiers.
    fn step(&mut self) -> Result<Path, ParseXPathError> {
        let mut base = if self.eat_str("(") {
            let mut acc = self.rel_path()?;
            loop {
                self.skip_ws();
                if self.eat_str("|") || self.eat_str("∪") {
                    let rhs = self.rel_path()?;
                    acc = Path::Union(Box::new(acc), Box::new(rhs));
                } else {
                    break;
                }
            }
            self.expect(')')?;
            acc
        } else {
            self.simple_step()?
        };
        while self.starts_with("[") {
            self.pos += 1;
            let q = self.qualifier_expr()?;
            self.expect(']')?;
            base = base.filter(q);
        }
        Ok(base)
    }

    fn simple_step(&mut self) -> Result<Path, ParseXPathError> {
        self.skip_ws();
        if self.eat_str("..") {
            return Ok(Path::Step(Axis::Parent, NodeTest::Star));
        }
        if self.eat_str(".") {
            return Ok(Path::Step(Axis::SelfAxis, NodeTest::Star));
        }
        if self.eat_str("*") {
            return Ok(Path::Step(Axis::Child, NodeTest::Star));
        }
        let Some(name) = self.peek_name().map(str::to_owned) else {
            return Err(self.err("expected a step"));
        };
        self.pos += name.len();
        if self.eat_str("::") {
            let axis =
                axis_by_name(&name).ok_or_else(|| self.err(format!("unknown axis {name:?}")))?;
            let test = self.node_test()?;
            Ok(Path::Step(axis, test))
        } else {
            Ok(Path::Step(Axis::Child, NodeTest::Name(Label::new(&name))))
        }
    }

    fn node_test(&mut self) -> Result<NodeTest, ParseXPathError> {
        if self.eat_str("*") {
            return Ok(NodeTest::Star);
        }
        match self.peek_name().map(str::to_owned) {
            Some(n) => {
                self.pos += n.len();
                Ok(NodeTest::Name(Label::new(&n)))
            }
            None => Err(self.err("expected a node test")),
        }
    }

    // ----- qualifiers ---------------------------------------------------------

    fn qualifier_expr(&mut self) -> Result<Qualifier, ParseXPathError> {
        let mut acc = self.qualifier_and()?;
        while self.eat_keyword("or") {
            let rhs = self.qualifier_and()?;
            acc = Qualifier::Or(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    fn qualifier_and(&mut self) -> Result<Qualifier, ParseXPathError> {
        let mut acc = self.qualifier_atom()?;
        while self.eat_keyword("and") {
            let rhs = self.qualifier_atom()?;
            acc = Qualifier::And(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    fn qualifier_atom(&mut self) -> Result<Qualifier, ParseXPathError> {
        self.skip_ws();
        if self.peek_name() == Some("not") {
            let save = self.pos;
            self.pos += "not".len();
            if self.eat_str("(") {
                let q = self.qualifier_expr()?;
                self.expect(')')?;
                return Ok(Qualifier::Not(Box::new(q)));
            }
            self.pos = save; // an element named "not"
        }
        if self.starts_with("(") {
            // Try a parenthesized boolean group; fall back to a path.
            let save = self.pos;
            self.pos += 1;
            if let Ok(q) = self.qualifier_expr() {
                if self.eat_str(")") && !self.starts_with("/") && !self.starts_with("[") {
                    return Ok(q);
                }
            }
            self.pos = save;
        }
        // A path qualifier; absolute paths are anchored at the root.
        if self.eat_str("//") {
            let p = self.rel_path()?;
            return Ok(Qualifier::Path(Box::new(
                to_root().then(desc_or_self_star()).then(p),
            )));
        }
        if self.starts_with("/") {
            self.pos += 1;
            let p = self.rel_path()?;
            return Ok(Qualifier::Path(Box::new(to_root().then(p))));
        }
        let p = self.rel_path()?;
        Ok(Qualifier::Path(Box::new(p)))
    }
}

fn axis_by_name(name: &str) -> Option<Axis> {
    Some(match name {
        "child" => Axis::Child,
        "self" => Axis::SelfAxis,
        "parent" => Axis::Parent,
        "descendant" => Axis::Descendant,
        "desc-or-self" | "descendant-or-self" => Axis::DescOrSelf,
        "ancestor" => Axis::Ancestor,
        "anc-or-self" | "ancestor-or-self" => Axis::AncOrSelf,
        "foll-sibling" | "following-sibling" => Axis::FollSibling,
        "prec-sibling" | "preceding-sibling" => Axis::PrecSibling,
        "following" => Axis::Following,
        "preceding" => Axis::Preceding,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        parse(src).unwrap().to_string()
    }

    #[test]
    fn abbreviations() {
        assert_eq!(roundtrip("a"), "child::a");
        assert_eq!(roundtrip("*"), "child::*");
        assert_eq!(roundtrip("."), "self::*");
        assert_eq!(roundtrip(".."), "parent::*");
        assert_eq!(roundtrip("/a"), "/child::a");
        assert_eq!(roundtrip("a/b"), "child::a/child::b");
        assert_eq!(roundtrip("a//b"), "child::a/desc-or-self::*/child::b");
        assert_eq!(roundtrip("//b"), "/desc-or-self::*/child::b");
    }

    #[test]
    fn full_axes() {
        assert_eq!(roundtrip("following-sibling::a"), "foll-sibling::a");
        assert_eq!(roundtrip("prec-sibling::*"), "prec-sibling::*");
        assert_eq!(roundtrip("descendant-or-self::x"), "desc-or-self::x");
    }

    #[test]
    fn qualifiers() {
        assert_eq!(roundtrip("a[b]"), "child::a[child::b]");
        assert_eq!(
            roundtrip("a[b and not(c)]"),
            "child::a[child::b and not(child::c)]"
        );
        assert_eq!(
            roundtrip("a[b or c and d]"),
            "child::a[(child::b or child::c and child::d)]"
        );
    }

    #[test]
    fn absolute_path_in_qualifier_is_root_anchored() {
        let shown = roundtrip("a/b[//c]");
        assert!(
            shown.contains("anc-or-self::*[not(parent::*)]/desc-or-self::*/child::c"),
            "{shown}"
        );
    }

    #[test]
    fn union_and_intersection() {
        let e = parse("a | b").unwrap();
        assert!(matches!(e, Expr::Union(..)));
        let e = parse("a ∩ b").unwrap();
        assert!(matches!(e, Expr::Intersect(..)));
        let e = parse("a intersect b").unwrap();
        assert!(matches!(e, Expr::Intersect(..)));
    }

    #[test]
    fn path_level_union() {
        let shown = roundtrip("html/(head | body)");
        assert_eq!(shown, "child::html/(child::head | child::body)");
    }

    #[test]
    fn paper_queries_parse() {
        let queries = [
            "/a[.//b[c/*//d]/b[c//d]/b[c/d]]",
            "/a[.//b[c/*//d]/b[c/d]]",
            "a/b//c/foll-sibling::d/e",
            "a/b//d[prec-sibling::c]/e",
            "a/c/following::d/e",
            "a/b[//c]/following::d/e ∩ a/d[preceding::c]/e",
            "*//switch[ancestor::head]//seq//audio[prec-sibling::video]",
            "descendant::a[ancestor::a]",
            "/descendant::*",
            "html/(head | body)",
            "html/head/descendant::*",
            "html/body/descendant::*",
        ];
        for q in queries {
            let e = parse(q).unwrap_or_else(|err| panic!("{q}: {err}"));
            // Reparse the canonical form.
            let canon = e.to_string();
            let e2 = parse(&canon).unwrap_or_else(|err| panic!("{canon}: {err}"));
            assert_eq!(e2.to_string(), canon);
        }
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("a/").is_err());
        assert!(parse("a[").is_err());
        assert!(parse("unknown-axis::a").is_err());
        assert!(parse("a]").is_err());
        assert!(parse("a b").is_err());
    }
}

//! The shared solver kernel: one fixpoint driver, pluggable backends.
//!
//! The paper presents the explicit (§6.2) and symbolic (§7) satisfiability
//! algorithms as two implementations of *one* bottom-up fixpoint over
//! ψ-types. This module captures that shape as the [`Backend`] trait — the
//! type-set representation, one `Upd` step, the root check, and the
//! per-iteration snapshots driving minimal-model reconstruction — and the
//! generic [`run_fixpoint`] driver that owns the iteration loop, the
//! termination test, and the statistics. `solve_explicit`,
//! `solve_symbolic` and `solve_witnessed` are thin wrappers that build a
//! backend and hand it to the driver; future backends (relevance-filtered,
//! sharded, …) plug into the same seam.
//!
//! [`BackendChoice`] is the end-to-end selection type threaded from the
//! `xsat --backend` flag through the engine protocol and the analyzer down
//! to [`solve_with`], including the [`BackendChoice::Dual`] cross-check
//! mode that runs the symbolic and explicit backends concurrently and
//! reports any verdict disagreement as an error.

use std::fmt;
use std::str::FromStr;
use std::time::Instant;

use mulogic::{Formula, Logic};

use crate::bits::MAX_EXPLICIT_DIAMONDS;
use crate::outcome::{Model, Outcome, Solved, Stats, Telemetry};
use crate::prepare::Prepared;
use crate::symbolic::SymbolicOptions;

/// One backend of the satisfiability fixpoint.
///
/// A backend owns its representation of the proved type sets (bit-vector
/// enumerations, BDDs, witness maps, …) plus whatever per-iteration
/// snapshots its model reconstruction needs. The generic [`run_fixpoint`]
/// driver supplies the loop: step, check, repeat until a root hit or a
/// fixed point.
pub trait Backend {
    /// Evidence of a root hit, carrying whatever the backend needs to
    /// reconstruct a model (a type index, a satisfying set BDD, a witness
    /// path, …).
    type Hit;

    /// Performs one `Upd` iteration (Fig 16), recording a snapshot for the
    /// later reconstruction. Returns whether the proved sets grew.
    fn step(&mut self) -> bool;

    /// The root check on the current sets: for the plunging backends the
    /// `ψ`-filter on types with no pending backward modality (§7.1); for
    /// the witnessed backend the literal `FinalCheck`/`dsat` search.
    fn check(&mut self) -> Option<Self::Hit>;

    /// Rebuilds a minimal satisfying model from the recorded snapshots
    /// (§7.2).
    fn reconstruct(&mut self, hit: Self::Hit) -> Model;

    /// Backend-specific measurements (BDD node counts, enumerated types,
    /// …), snapshotted when the run finishes.
    fn telemetry(&self) -> Telemetry;
}

/// Runs a backend to its fixpoint and packages the verdict.
///
/// The loop is the paper's: iterate `Upd` from the empty sets, checking
/// after every step whether a root type (marked when the goal mentions the
/// start proposition) passes the final check; stop on the first hit or as
/// soon as an iteration adds nothing. `lean_size` and `closure_size` are
/// carried into [`Stats`] verbatim.
///
/// # Example
///
/// A miniature backend: "is `n` reachable by doubling from 1?", with the
/// proved set standing in for the paper's ψ-type sets.
///
/// ```
/// use solver::{run_fixpoint, Backend, Model, Telemetry};
///
/// struct Doubling { proved: Vec<u64>, target: u64 }
///
/// impl Backend for Doubling {
///     type Hit = u64;
///     fn step(&mut self) -> bool {
///         let next = self.proved.last().copied().unwrap_or(1).wrapping_mul(2);
///         if self.proved.contains(&next) || next > self.target {
///             return false; // fixpoint reached
///         }
///         self.proved.push(next);
///         true
///     }
///     fn check(&mut self) -> Option<u64> {
///         self.proved.contains(&self.target).then_some(self.target)
///     }
///     fn reconstruct(&mut self, _hit: u64) -> Model {
///         unreachable!("example never reconstructs")
///     }
///     fn telemetry(&self) -> Telemetry {
///         Telemetry::Explicit { types: self.proved.len() }
///     }
/// }
///
/// let solved = run_fixpoint(Doubling { proved: vec![1], target: 9 }, 0, 0);
/// assert!(!solved.outcome.is_satisfiable()); // 9 is not a power of two
/// assert!(solved.stats.iterations >= 3);
/// ```
pub fn run_fixpoint<B: Backend>(mut backend: B, lean_size: usize, closure_size: usize) -> Solved {
    let t0 = Instant::now();
    let mut iterations = 0usize;
    let hit = loop {
        iterations += 1;
        let changed = backend.step();
        if let Some(hit) = backend.check() {
            break Some(hit);
        }
        if !changed {
            break None;
        }
    };
    let outcome = match hit {
        None => Outcome::Unsatisfiable,
        Some(hit) => Outcome::Satisfiable(backend.reconstruct(hit)),
    };
    Solved {
        outcome,
        stats: Stats {
            lean_size,
            closure_size,
            iterations,
            duration: t0.elapsed(),
            telemetry: backend.telemetry(),
        },
    }
}

/// End-to-end backend selection: which solver answers a satisfiability
/// query. Threaded from the `xsat --backend` flag through the engine's
/// JSONL protocol and the analyzer options down to [`solve_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// The BDD-based production algorithm of §7 (the default).
    #[default]
    Symbolic,
    /// The enumerated reference algorithm of §6.2.
    Explicit,
    /// The literal Fig 16 algorithm with explicit witness sets.
    Witnessed,
    /// Cross-check: run [`Symbolic`](BackendChoice::Symbolic) and
    /// [`Explicit`](BackendChoice::Explicit) concurrently and fail loudly
    /// on any verdict disagreement. The recommended CI configuration.
    Dual,
}

impl BackendChoice {
    /// Every choice, in protocol order.
    pub const ALL: [BackendChoice; 4] = [
        BackendChoice::Symbolic,
        BackendChoice::Explicit,
        BackendChoice::Witnessed,
        BackendChoice::Dual,
    ];

    /// The protocol/CLI name of the choice.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendChoice::Symbolic => "symbolic",
            BackendChoice::Explicit => "explicit",
            BackendChoice::Witnessed => "witnessed",
            BackendChoice::Dual => "dual",
        }
    }
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for BackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<BackendChoice, String> {
        BackendChoice::ALL
            .into_iter()
            .find(|b| b.as_str() == s)
            .ok_or_else(|| {
                format!("unknown backend `{s}` (expected symbolic, explicit, witnessed or dual)")
            })
    }
}

/// Why a backend run could not produce a verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrossCheckError {
    /// The two cross-checked backends returned different verdicts — a
    /// solver bug, worth a loud failure.
    Disagreement {
        /// The symbolic backend's satisfiability verdict.
        symbolic_sat: bool,
        /// The explicit backend's satisfiability verdict.
        explicit_sat: bool,
        /// Display form of the goal formula.
        formula: String,
    },
    /// The lean has too many diamonds for the explicit enumeration — the
    /// explicit and witnessed backends cannot run, and dual mode has
    /// nothing to cross-check against.
    ExplicitInfeasible {
        /// `⟨a⟩ϕ` entries in the lean.
        diamonds: usize,
        /// The enumeration bound ([`MAX_EXPLICIT_DIAMONDS`]).
        max: usize,
    },
}

impl fmt::Display for CrossCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossCheckError::Disagreement {
                symbolic_sat,
                explicit_sat,
                formula,
            } => write!(
                f,
                "backend disagreement on `{formula}`: symbolic says {}, explicit says {}",
                verdict_name(*symbolic_sat),
                verdict_name(*explicit_sat)
            ),
            CrossCheckError::ExplicitInfeasible { diamonds, max } => write!(
                f,
                "explicit enumeration infeasible: lean has {diamonds} diamonds, \
                 the bound is {max}"
            ),
        }
    }
}

impl std::error::Error for CrossCheckError {}

fn verdict_name(sat: bool) -> &'static str {
    if sat {
        "satisfiable"
    } else {
        "unsatisfiable"
    }
}

/// Decides satisfiability on the chosen backend.
///
/// The symbolic backend cannot fail. The enumerating backends (explicit,
/// witnessed) return [`CrossCheckError::ExplicitInfeasible`] — instead of
/// panicking like their direct `solve_*` wrappers — when the lean exceeds
/// the enumeration bound, so a service front end can turn an oversized
/// request into a protocol error. [`BackendChoice::Dual`] runs the
/// symbolic solver on this thread and the explicit solver concurrently on
/// a clone of the arena, errors when the two verdicts differ, and
/// otherwise returns the symbolic model with combined telemetry.
pub fn solve_with(
    lg: &mut Logic,
    goal: Formula,
    backend: BackendChoice,
    opts: &SymbolicOptions,
) -> Result<Solved, CrossCheckError> {
    let mut bdd = bdd::Bdd::new();
    solve_with_in(lg, goal, backend, opts, &mut bdd)
}

/// [`solve_with`] inside a caller-owned BDD manager.
///
/// The symbolic backend (and the symbolic half of dual mode) runs in
/// `mgr`, which is reset — not reallocated — per problem (see
/// [`solve_symbolic_in`](crate::solve_symbolic_in)); the enumerating
/// backends ignore it. Long-lived workers hold one manager and thread it
/// through every call.
pub fn solve_with_in(
    lg: &mut Logic,
    goal: Formula,
    backend: BackendChoice,
    opts: &SymbolicOptions,
    mgr: &mut bdd::Bdd,
) -> Result<Solved, CrossCheckError> {
    match backend {
        BackendChoice::Symbolic => Ok(crate::solve_symbolic_in(lg, goal, opts, mgr)),
        BackendChoice::Explicit => {
            let prep = Prepared::new(lg, goal);
            enumeration_feasible(prep.lean.diam_entries().count())?;
            Ok(crate::explicit::solve_prepared(lg, prep))
        }
        BackendChoice::Witnessed => {
            enumeration_feasible(crate::witnessed::lean_diamonds(lg, goal))?;
            Ok(crate::solve_witnessed(lg, goal))
        }
        BackendChoice::Dual => solve_dual(lg, goal, opts, mgr),
    }
}

/// Errs when a lean is too large for the explicit type enumeration.
fn enumeration_feasible(diamonds: usize) -> Result<(), CrossCheckError> {
    if diamonds > MAX_EXPLICIT_DIAMONDS {
        return Err(CrossCheckError::ExplicitInfeasible {
            diamonds,
            max: MAX_EXPLICIT_DIAMONDS,
        });
    }
    Ok(())
}

/// The dual cross-check: symbolic and explicit side by side.
fn solve_dual(
    lg: &mut Logic,
    goal: Formula,
    opts: &SymbolicOptions,
    mgr: &mut bdd::Bdd,
) -> Result<Solved, CrossCheckError> {
    let t0 = Instant::now();
    // The explicit run gets its own arena so the two backends can run on
    // separate threads; formula ids stay valid across the clone.
    let mut explicit_lg = lg.clone();
    let prep = Prepared::new(&mut explicit_lg, goal);
    enumeration_feasible(prep.lean.diam_entries().count())?;
    let (symbolic, (explicit_sat, explicit)) = std::thread::scope(|scope| {
        // Models hold `Rc` trees and cannot cross threads, so the explicit
        // side ships only its verdict and stats back; its model is
        // redundant with the symbolic one anyway.
        let handle = scope.spawn(move || {
            let solved = crate::explicit::solve_prepared(&mut explicit_lg, prep);
            (solved.outcome.is_satisfiable(), solved.stats)
        });
        let symbolic = crate::solve_symbolic_in(lg, goal, opts, mgr);
        (symbolic, handle.join().expect("explicit backend panicked"))
    });
    if symbolic.outcome.is_satisfiable() != explicit_sat {
        return Err(CrossCheckError::Disagreement {
            symbolic_sat: symbolic.outcome.is_satisfiable(),
            explicit_sat,
            formula: lg.display(goal).to_string(),
        });
    }
    Ok(Solved {
        outcome: symbolic.outcome,
        stats: Stats {
            lean_size: symbolic.stats.lean_size,
            closure_size: symbolic.stats.closure_size,
            iterations: symbolic.stats.iterations + explicit.iterations,
            duration: t0.elapsed(),
            telemetry: Telemetry::Dual {
                symbolic: Box::new(symbolic.stats.telemetry),
                explicit: Box::new(explicit.telemetry),
            },
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_round_trips_through_names() {
        for b in BackendChoice::ALL {
            assert_eq!(b.as_str().parse::<BackendChoice>().unwrap(), b);
        }
        let err = "frobnicate".parse::<BackendChoice>().unwrap_err();
        assert!(err.contains("unknown backend `frobnicate`"), "{err}");
        assert_eq!(BackendChoice::default(), BackendChoice::Symbolic);
    }

    #[test]
    fn solve_with_dispatches_every_backend() {
        for b in BackendChoice::ALL {
            let mut lg = Logic::new();
            let sat = lg.parse("a & <1>b").unwrap();
            let s = solve_with(&mut lg, sat, b, &SymbolicOptions::default()).unwrap();
            assert!(s.outcome.is_satisfiable(), "{b}");
            let mut lg = Logic::new();
            let unsat = lg.parse("a & ~a").unwrap();
            let s = solve_with(&mut lg, unsat, b, &SymbolicOptions::default()).unwrap();
            assert!(!s.outcome.is_satisfiable(), "{b}");
        }
    }

    #[test]
    fn dual_reports_combined_telemetry() {
        let mut lg = Logic::new();
        let goal = lg.parse("a & <1>(b & <2>c)").unwrap();
        let s = solve_with(
            &mut lg,
            goal,
            BackendChoice::Dual,
            &SymbolicOptions::default(),
        )
        .unwrap();
        match &s.stats.telemetry {
            Telemetry::Dual { symbolic, explicit } => {
                assert!(symbolic.bdd_nodes().unwrap() > 0);
                assert!(explicit.explicit_types().unwrap() > 0);
            }
            other => panic!("expected dual telemetry, got {other:?}"),
        }
    }

    #[test]
    fn enumerating_backends_reject_oversized_leans() {
        // A disjunction of many distinct diamonds blows past the explicit
        // enumeration bound; every enumerating choice must return the
        // infeasibility error — not panic (which would kill a serving
        // engine) and not hang.
        for backend in [
            BackendChoice::Explicit,
            BackendChoice::Witnessed,
            BackendChoice::Dual,
        ] {
            let mut lg = Logic::new();
            let src: Vec<String> = (0..18).map(|i| format!("<1><2>l{i}")).collect();
            let goal = lg.parse(&src.join(" | ")).unwrap();
            let err = solve_with(&mut lg, goal, backend, &SymbolicOptions::default()).unwrap_err();
            match err {
                CrossCheckError::ExplicitInfeasible { diamonds, max } => {
                    assert!(diamonds > max, "{backend}: {diamonds} vs {max}");
                }
                other => panic!("{backend}: expected infeasibility, got {other}"),
            }
        }
    }
}

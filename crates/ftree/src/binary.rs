//! First-child / next-sibling binary encoding of unranked trees.
//!
//! The logic navigates trees in *binary style*: program `1` goes to the first
//! child, program `2` to the next sibling. A [`BinaryTree`] materializes that
//! view. The satisfiability solver reconstructs counter-examples as binary
//! trees of ψ-types; [`BinaryTree::to_unranked`] converts them back to XML
//! unranked syntax (paper §7.2).

use std::fmt;

use crate::{Label, Tree};

/// A binary tree node with optional `1`- and `2`-successors.
///
/// # Example
///
/// ```
/// use ftree::{BinaryTree, Tree};
///
/// let t = Tree::parse_xml("<a><b/><c/></a>").unwrap();
/// let b = BinaryTree::from_unranked(&t);
/// // a's 1-child is b, whose 2-child is c.
/// assert_eq!(b.child1().unwrap().label().as_str(), "b");
/// assert_eq!(b.child1().unwrap().child2().unwrap().label().as_str(), "c");
/// assert_eq!(b.to_unranked(), t);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BinaryTree {
    label: Label,
    marked: bool,
    child1: Option<Box<BinaryTree>>,
    child2: Option<Box<BinaryTree>>,
}

impl BinaryTree {
    /// Creates a binary node.
    pub fn new(
        label: impl Into<Label>,
        marked: bool,
        child1: Option<BinaryTree>,
        child2: Option<BinaryTree>,
    ) -> Self {
        BinaryTree {
            label: label.into(),
            marked,
            child1: child1.map(Box::new),
            child2: child2.map(Box::new),
        }
    }

    /// The node label.
    pub fn label(&self) -> Label {
        self.label
    }

    /// Whether this node carries the start mark.
    pub fn is_marked(&self) -> bool {
        self.marked
    }

    /// The `1`-successor (first child in unranked view).
    pub fn child1(&self) -> Option<&BinaryTree> {
        self.child1.as_deref()
    }

    /// The `2`-successor (next sibling in unranked view).
    pub fn child2(&self) -> Option<&BinaryTree> {
        self.child2.as_deref()
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        1 + self.child1().map_or(0, BinaryTree::size) + self.child2().map_or(0, BinaryTree::size)
    }

    /// Encodes an unranked tree. The root has no `2`-successor.
    pub fn from_unranked(t: &Tree) -> BinaryTree {
        fn row(siblings: &[Tree]) -> Option<BinaryTree> {
            let (first, rest) = siblings.split_first()?;
            Some(BinaryTree {
                label: first.label(),
                marked: first.is_marked(),
                child1: row(first.children()).map(Box::new),
                child2: row(rest).map(Box::new),
            })
        }
        BinaryTree {
            label: t.label(),
            marked: t.is_marked(),
            child1: row(t.children()).map(Box::new),
            child2: None,
        }
    }

    /// Decodes back to an unranked tree.
    ///
    /// The `2`-successor of `self`, if any, is ignored: an unranked tree has
    /// a single root. Use [`BinaryTree::to_unranked_row`] to keep the whole
    /// sibling row.
    pub fn to_unranked(&self) -> Tree {
        let children = self
            .child1()
            .map(BinaryTree::to_unranked_row)
            .unwrap_or_default();
        if self.marked {
            Tree::marked_node(self.label, children)
        } else {
            Tree::node(self.label, children)
        }
    }

    /// Decodes this node and its `2`-successor chain into a sibling row.
    pub fn to_unranked_row(&self) -> Vec<Tree> {
        let mut out = Vec::new();
        let mut cur = Some(self);
        while let Some(n) = cur {
            out.push(n.to_unranked());
            cur = n.child2();
        }
        out
    }
}

impl fmt::Debug for BinaryTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = if self.marked { "ˢ" } else { "" };
        write!(f, "{}{}(", self.label, m)?;
        match self.child1() {
            Some(c) => write!(f, "{c:?}, ")?,
            None => write!(f, "#, ")?,
        }
        match self.child2() {
            Some(c) => write!(f, "{c:?})"),
            None => write!(f, "#)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let t = Tree::parse_xml("<a><b><d/><e/></b><c/></a>").unwrap();
        let b = BinaryTree::from_unranked(&t);
        assert_eq!(b.to_unranked(), t);
        assert_eq!(b.size(), t.size());
    }

    #[test]
    fn marks_survive_encoding() {
        let t = Tree::parse_xml("<a><b s=\"1\"/></a>").unwrap();
        let b = BinaryTree::from_unranked(&t);
        assert!(b.child1().unwrap().is_marked());
        assert_eq!(b.to_unranked().mark_count(), 1);
    }

    #[test]
    fn leaf() {
        let t = Tree::leaf("x");
        let b = BinaryTree::from_unranked(&t);
        assert!(b.child1().is_none());
        assert!(b.child2().is_none());
        assert_eq!(b.to_unranked(), t);
    }
}

//! **engine** — a long-lived, concurrent batch-analysis service over the
//! `analyzer` crate (the paper's decision problems as a workload).
//!
//! The paper frames XPath/type analysis as many satisfiability calls over a
//! shared lean; this crate turns the per-call [`Analyzer`] into a session
//! service:
//!
//! * a **workspace** ([`Workspace`]) of named DTDs and named XPath queries,
//!   registered once and referenced by many decision problems;
//! * a **JSON-lines protocol** ([`protocol`]) — requests like
//!   `{"op":"contains","lhs":"q1","rhs":"q2","type":"dtd1"}` in, structured
//!   verdicts with counter-example XML, solver statistics and wall-clock
//!   timings out;
//! * a **parallel batch executor** ([`Engine::run_batch`]) — independent
//!   problems fan out across worker threads, each worker holding its own
//!   formula arena and BDD manager, with a shared **memo cache** of
//!   verdicts keyed by a canonical structural hash of the problem
//!   ([`Problem`]);
//! * a **serve loop** ([`Engine::serve`]) reading JSONL from any reader and
//!   streaming verdicts to any writer, which is what the `xsat serve`
//!   daemon mode wraps around stdin/stdout.
//!
//! # Example
//!
//! ```
//! use engine::{Engine, Request};
//!
//! let mut engine = Engine::new();
//! let batch: Vec<Request> = [
//!     r#"{"op":"query","name":"q1","xpath":"a/b//d[prec-sibling::c]/e"}"#,
//!     r#"{"op":"query","name":"q2","xpath":"a/b//c/foll-sibling::d/e"}"#,
//!     r#"{"op":"contains","lhs":"q1","rhs":"q2"}"#,
//!     r#"{"op":"contains","lhs":"q1","rhs":"q2"}"#,
//! ]
//! .iter()
//! .map(|line| Request::parse(line))
//! .collect::<Result<_, _>>()?;
//! let outcome = engine.run_batch(&batch);
//! assert_eq!(outcome.responses[2].get("holds").and_then(|v| v.as_bool()), Some(true));
//! // The repeated problem is served from the memo cache.
//! assert_eq!(outcome.responses[3].get("cached").and_then(|v| v.as_bool()), Some(true));
//! assert_eq!(outcome.stats.cache_hits, 1);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod framing;
pub mod json;
pub mod problem;
pub mod protocol;
pub mod workspace;

mod executor;

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex};

use analyzer::{Analyzer, AnalyzerOptions};
use solver::SymbolicOptions;

pub use executor::{note_memo_lookup, run_job_contained, BatchOutcome, BatchStats};
pub use framing::{read_framed, Framed, DEFAULT_MAX_LINE_BYTES};
pub use json::Value;
pub use obs::{JsonlSink, MemorySink, Recorder, Sink, SlowEntry, SlowLog};
pub use problem::{
    run_job, CounterExample, Job, Problem, RunOutcome, UnknownVerdict, Verdict, VerdictStats,
};
pub use protocol::{
    counterexample_value, error_response, event_value, lint_response, metrics_response,
    registration_response, slowlog_response, trace_value, unknown_response, verdict_response,
    LimitsSpec, LintSpec, Op, ProblemSpec, Request, RequestKind, Status, PROTOCOL_VERSION,
};
pub use solver::{BackendChoice, BddCounters, Limits, Resource, SolveError, Telemetry};
pub use workspace::Workspace;

use executor::{lock, ObsCtx};

/// Construction-time knobs of an [`Engine`].
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker threads for batch execution; `0` picks the machine's
    /// available parallelism (capped at 16).
    pub threads: usize,
    /// Symbolic-solver options, cloned into every worker.
    pub options: SymbolicOptions,
    /// Default solver backend for requests that do not name one.
    pub backend: BackendChoice,
    /// Default resource limits for requests that do not carry a
    /// `"limits"` object; per-request limits override field-wise.
    pub limits: Limits,
    /// Every solve's trace events also stream to this sink when set —
    /// typically a [`JsonlSink`] behind `xsat --trace-file`. Per-request
    /// `"trace": true` works with or without it.
    pub trace_sink: Option<Arc<dyn Sink>>,
    /// Slow-solve threshold in milliseconds: any solve slower than this
    /// captures its full event trace into the engine's ring-buffered slow
    /// log (dumped by the `slowlog` op). `None` disables capture.
    pub slow_solve_ms: Option<u64>,
    /// Per-line byte cap of the serve loop; `0` picks
    /// [`framing::DEFAULT_MAX_LINE_BYTES`]. An oversized line is answered
    /// with one protocol error response and discarded — the stream keeps
    /// serving from the next line.
    pub max_line_bytes: usize,
}

/// Cumulative service counters, reported by the `stats` op.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Requests handled (sequential and batch).
    pub requests: u64,
    /// Decision problems posed.
    pub problems: u64,
    /// Problems answered from the memo cache.
    pub cache_hits: u64,
    /// Problems that went to a solver (the complement of `cache_hits`).
    pub cache_misses: u64,
    /// Problems answered `"status":"unknown"` (a budget ran out); never
    /// cached.
    pub unknown: u64,
    /// Requests rejected with an error.
    pub errors: u64,
    /// Batches executed.
    pub batches: u64,
}

/// The long-lived analysis service: workspace + worker analyzers + memo
/// cache.
///
/// One engine amortizes state across requests on three levels: the
/// workspace keeps parsed queries and grammars, each worker's [`Analyzer`]
/// keeps its formula arena and compiled type formulas across batches, and
/// the memo cache keeps final verdicts keyed by the canonical structure of
/// the problem.
#[derive(Debug)]
pub struct Engine {
    workspace: Workspace,
    /// Serves the sequential front end (`execute`): one more long-lived
    /// arena, independent of the batch workers.
    session: Analyzer,
    /// One analyzer per batch worker thread, kept alive across batches.
    workers: Vec<Analyzer>,
    /// Verdict memo cache, keyed by the canonical problem *plus* the
    /// backend that answered it: a symbolic verdict must never be served
    /// for an explicit-backend request, and dual-mode verdicts live under
    /// their own key.
    cache: Mutex<HashMap<Job, Verdict>>,
    counters: Counters,
    options: AnalyzerOptions,
    /// Engine-default resource limits; per-request `"limits"` objects
    /// override them field-wise.
    limits: Limits,
    /// Optional process-wide trace sink (`--trace-file`), cloned into
    /// every per-solve recorder.
    trace_sink: Option<Arc<dyn Sink>>,
    /// Slow-solve capture threshold; `None` disables the slow log.
    slow_solve_ms: Option<u64>,
    /// Ring buffer of captured slow solves, shared by the sequential
    /// front end and the batch workers.
    slow_log: SlowLog,
    /// Per-line byte cap of the serve loop.
    max_line_bytes: usize,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// An engine with default options and auto-detected parallelism.
    pub fn new() -> Engine {
        Engine::with_config(EngineConfig::default())
    }

    /// An engine with explicit options.
    pub fn with_config(config: EngineConfig) -> Engine {
        let threads = if config.threads == 0 {
            std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .min(16)
        } else {
            config.threads
        };
        let options = AnalyzerOptions {
            backend: config.backend,
            symbolic: config.options,
        };
        Engine {
            workspace: Workspace::new(),
            session: Analyzer::with_options(options.clone()),
            workers: (0..threads)
                .map(|_| Analyzer::with_options(options.clone()))
                .collect(),
            cache: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            options,
            limits: config.limits,
            trace_sink: config.trace_sink,
            slow_solve_ms: config.slow_solve_ms,
            slow_log: SlowLog::default(),
            max_line_bytes: if config.max_line_bytes == 0 {
                framing::DEFAULT_MAX_LINE_BYTES
            } else {
                config.max_line_bytes
            },
        }
    }

    /// The ring buffer of captured slow solves (empty unless
    /// [`EngineConfig::slow_solve_ms`] is set).
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow_log
    }

    /// The configured slow-solve threshold, in milliseconds.
    pub fn slow_solve_ms(&self) -> Option<u64> {
        self.slow_solve_ms
    }

    /// Number of batch worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The default backend for requests that do not name one.
    pub fn default_backend(&self) -> BackendChoice {
        self.options.backend
    }

    /// The default resource limits for requests that do not carry a
    /// `"limits"` object.
    pub fn default_limits(&self) -> &Limits {
        &self.limits
    }

    /// The workspace of named artifacts.
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// Cumulative service counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Number of memoized verdicts.
    pub fn cache_entries(&self) -> usize {
        lock(&self.cache).len()
    }

    /// Handles one request on the sequential front end (the `serve` path).
    /// Decision problems share the memo cache with batch execution.
    pub fn execute(&mut self, req: &Request) -> Value {
        self.counters.requests += 1;
        match &req.kind {
            RequestKind::RegisterDtd { name, source } => {
                match self.workspace.register_dtd(name, source) {
                    Ok(()) => registration_response(req.id.as_ref(), "dtd", name),
                    Err(e) => self.error(req.id.as_ref(), &e),
                }
            }
            RequestKind::RegisterQuery { name, xpath } => {
                match self.workspace.register_query(name, xpath) {
                    Ok(()) => registration_response(req.id.as_ref(), "query", name),
                    Err(e) => self.error(req.id.as_ref(), &e),
                }
            }
            RequestKind::Problem {
                spec,
                backend,
                limits,
                trace,
            } => match spec.resolve(&self.workspace) {
                Ok(problem) => {
                    self.counters.problems += 1;
                    let job = Job {
                        problem,
                        backend: backend.unwrap_or(self.options.backend),
                    };
                    let effective = limits
                        .as_ref()
                        .map_or_else(|| self.limits.clone(), |l| l.apply(&self.limits));
                    let obs_ctx = ObsCtx {
                        trace_sink: self.trace_sink.as_ref(),
                        slow_ms: self.slow_solve_ms,
                        slow_log: &self.slow_log,
                    };
                    let (rec, capture) = obs_ctx.recorder(*trace);
                    let hit = lock(&self.cache).get(&job).cloned();
                    note_memo_lookup(&rec, &job, hit.is_some());
                    let (verdict, cached) = match hit {
                        Some(v) => {
                            self.counters.cache_hits += 1;
                            (v, true)
                        }
                        None => {
                            self.counters.cache_misses += 1;
                            match run_job(&mut self.session, &job, &effective, &rec) {
                                RunOutcome::Verdict(v) => {
                                    lock(&self.cache).insert(job.clone(), v.clone());
                                    (v, false)
                                }
                                RunOutcome::Unknown(u) => {
                                    // An exhausted budget is never cached: a
                                    // retry with bigger limits must re-solve.
                                    self.counters.unknown += 1;
                                    let events = capture.map(|m| m.drain()).unwrap_or_default();
                                    obs_ctx.note_slow(&job, "unknown", u.wall_ms, &events);
                                    let tr = trace.then(|| protocol::trace_value(&events));
                                    return unknown_response(req.id.as_ref(), spec.op(), &u, tr);
                                }
                                RunOutcome::Error(e) => return self.error(req.id.as_ref(), &e),
                            }
                        }
                    };
                    let events = capture.map(|m| m.drain()).unwrap_or_default();
                    if !cached {
                        let status = if verdict.holds { "holds" } else { "fails" };
                        obs_ctx.note_slow(&job, status, verdict.wall_ms, &events);
                    }
                    let tr = trace.then(|| protocol::trace_value(&events));
                    let wall = if cached { 0.0 } else { verdict.wall_ms };
                    verdict_response(req.id.as_ref(), spec.op(), &verdict, cached, wall, tr)
                }
                Err(e) => self.error(req.id.as_ref(), &e),
            },
            RequestKind::Lint(spec) => self.run_lint(req.id.as_ref(), spec),
            RequestKind::Stats => self.stats_response(req.id.as_ref()),
            RequestKind::Metrics => {
                protocol::metrics_response(req.id.as_ref(), &obs::metrics().snapshot())
            }
            RequestKind::SlowLog => protocol::slowlog_response(
                req.id.as_ref(),
                self.slow_solve_ms,
                &self.slow_log.entries(),
            ),
            RequestKind::Reset => {
                self.workspace.clear();
                lock(&self.cache).clear();
                self.slow_log.clear();
                // Fresh arenas: a long-running service can shed the formula
                // and BDD state accumulated by previous workloads.
                self.session = Analyzer::with_options(self.options.clone());
                for w in &mut self.workers {
                    *w = Analyzer::with_options(self.options.clone());
                }
                registration_response(req.id.as_ref(), "reset", "engine")
            }
        }
    }

    /// Parses and handles one JSONL request line.
    pub fn execute_line(&mut self, line: &str) -> Value {
        match Request::parse(line) {
            Ok(req) => self.execute(&req),
            Err(e) => self.error(None, &e),
        }
    }

    /// Runs a batch: registrations apply in order, decision problems are
    /// deduplicated and fanned out across the worker threads, and responses
    /// come back in request order. See [`BatchOutcome`] for the result
    /// shape.
    pub fn run_batch(&mut self, requests: &[Request]) -> BatchOutcome {
        let obs_ctx = ObsCtx {
            trace_sink: self.trace_sink.as_ref(),
            slow_ms: self.slow_solve_ms,
            slow_log: &self.slow_log,
        };
        let outcome = executor::run_batch(
            &mut self.workspace,
            &mut self.workers,
            &self.options,
            &self.cache,
            self.options.backend,
            &self.limits,
            &obs_ctx,
            requests,
        );
        self.counters.batches += 1;
        self.counters.requests += outcome.stats.requests as u64;
        self.counters.problems += outcome.stats.problems as u64;
        self.counters.cache_hits += outcome.stats.cache_hits as u64;
        self.counters.cache_misses += outcome.stats.cache_misses as u64;
        self.counters.unknown += outcome.stats.unknown as u64;
        self.counters.errors += outcome.stats.errors as u64;
        outcome
    }

    /// Parses a JSONL document (one request per non-empty, non-`#` line)
    /// and runs it as a batch. Lines that fail to parse become error
    /// responses in place.
    pub fn run_batch_lines(&mut self, input: &str) -> BatchOutcome {
        let mut requests = Vec::new();
        let mut parse_errors: Vec<(usize, String)> = Vec::new();
        for (i, line) in input
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .enumerate()
        {
            match Request::parse(line) {
                Ok(r) => requests.push(r),
                Err(e) => {
                    // Hold the slot with a harmless placeholder so response
                    // positions keep corresponding to input lines, then
                    // splice the parse error in afterwards.
                    parse_errors.push((i, e));
                    requests.push(Request {
                        id: None,
                        kind: RequestKind::Stats,
                    });
                }
            }
        }
        let mut outcome = self.run_batch(&requests);
        // The placeholder already counted as an error in the executor, so
        // only the response text needs replacing.
        for (i, e) in parse_errors {
            outcome.responses[i] = error_response(None, &e);
        }
        outcome
    }

    /// The daemon loop: reads one JSONL request per line, writes one JSON
    /// response per line, flushing after each so the engine is scriptable
    /// as a co-process. Returns when the reader is exhausted.
    ///
    /// The loop is hardened against hostile or broken peers: a line that
    /// fails to parse (including invalid UTF-8, decoded lossily) is
    /// answered with one `"status":"error"` response, a line longer than
    /// [`EngineConfig::max_line_bytes`] is answered with one error
    /// response and discarded without ever being buffered whole, and in
    /// both cases the loop keeps serving subsequent requests. Only a real
    /// I/O failure of the underlying reader or writer ends the loop.
    pub fn serve<R: BufRead, W: Write>(
        &mut self,
        mut input: R,
        mut output: W,
    ) -> std::io::Result<()> {
        loop {
            let line = match framing::read_framed(&mut input, self.max_line_bytes)? {
                Framed::Eof => return Ok(()),
                Framed::Oversized { limit } => {
                    self.counters.errors += 1;
                    let response = error_response(
                        None,
                        &format!("request line exceeds the {limit}-byte cap and was discarded"),
                    );
                    writeln!(output, "{}", response.to_json())?;
                    output.flush()?;
                    continue;
                }
                Framed::Line(line) => line,
            };
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let response = self.execute_line(line);
            writeln!(output, "{}", response.to_json())?;
            output.flush()?;
        }
    }

    /// Handles a `lint` request: plan on the sequential analyzer, fan the
    /// probes out over the batch workers (sharing the verdict memo cache,
    /// so a lint run warms the cache for later decision traffic and vice
    /// versa), then judge the outcomes into diagnostics.
    fn run_lint(&mut self, id: Option<&Value>, spec: &protocol::LintSpec) -> Value {
        let started = std::time::Instant::now();
        let config = spec.config();
        let queries: Vec<(String, Arc<xpath::Expr>)> = self
            .workspace
            .queries_sorted()
            .into_iter()
            .map(|(n, e)| (n.to_owned(), e))
            .collect();
        let dtds: Vec<(String, Arc<treetypes::Dtd>)> = self
            .workspace
            .dtds_sorted()
            .into_iter()
            .map(|(n, d)| (n.to_owned(), d))
            .collect();
        let plan = match lint::plan(&mut self.session, &queries, &dtds, &config) {
            Ok(plan) => plan,
            Err(e) => return self.error(id, &e),
        };
        let backend = spec.backend.unwrap_or(self.options.backend);
        let effective = spec
            .limits
            .as_ref()
            .map_or_else(|| self.limits.clone(), |l| l.apply(&self.limits));
        let obs_ctx = ObsCtx {
            trace_sink: self.trace_sink.as_ref(),
            slow_ms: self.slow_solve_ms,
            slow_log: &self.slow_log,
        };
        let (outcomes, probe_stats) = executor::solve_probes(
            &mut self.workers,
            &self.options,
            &self.cache,
            backend,
            &effective,
            &obs_ctx,
            &plan.probes,
        );
        self.counters.problems += plan.probes.len() as u64;
        self.counters.cache_hits += probe_stats.hits as u64;
        self.counters.cache_misses += probe_stats.misses as u64;
        self.counters.unknown += probe_stats.unknown as u64;
        let diagnostics = lint::judge(&plan, &outcomes);
        protocol::lint_response(
            id,
            &diagnostics,
            plan.probes.len(),
            problem::duration_ms(started.elapsed()),
        )
    }

    fn error(&mut self, id: Option<&Value>, message: &str) -> Value {
        self.counters.errors += 1;
        error_response(id, message)
    }

    fn stats_response(&self, id: Option<&Value>) -> Value {
        let mut fields = Vec::new();
        if let Some(id) = id {
            fields.push(("id", id.clone()));
        }
        fields.extend([
            ("ok", Value::Bool(true)),
            ("op", Value::from("stats")),
            ("protocol", Value::from(protocol::PROTOCOL_VERSION as usize)),
            ("backend", Value::from(self.options.backend.as_str())),
            ("threads", Value::from(self.threads())),
            ("dtds", Value::from(self.workspace.dtd_count())),
            ("queries", Value::from(self.workspace.query_count())),
            ("cache_entries", Value::from(self.cache_entries())),
            ("requests", Value::from(self.counters.requests as usize)),
            ("problems", Value::from(self.counters.problems as usize)),
            ("cache_hits", Value::from(self.counters.cache_hits as usize)),
            (
                "cache_misses",
                Value::from(self.counters.cache_misses as usize),
            ),
            ("unknown", Value::from(self.counters.unknown as usize)),
            ("errors", Value::from(self.counters.errors as usize)),
            ("batches", Value::from(self.counters.batches as usize)),
        ]);
        json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(line: &str) -> Request {
        Request::parse(line).unwrap()
    }

    #[test]
    fn sequential_execute_caches() {
        let mut e = Engine::with_config(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let r = e.execute(&req(r#"{"op":"contains","lhs":"a/b","rhs":"a/*"}"#));
        assert_eq!(r.get("holds").and_then(Value::as_bool), Some(true));
        assert_eq!(r.get("cached").and_then(Value::as_bool), Some(false));
        let r2 = e.execute(&req(r#"{"op":"contains","lhs":"a/b","rhs":"a/*"}"#));
        assert_eq!(r2.get("cached").and_then(Value::as_bool), Some(true));
        assert_eq!(e.counters().cache_hits, 1);
        assert_eq!(e.cache_entries(), 1);
    }

    #[test]
    fn batch_then_sequential_share_the_cache() {
        let mut e = Engine::with_config(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let out = e.run_batch(&[req(r#"{"op":"overlap","lhs":"child::a","rhs":"child::*"}"#)]);
        assert_eq!(out.stats.cache_hits, 0);
        let r = e.execute(&req(
            r#"{"op":"overlap","lhs":"child::a","rhs":"child::*"}"#,
        ));
        assert_eq!(r.get("cached").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn reset_clears_everything() {
        let mut e = Engine::new();
        e.execute(&req(r#"{"op":"query","name":"q","xpath":"a"}"#));
        e.execute(&req(r#"{"op":"sat","query":"q"}"#));
        assert_eq!(e.cache_entries(), 1);
        e.execute(&req(r#"{"op":"reset"}"#));
        assert_eq!(e.cache_entries(), 0);
        assert_eq!(e.workspace().query_count(), 0);
        let r = e.execute(&req(r#"{"op":"query","name":"q","xpath":"b"}"#));
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn serve_round_trip() {
        let mut e = Engine::new();
        let input = concat!(
            r#"{"op":"query","name":"q1","xpath":"child::a"}"#,
            "\n\n# comment line\n",
            r#"{"id":"r1","op":"sat","query":"q1"}"#,
            "\n",
            r#"{"op":"nonsense"}"#,
            "\n",
        );
        let mut out = Vec::new();
        e.serve(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let v1 = json::parse(lines[0]).unwrap();
        assert_eq!(v1.get("registered").and_then(Value::as_str), Some("q1"));
        let v2 = json::parse(lines[1]).unwrap();
        assert_eq!(v2.get("id").and_then(Value::as_str), Some("r1"));
        assert_eq!(v2.get("holds").and_then(Value::as_bool), Some(true));
        let v3 = json::parse(lines[2]).unwrap();
        assert_eq!(v3.get("ok").and_then(Value::as_bool), Some(false));
    }
}

//! The parallel batch executor.
//!
//! A batch is an ordered list of requests. Registrations take effect in
//! request order during a sequential resolution pass (each decision problem
//! snapshots `Arc` handles to the artifacts it references, so later
//! rebindings cannot affect earlier problems). The resolved problems are
//! then deduplicated on their canonical structural key — the problem, the
//! backend it runs on, *and* its effective limits — and fanned out over
//! worker threads: each worker owns a long-lived [`Analyzer`] — its own
//! formula arena and BDD manager — while all workers share one verdict
//! memo cache behind a mutex. The memo cache is keyed by `(problem,
//! backend)` alone: a definite verdict is valid whatever budget produced
//! it. Duplicate occurrences and problems already solved in previous
//! batches (or by the sequential front end) are served from the cache and
//! reported with `"cached":true`. `unknown` verdicts (exhausted budgets)
//! and dual-mode cross-check failures become per-request responses and are
//! **never** cached — a retry with bigger limits must re-solve.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use analyzer::{Analyzer, AnalyzerOptions, BackendChoice, Limits};
use obs::{FieldValue, MemorySink, Recorder, Sink, SlowEntry, SlowLog};

use crate::json::{obj, Value};
use crate::problem::{duration_ms, outcome_status, run_job, Job, RunOutcome, Verdict};
use crate::protocol::{
    error_response, registration_response, trace_value, unknown_response, verdict_response, Op,
    Request, RequestKind,
};
use crate::workspace::Workspace;

/// Observability context shared by the sequential front end and the batch
/// workers: the optional process-wide JSONL trace sink, the slow-solve
/// threshold, and the ring buffer capturing slow solves.
pub(crate) struct ObsCtx<'a> {
    /// Every solve's events also stream here when set (`--trace-file`).
    pub trace_sink: Option<&'a Arc<dyn Sink>>,
    /// Solves slower than this capture their full trace into `slow_log`.
    pub slow_ms: Option<u64>,
    /// The slow-solve ring buffer.
    pub slow_log: &'a SlowLog,
}

impl ObsCtx<'_> {
    /// Builds the per-solve recorder: the process-wide trace sink (when
    /// configured) plus a memory sink when the caller needs the events
    /// back — for a `"trace": true` response or slow-solve capture. With
    /// neither, the recorder is a noop and the solve runs untraced.
    pub(crate) fn recorder(&self, trace: bool) -> (Recorder, Option<Arc<MemorySink>>) {
        let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
        if let Some(f) = self.trace_sink {
            sinks.push(f.clone());
        }
        let capture = (trace || self.slow_ms.is_some()).then(|| Arc::new(MemorySink::new()));
        if let Some(mem) = &capture {
            sinks.push(mem.clone() as Arc<dyn Sink>);
        }
        (Recorder::with_sinks(sinks), capture)
    }

    /// Captures the solve into the slow log when it exceeded the
    /// threshold. `events` is the solve's drained trace.
    pub(crate) fn note_slow(
        &self,
        job: &Job,
        status: &'static str,
        wall_ms: f64,
        events: &[obs::Event],
    ) {
        let Some(threshold) = self.slow_ms else {
            return;
        };
        if wall_ms <= threshold as f64 {
            return;
        }
        self.slow_log.push(SlowEntry {
            op: job.problem.op_name(),
            backend: job.backend.as_str(),
            status,
            wall_ms,
            threshold_ms: threshold,
            cached: false,
            events: events.to_vec(),
        });
    }
}

/// Runs one job with panic containment: a panicking solve produces a
/// [`RunOutcome::Error`] and rebuilds the worker's analyzer (its arenas
/// may be mid-mutation), so one poisoned problem degrades one response
/// instead of killing the worker — and with it every other response of
/// the batch. Each contained panic increments `xsat_worker_panics_total`.
pub fn run_job_contained(
    az: &mut Analyzer,
    options: &AnalyzerOptions,
    job: &Job,
    limits: &Limits,
    rec: &Recorder,
) -> RunOutcome {
    match std::panic::catch_unwind(AssertUnwindSafe(|| run_job(az, job, limits, rec))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            *az = Analyzer::with_options(options.clone());
            obs::metrics()
                .counter("xsat_worker_panics_total", &[])
                .inc();
            RunOutcome::Error(format!(
                "solver panicked ({}); the worker analyzer was rebuilt and \
                 this response degraded to an error",
                panic_message(&payload)
            ))
        }
    }
}

/// Best-effort text of a panic payload (the `&str`/`String` carried by
/// `panic!`; anything else renders as an opaque marker).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// One memo-cache lookup: the `memo` trace event plus the process-wide
/// hit/miss counters.
pub fn note_memo_lookup(rec: &Recorder, job: &Job, hit: bool) {
    rec.event(
        "memo",
        &[
            ("hit", FieldValue::Bool(hit)),
            ("op", FieldValue::Str(job.problem.op_name())),
            ("backend", FieldValue::Str(job.backend.as_str())),
        ],
    );
    let name = if hit {
        "xsat_memo_hits_total"
    } else {
        "xsat_memo_misses_total"
    };
    obs::metrics().counter(name, &[]).inc();
}

/// Aggregate measurements of one batch run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Requests in the batch (registrations + problems + errors).
    pub requests: usize,
    /// Decision problems among them.
    pub problems: usize,
    /// Distinct problems after canonical deduplication.
    pub unique_problems: usize,
    /// Problems answered from the memo cache (duplicates within the batch
    /// plus hits from earlier work).
    pub cache_hits: usize,
    /// Problems that actually ran a solve (including runs that came back
    /// `unknown` or failed a cross-check): the complement of `cache_hits`
    /// over the decision problems that reached the executor.
    pub cache_misses: usize,
    /// Problems that came back `"status":"unknown"`: a resource budget ran
    /// out before the solve could decide. Never cached.
    pub unknown: usize,
    /// Requests that failed: parse or resolution errors, plus solver-level
    /// failures (dual-mode cross-check disagreements).
    pub errors: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall clock for the batch, in milliseconds.
    pub wall_ms: f64,
}

impl BatchStats {
    /// Solved problems per second of batch wall-clock.
    pub fn problems_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.problems as f64 / (self.wall_ms / 1000.0)
    }

    /// The stats as a JSON object (the batch summary line).
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("requests", Value::from(self.requests)),
            ("problems", Value::from(self.problems)),
            ("unique_problems", Value::from(self.unique_problems)),
            ("cache_hits", Value::from(self.cache_hits)),
            ("cache_misses", Value::from(self.cache_misses)),
            (
                "metrics",
                obj(vec![(
                    "memo",
                    obj(vec![
                        ("hits", Value::from(self.cache_hits)),
                        ("misses", Value::from(self.cache_misses)),
                    ]),
                )]),
            ),
            ("unknown", Value::from(self.unknown)),
            ("errors", Value::from(self.errors)),
            ("threads", Value::from(self.threads)),
            (
                "wall_ms",
                Value::Num((self.wall_ms * 1000.0).round() / 1000.0),
            ),
            (
                "problems_per_sec",
                Value::Num((self.problems_per_sec() * 10.0).round() / 10.0),
            ),
        ])
    }
}

/// The responses of a batch, in request order, plus aggregate stats.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One response per request, in the order the requests were given.
    pub responses: Vec<Value>,
    /// Aggregate measurements.
    pub stats: BatchStats,
}

/// One resolved decision problem awaiting execution.
struct PendingProblem {
    /// Index into the batch's response vector.
    slot: usize,
    /// Echoed client id.
    id: Option<Value>,
    /// The operation, echoed canonically on the response.
    op: Op,
    /// Index into the deduplicated work list.
    work: usize,
    /// Whether an earlier request in this batch maps to the same work
    /// item.
    duplicate: bool,
}

/// One deduplicated unit of parallel work: the memo key plus the limits
/// that govern the solve if the cache misses. The in-batch dedup key
/// includes the limits — two requests for the same problem under
/// different budgets must not share one (possibly `unknown`) run — while
/// the shared memo cache is keyed by the [`Job`] alone.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct WorkItem {
    job: Job,
    limits: Limits,
    /// Whether some request wants this item's event trace back. Part of
    /// the dedup key: a traced request must not be served an untraced
    /// run (it would have no events to return).
    trace: bool,
}

// The engine's full execution context is genuinely this wide; bundling
// the arguments into a one-use struct would only rename the problem.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_batch(
    workspace: &mut Workspace,
    workers: &mut [Analyzer],
    options: &AnalyzerOptions,
    cache: &Mutex<HashMap<Job, Verdict>>,
    default_backend: BackendChoice,
    default_limits: &Limits,
    obs_ctx: &ObsCtx<'_>,
    requests: &[Request],
) -> BatchOutcome {
    let started = Instant::now();
    let mut stats = BatchStats {
        requests: requests.len(),
        threads: workers.len(),
        ..BatchStats::default()
    };

    // Pass 1 (sequential): apply registrations in order; resolve decision
    // problems against the workspace as it stood when they were posed.
    let mut responses: Vec<Option<Value>> = (0..requests.len()).map(|_| None).collect();
    let mut pending: Vec<PendingProblem> = Vec::new();
    let mut work: Vec<WorkItem> = Vec::new();
    // `WorkItem` embeds `Limits`, whose `CancelToken` has interior
    // mutability — but the token's `Eq`/`Hash` deliberately ignore it
    // (all tokens compare equal), so the key is stable in this map.
    #[allow(clippy::mutable_key_type)]
    let mut work_of: HashMap<WorkItem, usize> = HashMap::new();
    for (slot, req) in requests.iter().enumerate() {
        match &req.kind {
            RequestKind::RegisterDtd { name, source } => {
                responses[slot] = Some(match workspace.register_dtd(name, source) {
                    Ok(()) => registration_response(req.id.as_ref(), "dtd", name),
                    Err(e) => {
                        stats.errors += 1;
                        error_response(req.id.as_ref(), &e)
                    }
                });
            }
            RequestKind::RegisterQuery { name, xpath } => {
                responses[slot] = Some(match workspace.register_query(name, xpath) {
                    Ok(()) => registration_response(req.id.as_ref(), "query", name),
                    Err(e) => {
                        stats.errors += 1;
                        error_response(req.id.as_ref(), &e)
                    }
                });
            }
            RequestKind::Problem {
                spec,
                backend,
                limits,
                trace,
            } => match spec.resolve(workspace) {
                Ok(problem) => {
                    stats.problems += 1;
                    let key = WorkItem {
                        job: Job {
                            problem,
                            backend: backend.unwrap_or(default_backend),
                        },
                        limits: limits
                            .as_ref()
                            .map_or_else(|| default_limits.clone(), |l| l.apply(default_limits)),
                        trace: *trace,
                    };
                    let (item, duplicate) = match work_of.get(&key) {
                        Some(&j) => (j, true),
                        None => {
                            let j = work.len();
                            work_of.insert(key.clone(), j);
                            work.push(key);
                            (j, false)
                        }
                    };
                    pending.push(PendingProblem {
                        slot,
                        id: req.id.clone(),
                        op: spec.op(),
                        work: item,
                        duplicate,
                    });
                }
                Err(e) => {
                    stats.errors += 1;
                    responses[slot] = Some(error_response(req.id.as_ref(), &e));
                }
            },
            RequestKind::Lint(_) => {
                responses[slot] = Some(error_response(
                    req.id.as_ref(),
                    "`lint` runs on the sequential front end; \
                     it is not valid inside a batch",
                ));
                stats.errors += 1;
            }
            RequestKind::Stats
            | RequestKind::Metrics
            | RequestKind::SlowLog
            | RequestKind::Reset => {
                responses[slot] = Some(error_response(
                    req.id.as_ref(),
                    "`stats`/`metrics`/`slowlog`/`reset` are service ops; \
                     they are not valid inside a batch",
                ));
                stats.errors += 1;
            }
        }
    }
    stats.unique_problems = work.len();

    // Pass 2 (parallel): fan the deduplicated work out over the workers.
    // `(outcome, was_cache_hit, trace)` per item; only definite verdicts
    // are inserted into the memo cache — unknowns and failed cross-checks
    // are not. The queue-depth gauge tracks the unclaimed work remaining.
    let results: Vec<OnceLock<(RunOutcome, bool, Option<Value>)>> =
        (0..work.len()).map(|_| OnceLock::new()).collect();
    let queue_depth = obs::metrics().gauge("xsat_executor_queue_depth", &[]);
    queue_depth.set(work.len() as u64);
    let cursor = AtomicUsize::new(0);
    let work_ref = &work;
    let results_ref = &results;
    let cursor_ref = &cursor;
    let queue_ref = &queue_depth;
    std::thread::scope(|scope| {
        for az in workers.iter_mut() {
            scope.spawn(move || loop {
                let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                let Some(item) = work_ref.get(i) else {
                    break;
                };
                queue_ref.sub(1);
                let (rec, capture) = obs_ctx.recorder(item.trace);
                let hit = lock(cache).get(&item.job).cloned();
                note_memo_lookup(&rec, &item.job, hit.is_some());
                let (outcome, cached) = match hit {
                    Some(v) => (RunOutcome::Verdict(v), true),
                    None => {
                        let outcome = run_job_contained(az, options, &item.job, &item.limits, &rec);
                        if let RunOutcome::Verdict(v) = &outcome {
                            lock(cache).insert(item.job.clone(), v.clone());
                        }
                        (outcome, false)
                    }
                };
                let trace = capture.map(|mem| mem.drain()).map(|events| {
                    if !cached {
                        let wall_ms = match &outcome {
                            RunOutcome::Verdict(v) => v.wall_ms,
                            RunOutcome::Unknown(u) => u.wall_ms,
                            RunOutcome::Error(_) => 0.0,
                        };
                        obs_ctx.note_slow(&item.job, outcome_status(&outcome), wall_ms, &events);
                    }
                    trace_value(&events)
                });
                // First write wins; a duplicate write (which would take a
                // scheduling bug) is dropped rather than panicking the
                // worker.
                let _ =
                    results_ref[i].set((outcome, cached, item.trace.then_some(trace).flatten()));
            });
        }
    });

    // Pass 3: fill problem responses in request order. A work item with no
    // result (a lost worker — which catch_unwind should make impossible)
    // degrades that one response to an error instead of aborting the
    // whole batch.
    for p in pending {
        let Some((outcome, item_was_hit, trace)) = results[p.work].get() else {
            stats.errors += 1;
            stats.cache_misses += 1;
            responses[p.slot] = Some(error_response(
                p.id.as_ref(),
                "internal: the work item for this request was never executed; \
                 the response degraded to an error",
            ));
            continue;
        };
        match outcome {
            RunOutcome::Error(e) => {
                stats.errors += 1;
                stats.cache_misses += 1;
                responses[p.slot] = Some(error_response(p.id.as_ref(), e));
            }
            RunOutcome::Unknown(u) => {
                stats.unknown += 1;
                stats.cache_misses += 1;
                responses[p.slot] = Some(unknown_response(p.id.as_ref(), p.op, u, trace.clone()));
            }
            RunOutcome::Verdict(verdict) => {
                let cached = *item_was_hit || p.duplicate;
                if cached {
                    stats.cache_hits += 1;
                } else {
                    stats.cache_misses += 1;
                }
                // A cache-served answer costs ~nothing, whether the hit
                // came from a duplicate in this batch or from earlier
                // work; the stored wall_ms describes the original run.
                let wall_ms = if cached { 0.0 } else { verdict.wall_ms };
                responses[p.slot] = Some(verdict_response(
                    p.id.as_ref(),
                    p.op,
                    verdict,
                    cached,
                    wall_ms,
                    trace.clone(),
                ));
            }
        }
    }

    stats.wall_ms = duration_ms(started.elapsed());
    // Every slot should be filled by now; an unanswered one (a bookkeeping
    // bug) becomes an error response rather than a process abort.
    let responses = responses
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|| {
                stats.errors += 1;
                error_response(
                    None,
                    "internal: this request was never answered; \
                     the response degraded to an error",
                )
            })
        })
        .collect();
    BatchOutcome { responses, stats }
}

/// Aggregate counters for one lint probe fan-out, folded into the engine's
/// session counters by `Engine::run_lint`.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ProbeStats {
    /// Probes answered from the memo cache (in-plan duplicates included).
    pub hits: usize,
    /// Probes that ran a fresh solve.
    pub misses: usize,
    /// Probes whose solve exhausted a budget.
    pub unknown: usize,
}

/// Solves a lint plan's probes through the batch machinery: probes are
/// deduplicated on their canonical [`Job`] key, fanned out over the worker
/// analyzers, and served from / inserted into the shared memo cache exactly
/// like batch decision problems — a lint run warms the cache for later
/// `check`/batch traffic and vice versa. Returns one [`lint::ProbeOutcome`]
/// per probe, in probe order.
pub(crate) fn solve_probes(
    workers: &mut [Analyzer],
    options: &AnalyzerOptions,
    cache: &Mutex<HashMap<Job, Verdict>>,
    backend: BackendChoice,
    limits: &Limits,
    obs_ctx: &ObsCtx<'_>,
    probes: &[lint::Probe],
) -> (Vec<lint::ProbeOutcome>, ProbeStats) {
    // Dedup on the memo key: distinct rules frequently pose the same
    // problem (a step prefix shared by dead-step and contradiction
    // probes), and each unique job must run exactly once.
    let mut jobs: Vec<Job> = Vec::new();
    let mut job_of: HashMap<Job, usize> = HashMap::new();
    let mut slots: Vec<(usize, bool)> = Vec::with_capacity(probes.len());
    for probe in probes {
        let job = Job {
            problem: probe.problem.clone(),
            backend,
        };
        match job_of.get(&job) {
            Some(&j) => slots.push((j, true)),
            None => {
                let j = jobs.len();
                job_of.insert(job.clone(), j);
                jobs.push(job);
                slots.push((j, false));
            }
        }
    }

    let results: Vec<OnceLock<(RunOutcome, bool)>> =
        (0..jobs.len()).map(|_| OnceLock::new()).collect();
    let queue_depth = obs::metrics().gauge("xsat_executor_queue_depth", &[]);
    queue_depth.set(jobs.len() as u64);
    let cursor = AtomicUsize::new(0);
    let jobs_ref = &jobs;
    let results_ref = &results;
    let cursor_ref = &cursor;
    let queue_ref = &queue_depth;
    std::thread::scope(|scope| {
        for az in workers.iter_mut() {
            scope.spawn(move || loop {
                let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs_ref.get(i) else {
                    break;
                };
                queue_ref.sub(1);
                let (rec, capture) = obs_ctx.recorder(false);
                let hit = lock(cache).get(job).cloned();
                note_memo_lookup(&rec, job, hit.is_some());
                let (outcome, cached) = match hit {
                    Some(v) => (RunOutcome::Verdict(v), true),
                    None => {
                        let outcome = run_job_contained(az, options, job, limits, &rec);
                        if let RunOutcome::Verdict(v) = &outcome {
                            lock(cache).insert(job.clone(), v.clone());
                        }
                        (outcome, false)
                    }
                };
                if !cached {
                    if let Some(events) = capture.map(|mem| mem.drain()) {
                        let wall_ms = match &outcome {
                            RunOutcome::Verdict(v) => v.wall_ms,
                            RunOutcome::Unknown(u) => u.wall_ms,
                            RunOutcome::Error(_) => 0.0,
                        };
                        obs_ctx.note_slow(job, outcome_status(&outcome), wall_ms, &events);
                    }
                }
                let _ = results_ref[i].set((outcome, cached));
            });
        }
    });

    let mut stats = ProbeStats::default();
    let outcomes = slots
        .iter()
        .map(|&(j, duplicate)| {
            let Some((outcome, job_was_hit)) = results[j].get() else {
                stats.misses += 1;
                return lint::ProbeOutcome::Error {
                    reason: "internal: this lint probe was never executed".to_owned(),
                };
            };
            match outcome {
                RunOutcome::Verdict(v) => {
                    if *job_was_hit || duplicate {
                        stats.hits += 1;
                    } else {
                        stats.misses += 1;
                    }
                    let witness = v.counter_example.clone();
                    if v.holds {
                        lint::ProbeOutcome::Holds { witness }
                    } else {
                        lint::ProbeOutcome::Fails { witness }
                    }
                }
                RunOutcome::Unknown(u) => {
                    stats.misses += 1;
                    stats.unknown += 1;
                    lint::ProbeOutcome::Unknown {
                        reason: u.reason.clone(),
                    }
                }
                RunOutcome::Error(e) => {
                    stats.misses += 1;
                    lint::ProbeOutcome::Error { reason: e.clone() }
                }
            }
        })
        .collect();
    (outcomes, stats)
}

/// Locks ignoring poisoning: a panicked worker must not wedge the service,
/// and cached verdicts are only ever inserted whole.
pub(crate) fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

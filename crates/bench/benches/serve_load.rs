//! Serving-tier baseline: mixed-tenant load over real loopback sockets.
//!
//! Boots the TCP serving tier (the `serve` crate — bounded admission,
//! per-tenant workspaces) and drives it with concurrent JSONL clients
//! spread across three tenants, each round-tripping a stream of distinct
//! containment problems. Reports end-to-end problems/sec and latency
//! percentiles — the full protocol cost: socket, framing, admission,
//! queue, worker solve, ordered write-back. The one-sample summary lands
//! in `BENCH_serve.json` at the workspace root; CI runs this bench with
//! `CRITERION_SAMPLES=1` so serving-tier refactors that regress the
//! request path fail loudly.

use criterion::{criterion_group, criterion_main, Criterion};
use engine::{json, Value};
use serve::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const TENANTS: &[&str] = &["alpha", "beta", "gamma"];
/// Concurrent client connections (spread round-robin over the tenants).
const CLIENTS: usize = 6;
/// Problems each client round-trips per load run.
const PROBLEMS_PER_CLIENT: usize = 50;

fn boot() -> Server {
    Server::bind(
        ServerConfig {
            threads: 4,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind loopback")
}

/// One client's slice of the load: round-trips `PROBLEMS_PER_CLIENT`
/// distinct containments for `tenant`, returning per-request latencies in
/// milliseconds. Every verdict is asserted, so a serving tier that starts
/// shedding or erroring under this light load fails the bench.
fn client_run(addr: std::net::SocketAddr, tenant: &str, client: usize) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    // Without this the measurement is Nagle + delayed-ACK (~40 ms per
    // round-trip on loopback), not the serving tier.
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    let mut latencies = Vec::with_capacity(PROBLEMS_PER_CLIENT);
    for i in 0..PROBLEMS_PER_CLIENT {
        // Distinct per (tenant, client, i): the load is real solves plus
        // the memo hits tenants earn by structural sharing, like
        // production traffic — not a single cached problem replayed.
        let line = format!(
            "{{\"id\":{i},\"op\":\"contains\",\"tenant\":\"{tenant}\",\
             \"lhs\":\"child::e{client}_{i}[child::x]\",\"rhs\":\"child::e{client}_{i}\"}}"
        );
        let started = Instant::now();
        writeln!(stream, "{line}").expect("send");
        let mut response = String::new();
        reader.read_line(&mut response).expect("recv");
        latencies.push(started.elapsed().as_secs_f64() * 1000.0);
        let v = json::parse(response.trim()).expect("json response");
        assert_eq!(
            v.get("status").and_then(Value::as_str),
            Some("holds"),
            "{response}"
        );
    }
    latencies
}

/// One full mixed-tenant load run; returns (problems/sec, latencies ms).
fn load_once(server: &Server) -> (f64, Vec<f64>) {
    let addr = server.local_addr();
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let tenant = TENANTS[c % TENANTS.len()];
            std::thread::spawn(move || client_run(addr, tenant, c))
        })
        .collect();
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let wall = started.elapsed().as_secs_f64();
    (latencies.len() as f64 / wall, latencies)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn bench_serve_load(c: &mut Criterion) {
    let samples: usize = std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let server = boot();
    // Instrumented runs for the problems/sec report and BENCH_serve.json;
    // best-of-N throughput, latencies pooled across every run.
    let mut best_pps = 0.0f64;
    let mut all_latencies = Vec::new();
    for _ in 0..samples {
        let (pps, lat) = load_once(&server);
        best_pps = best_pps.max(pps);
        all_latencies.extend(lat);
    }
    all_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let round3 = |v: f64| (v * 1000.0).round() / 1000.0;
    let p50 = percentile(&all_latencies, 0.50);
    let p99 = percentile(&all_latencies, 0.99);
    let max = *all_latencies.last().expect("nonempty");
    println!(
        "serve-load: {} tenants x {CLIENTS} clients x {PROBLEMS_PER_CLIENT} problems — \
         {best_pps:.0} problems/sec end to end",
        TENANTS.len(),
    );
    println!("serve-load: latency p50 {p50:.3} ms, p99 {p99:.3} ms, max {max:.3} ms");

    let json = format!(
        concat!(
            r#"{{"bench":"serve_load","samples":{},"tenants":{},"clients":{},"#,
            r#""problems_per_run":{},"problems_per_sec":{},"#,
            r#""latency_ms":{{"p50":{},"p99":{},"max":{}}}}}"#,
        ),
        samples,
        TENANTS.len(),
        CLIENTS,
        CLIENTS * PROBLEMS_PER_CLIENT,
        round3(best_pps),
        round3(p50),
        round3(p99),
        round3(max),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, json + "\n").expect("write BENCH_serve.json");
    println!("serve-load: wrote {path}");

    let mut g = c.benchmark_group("serve-load");
    g.sample_size(10);
    g.bench_function("mixed-tenant/end-to-end", |b| {
        b.iter(|| load_once(&server).0);
    });
    g.finish();

    let report = server.shutdown();
    assert!(report.drained, "load bench must drain cleanly");
}

criterion_group!(benches, bench_serve_load);
criterion_main!(benches);

//! Golden JSONL round-trips: a request file goes in, the verdict stream
//! must match the expected lines, for every protocol op and for the
//! `backend` request field (every verdict echoes the backend that answered
//! it, and the memo cache is keyed per backend).
//!
//! Volatile measurement fields (`wall_ms`, `stats`) are stripped before
//! comparison; everything else — including counter-example XML, `cached`
//! flags, `backend` echoes and error texts — must match byte-for-byte. The
//! same exchange is also replayed through the sequential `serve` loop,
//! which must produce the same normalized verdicts as the parallel batch
//! executor.

use engine::{json, BackendChoice, Engine, EngineConfig, Request, Telemetry, Value};

/// The golden exchange: one `(request, expected normalized response)` pair
/// per line, exercising every op of the protocol.
const GOLDEN: &[(&str, &str)] = &[
    (
        r#"{"op":"dtd","name":"d1","source":"<!ELEMENT r (x, y)> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY>"}"#,
        r#"{"ok":true,"registered":"d1","kind":"dtd"}"#,
    ),
    (
        r#"{"op":"query","name":"q1","xpath":"child::*"}"#,
        r#"{"ok":true,"registered":"q1","kind":"query"}"#,
    ),
    (
        r#"{"op":"query","name":"q2","xpath":"child::x | child::y"}"#,
        r#"{"ok":true,"registered":"q2","kind":"query"}"#,
    ),
    // Typed containment holds; untyped does not (and carries a witness).
    (
        r#"{"id":1,"op":"contains","lhs":"q1","rhs":"q2","type":"d1"}"#,
        r#"{"id":1,"ok":true,"op":"contains","backend":"symbolic","status":"holds","holds":true,"counter_example":null,"cached":false}"#,
    ),
    (
        r#"{"id":2,"op":"contains","lhs":"q1","rhs":"q2"}"#,
        r#"{"id":2,"ok":true,"op":"contains","backend":"symbolic","status":"fails","holds":false,"counter_example":"<_other s=\"1\"><_other/></_other>","counterexample":{"xml":"<_other s=\"1\"><_other/></_other>","pretty":"<_other s=\"1\">\n  <_other/>\n</_other>","size":2,"verified":true},"cached":false}"#,
    ),
    // The Fig 18 counter-example-carrying containment failure.
    (
        r#"{"id":3,"op":"contains","lhs":"child::c/preceding-sibling::a[child::b]","rhs":"child::c[child::b]"}"#,
        r#"{"id":3,"ok":true,"op":"contains","backend":"symbolic","status":"fails","holds":false,"counter_example":"<_other s=\"1\"><a><b/></a><c/></_other>","counterexample":{"xml":"<_other s=\"1\"><a><b/></a><c/></_other>","pretty":"<_other s=\"1\">\n  <a>\n    <b/>\n  </a>\n  <c/>\n</_other>","size":4,"verified":true},"cached":false}"#,
    ),
    // Cache-hit repeat of request id 1 (same problem, same names).
    (
        r#"{"id":4,"op":"contains","lhs":"q1","rhs":"q2","type":"d1"}"#,
        r#"{"id":4,"ok":true,"op":"contains","backend":"symbolic","status":"holds","holds":true,"counter_example":null,"cached":true}"#,
    ),
    // Cache also hits when the same problem is posed inline, unregistered.
    (
        r#"{"id":5,"op":"contains","lhs":"child::*","rhs":"child::x | child::y","type":"<!ELEMENT r (x, y)> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY>"}"#,
        r#"{"id":5,"ok":true,"op":"contains","backend":"symbolic","status":"holds","holds":true,"counter_example":null,"cached":true}"#,
    ),
    (
        r#"{"id":6,"op":"overlap","lhs":"child::*[child::b]","rhs":"child::a"}"#,
        r#"{"id":6,"ok":true,"op":"overlap","backend":"symbolic","status":"holds","holds":true,"counter_example":"<_other s=\"1\"><a><b/></a></_other>","cached":false}"#,
    ),
    (
        r#"{"id":7,"op":"covers","query":"child::*","by":["child::a","child::*[not(self::a)]"]}"#,
        r#"{"id":7,"ok":true,"op":"covers","backend":"symbolic","status":"holds","holds":true,"counter_example":null,"cached":false}"#,
    ),
    (
        r#"{"id":8,"op":"covers","query":"child::*","by":["child::a"]}"#,
        r#"{"id":8,"ok":true,"op":"covers","backend":"symbolic","status":"fails","holds":false,"counter_example":"<_other s=\"1\"><_other/></_other>","counterexample":{"xml":"<_other s=\"1\"><_other/></_other>","pretty":"<_other s=\"1\">\n  <_other/>\n</_other>","size":2,"verified":true},"cached":false}"#,
    ),
    (
        r#"{"id":9,"op":"equiv","lhs":"a/b[c]","rhs":"a/b[c]"}"#,
        r#"{"id":9,"ok":true,"op":"equiv","backend":"symbolic","status":"holds","holds":true,"counter_example":null,"cached":false}"#,
    ),
    (
        r#"{"id":10,"op":"empty","query":"child::a ∩ child::b"}"#,
        r#"{"id":10,"ok":true,"op":"empty","backend":"symbolic","status":"holds","holds":true,"counter_example":null,"cached":false}"#,
    ),
    (
        r#"{"id":11,"op":"sat","query":"q1","type":"d1"}"#,
        r#"{"id":11,"ok":true,"op":"sat","backend":"symbolic","status":"holds","holds":true,"counter_example":"<r s=\"1\"><x/><y/></r>","cached":false}"#,
    ),
    (
        r#"{"id":12,"op":"typecheck","query":"child::x","input":"<!ELEMENT r (x)> <!ELEMENT x (y)> <!ELEMENT y EMPTY>","output":"<!ELEMENT x (y)> <!ELEMENT y EMPTY>"}"#,
        r#"{"id":12,"ok":true,"op":"typecheck","backend":"symbolic","status":"holds","holds":true,"counter_example":null,"cached":false}"#,
    ),
    (
        r#"{"id":13,"op":"typecheck","query":"child::x","input":"<!ELEMENT r (x)> <!ELEMENT x (y)> <!ELEMENT y EMPTY>","output":"<!ELEMENT x EMPTY>"}"#,
        r#"{"id":13,"ok":true,"op":"typecheck","backend":"symbolic","status":"fails","holds":false,"counter_example":"<r s=\"1\"><x><y/></x></r>","counterexample":{"xml":"<r s=\"1\"><x><y/></x></r>","pretty":"<r s=\"1\">\n  <x>\n    <y/>\n  </x>\n</r>","size":3,"verified":true},"cached":false}"#,
    ),
    // Errors: unresolvable reference and unknown op.
    (
        r#"{"id":14,"op":"contains","lhs":"q1","rhs":"q2","type":"no-such-dtd"}"#,
        r#"{"id":14,"ok":false,"status":"error","error":"`no-such-dtd` is not a registered type"}"#,
    ),
    (
        r#"{"op":"frobnicate"}"#,
        r#"{"ok":false,"status":"error","error":"unknown op `frobnicate`"}"#,
    ),
    // Backend selection: the explicit reference backend answers and is
    // cached under its own key…
    (
        r#"{"id":15,"op":"sat","query":"child::a","backend":"explicit"}"#,
        r#"{"id":15,"ok":true,"op":"sat","backend":"explicit","status":"holds","holds":true,"counter_example":"<a s=\"1\"><a/></a>","cached":false}"#,
    ),
    // …so the same problem on the default symbolic backend re-solves
    // (different key, different minimal witness) instead of hitting the
    // explicit verdict…
    (
        r#"{"id":16,"op":"sat","query":"child::a"}"#,
        r#"{"id":16,"ok":true,"op":"sat","backend":"symbolic","status":"holds","holds":true,"counter_example":"<_other s=\"1\"><a/></_other>","cached":false}"#,
    ),
    // …while a repeat on the explicit backend is a cache hit.
    (
        r#"{"id":17,"op":"sat","query":"child::a","backend":"explicit"}"#,
        r#"{"id":17,"ok":true,"op":"sat","backend":"explicit","status":"holds","holds":true,"counter_example":"<a s=\"1\"><a/></a>","cached":true}"#,
    ),
    // The dual cross-check and witnessed backends, echoed per verdict.
    (
        r#"{"id":18,"op":"overlap","lhs":"child::a","rhs":"child::*","backend":"dual"}"#,
        r#"{"id":18,"ok":true,"op":"overlap","backend":"dual","status":"holds","holds":true,"counter_example":"<_other s=\"1\"><a/></_other>","cached":false}"#,
    ),
    (
        r#"{"id":19,"op":"empty","query":"child::a ∩ child::b","backend":"witnessed"}"#,
        r#"{"id":19,"ok":true,"op":"empty","backend":"witnessed","status":"holds","holds":true,"counter_example":null,"cached":false}"#,
    ),
    // Unknown backend: rejected at parse time.
    (
        r#"{"id":20,"op":"sat","query":"child::a","backend":"quantum"}"#,
        r#"{"ok":false,"status":"error","error":"unknown backend `quantum` (expected symbolic, explicit, witnessed, dual or portfolio)"}"#,
    ),
    // Dual cross-check of a failing containment: both backends agree and
    // the symbolic witness is reported.
    (
        r#"{"id":21,"op":"contains","lhs":"child::a","rhs":"child::a[child::b]","backend":"dual"}"#,
        r#"{"id":21,"ok":true,"op":"contains","backend":"dual","status":"fails","holds":false,"counter_example":"<_other s=\"1\"><a/></_other>","counterexample":{"xml":"<_other s=\"1\"><a/></_other>","pretty":"<_other s=\"1\">\n  <a/>\n</_other>","size":2,"verified":true},"cached":false}"#,
    ),
    // Protocol v2 limits round-trip: a generous `limits` object changes
    // nothing about the verdict.
    (
        r#"{"id":22,"op":"sat","query":"child::roundtrip","limits":{"timeout_ms":60000,"max_bdd_nodes":1000000,"max_iterations":1000,"max_lean":16}}"#,
        r#"{"id":22,"ok":true,"op":"sat","backend":"symbolic","status":"holds","holds":true,"counter_example":"<_other s=\"1\"><roundtrip/></_other>","cached":false}"#,
    ),
    // A starved iteration cap yields the third verdict: status `unknown`,
    // `holds` null, the exhausted resource named with spent vs. limit.
    (
        r#"{"id":23,"op":"sat","query":"u/v[w]","limits":{"max_iterations":1}}"#,
        r#"{"id":23,"ok":true,"op":"sat","backend":"symbolic","status":"unknown","holds":null,"resource":"iterations","spent":1,"limit":1,"reason":"resource exhausted: 1 fixpoint iterations, the cap is 1","cached":false}"#,
    ),
    // An op alias folds to its canonical echo through the one table.
    (
        r#"{"id":24,"op":"containment","lhs":"q1","rhs":"q2","type":"d1"}"#,
        r#"{"id":24,"ok":true,"op":"contains","backend":"symbolic","status":"holds","holds":true,"counter_example":null,"cached":true}"#,
    ),
    // The portfolio race answers deterministically on a verdict with no
    // counter-example (whichever racer wins, `holds` and the null witness
    // agree), and is cached under its own backend key (id 19 solved the
    // same problem on the witnessed backend — a distinct job).
    (
        r#"{"id":25,"op":"empty","query":"child::a ∩ child::b","backend":"portfolio"}"#,
        r#"{"id":25,"ok":true,"op":"empty","backend":"portfolio","status":"holds","holds":true,"counter_example":null,"cached":false}"#,
    ),
    // Cache-hit repeat of the Fig 18 failure (id 3): the memo cache stores
    // whole verdicts, so the verified counterexample object survives the
    // hit byte-for-byte.
    (
        r#"{"id":26,"op":"contains","lhs":"child::c/preceding-sibling::a[child::b]","rhs":"child::c[child::b]"}"#,
        r#"{"id":26,"ok":true,"op":"contains","backend":"symbolic","status":"fails","holds":false,"counter_example":"<_other s=\"1\"><a><b/></a><c/></_other>","counterexample":{"xml":"<_other s=\"1\"><a><b/></a><c/></_other>","pretty":"<_other s=\"1\">\n  <a>\n    <b/>\n  </a>\n  <c/>\n</_other>","size":4,"verified":true},"cached":true}"#,
    ),
];

/// Drops the volatile measurement fields from a response.
fn normalize(v: &Value) -> Value {
    match v {
        Value::Obj(fields) => Value::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "wall_ms" && k != "stats")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

fn requests() -> Vec<Request> {
    GOLDEN
        .iter()
        .filter(|(req, _)| !req.is_empty())
        .map(|(req, _)| {
            Request::parse(req).unwrap_or(Request {
                id: None,
                kind: engine::RequestKind::Stats,
            })
        })
        .collect()
}

#[test]
fn batch_matches_golden_stream() {
    let mut e = Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let input: String = GOLDEN.iter().map(|(req, _)| format!("{req}\n")).collect();
    let outcome = e.run_batch_lines(&input);
    assert_eq!(outcome.responses.len(), GOLDEN.len());
    for (i, ((req, expected), got)) in GOLDEN.iter().zip(&outcome.responses).enumerate() {
        let expected_value = json::parse(expected).unwrap();
        assert_eq!(
            normalize(got),
            expected_value,
            "line {i}: request {req}\n  got      {}\n  expected {expected}",
            normalize(got).to_json(),
        );
    }
    // 24 decision problems were posed; ids 4, 5 and 24 repeat id 1's
    // problem, id 17 repeats id 15's (problem, backend) job, and id 26
    // repeats id 3's failing containment. Ids 16, 21 and 25 repeat
    // *problems* under different backends, which are distinct jobs; id 23
    // exhausts its iteration cap and is counted as `unknown`, not an
    // error.
    assert_eq!(outcome.stats.problems, 24);
    assert_eq!(outcome.stats.unique_problems, 19);
    assert_eq!(outcome.stats.cache_hits, 5);
    assert_eq!(outcome.stats.unknown, 1);
    assert_eq!(outcome.stats.errors, 3);

    // Full round-trip: every response line re-parses to the same value.
    for got in &outcome.responses {
        assert_eq!(json::parse(&got.to_json()).unwrap(), *got);
    }
}

#[test]
fn serve_matches_golden_stream() {
    let mut e = Engine::new();
    let input: String = GOLDEN.iter().map(|(req, _)| format!("{req}\n")).collect();
    let mut out = Vec::new();
    e.serve(input.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), GOLDEN.len());
    for (i, ((req, expected), got)) in GOLDEN.iter().zip(&lines).enumerate() {
        let got = json::parse(got).unwrap();
        let expected_value = json::parse(expected).unwrap();
        assert_eq!(
            normalize(&got),
            expected_value,
            "line {i}: request {req} (serve path)"
        );
    }
}

#[test]
fn serve_survives_garbage_and_oversized_lines() {
    // Garbage interleaved between valid requests: each bad line costs one
    // `error` response, never the stream. The oversized line exceeds the
    // configured cap and must be shed without being buffered whole.
    let mut e = Engine::with_config(EngineConfig {
        max_line_bytes: 256,
        ..EngineConfig::default()
    });
    let huge = format!(
        "{{\"op\":\"query\",\"name\":\"big\",\"xpath\":\"{}\"}}",
        "a".repeat(4096)
    );
    let mut input = Vec::new();
    input.extend_from_slice(b"{\"op\":\"query\",\"name\":\"q1\",\"xpath\":\"child::a\"}\n");
    input.extend_from_slice(b"this is not json at all\n");
    input.extend_from_slice(
        b"{\"op\":\"query\",\"name\":\"q2\",\"xpath\":\"child::a | child::b\"}\n",
    );
    input.extend_from_slice(b"\xff\xfe\x00{binary garbage}\x01\n");
    input.extend_from_slice(huge.as_bytes());
    input.push(b'\n');
    input.extend_from_slice(b"{\"op\":\"contains\"\n"); // truncated JSON
    input.extend_from_slice(b"{\"id\":9,\"op\":\"contains\",\"lhs\":\"q1\",\"rhs\":\"q2\"}\n");
    let mut out = Vec::new();
    e.serve(&input[..], &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<Value> = text.lines().map(|l| json::parse(l).unwrap()).collect();
    assert_eq!(
        lines.len(),
        7,
        "one response per line, good or bad:\n{text}"
    );

    let ok = |v: &Value| v.get("ok").and_then(Value::as_bool) == Some(true);
    let err_status = |v: &Value| v.get("status").and_then(Value::as_str) == Some("error");
    assert!(ok(&lines[0]), "q1 registers: {}", lines[0].to_json());
    assert!(
        err_status(&lines[1]),
        "garbage text: {}",
        lines[1].to_json()
    );
    assert!(ok(&lines[2]), "q2 registers: {}", lines[2].to_json());
    assert!(
        err_status(&lines[3]),
        "binary garbage: {}",
        lines[3].to_json()
    );
    assert!(
        err_status(&lines[4]),
        "oversized line: {}",
        lines[4].to_json()
    );
    assert!(
        lines[4]
            .get("error")
            .and_then(Value::as_str)
            .is_some_and(|m| m.contains("256-byte cap")),
        "oversized error names the cap: {}",
        lines[4].to_json()
    );
    assert!(
        err_status(&lines[5]),
        "truncated JSON: {}",
        lines[5].to_json()
    );
    // The final decision request still solves correctly after four bad
    // lines — the serve loop never lost sync.
    assert_eq!(
        lines[6].get("status").and_then(Value::as_str),
        Some("holds"),
        "final request solves: {}",
        lines[6].to_json()
    );
}

#[test]
fn repeated_batch_is_fully_cached() {
    let mut e = Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let reqs = requests();
    let cold = e.run_batch(&reqs);
    let warm = e.run_batch(&reqs);
    assert_eq!(cold.stats.problems, warm.stats.problems);
    // Every *decided* problem of the repeat batch is served from the memo
    // cache; the one budget-exhausted problem (id 23) is never cached and
    // re-solves to `unknown` again.
    assert_eq!(warm.stats.cache_hits, warm.stats.problems - 1);
    assert_eq!(warm.stats.unknown, 1);
    // Verdicts are identical across cold and warm runs, and cache-served
    // answers report ~zero wall clock (the stats keep the original run's
    // solve time).
    for (c, w) in cold.responses.iter().zip(&warm.responses) {
        let status = c.get("status").and_then(Value::as_str);
        if matches!(status, Some("holds") | Some("fails")) {
            assert_eq!(c.get("holds"), w.get("holds"));
            assert_eq!(c.get("counter_example"), w.get("counter_example"));
            assert_eq!(c.get("counterexample"), w.get("counterexample"));
            assert_eq!(w.get("wall_ms").and_then(Value::as_f64), Some(0.0));
        }
    }
}

/// Asserts the normative `"counterexample"` schema of `docs/PROTOCOL.md` on
/// a `fails` response: exactly the four keys, `xml` equal to the legacy
/// string field, `pretty` an indented rendering of the same document, and
/// the `verified` oracle stamp.
fn assert_counterexample_shape(r: &Value) {
    assert_eq!(r.get("status").and_then(Value::as_str), Some("fails"));
    let ce = r
        .get("counterexample")
        .unwrap_or_else(|| panic!("no counterexample in {}", r.to_json()));
    let keys: Vec<&str> = match ce {
        Value::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("counterexample is not an object: {other:?}"),
    };
    assert_eq!(keys, ["xml", "pretty", "size", "verified"]);
    let xml = ce.get("xml").and_then(Value::as_str).unwrap();
    assert_eq!(r.get("counter_example").and_then(Value::as_str), Some(xml));
    let pretty = ce.get("pretty").and_then(Value::as_str).unwrap();
    assert_eq!(pretty.replace(['\n', ' '], ""), xml.replace(' ', ""));
    assert!(ce.get("size").and_then(Value::as_f64).unwrap() >= 1.0);
    assert_eq!(ce.get("verified").and_then(Value::as_bool), Some(true));
}

#[test]
fn counterexample_field_shape_across_backends_and_cache() {
    let mut e = Engine::new();
    let fig18 = |id: &str, backend: &str| {
        format!(
            r#"{{"id":"{id}","op":"contains","lhs":"child::c/preceding-sibling::a[child::b]","rhs":"child::c[child::b]","backend":"{backend}"}}"#
        )
    };
    // Present on witnessed and portfolio `fails` verdicts…
    for backend in ["symbolic", "explicit", "witnessed", "dual", "portfolio"] {
        let r = e.execute_line(&fig18(backend, backend));
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
        assert_counterexample_shape(&r);
        // …and byte-stable across a memo-cache hit.
        let hit = e.execute_line(&fig18(&format!("{backend}-again"), backend));
        assert_eq!(hit.get("cached").and_then(Value::as_bool), Some(true));
        assert_eq!(hit.get("counterexample"), r.get("counterexample"));
        // The whole response round-trips through the hand-rolled json
        // module.
        assert_eq!(json::parse(&r.to_json()).unwrap(), r);
    }
    // Absent on `holds` — including satisfiability, whose supporting model
    // keeps riding the legacy `counter_example` string only.
    let r = e.execute_line(r#"{"op":"sat","query":"child::a"}"#);
    assert_eq!(r.get("status").and_then(Value::as_str), Some("holds"));
    assert!(r.get("counter_example").and_then(Value::as_str).is_some());
    assert!(r.get("counterexample").is_none());
    // Absent on unsatisfiable overlap (`fails` with no possible witness).
    let r = e.execute_line(r#"{"op":"overlap","lhs":"child::a","rhs":"child::b"}"#);
    assert_eq!(r.get("status").and_then(Value::as_str), Some("fails"));
    assert_eq!(r.get("counter_example"), Some(&Value::Null));
    assert!(r.get("counterexample").is_none());
    // Absent on `unknown`.
    let r = e.execute_line(r#"{"op":"sat","query":"a/b[c]","limits":{"max_iterations":1}}"#);
    assert_eq!(r.get("status").and_then(Value::as_str), Some("unknown"));
    assert!(r.get("counterexample").is_none());
}

/// Every key of the extended symbolic telemetry schema (the BDD kernel
/// counters of `docs/PROTOCOL.md`).
const SYMBOLIC_TELEMETRY_KEYS: [&str; 8] = [
    "bdd_nodes",
    "peak_nodes",
    "created_nodes",
    "table_capacity",
    "load_factor",
    "cache_hits",
    "cache_lookups",
    "cache_hit_rate",
];

#[test]
fn telemetry_payload_is_typed_per_backend() {
    let mut e = Engine::new();
    let cases = [
        ("symbolic", SYMBOLIC_TELEMETRY_KEYS.to_vec()),
        ("explicit", vec!["types"]),
        ("witnessed", vec!["types", "proved"]),
        (
            "dual",
            vec![
                "symbolic",
                "explicit",
                "symbolic_iterations",
                "explicit_iterations",
            ],
        ),
        ("portfolio", vec!["winner", "raced", "inner"]),
    ];
    for (backend, keys) in cases {
        let r = e.execute_line(&format!(
            r#"{{"op":"sat","query":"child::a","backend":"{backend}"}}"#
        ));
        assert_eq!(
            r.get("ok").and_then(Value::as_bool),
            Some(true),
            "{backend}"
        );
        assert_eq!(r.get("backend").and_then(Value::as_str), Some(backend));
        let telemetry = r
            .get("stats")
            .and_then(|s| s.get("telemetry"))
            .unwrap_or_else(|| panic!("{backend}: no telemetry in {}", r.to_json()));
        assert_eq!(
            telemetry.get("backend").and_then(Value::as_str),
            Some(backend)
        );
        for key in keys {
            assert!(
                telemetry.get(key).is_some(),
                "{backend}: missing `{key}` in {}",
                telemetry.to_json()
            );
        }
    }
    // The dual payload nests full per-side telemetry, the symbolic side
    // carrying the complete extended BDD schema.
    let r =
        e.execute_line(r#"{"op":"overlap","lhs":"child::a","rhs":"child::b","backend":"dual"}"#);
    let telemetry = r.get("stats").and_then(|s| s.get("telemetry")).unwrap();
    let sym = telemetry.get("symbolic").expect("symbolic side");
    let exp = telemetry.get("explicit").expect("explicit side");
    assert!(sym.get("bdd_nodes").and_then(Value::as_f64).unwrap() > 0.0);
    for key in SYMBOLIC_TELEMETRY_KEYS {
        assert!(
            sym.get(key).is_some(),
            "dual symbolic side: missing `{key}` in {}",
            sym.to_json()
        );
    }
    assert!(exp.get("types").and_then(Value::as_f64).unwrap() > 0.0);
    // The portfolio payload names a winner that actually raced and nests
    // the winner's own telemetry.
    let r = e.execute_line(
        r#"{"op":"overlap","lhs":"child::a","rhs":"child::c","backend":"portfolio"}"#,
    );
    let telemetry = r.get("stats").and_then(|s| s.get("telemetry")).unwrap();
    let winner = telemetry.get("winner").and_then(Value::as_str).unwrap();
    let raced: Vec<&str> = telemetry
        .get("raced")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .map(|b| b.as_str().unwrap())
        .collect();
    assert!(raced.contains(&winner), "{winner} not in {raced:?}");
    assert!(raced.contains(&"symbolic"), "symbolic always races");
    let inner = telemetry.get("inner").expect("winner telemetry");
    assert_eq!(inner.get("backend").and_then(Value::as_str), Some(winner));
}

#[test]
fn racing_verdicts_cache_only_when_a_backend_completes() {
    let mut e = Engine::new();
    // A starved race: every racer exhausts the shared iteration cap, so
    // the portfolio reports `unknown` — which must never be memoized (a
    // cancelled or exhausted race is not a verdict).
    let starved =
        r#"{"op":"sat","query":"a/b[c]","backend":"portfolio","limits":{"max_iterations":1}}"#;
    for _ in 0..2 {
        let r = e.execute_line(starved);
        assert_eq!(r.get("status").and_then(Value::as_str), Some("unknown"));
        assert_eq!(
            r.get("resource").and_then(Value::as_str),
            Some("iterations")
        );
        assert_eq!(r.get("cached").and_then(Value::as_bool), Some(false));
        assert_eq!(e.cache_entries(), 0);
    }
    // A completed race is a definite verdict and memoizes under the
    // portfolio cache key…
    let r = e.execute_line(r#"{"op":"sat","query":"a/b[c]","backend":"portfolio"}"#);
    assert_eq!(r.get("status").and_then(Value::as_str), Some("holds"));
    assert_eq!(r.get("backend").and_then(Value::as_str), Some("portfolio"));
    assert_eq!(r.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(e.cache_entries(), 1);
    // …after which even the starved request is served from the cache: a
    // definite verdict answers any budget without racing again.
    let r = e.execute_line(starved);
    assert_eq!(r.get("status").and_then(Value::as_str), Some("holds"));
    assert_eq!(r.get("cached").and_then(Value::as_bool), Some(true));
    // The portfolio key is its own: the same problem on the default
    // symbolic backend re-solves instead of hitting the race's entry.
    let r = e.execute_line(r#"{"op":"sat","query":"a/b[c]"}"#);
    assert_eq!(r.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(e.cache_entries(), 2);
}

#[test]
fn dual_telemetry_golden_extended_schema() {
    // Golden dual-mode exchange under the extended telemetry schema: an
    // `equiv` solves two containments, so the verdict's telemetry is the
    // *merge* of two dual runs — the case `Telemetry::merge` must be
    // total over, with the new BDD counter fields summed/maxed and both
    // nested sides intact.
    let mut e = Engine::new();
    let r = e.execute_line(
        r#"{"id":"dual-eq","op":"equiv","lhs":"a/b[c]","rhs":"a/b[c]","backend":"dual"}"#,
    );
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(r.get("backend").and_then(Value::as_str), Some("dual"));
    assert_eq!(r.get("holds").and_then(Value::as_bool), Some(true));
    let t = r.get("stats").and_then(|s| s.get("telemetry")).unwrap();
    assert_eq!(t.get("backend").and_then(Value::as_str), Some("dual"));
    let sym = t.get("symbolic").expect("nested symbolic telemetry");
    assert_eq!(sym.get("backend").and_then(Value::as_str), Some("symbolic"));
    for key in SYMBOLIC_TELEMETRY_KEYS {
        assert!(
            sym.get(key).is_some(),
            "missing `{key}` in {}",
            sym.to_json()
        );
    }
    // Merged counters stay consistent: hits ≤ lookups, live ≤ peak ≤
    // created (+1 for the terminal), and the derived ratios in [0, 1].
    let pick = |k: &str| sym.get(k).and_then(Value::as_f64).unwrap();
    assert!(pick("cache_hits") <= pick("cache_lookups"));
    assert!(pick("bdd_nodes") <= 2.0 * pick("peak_nodes"));
    assert!(pick("peak_nodes") <= pick("created_nodes") + 2.0);
    let rate = pick("cache_hit_rate");
    assert!((0.0..=1.0).contains(&rate), "{rate}");
    let exp = t.get("explicit").expect("nested explicit telemetry");
    assert_eq!(exp.get("backend").and_then(Value::as_str), Some("explicit"));
    assert!(pick("cache_lookups") > 0.0);
    assert!(exp.get("types").and_then(Value::as_f64).unwrap() > 0.0);
}

#[test]
fn oversized_lean_is_unknown_and_never_cached() {
    // This containment's lean is far beyond the default lean-diamond cap,
    // so every enumerating backend must answer `"status":"unknown"`
    // naming the exhausted resource (not a process-killing panic, not a
    // protocol error) — and keep re-answering (unknowns are not
    // memoized), while the same problem on the symbolic backend solves
    // fine.
    let mut e = Engine::new();
    let dual = r#"{"op":"contains","lhs":"a/b//d[prec-sibling::c]/e","rhs":"a/b//c/foll-sibling::d/e","backend":"dual"}"#;
    for backend in ["dual", "explicit", "witnessed"] {
        let line = dual.replace(
            "\"backend\":\"dual\"",
            &format!("\"backend\":\"{backend}\""),
        );
        for _ in 0..2 {
            let r = e.execute_line(&line);
            assert_eq!(
                r.get("ok").and_then(Value::as_bool),
                Some(true),
                "{backend}"
            );
            assert_eq!(
                r.get("status").and_then(Value::as_str),
                Some("unknown"),
                "{backend}"
            );
            assert_eq!(r.get("holds"), Some(&Value::Null), "{backend}");
            assert_eq!(
                r.get("resource").and_then(Value::as_str),
                Some("lean_diamonds"),
                "{backend}"
            );
            assert_eq!(r.get("limit").and_then(Value::as_f64), Some(16.0));
            let msg = r.get("reason").and_then(Value::as_str).unwrap();
            assert!(msg.contains("resource exhausted"), "{msg}");
            assert_eq!(r.get("cached").and_then(Value::as_bool), Some(false));
        }
    }
    assert_eq!(e.cache_entries(), 0);
    assert_eq!(e.counters().unknown, 6);
    let r = e.execute_line(
        r#"{"op":"contains","lhs":"a/b//d[prec-sibling::c]/e","rhs":"a/b//c/foll-sibling::d/e"}"#,
    );
    assert_eq!(r.get("holds").and_then(Value::as_bool), Some(true));
    assert_eq!(e.cache_entries(), 1);
    // The unknown also surfaces per-request on the batch path without
    // derailing the rest of the batch, counted separately from errors.
    let out = e.run_batch(&[
        Request::parse(dual).unwrap(),
        Request::parse(r#"{"op":"sat","query":"child::a","backend":"dual"}"#).unwrap(),
    ]);
    assert_eq!(out.stats.problems, 2);
    assert_eq!(out.stats.errors, 0);
    assert_eq!(out.stats.unknown, 1);
    assert_eq!(
        out.responses[0].get("status").and_then(Value::as_str),
        Some("unknown")
    );
    assert_eq!(
        out.responses[1].get("holds").and_then(Value::as_bool),
        Some(true)
    );
}

#[test]
fn unknown_bypasses_the_cache_until_a_retry_decides() {
    let mut e = Engine::new();
    let starved = r#"{"op":"sat","query":"a/b[c]","limits":{"max_iterations":1}}"#;
    // A starved solve is unknown and leaves no cache entry…
    let r = e.execute_line(starved);
    assert_eq!(r.get("status").and_then(Value::as_str), Some("unknown"));
    assert_eq!(
        r.get("resource").and_then(Value::as_str),
        Some("iterations")
    );
    assert_eq!(r.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(e.cache_entries(), 0);
    // …so the repeat re-solves (and exhausts again) instead of replaying
    // a stale unknown.
    let r = e.execute_line(starved);
    assert_eq!(r.get("status").and_then(Value::as_str), Some("unknown"));
    assert_eq!(r.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(e.cache_entries(), 0);
    assert_eq!(e.counters().unknown, 2);
    // A retry under the default (roomy) limits decides and memoizes…
    let r = e.execute_line(r#"{"op":"sat","query":"a/b[c]"}"#);
    assert_eq!(r.get("status").and_then(Value::as_str), Some("holds"));
    assert_eq!(r.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(e.cache_entries(), 1);
    // …after which even the starved request is served from the cache: a
    // definite verdict answers any budget without solving.
    let r = e.execute_line(starved);
    assert_eq!(r.get("status").and_then(Value::as_str), Some("holds"));
    assert_eq!(r.get("cached").and_then(Value::as_bool), Some(true));
}

#[test]
fn stats_echo_the_protocol_version() {
    let mut e = Engine::new();
    let r = e.execute_line(r#"{"op":"stats"}"#);
    assert_eq!(
        r.get("protocol").and_then(Value::as_f64),
        Some(engine::PROTOCOL_VERSION as f64)
    );
    assert_eq!(r.get("unknown").and_then(Value::as_f64), Some(0.0));
}

#[test]
fn cache_is_keyed_by_backend() {
    let mut e = Engine::new();
    let sym = e.execute_line(r#"{"op":"sat","query":"child::a"}"#);
    assert_eq!(sym.get("cached").and_then(Value::as_bool), Some(false));
    // Same problem, different backend: must re-solve, not hit the cache.
    let exp = e.execute_line(r#"{"op":"sat","query":"child::a","backend":"explicit"}"#);
    assert_eq!(exp.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(e.cache_entries(), 2);
    // Dual results land under their own key too.
    let dual = e.execute_line(r#"{"op":"sat","query":"child::a","backend":"dual"}"#);
    assert_eq!(dual.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(e.cache_entries(), 3);
    // And each backend now hits its own entry.
    for (line, backend) in [
        (r#"{"op":"sat","query":"child::a"}"#, "symbolic"),
        (
            r#"{"op":"sat","query":"child::a","backend":"explicit"}"#,
            "explicit",
        ),
        (
            r#"{"op":"sat","query":"child::a","backend":"dual"}"#,
            "dual",
        ),
    ] {
        let r = e.execute_line(line);
        assert_eq!(r.get("cached").and_then(Value::as_bool), Some(true));
        assert_eq!(r.get("backend").and_then(Value::as_str), Some(backend));
    }
}

#[test]
fn engine_default_backend_applies_to_unmarked_requests() {
    let mut e = Engine::with_config(EngineConfig {
        threads: 2,
        backend: BackendChoice::Witnessed,
        ..EngineConfig::default()
    });
    assert_eq!(e.default_backend(), BackendChoice::Witnessed);
    let r = e.execute_line(r#"{"op":"sat","query":"child::a"}"#);
    assert_eq!(r.get("backend").and_then(Value::as_str), Some("witnessed"));
    // An explicit per-request backend still overrides the default.
    let r = e.execute_line(r#"{"op":"sat","query":"child::a","backend":"symbolic"}"#);
    assert_eq!(r.get("backend").and_then(Value::as_str), Some("symbolic"));
    let _ = Telemetry::default(); // re-exported type is usable downstream
}

#[test]
fn hundred_problem_batch_fans_out() {
    let mut e = Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let mut lines = vec![
        r#"{"op":"dtd","name":"d","source":"<!ELEMENT r (a*, b*)> <!ELEMENT a (b?)> <!ELEMENT b EMPTY>"}"#
            .to_owned(),
    ];
    let labels = ["a", "b", "c", "d", "e"];
    for i in 0..120 {
        let l = labels[i % labels.len()];
        let m = labels[(i / labels.len()) % labels.len()];
        let line = match i % 4 {
            0 => format!(r#"{{"op":"contains","lhs":"{l}/{m}","rhs":"{l}/*"}}"#),
            1 => format!(r#"{{"op":"overlap","lhs":"child::{l}","rhs":"child::{m}"}}"#),
            2 => format!(r#"{{"op":"sat","query":"{l}//{m}","type":"d"}}"#),
            _ => format!(r#"{{"op":"empty","query":"child::{l} ∩ child::{m}"}}"#),
        };
        lines.push(line);
    }
    let input = lines.join("\n");
    let outcome = e.run_batch_lines(&input);
    assert_eq!(outcome.stats.problems, 120);
    assert_eq!(outcome.stats.errors, 0);
    assert_eq!(outcome.stats.threads, 4);
    for r in &outcome.responses[1..] {
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
    }
    // The label grid repeats, so the canonical cache must collapse some
    // problems even within one cold batch.
    assert!(outcome.stats.unique_problems < 120);
    assert!(outcome.stats.cache_hits > 0);

    // A warm rerun answers everything from the cache.
    let warm = e.run_batch_lines(&input);
    assert_eq!(warm.stats.cache_hits, 120);
}

#[test]
fn traced_requests_round_trip_their_event_stream() {
    let mut e = Engine::new();
    // An untraced request carries no `trace` field.
    let quiet = e.execute_line(r#"{"op":"sat","query":"a/b[c]"}"#);
    assert!(quiet.get("trace").is_none());
    // A traced repeat of the same problem is a cache hit: its trace is
    // just the memo lookup.
    let hit = e.execute_line(r#"{"op":"sat","query":"a/b[c]","trace":true}"#);
    assert_eq!(hit.get("cached").and_then(Value::as_bool), Some(true));
    let trace = hit.get("trace").and_then(Value::as_arr).expect("trace");
    assert_eq!(trace.len(), 1);
    assert_eq!(trace[0].get("kind").and_then(Value::as_str), Some("memo"));
    assert_eq!(trace[0].get("hit").and_then(Value::as_bool), Some(true));
    // A traced cold solve carries the full phase stream.
    let cold = e.execute_line(r#"{"op":"contains","lhs":"a/b","rhs":"a/*","trace":true}"#);
    assert_eq!(cold.get("status").and_then(Value::as_str), Some("holds"));
    let trace = cold.get("trace").and_then(Value::as_arr).expect("trace");
    let kinds: Vec<&str> = trace
        .iter()
        .map(|ev| ev.get("kind").and_then(Value::as_str).unwrap())
        .collect();
    assert_eq!(kinds[0], "memo");
    assert_eq!(kinds[1], "solve_begin");
    assert_eq!(*kinds.last().unwrap(), "solve_end");
    assert!(kinds.contains(&"phase"), "{kinds:?}");
    assert!(kinds.contains(&"step"), "{kinds:?}");
    let phases: Vec<&str> = trace
        .iter()
        .filter(|ev| ev.get("kind").and_then(Value::as_str) == Some("phase"))
        .map(|ev| ev.get("phase").and_then(Value::as_str).unwrap())
        .collect();
    assert!(phases.contains(&"compile"), "{phases:?}");
    assert!(phases.contains(&"fixpoint"), "{phases:?}");
    // Envelope fields are present on every event, seq strictly increases,
    // and the whole response survives a JSON round-trip.
    let mut prev_seq = -1.0;
    for ev in trace {
        for key in ["solve", "seq", "t_us", "kind"] {
            assert!(ev.get(key).is_some(), "missing {key} in {}", ev.to_json());
        }
        let seq = ev.get("seq").and_then(Value::as_f64).unwrap();
        assert!(seq > prev_seq);
        prev_seq = seq;
    }
    assert_eq!(json::parse(&cold.to_json()).unwrap(), cold);
    // The batch executor honors the flag too, and keeps traced and
    // untraced requests for one problem distinct.
    let out = e.run_batch(&[
        Request::parse(
            r#"{"id":"t","op":"overlap","lhs":"child::a","rhs":"child::*","trace":true}"#,
        )
        .unwrap(),
        Request::parse(r#"{"id":"u","op":"overlap","lhs":"child::a","rhs":"child::*"}"#).unwrap(),
    ]);
    assert!(out.responses[0].get("trace").is_some());
    assert!(out.responses[1].get("trace").is_none());
}

#[test]
fn metrics_request_snapshots_the_registry() {
    let mut e = Engine::new();
    e.execute_line(r#"{"op":"sat","query":"child::metricsprobe"}"#);
    let r = e.execute_line(r#"{"id":"m","op":"metrics"}"#);
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(r.get("op").and_then(Value::as_str), Some("metrics"));
    assert_eq!(r.get("id").and_then(Value::as_str), Some("m"));
    let rows = r.get("metrics").and_then(Value::as_arr).expect("metrics");
    assert!(!rows.is_empty());
    // The solve counter row for this op/backend/status exists…
    let solves = rows
        .iter()
        .find(|row| {
            row.get("name").and_then(Value::as_str) == Some("xsat_solves_total")
                && row.get("labels").is_some_and(|l| {
                    l.get("op").and_then(Value::as_str) == Some("sat")
                        && l.get("backend").and_then(Value::as_str) == Some("symbolic")
                        && l.get("status").and_then(Value::as_str) == Some("holds")
                })
        })
        .unwrap_or_else(|| panic!("no solves row in {}", r.to_json()));
    assert_eq!(solves.get("kind").and_then(Value::as_str), Some("counter"));
    assert!(solves.get("value").and_then(Value::as_f64).unwrap() >= 1.0);
    // …and the latency histogram carries count, sum and cumulative
    // buckets ending at +Inf.
    let hist = rows
        .iter()
        .find(|row| row.get("name").and_then(Value::as_str) == Some("xsat_solve_latency_ms"))
        .expect("latency histogram");
    assert_eq!(hist.get("kind").and_then(Value::as_str), Some("histogram"));
    assert!(hist.get("count").and_then(Value::as_f64).unwrap() >= 1.0);
    assert!(hist.get("sum_ms").and_then(Value::as_f64).is_some());
    let buckets = hist.get("buckets").and_then(Value::as_arr).unwrap();
    assert_eq!(
        buckets.last().unwrap().get("le").and_then(Value::as_str),
        Some("+Inf")
    );
    let mut prev = 0.0;
    for b in buckets {
        let c = b.get("count").and_then(Value::as_f64).unwrap();
        assert!(c >= prev, "cumulative buckets must be non-decreasing");
        prev = c;
    }
    // Memo-cache traffic reaches the registry (hits may be 0 here, but
    // the miss of the probe solve is recorded).
    assert!(rows
        .iter()
        .any(|row| row.get("name").and_then(Value::as_str) == Some("xsat_memo_misses_total")));
    // Service ops stay sequential-only: a metrics request inside a batch
    // is rejected like stats/reset.
    let out = e.run_batch(&[Request::parse(r#"{"op":"metrics"}"#).unwrap()]);
    assert_eq!(
        out.responses[0].get("ok").and_then(Value::as_bool),
        Some(false)
    );
}

#[test]
fn batch_stats_expose_memo_hit_and_miss_counters() {
    let mut e = Engine::with_config(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    let reqs = [
        Request::parse(r#"{"op":"sat","query":"child::memostats"}"#).unwrap(),
        Request::parse(r#"{"op":"sat","query":"child::memostats"}"#).unwrap(),
        Request::parse(r#"{"op":"empty","query":"child::memostats"}"#).unwrap(),
    ];
    let out = e.run_batch(&reqs);
    assert_eq!(out.stats.cache_hits, 1);
    assert_eq!(out.stats.cache_misses, 2);
    let v = out.stats.to_value();
    assert_eq!(v.get("cache_hits").and_then(Value::as_f64), Some(1.0));
    assert_eq!(v.get("cache_misses").and_then(Value::as_f64), Some(2.0));
    let memo = v
        .get("metrics")
        .and_then(|m| m.get("memo"))
        .expect("memo block");
    assert_eq!(memo.get("hits").and_then(Value::as_f64), Some(1.0));
    assert_eq!(memo.get("misses").and_then(Value::as_f64), Some(2.0));
    // The cumulative service counters mirror the split, and the `stats`
    // op reports it on the wire.
    assert_eq!(e.counters().cache_hits, 1);
    assert_eq!(e.counters().cache_misses, 2);
    let r = e.execute_line(r#"{"op":"stats"}"#);
    assert_eq!(r.get("cache_misses").and_then(Value::as_f64), Some(2.0));
}

/// The event-kind sequence of a slow-log entry's trace.
fn entry_kinds(entry: &Value) -> Vec<String> {
    entry
        .get("trace")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .map(|ev| ev.get("kind").and_then(Value::as_str).unwrap().to_owned())
        .collect()
}

#[test]
fn slow_solve_capture_is_deterministic_under_an_iteration_cap() {
    // Threshold 0: every real solve is "slow". The iteration cap pins the
    // fixpoint to one step, so the captured trace has a deterministic
    // event-kind sequence — two fresh engines must capture identical
    // shapes.
    let capture = || {
        let mut e = Engine::with_config(EngineConfig {
            slow_solve_ms: Some(0),
            ..EngineConfig::default()
        });
        let r = e.execute_line(r#"{"op":"sat","query":"a/b[c]","limits":{"max_iterations":1}}"#);
        assert_eq!(r.get("status").and_then(Value::as_str), Some("unknown"));
        assert_eq!(e.slow_log().len(), 1);
        let dump = e.execute_line(r#"{"op":"slowlog"}"#);
        assert_eq!(dump.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(dump.get("op").and_then(Value::as_str), Some("slowlog"));
        assert_eq!(dump.get("threshold_ms").and_then(Value::as_f64), Some(0.0));
        assert_eq!(dump.get("count").and_then(Value::as_f64), Some(1.0));
        let entries = dump.get("entries").and_then(Value::as_arr).unwrap();
        let entry = &entries[0];
        assert_eq!(entry.get("op").and_then(Value::as_str), Some("sat"));
        assert_eq!(
            entry.get("backend").and_then(Value::as_str),
            Some("symbolic")
        );
        assert_eq!(entry.get("status").and_then(Value::as_str), Some("unknown"));
        assert_eq!(entry.get("cached").and_then(Value::as_bool), Some(false));
        let kinds = entry_kinds(entry);
        assert!(kinds.contains(&"limit".to_owned()), "{kinds:?}");
        (e, kinds)
    };
    let (mut e1, kinds1) = capture();
    let (_e2, kinds2) = capture();
    assert_eq!(kinds1, kinds2, "slow-solve traces must be deterministic");
    // Cache hits are never logged as slow, and `reset` drops the ring.
    let r = e1.execute_line(r#"{"op":"sat","query":"a/b[c]"}"#);
    assert_eq!(r.get("status").and_then(Value::as_str), Some("holds"));
    let len_after_solve = e1.slow_log().len();
    e1.execute_line(r#"{"op":"sat","query":"a/b[c]"}"#);
    assert_eq!(e1.slow_log().len(), len_after_solve);
    e1.execute_line(r#"{"op":"reset"}"#);
    assert!(e1.slow_log().is_empty());
    // Without a threshold the dump reports a null threshold and no
    // entries.
    let mut quiet = Engine::new();
    quiet.execute_line(r#"{"op":"sat","query":"a/b[c]"}"#);
    let dump = quiet.execute_line(r#"{"op":"slowlog"}"#);
    assert_eq!(dump.get("threshold_ms"), Some(&Value::Null));
    assert_eq!(dump.get("count").and_then(Value::as_f64), Some(0.0));
}

#[test]
fn trace_file_sink_streams_jsonl_for_every_solve() {
    // The engine-level `trace_sink` (the `--trace-file` plumbing) sees
    // every solve's events even when no request asks for a trace.
    let sink = std::sync::Arc::new(engine::MemorySink::new());
    let mut e = Engine::with_config(EngineConfig {
        threads: 2,
        trace_sink: Some(sink.clone()),
        ..EngineConfig::default()
    });
    e.execute_line(r#"{"op":"sat","query":"child::tracefile"}"#);
    let sequential = sink.drain();
    assert!(sequential.iter().any(|ev| ev.kind == "solve_begin"));
    assert!(sequential.iter().any(|ev| ev.kind == "solve_end"));
    let out = e.run_batch(&[
        Request::parse(r#"{"op":"overlap","lhs":"child::t1","rhs":"child::*"}"#).unwrap(),
        Request::parse(r#"{"op":"overlap","lhs":"child::t2","rhs":"child::*"}"#).unwrap(),
    ]);
    assert_eq!(out.stats.cache_misses, 2);
    let batch = sink.drain();
    // Two distinct solves, distinguishable by their solve ids.
    let ids: std::collections::HashSet<u64> = batch
        .iter()
        .filter(|ev| ev.kind == "solve_begin")
        .map(|ev| ev.solve)
        .collect();
    assert_eq!(ids.len(), 2);
    // Each solve's JSONL line is valid JSON with the envelope fields.
    for ev in &batch {
        let line = ev.to_jsonl();
        let v = json::parse(&line).unwrap();
        assert!(v.get("kind").is_some(), "{line}");
        assert!(v.get("t_us").is_some(), "{line}");
    }
}

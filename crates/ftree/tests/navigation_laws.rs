//! Property tests for the zipper laws of focused-tree navigation (§3):
//! each program is a partial injection whose inverse is its converse, the
//! focus universe covers every node exactly once, and the binary encoding
//! is a bijection.

use ftree::{BinaryTree, Direction, FocusedTree, Tree};
use proptest::prelude::*;

const LABELS: [&str; 3] = ["a", "b", "c"];

fn arb_label() -> impl Strategy<Value = &'static str> {
    prop::sample::select(&LABELS[..])
}

fn arb_tree(depth: u32) -> impl Strategy<Value = Tree> {
    let leaf = arb_label().prop_map(Tree::leaf);
    leaf.prop_recursive(depth, 16, 4, |inner| {
        (arb_label(), prop::collection::vec(inner, 0..4)).prop_map(|(l, cs)| Tree::node(l, cs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `f⟨a⟩⟨ā⟩ = f` wherever `⟨a⟩` is defined.
    #[test]
    fn step_then_converse_is_identity(t in arb_tree(4)) {
        for f in FocusedTree::all_foci(&t) {
            for d in Direction::ALL {
                if let Some(g) = f.step(d) {
                    let back = g.step(d.converse());
                    prop_assert_eq!(back.as_ref(), Some(&f), "direction {:?}", d);
                }
            }
        }
    }

    /// The focus universe enumerates every node exactly once and preserves
    /// the underlying tree.
    #[test]
    fn focus_universe_is_exact(t in arb_tree(4)) {
        let foci = FocusedTree::all_foci(&t);
        prop_assert_eq!(foci.len(), t.size());
        for f in &foci {
            prop_assert_eq!(f.clone().into_whole_tree(), t.clone());
        }
        // All foci are distinct.
        let set: std::collections::HashSet<_> = foci.iter().cloned().collect();
        prop_assert_eq!(set.len(), t.size());
    }

    /// `root()` is idempotent and reaches a parentless focus.
    #[test]
    fn root_is_idempotent(t in arb_tree(4)) {
        for f in FocusedTree::all_foci(&t) {
            let r = f.root();
            prop_assert!(r.parent().is_none());
            prop_assert_eq!(r.root(), r);
        }
    }

    /// The first-child/next-sibling encoding round-trips.
    #[test]
    fn binary_roundtrip(t in arb_tree(4)) {
        let b = BinaryTree::from_unranked(&t);
        prop_assert_eq!(b.to_unranked(), t.clone());
        prop_assert_eq!(b.size(), t.size());
    }

    /// XML rendering round-trips.
    #[test]
    fn xml_roundtrip(t in arb_tree(4)) {
        let parsed = Tree::parse_xml(&t.to_xml()).unwrap();
        prop_assert_eq!(parsed, t);
    }

    /// Marking a node places exactly one mark, visible from every focus.
    #[test]
    fn single_mark_invariant(t in arb_tree(3), ix in any::<prop::sample::Index>()) {
        let paths = t.node_paths();
        let path = &paths[ix.index(paths.len())];
        let marked = t.mark_at(path).unwrap();
        prop_assert_eq!(marked.mark_count(), 1);
        for f in FocusedTree::all_foci(&marked) {
            prop_assert_eq!(f.mark_count(), 1);
        }
    }
}

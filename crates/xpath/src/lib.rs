//! XPath: abstract syntax, parser, denotational semantics, and the linear
//! translation into the tree logic Lµ (paper §5).
//!
//! The fragment covers all major navigational features of XPath 1.0 — the
//! twelve axes (forward *and* reverse), nested qualifiers with full boolean
//! structure, path composition, union and intersection — excluding counting
//! and data-value comparisons, exactly as in the paper.
//!
//! Three views of an expression are provided:
//!
//! * [`ast`] / [`parse`] — the syntax of Fig 4 with the usual abbreviations;
//! * [`eval_on_tree`] / [`eval_expr`] — the executable set semantics of
//!   Fig 5/6 over focused trees (the testing oracle);
//! * [`compile_expr`] / [`compile_query`] — the compositional translation to
//!   Lµ of Figs 7/8/10, linear in the size of the expression and producing
//!   cycle-free formulas (Proposition 5.1).
//!
//! # Example
//!
//! ```
//! use ftree::Tree;
//! use mulogic::{Logic, ModelChecker};
//! use xpath::{parse, eval_on_tree, compile_query};
//!
//! // The interpreter and the logical translation agree.
//! let e = parse("child::a[child::b]").unwrap();
//! let t = Tree::parse_xml("<r s=\"1\"><a><b/></a><a/></r>").unwrap();
//! let picked = eval_on_tree(&e, &t);
//! assert_eq!(picked.len(), 1);
//!
//! let mut lg = Logic::new();
//! let f = compile_query(&mut lg, &e);
//! let mc = ModelChecker::new(&t);
//! assert_eq!(mc.sat_foci(&lg, f), picked);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod compile;
pub mod decompose;
mod parser;
mod rewrite;
mod semantics;

pub use ast::{Axis, Expr, NodeTest, Path, Qualifier};
pub use compile::{compile_axis_fwd, compile_expr, compile_query};
pub use parser::{parse, ParseXPathError};
pub use rewrite::normalize;
pub use semantics::{eval_axis, eval_expr, eval_on_tree};

/// Parses `input` and applies [`normalize`] — the canonical parse boundary.
///
/// [`parse`] deliberately returns the raw desugared AST (its output is
/// pinned by round-trip tests); front ends that go on to *compile* or
/// *display* an expression should use this entry point instead, so the
/// compiled form and the printed form agree and step spans reported
/// against the normalized expression survive a print→reparse round trip.
pub fn parse_normalized(input: &str) -> Result<Expr, ParseXPathError> {
    parse(input).map(|e| normalize(&e))
}

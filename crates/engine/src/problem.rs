//! Resolved decision problems, their canonical memo keys, and verdicts.
//!
//! A [`Problem`] is fully structural: it holds the parsed query ASTs and
//! DTDs themselves (behind [`Arc`]), not the names they were registered
//! under. Its derived `Hash`/`Eq` therefore give a *canonical key* — the
//! same logical problem posed twice (under different names, or inline vs.
//! registered) memoizes to one cache entry, and two distinct problems can
//! never alias the way rendered-string keys could. The memo key proper is
//! a [`Job`]: the problem *plus* the backend it runs on — a cached
//! symbolic verdict must never answer an explicit-backend request.

use std::sync::Arc;
use std::time::Instant;

use analyzer::{Analysis, Analyzer, BackendChoice, Telemetry};
use treetypes::Dtd;
use xpath::Expr;

/// A fully resolved decision problem — the unit of work of the executor and
/// the key of the verdict memo cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Problem {
    /// Does the query select no node in any tree (of the type)?
    Empty {
        /// The query.
        query: Arc<Expr>,
        /// Optional type constraint.
        ty: Option<Arc<Dtd>>,
    },
    /// Does the query select a node in some tree (of the type)?
    Satisfiable {
        /// The query.
        query: Arc<Expr>,
        /// Optional type constraint.
        ty: Option<Arc<Dtd>>,
    },
    /// Is every node selected by `lhs` also selected by `rhs`?
    Contains {
        /// The contained query.
        lhs: Arc<Expr>,
        /// Type constraint of `lhs`.
        ltype: Option<Arc<Dtd>>,
        /// The containing query.
        rhs: Arc<Expr>,
        /// Type constraint of `rhs`.
        rtype: Option<Arc<Dtd>>,
    },
    /// Can the two queries select a common node?
    Overlap {
        /// First query.
        lhs: Arc<Expr>,
        /// Type constraint of `lhs`.
        ltype: Option<Arc<Dtd>>,
        /// Second query.
        rhs: Arc<Expr>,
        /// Type constraint of `rhs`.
        rtype: Option<Arc<Dtd>>,
    },
    /// Is every node selected by `query` selected by at least one of `by`?
    Covers {
        /// The covered query.
        query: Arc<Expr>,
        /// Its type constraint, shared by the covering queries.
        ty: Option<Arc<Dtd>>,
        /// The covering queries.
        by: Vec<Arc<Expr>>,
    },
    /// Containment in both directions.
    Equivalent {
        /// First query.
        lhs: Arc<Expr>,
        /// Type constraint of `lhs`.
        ltype: Option<Arc<Dtd>>,
        /// Second query.
        rhs: Arc<Expr>,
        /// Type constraint of `rhs`.
        rtype: Option<Arc<Dtd>>,
    },
    /// Is every node selected by `query` under the input type a valid root
    /// of the output type?
    TypeCheck {
        /// The annotated query.
        query: Arc<Expr>,
        /// Input type.
        input: Arc<Dtd>,
        /// Output type.
        output: Arc<Dtd>,
    },
}

/// The memo-cache key and unit of executor work: a canonical problem plus
/// the backend that must answer it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Job {
    /// The structural problem.
    pub problem: Problem,
    /// The backend it runs on.
    pub backend: BackendChoice,
}

impl Problem {
    /// The protocol name of the operation.
    pub fn op_name(&self) -> &'static str {
        match self {
            Problem::Empty { .. } => "empty",
            Problem::Satisfiable { .. } => "sat",
            Problem::Contains { .. } => "contains",
            Problem::Overlap { .. } => "overlap",
            Problem::Covers { .. } => "covers",
            Problem::Equivalent { .. } => "equiv",
            Problem::TypeCheck { .. } => "typecheck",
        }
    }

    /// Solves the problem on the given analyzer with the given backend.
    ///
    /// A dual-mode cross-check failure (verdict disagreement, or a lean
    /// beyond the explicit enumeration bound) comes back as `Err` with a
    /// protocol-ready message.
    pub fn run(&self, az: &mut Analyzer, backend: BackendChoice) -> Result<Verdict, String> {
        let started = Instant::now();
        az.set_backend(backend);
        let verdict = match self {
            Problem::Empty { query, ty } => {
                Verdict::from_analysis(az.is_empty(query, ty.as_deref()))
            }
            Problem::Satisfiable { query, ty } => {
                Verdict::from_analysis(az.is_satisfiable(query, ty.as_deref()))
            }
            Problem::Contains {
                lhs,
                ltype,
                rhs,
                rtype,
            } => Verdict::from_analysis(az.contains(lhs, ltype.as_deref(), rhs, rtype.as_deref())),
            Problem::Overlap {
                lhs,
                ltype,
                rhs,
                rtype,
            } => Verdict::from_analysis(az.overlaps(lhs, ltype.as_deref(), rhs, rtype.as_deref())),
            Problem::Covers { query, ty, by } => {
                let covers: Vec<(&Expr, Option<&Dtd>)> =
                    by.iter().map(|e| (&**e, ty.as_deref())).collect();
                Verdict::from_analysis(az.covers(query, ty.as_deref(), &covers))
            }
            Problem::Equivalent {
                lhs,
                ltype,
                rhs,
                rtype,
            } => az
                .equivalent(lhs, ltype.as_deref(), rhs, rtype.as_deref())
                .map(|(fwd, bwd)| Verdict::from_equivalence(fwd, bwd))
                .map_err(|e| e.to_string()),
            Problem::TypeCheck {
                query,
                input,
                output,
            } => Verdict::from_analysis(az.type_checks(query, input, output)),
        };
        verdict.map(|v| Verdict {
            wall_ms: duration_ms(started.elapsed()),
            ..v
        })
    }
}

/// Solver statistics snapshot carried by every verdict (and preserved on
/// cache hits, where they describe the original solving run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerdictStats {
    /// `|Lean(ψ)|` of the goal formula (max over sub-problems).
    pub lean_size: usize,
    /// `|cl(ψ)|` (max over sub-problems).
    pub closure_size: usize,
    /// Fixpoint iterations (summed over sub-problems).
    pub iterations: usize,
    /// Wall-clock of the satisfiability loop(s), in milliseconds.
    pub solve_ms: f64,
    /// Typed per-backend counters (summed over sub-problems).
    pub telemetry: Telemetry,
}

impl VerdictStats {
    fn from_solver(stats: &solver::Stats) -> VerdictStats {
        VerdictStats {
            lean_size: stats.lean_size,
            closure_size: stats.closure_size,
            iterations: stats.iterations,
            solve_ms: duration_ms(stats.duration),
            telemetry: stats.telemetry.clone(),
        }
    }

    fn merge(self, other: VerdictStats) -> VerdictStats {
        VerdictStats {
            lean_size: self.lean_size.max(other.lean_size),
            closure_size: self.closure_size.max(other.closure_size),
            iterations: self.iterations + other.iterations,
            solve_ms: self.solve_ms + other.solve_ms,
            telemetry: self.telemetry.merge(other.telemetry),
        }
    }
}

/// The outcome of one decision problem, in wire-friendly form.
///
/// Counter-examples are rendered to XML eagerly: solver models hold
/// `Rc`-based trees that cannot cross threads, while a `Verdict` must
/// travel from executor workers back to the caller and live in the shared
/// memo cache.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Whether the queried property holds.
    pub holds: bool,
    /// Witness XML: against the property for refutable ops (containment,
    /// emptiness, coverage, type-checking, equivalence), for it on
    /// satisfiability and overlap.
    pub counter_example: Option<String>,
    /// The backend that produced the verdict, echoed on every response.
    pub backend: BackendChoice,
    /// Solver measurements.
    pub stats: VerdictStats,
    /// End-to-end time for this problem (translation + solving), in
    /// milliseconds. Zero-ish on cache hits.
    pub wall_ms: f64,
}

impl Verdict {
    fn from_analysis(a: Result<Analysis, analyzer::CrossCheckError>) -> Result<Verdict, String> {
        let a = a.map_err(|e| e.to_string())?;
        Ok(Verdict {
            holds: a.holds,
            counter_example: a.counter_example.map(|m| m.xml()),
            backend: a.backend,
            stats: VerdictStats::from_solver(&a.stats),
            wall_ms: 0.0,
        })
    }

    fn from_equivalence(fwd: Analysis, bwd: Analysis) -> Verdict {
        let holds = fwd.holds && bwd.holds;
        // The witness is whichever direction failed first.
        let counter_example = fwd.counter_example.or(bwd.counter_example).map(|m| m.xml());
        Verdict {
            holds,
            counter_example,
            backend: fwd.backend,
            stats: VerdictStats::from_solver(&fwd.stats)
                .merge(VerdictStats::from_solver(&bwd.stats)),
            wall_ms: 0.0,
        }
    }
}

pub(crate) fn duration_ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: &str) -> Arc<Expr> {
        Arc::new(xpath::parse(src).unwrap())
    }

    #[test]
    fn canonical_keys_ignore_provenance() {
        use std::collections::HashMap;
        let a = Problem::Contains {
            lhs: q("a/b"),
            ltype: None,
            rhs: q("a/*"),
            rtype: None,
        };
        let b = Problem::Contains {
            lhs: q("a/b"),
            ltype: None,
            rhs: q("a/*"),
            rtype: None,
        };
        assert_eq!(a, b);
        let mut m = HashMap::new();
        m.insert(a, 1);
        assert_eq!(m.get(&b), Some(&1));
        // Swapped sides are a different problem.
        let c = Problem::Contains {
            lhs: q("a/*"),
            ltype: None,
            rhs: q("a/b"),
            rtype: None,
        };
        assert!(!m.contains_key(&c));
    }

    #[test]
    fn run_produces_counter_example() {
        let mut az = Analyzer::new();
        let p = Problem::Contains {
            lhs: q("child::c/preceding-sibling::a[child::b]"),
            ltype: None,
            rhs: q("child::c[child::b]"),
            rtype: None,
        };
        let v = p.run(&mut az, BackendChoice::Symbolic).unwrap();
        assert!(!v.holds);
        let xml = v.counter_example.expect("witness expected");
        assert!(xml.contains("<a>"), "{xml}");
        assert!(v.stats.lean_size > 0);
        assert!(v.wall_ms >= 0.0);
        assert_eq!(v.backend, BackendChoice::Symbolic);
        assert_eq!(v.stats.telemetry.backend_name(), "symbolic");
    }

    #[test]
    fn equivalence_merges_stats() {
        let mut az = Analyzer::new();
        let p = Problem::Equivalent {
            lhs: q("a/b[c]"),
            ltype: None,
            rhs: q("a/b[c]"),
            rtype: None,
        };
        let v = p.run(&mut az, BackendChoice::Symbolic).unwrap();
        assert!(v.holds);
        assert!(v.counter_example.is_none());
        assert!(v.stats.iterations > 0);
    }

    #[test]
    fn backends_are_distinct_jobs() {
        use std::collections::HashMap;
        let p = Problem::Contains {
            lhs: q("a/b"),
            ltype: None,
            rhs: q("a/*"),
            rtype: None,
        };
        let mut m = HashMap::new();
        m.insert(
            Job {
                problem: p.clone(),
                backend: BackendChoice::Symbolic,
            },
            1,
        );
        // The same problem under another backend is a different cache key.
        assert!(!m.contains_key(&Job {
            problem: p.clone(),
            backend: BackendChoice::Explicit,
        }));
        assert!(m.contains_key(&Job {
            problem: p,
            backend: BackendChoice::Symbolic,
        }));
    }

    #[test]
    fn run_on_reference_backends_and_dual() {
        let p = Problem::Overlap {
            lhs: q("child::a"),
            ltype: None,
            rhs: q("child::*"),
            rtype: None,
        };
        for backend in [
            BackendChoice::Explicit,
            BackendChoice::Witnessed,
            BackendChoice::Dual,
        ] {
            let mut az = Analyzer::new();
            let v = p.run(&mut az, backend).unwrap();
            assert!(v.holds, "{backend}");
            assert_eq!(v.backend, backend);
            assert_eq!(v.stats.telemetry.backend_name(), backend.as_str());
        }
    }
}

//! Table 2: the paper's decision problems.
//!
//! Rows 1–3 (untyped containment) and row 4 (e7 under SMIL 1.0) are timed
//! with Criterion here; the two XHTML rows take minutes per run on this
//! engine and are measured once by `cargo run --release --bin experiments`
//! instead (see EXPERIMENTS.md).

use analyzer::Analyzer;
use bench::{containment_goal, satisfiability_goal};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Times goal construction + solving, as the paper does (translation time
/// is negligible and included).
fn solve_containment(lhs: usize, rhs: usize) -> bool {
    let mut az = Analyzer::new();
    let goal = containment_goal(&mut az, lhs, rhs, None);
    let s = az.solve_formula(goal).unwrap();
    !s.outcome.is_satisfiable()
}

fn bench_rows(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);

    // Row 1: e1 ⊆ e2 (holds) and e2 ⊄ e1 — paper: 353 ms.
    g.bench_function("row1/e1-in-e2", |b| {
        b.iter(|| assert!(solve_containment(black_box(1), black_box(2))));
    });
    g.bench_function("row1/e2-not-in-e1", |b| {
        b.iter(|| assert!(!solve_containment(black_box(2), black_box(1))));
    });

    // Row 2: e4 ⊆ e3 (holds, both directions) — paper: 45 ms.
    g.bench_function("row2/e4-in-e3", |b| {
        b.iter(|| assert!(solve_containment(black_box(4), black_box(3))));
    });
    g.bench_function("row2/e3-in-e4", |b| {
        b.iter(|| assert!(solve_containment(black_box(3), black_box(4))));
    });

    // Row 3 — paper: 41 ms, verdict e6 ⊆ e5. Under the standard XPath
    // reading neither containment holds (both semantics of this repo agree;
    // see EXPERIMENTS.md "Row 3 divergence"), so the bench asserts the
    // measured verdicts.
    g.bench_function("row3/e6-not-in-e5", |b| {
        b.iter(|| assert!(!solve_containment(black_box(6), black_box(5))));
    });
    g.bench_function("row3/e5-not-in-e6", |b| {
        b.iter(|| assert!(!solve_containment(black_box(5), black_box(6))));
    });

    g.finish();
}

fn bench_smil(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2-typed");
    g.sample_size(10);
    // Row 4: e7 satisfiable under SMIL 1.0 — paper: 157 ms.
    let dtd = treetypes::smil_1_0();
    g.bench_function("row4/e7-sat-smil", |b| {
        b.iter(|| {
            let mut az = Analyzer::new();
            let goal = satisfiability_goal(&mut az, black_box(7), Some(&dtd));
            let s = az.solve_formula(goal).unwrap();
            assert!(s.outcome.is_satisfiable());
        });
    });
    g.finish();
}

criterion_group!(benches, bench_rows, bench_smil);
criterion_main!(benches);

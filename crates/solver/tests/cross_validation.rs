//! Cross-validation of the solver backends behind the shared kernel.
//!
//! The explicit solver enumerates ψ-types directly from the paper's §6.2
//! algorithm; the symbolic solver is the BDD implementation of §7; the
//! witnessed solver is the literal Fig 16 triples. All three are
//! [`solver::Backend`] impls driven by the same `run_fixpoint` loop. On
//! every random cycle-free formula they must agree — whether called
//! through their direct wrappers or dispatched via
//! [`solver::solve_with`], including the dual cross-check mode — and any
//! satisfiable verdict must come with a model accepted by the independent
//! model checker of Fig 2.

use std::time::Duration;

use ftree::Label;
use mulogic::{cycle_free, Formula, Logic, ModelChecker, Program};
use proptest::prelude::*;
use solver::{
    solve_explicit, solve_symbolic, solve_with, solve_witnessed, BackendChoice, Limits,
    SymbolicOptions, Telemetry,
};

/// A recipe for building random cycle-free formulas without reference to a
/// particular `Logic` arena.
#[derive(Debug, Clone)]
enum Shape {
    Prop(&'static str),
    NotProp(&'static str),
    Start,
    NotStart,
    NoChild(u8),
    Diam(u8, Box<Shape>),
    And(Box<Shape>, Box<Shape>),
    Or(Box<Shape>, Box<Shape>),
    /// µX. base ∨ ⟨p⟩X — a guarded single-direction recursion.
    Rec(u8, Box<Shape>),
    Not(Box<Shape>),
}

fn prog(code: u8) -> Program {
    match code % 4 {
        0 => Program::Down1,
        1 => Program::Down2,
        2 => Program::Up1,
        _ => Program::Up2,
    }
}

fn build(lg: &mut Logic, s: &Shape) -> Formula {
    match s {
        Shape::Prop(n) => lg.prop(Label::new(n)),
        Shape::NotProp(n) => lg.not_prop(Label::new(n)),
        Shape::Start => lg.start(),
        Shape::NotStart => lg.not_start(),
        Shape::NoChild(p) => lg.not_diam_true(prog(*p)),
        Shape::Diam(p, inner) => {
            let f = build(lg, inner);
            lg.diam(prog(*p), f)
        }
        Shape::And(a, b) => {
            let (fa, fb) = (build(lg, a), build(lg, b));
            lg.and(fa, fb)
        }
        Shape::Or(a, b) => {
            let (fa, fb) = (build(lg, a), build(lg, b));
            lg.or(fa, fb)
        }
        Shape::Rec(p, base) => {
            let fb = build(lg, base);
            let x = lg.fresh_var("R");
            let xv = lg.var(x);
            let step = lg.diam(prog(*p), xv);
            let body = lg.or(fb, step);
            lg.mu1(x, body)
        }
        Shape::Not(inner) => {
            let f = build(lg, inner);
            lg.not(f)
        }
    }
}

fn arb_shape(depth: u32) -> BoxedStrategy<Shape> {
    let leaf = prop_oneof![
        prop::sample::select(&["a", "b", "c"][..]).prop_map(Shape::Prop),
        prop::sample::select(&["a", "b"][..]).prop_map(Shape::NotProp),
        Just(Shape::Start),
        Just(Shape::NotStart),
        (0u8..4).prop_map(Shape::NoChild),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        3 => leaf,
        2 => (0u8..4, arb_shape(depth - 1)).prop_map(|(p, s)| Shape::Diam(p, Box::new(s))),
        2 => (arb_shape(depth - 1), arb_shape(depth - 1))
            .prop_map(|(a, b)| Shape::And(Box::new(a), Box::new(b))),
        2 => (arb_shape(depth - 1), arb_shape(depth - 1))
            .prop_map(|(a, b)| Shape::Or(Box::new(a), Box::new(b))),
        1 => (0u8..4, arb_shape(0)).prop_map(|(p, s)| Shape::Rec(p, Box::new(s))),
        1 => arb_shape(depth - 1).prop_map(|s| Shape::Not(Box::new(s))),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Explicit and symbolic backends return the same verdict, and models
    /// pass the model checker.
    #[test]
    fn backends_agree(shape in arb_shape(2)) {
        let mut lg = Logic::new();
        let goal = build(&mut lg, &shape);
        prop_assume!(cycle_free(&lg, goal));
        // Keep the explicit enumeration tractable.
        let prep = solver::Prepared::new(&mut lg, goal);
        prop_assume!(prep.lean.diam_entries().count() <= 10);

        let exp = solve_explicit(&mut lg, goal);
        let sym = solve_symbolic(&mut lg, goal);
        let wit = solve_witnessed(&mut lg, goal);
        prop_assert_eq!(
            exp.outcome.is_satisfiable(),
            sym.outcome.is_satisfiable(),
            "explicit/symbolic disagree on {}",
            lg.display(goal)
        );
        prop_assert_eq!(
            wit.outcome.is_satisfiable(),
            sym.outcome.is_satisfiable(),
            "witnessed/symbolic disagree on {}",
            lg.display(goal)
        );
        for solved in [&exp, &sym, &wit] {
            if let Some(m) = solved.outcome.model() {
                // Marked iff the goal mentions s.
                if lg.mentions_start(goal) {
                    let marks: usize = m.roots().iter().map(ftree::Tree::mark_count).sum();
                    prop_assert_eq!(marks, 1, "bad mark count in {}", m);
                }
                let mc = ModelChecker::new_row(m.roots());
                prop_assert!(
                    !mc.eval(&lg, goal).is_empty(),
                    "model {} fails check for {}",
                    m,
                    lg.display(goal)
                );
            }
        }
    }

    /// Dispatch through `solve_with` agrees across every `BackendChoice`
    /// (so the dual cross-check never reports a disagreement on feasible
    /// formulas), models pass the model checker, and each run's telemetry
    /// names the backend that produced it.
    #[test]
    fn backend_dispatch_agrees(shape in arb_shape(2)) {
        let mut lg = Logic::new();
        let goal = build(&mut lg, &shape);
        prop_assume!(cycle_free(&lg, goal));
        // Keep the explicit enumerations tractable (dual runs one too).
        let prep = solver::Prepared::new(&mut lg, goal);
        prop_assume!(prep.lean.diam_entries().count() <= 10);

        let reference = solve_symbolic(&mut lg, goal).outcome.is_satisfiable();
        for choice in BackendChoice::ALL {
            let solved = solve_with(
                &mut lg,
                goal,
                choice,
                &SymbolicOptions::default(),
                &Limits::default(),
            )
            .unwrap_or_else(|e| panic!("{choice} failed on {}: {e}", lg.display(goal)));
            prop_assert_eq!(
                solved.outcome.is_satisfiable(),
                reference,
                "{} disagrees with symbolic on {}",
                choice,
                lg.display(goal)
            );
            prop_assert_eq!(solved.stats.telemetry.backend_name(), choice.as_str());
            if let Some(m) = solved.outcome.model() {
                let mc = ModelChecker::new_row(m.roots());
                prop_assert!(
                    !mc.eval(&lg, goal).is_empty(),
                    "{}: model {} fails check for {}",
                    choice,
                    m,
                    lg.display(goal)
                );
            }
        }
    }

    /// Negation flips satisfiability of valid formulas (one of ϕ, ¬ϕ is
    /// always satisfiable; both are iff ϕ is contingent). We check the
    /// weaker, always-true direction: ϕ unsat ⇒ ¬ϕ sat.
    #[test]
    fn negation_soundness(shape in arb_shape(2)) {
        let mut lg = Logic::new();
        let goal = build(&mut lg, &shape);
        prop_assume!(cycle_free(&lg, goal));
        let neg = lg.not(goal);
        prop_assume!(cycle_free(&lg, neg));
        let prep = solver::Prepared::new(&mut lg, goal);
        let prep_n = solver::Prepared::new(&mut lg, neg);
        prop_assume!(prep.lean.diam_entries().count() <= 8);
        prop_assume!(prep_n.lean.diam_entries().count() <= 8);

        let s_goal = solve_symbolic(&mut lg, goal);
        let s_neg = solve_symbolic(&mut lg, neg);
        prop_assert!(
            s_goal.outcome.is_satisfiable() || s_neg.outcome.is_satisfiable(),
            "both {} and its negation unsat",
            lg.display(goal)
        );
    }

    /// One long-lived BDD manager reused (via generational reset) across
    /// two unrelated problems yields verdicts — and models — identical to
    /// fresh-manager runs, with per-run telemetry counters that restart
    /// at each reset.
    #[test]
    fn reused_manager_matches_fresh_runs(s1 in arb_shape(2), s2 in arb_shape(2)) {
        let mut shared = bdd::Bdd::new();
        let opts = SymbolicOptions::default();
        let mut verdicts_shared = Vec::new();
        let mut verdicts_fresh = Vec::new();
        for shape in [&s1, &s2] {
            let mut lg = Logic::new();
            let goal = build(&mut lg, shape);
            prop_assume!(cycle_free(&lg, goal));
            let reused = solver::solve_symbolic_in(&mut lg, goal, &opts, &mut shared, &Limits::none())
                .expect("unbounded run cannot exhaust");
            if let Some(m) = reused.outcome.model() {
                let mc = ModelChecker::new_row(m.roots());
                prop_assert!(
                    !mc.eval(&lg, goal).is_empty(),
                    "reused-manager model {} fails check for {}",
                    m,
                    lg.display(goal)
                );
            }
            // Per-run counters restart at reset: the live count never
            // exceeds this run's own peak.
            let counters = reused.stats.telemetry.bdd_counters().expect("symbolic");
            prop_assert!(reused.stats.telemetry.bdd_nodes().unwrap() <= counters.peak_nodes);
            verdicts_shared.push(reused.outcome.is_satisfiable());

            let mut lg = Logic::new();
            let goal = build(&mut lg, shape);
            let fresh = solve_symbolic(&mut lg, goal);
            verdicts_fresh.push(fresh.outcome.is_satisfiable());
        }
        prop_assert_eq!(verdicts_shared, verdicts_fresh);
    }

    /// Resource governance must be invisible when the budgets are
    /// generous: a solve under roomy limits agrees verdict-for-verdict
    /// with the unlimited solve, on every backend.
    #[test]
    fn generous_limits_agree_with_unlimited(shape in arb_shape(2)) {
        let mut lg = Logic::new();
        let goal = build(&mut lg, &shape);
        prop_assume!(cycle_free(&lg, goal));
        // Keep the explicit enumerations tractable (dual runs one too).
        let prep = solver::Prepared::new(&mut lg, goal);
        prop_assume!(prep.lean.diam_entries().count() <= 10);

        let unlimited = solve_symbolic(&mut lg, goal).outcome.is_satisfiable();
        let generous = Limits {
            deadline: Some(Duration::from_secs(300)),
            max_bdd_nodes: Some(100_000_000),
            max_iterations: Some(1_000_000),
            max_lean_diamonds: 16,
            ..Limits::none()
        };
        for choice in BackendChoice::ALL {
            let bounded = solve_with(
                &mut lg,
                goal,
                choice,
                &SymbolicOptions::default(),
                &generous,
            )
            .unwrap_or_else(|e| panic!("{choice} exhausted generous limits on {}: {e}", lg.display(goal)));
            prop_assert_eq!(
                bounded.outcome.is_satisfiable(),
                unlimited,
                "{} under generous limits disagrees with unlimited on {}",
                choice,
                lg.display(goal)
            );
            if let Some(m) = bounded.outcome.model() {
                let mc = ModelChecker::new_row(m.roots());
                prop_assert!(
                    !mc.eval(&lg, goal).is_empty(),
                    "{}: bounded model {} fails check for {}",
                    choice,
                    m,
                    lg.display(goal)
                );
            }
        }
    }

    /// The portfolio race under generous limits returns the symbolic
    /// verdict, and the telemetry names a winner that actually raced.
    #[test]
    fn portfolio_agrees_with_symbolic(shape in arb_shape(2)) {
        let mut lg = Logic::new();
        let goal = build(&mut lg, &shape);
        prop_assume!(cycle_free(&lg, goal));

        let reference = solve_symbolic(&mut lg, goal).outcome.is_satisfiable();
        let generous = Limits {
            deadline: Some(Duration::from_secs(300)),
            max_bdd_nodes: Some(100_000_000),
            max_iterations: Some(1_000_000),
            max_lean_diamonds: 16,
            ..Limits::none()
        };
        let raced_run = solve_with(
            &mut lg,
            goal,
            BackendChoice::Portfolio,
            &SymbolicOptions::default(),
            &generous,
        )
        .unwrap_or_else(|e| panic!("portfolio exhausted generous limits on {}: {e}", lg.display(goal)));
        prop_assert_eq!(
            raced_run.outcome.is_satisfiable(),
            reference,
            "portfolio disagrees with symbolic on {}",
            lg.display(goal)
        );
        let Telemetry::Portfolio { winner, raced, .. } = &raced_run.stats.telemetry else {
            panic!("portfolio run reported {} telemetry", raced_run.stats.telemetry.backend_name());
        };
        prop_assert!(
            raced.contains(winner),
            "winner {} was not among the raced backends {:?}",
            winner,
            raced
        );
        prop_assert!(raced.contains(&"symbolic"), "symbolic always races");
        if let Some(m) = raced_run.outcome.model() {
            let mc = ModelChecker::new_row(m.roots());
            prop_assert!(
                !mc.eval(&lg, goal).is_empty(),
                "portfolio model {} fails check for {}",
                m,
                lg.display(goal)
            );
        }
    }
}

//! `xsat` — the command-line front end of the batch-analysis engine.
//!
//! ```text
//! xsat check <XPATH> [--dtd FILE] [--backend B] [--empty] [--json] [OBS] [LIMITS]
//! xsat compare <XPATH1> <XPATH2> [--dtd FILE] [--backend B] [--op contains|overlap|equiv] [--json] [OBS] [LIMITS]
//! xsat batch <FILE.jsonl> [--threads N] [--backend B] [--summary-only] [OBS] [LIMITS]
//! xsat lint <FILE.jsonl> [--deny RULE]... [--allow RULE]... [--type NAME] [--max-diamonds N] [--json] [OBS] [LIMITS]
//! xsat serve [--tcp ADDR] [--threads N] [--backend B] [SERVE] [OBS] [LIMITS]
//! xsat metrics [FILE.jsonl] [--threads N] [--backend B] [OBS] [LIMITS]
//! OBS:    [--trace-file FILE] [--slow-ms N]
//! LIMITS: [--timeout-ms N] [--max-bdd-nodes N] [--max-lean N]
//! SERVE:  [--max-connections N] [--queue-depth N] [--tenant-inflight N]
//!         [--drain-ms N] [--read-timeout-ms N] [--max-line-bytes N]
//! ```
//!
//! `check` decides satisfiability (default) or emptiness of one query,
//! optionally under a DTD. `compare` decides containment (default),
//! overlap or equivalence of two queries. Both exit 0 when the property
//! holds, 1 when it does not, and 3 when a resource budget ran out before
//! the solve could decide (the `unknown` verdict), so they compose with
//! shell logic.
//!
//! `--backend {symbolic,explicit,witnessed,dual,portfolio}` selects the
//! solver backend (default `symbolic`); `dual` runs the symbolic and
//! explicit backends concurrently and fails loudly if their verdicts ever
//! disagree — the recommended CI configuration — while `portfolio` races
//! every feasible backend under one shared deadline and returns the first
//! verdict, cancelling the losers. For `batch`/`serve` the
//! flag sets the default backend of the engine, which individual requests
//! override with a `"backend"` field; every verdict echoes the backend
//! that produced it.
//!
//! `--timeout-ms`, `--max-bdd-nodes` and `--max-lean` set the engine's
//! default resource limits — wall-clock deadline, BDD node budget, and
//! the lean-diamond cap of the enumerating backends — on every
//! subcommand; individual `batch`/`serve` requests override them with a
//! `"limits"` object. A budget hit reaches clients as
//! `"status":"unknown"` with the exhausted resource named, and such
//! verdicts are never memo-cached.
//!
//! `batch` runs a JSON-lines request file through the parallel executor
//! (one response line per request on stdout, summary on stderr; see the
//! `engine` crate docs for the protocol) and `serve` runs the same
//! protocol as a co-process daemon: JSONL requests on stdin, verdicts
//! streamed to stdout. `serve --tcp ADDR` instead boots the network
//! serving tier (the `serve` crate, docs/SERVING.md): a bounded
//! connection pool, shed-don't-queue admission control, per-tenant
//! workspace namespaces selected by the request's `"tenant"` field, and
//! a graceful drain triggered by the `shutdown` request.
//!
//! Observability (see docs/OBSERVABILITY.md): `--trace-file FILE` streams
//! one JSON event per line — solve begin/end, compile and fixpoint
//! phases, per-iteration steps, limit hits, memo lookups — for every
//! solve of the run; `--slow-ms N` arms the engine's slow-solve ring
//! buffer, capturing the full trace of any solve exceeding N ms
//! (dumpable via the `slowlog` protocol request). `metrics` runs an
//! optional request file and renders the process-wide metrics registry in
//! Prometheus text exposition format on stdout.

use std::io::{BufWriter, Write};
use std::process::ExitCode;
use std::sync::Arc;

use xsat::engine::{BackendChoice, Engine, EngineConfig, JsonlSink, Limits, Request, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "check" => check(rest),
        "compare" => compare(rest),
        "batch" => batch(rest),
        "lint" => lint(rest),
        "serve" => serve(rest),
        "metrics" => metrics(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("xsat: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
xsat — efficient static analysis of XML paths and types

USAGE:
  xsat check <XPATH> [--dtd FILE] [--backend B] [--empty] [--explain] [--json] [LIMITS]
      Decide satisfiability (default) or emptiness (--empty) of a query,
      optionally under the DTD in FILE. Exits 0 when the property holds,
      1 when it does not, 3 when a resource budget ran out (unknown).

  xsat compare <XPATH1> <XPATH2> [--dtd FILE] [--backend B] [--op contains|overlap|equiv] [--explain] [--json] [LIMITS]
      Decide containment (default), overlap or equivalence of two queries,
      optionally under the DTD in FILE. Exit codes as for check.

  --explain (check and compare): additionally print the witness document
      as indented XML — the verified counter-example on a failing
      property, the satisfying model on sat/overlap. Every printed
      document was re-checked against the source formula (and the DTD)
      by the model-checking oracle before being emitted.

  xsat batch <FILE.jsonl> [--threads N] [--backend B] [--summary-only] [LIMITS]
      Run a JSON-lines request file through the parallel batch executor.
      One response line per request on stdout; a summary object on stderr.

  xsat lint <FILE.jsonl> [--deny RULE]... [--allow RULE]... [--type NAME] [--max-diamonds N] [--threads N] [--backend B] [--json] [LIMITS]
      Load the workspace registrations in FILE (dtd/query requests), then
      run the solver-backed lint rules over every registered query:
      dead-step, contradictory-predicate, redundant-union-branch,
      query-shadowing, unreachable-element, wildcard-explosion (catalog:
      docs/LINT.md). --deny RULE raises a rule to error severity,
      --allow RULE disables it; --type names the governing DTD when
      several are registered; --max-diamonds overrides the
      wildcard-explosion threshold. Exits 0 when no error-severity
      findings remain, 1 otherwise, 2 on workspace/config errors.

  xsat serve [--tcp ADDR] [--threads N] [--backend B] [SERVE] [LIMITS]
      Speak the JSONL protocol as a co-process: requests on stdin, one
      verdict per line on stdout (flushed per line). With --tcp ADDR,
      listen on ADDR instead (e.g. 127.0.0.1:7600) and serve the same
      protocol over sockets — bounded connection pool, shed-don't-queue
      admission control, per-tenant workspaces (request field
      \"tenant\"), and graceful drain on the `shutdown` request. See
      docs/SERVING.md.

Serving tier (SERVE, with serve --tcp only):
  --max-connections N  concurrent-connection bound (default 64); excess
                       connections get one error line and are closed
  --queue-depth N      admission queue bound (default 256); requests
                       beyond it are shed with status \"unknown\",
                       resource \"shed\" — never silently queued
  --tenant-inflight N  per-tenant in-flight cap (default 64)
  --drain-ms N         shutdown drain deadline in ms (default 5000);
                       work still running after it is cancelled
  --read-timeout-ms N  per-connection idle timeout in ms (default
                       30000); 0 waits forever
  --max-line-bytes N   request-line size cap (default 1 MiB)

  xsat metrics [FILE.jsonl] [--threads N] [--backend B] [LIMITS]
      Run the (optional) JSON-lines request file, then render the
      process-wide metrics registry — solve counts and latency histograms
      by op x backend x status, memo-cache traffic, unknowns by exhausted
      resource, BDD peak nodes — in Prometheus text format on stdout.

Observability (on every subcommand; see docs/OBSERVABILITY.md):
  --trace-file FILE  stream per-solve trace events (solve begin/end,
                     phases, fixpoint steps, limit hits, memo lookups) to
                     FILE as JSON lines, flushed per event
  --slow-ms N        capture the full trace of any solve slower than N ms
                     in the engine's slow-solve ring buffer; dump it with
                     the `slowlog` protocol request

Backends (--backend, default symbolic):
  symbolic    the BDD-based production algorithm (paper §7)
  explicit    the enumerated reference algorithm (paper §6.2)
  witnessed   the literal Fig 16 algorithm with explicit witness sets
  dual        run symbolic + explicit concurrently and fail loudly on any
              verdict disagreement (recommended for CI)
  portfolio   race every feasible backend under one shared deadline,
              return the first verdict and cancel the losers

Resource limits (LIMITS, on every subcommand — the engine defaults, which
individual batch/serve requests override with a \"limits\" object):
  --timeout-ms N     wall-clock deadline per solve, in milliseconds
  --max-bdd-nodes N  budget on live BDD nodes of the symbolic backend
  --max-lean N       lean-diamond cap of the enumerating backends
                     (default 16); oversized leans come back unknown
A budget hit is reported as \"status\":\"unknown\" with the exhausted
resource named; unknown verdicts are never memo-cached.

The JSONL protocol (see the `engine` crate docs and docs/PROTOCOL.md):
  {\"op\":\"dtd\",\"name\":\"d1\",\"source\":\"<!ELEMENT a (b*)> <!ELEMENT b EMPTY>\"}
  {\"op\":\"query\",\"name\":\"q1\",\"xpath\":\"a/b\"}
  {\"op\":\"contains\",\"lhs\":\"q1\",\"rhs\":\"a/*\",\"type\":\"d1\"}
  {\"op\":\"sat\",\"query\":\"q1\",\"limits\":{\"timeout_ms\":250,\"max_bdd_nodes\":200000}}
  {\"op\":\"covers\",\"query\":\"child::*\",\"by\":[\"child::a\",\"child::*[not(self::a)]\"]}
  {\"op\":\"typecheck\",\"query\":\"child::x\",\"input\":\"din\",\"output\":\"dout\"}
";

/// Option parsing shared by the subcommands: positional args plus
/// `--flag [value]` options.
struct Opts {
    positional: Vec<String>,
    dtd: Option<String>,
    op: Option<String>,
    backend: Option<BackendChoice>,
    limits: Limits,
    threads: usize,
    json: bool,
    empty: bool,
    explain: bool,
    summary_only: bool,
    trace_file: Option<String>,
    slow_ms: Option<u64>,
    deny: Vec<String>,
    allow: Vec<String>,
    type_name: Option<String>,
    max_diamonds: Option<usize>,
    tcp: Option<String>,
    max_connections: Option<usize>,
    queue_depth: Option<usize>,
    tenant_inflight: Option<usize>,
    drain_ms: Option<u64>,
    read_timeout_ms: Option<u64>,
    max_line_bytes: Option<usize>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        positional: Vec::new(),
        dtd: None,
        op: None,
        backend: None,
        limits: Limits::default(),
        threads: 0,
        json: false,
        empty: false,
        explain: false,
        summary_only: false,
        trace_file: None,
        slow_ms: None,
        deny: Vec::new(),
        allow: Vec::new(),
        type_name: None,
        max_diamonds: None,
        tcp: None,
        max_connections: None,
        queue_depth: None,
        tenant_inflight: None,
        drain_ms: None,
        read_timeout_ms: None,
        max_line_bytes: None,
    };
    // Numeric serve flags share one parse-and-store shape.
    fn num<T: std::str::FromStr>(flag: &str, arg: Option<&String>) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        arg.ok_or(format!("{flag} needs a number"))?
            .parse()
            .map_err(|e| format!("{flag}: {e}"))
    }
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dtd" => {
                let path = it.next().ok_or("--dtd needs a file argument")?;
                let source = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                opts.dtd = Some(source);
            }
            "--op" => opts.op = Some(it.next().ok_or("--op needs an argument")?.clone()),
            "--backend" => {
                let name = it.next().ok_or("--backend needs an argument")?;
                opts.backend = Some(name.parse()?);
            }
            "--threads" => {
                opts.threads = it
                    .next()
                    .ok_or("--threads needs a number")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--timeout-ms needs a number of milliseconds")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?;
                opts.limits.deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--max-bdd-nodes" => {
                let n: usize = it
                    .next()
                    .ok_or("--max-bdd-nodes needs a number")?
                    .parse()
                    .map_err(|e| format!("--max-bdd-nodes: {e}"))?;
                opts.limits.max_bdd_nodes = Some(n);
            }
            "--max-lean" => {
                let n: usize = it
                    .next()
                    .ok_or("--max-lean needs a number")?
                    .parse()
                    .map_err(|e| format!("--max-lean: {e}"))?;
                opts.limits.max_lean_diamonds = n;
            }
            "--trace-file" => {
                opts.trace_file = Some(
                    it.next()
                        .ok_or("--trace-file needs a file argument")?
                        .clone(),
                );
            }
            "--slow-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--slow-ms needs a number of milliseconds")?
                    .parse()
                    .map_err(|e| format!("--slow-ms: {e}"))?;
                opts.slow_ms = Some(ms);
            }
            "--deny" => opts
                .deny
                .push(it.next().ok_or("--deny needs a rule id")?.clone()),
            "--allow" => opts
                .allow
                .push(it.next().ok_or("--allow needs a rule id")?.clone()),
            "--type" => opts.type_name = Some(it.next().ok_or("--type needs a name")?.clone()),
            "--max-diamonds" => {
                let n: usize = it
                    .next()
                    .ok_or("--max-diamonds needs a number")?
                    .parse()
                    .map_err(|e| format!("--max-diamonds: {e}"))?;
                opts.max_diamonds = Some(n);
            }
            "--tcp" => {
                opts.tcp = Some(it.next().ok_or("--tcp needs a listen address")?.clone());
            }
            "--max-connections" => {
                opts.max_connections = Some(num("--max-connections", it.next())?);
            }
            "--queue-depth" => opts.queue_depth = Some(num("--queue-depth", it.next())?),
            "--tenant-inflight" => {
                opts.tenant_inflight = Some(num("--tenant-inflight", it.next())?);
            }
            "--drain-ms" => opts.drain_ms = Some(num("--drain-ms", it.next())?),
            "--read-timeout-ms" => {
                opts.read_timeout_ms = Some(num("--read-timeout-ms", it.next())?);
            }
            "--max-line-bytes" => {
                opts.max_line_bytes = Some(num("--max-line-bytes", it.next())?);
            }
            "--json" => opts.json = true,
            "--empty" => opts.empty = true,
            "--explain" => opts.explain = true,
            "--summary-only" => opts.summary_only = true,
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            _ => opts.positional.push(arg.clone()),
        }
    }
    Ok(opts)
}

fn engine_with(threads: usize, opts: &Opts) -> Result<Engine, String> {
    let trace_sink = match &opts.trace_file {
        Some(path) => Some(Arc::new(
            JsonlSink::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        ) as Arc<dyn xsat::engine::Sink>),
        None => None,
    };
    Ok(Engine::with_config(EngineConfig {
        threads,
        backend: opts.backend.unwrap_or_default(),
        limits: opts.limits.clone(),
        trace_sink,
        slow_solve_ms: opts.slow_ms,
        ..EngineConfig::default()
    }))
}

fn check(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    let [query] = opts.positional.as_slice() else {
        return Err("check needs exactly one XPath argument".into());
    };
    let op = if opts.empty { "empty" } else { "sat" };
    let line = request_value(op, &[("query", query)], opts.dtd.as_deref(), opts.backend);
    run_one(line, &opts)
}

fn compare(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    let [lhs, rhs] = opts.positional.as_slice() else {
        return Err("compare needs exactly two XPath arguments".into());
    };
    let op = match opts.op.as_deref() {
        None | Some("contains") => "contains",
        Some("overlap") => "overlap",
        Some("equiv") => "equiv",
        Some(other) => return Err(format!("unknown --op `{other}`")),
    };
    let line = request_value(
        op,
        &[("lhs", lhs), ("rhs", rhs)],
        opts.dtd.as_deref(),
        opts.backend,
    );
    run_one(line, &opts)
}

/// Builds a protocol request object; a DTD source (if any) rides along as
/// the inline `type` reference and a backend choice as the `backend`
/// field.
fn request_value(
    op: &str,
    fields: &[(&str, &str)],
    dtd: Option<&str>,
    backend: Option<BackendChoice>,
) -> Value {
    let mut obj = vec![("op".to_owned(), Value::from(op))];
    for (k, v) in fields {
        obj.push(((*k).to_owned(), Value::from(*v)));
    }
    if let Some(src) = dtd {
        obj.push(("type".to_owned(), Value::from(src)));
    }
    if let Some(b) = backend {
        obj.push(("backend".to_owned(), Value::from(b.as_str())));
    }
    Value::Obj(obj)
}

fn run_one(request: Value, opts: &Opts) -> Result<ExitCode, String> {
    let req = Request::from_value(&request)?;
    let mut engine = engine_with(if opts.threads == 0 { 1 } else { opts.threads }, opts)?;
    let response = engine.execute(&req);
    if response.get("ok").and_then(Value::as_bool) != Some(true) {
        return Err(response
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("request failed")
            .to_owned());
    }
    if opts.json {
        println!("{}", response.to_json());
    } else {
        print_human(&response, opts.explain);
    }
    match response.get("status").and_then(Value::as_str) {
        Some("holds") => Ok(ExitCode::SUCCESS),
        // A budget ran out: neither proved nor refuted.
        Some("unknown") => Ok(ExitCode::from(3)),
        _ => Ok(ExitCode::FAILURE),
    }
}

fn print_human(response: &Value, explain: bool) {
    let op = response.get("op").and_then(Value::as_str).unwrap_or("?");
    let backend = response
        .get("backend")
        .and_then(Value::as_str)
        .unwrap_or("?");
    let status = response.get("status").and_then(Value::as_str);
    match status {
        Some("holds") => println!("{op} [{backend}]: holds"),
        Some("fails") => println!("{op} [{backend}]: does NOT hold"),
        Some("unknown") => {
            let reason = response
                .get("reason")
                .and_then(Value::as_str)
                .unwrap_or("resource exhausted");
            println!("{op} [{backend}]: UNKNOWN — {reason}");
            println!("hint: retry with a larger --timeout-ms / --max-bdd-nodes / --max-lean");
            return;
        }
        _ => println!("{}", response.to_json()),
    }
    if let Some(xml) = response.get("counter_example").and_then(Value::as_str) {
        let role = match op {
            // For these ops the witness *establishes* the property.
            "sat" | "overlap" => "witness",
            _ => "counter-example",
        };
        println!("{role}: {xml}");
        if explain {
            // Prefer the verdict's own pretty rendering (the verified
            // `counterexample` object of `fails` responses); a holds-side
            // witness is re-rendered from its compact XML.
            let pretty = response
                .get("counterexample")
                .and_then(|ce| ce.get("pretty"))
                .and_then(Value::as_str)
                .map(str::to_owned)
                .or_else(|| {
                    xsat::ftree::Tree::parse_xml(xml)
                        .ok()
                        .map(|t| t.to_xml_pretty())
                });
            if let Some(pretty) = pretty {
                println!("{role} document (s=\"1\" marks the context node):");
                println!("{pretty}");
            }
        }
    }
    if let Some(stats) = response.get("stats") {
        let pick = |k: &str| stats.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        println!(
            "lean: {} atoms, {} iterations, solve {:.3} ms, total {:.3} ms",
            pick("lean_size"),
            pick("iterations"),
            pick("solve_ms"),
            response
                .get("wall_ms")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
        );
        // BDD kernel telemetry, when a symbolic side was involved (for
        // dual verdicts the nested symbolic payload).
        let telemetry = stats.get("telemetry");
        let symbolic = telemetry
            .filter(|t| t.get("bdd_nodes").is_some())
            .or_else(|| telemetry.and_then(|t| t.get("symbolic")));
        if let Some(sym) = symbolic {
            let p = |k: &str| sym.get(k).and_then(Value::as_f64).unwrap_or(0.0);
            println!(
                "bdd: {} live nodes (peak {}, created {}), table load {:.3}, cache hit rate {:.3}",
                p("bdd_nodes"),
                p("peak_nodes"),
                p("created_nodes"),
                p("load_factor"),
                p("cache_hit_rate"),
            );
        }
    }
}

fn batch(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err("batch needs exactly one JSONL file argument".into());
    };
    let input = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut engine = engine_with(opts.threads, &opts)?;
    let outcome = engine.run_batch_lines(&input);
    if !opts.summary_only {
        let stdout = std::io::stdout();
        let mut out = BufWriter::new(stdout.lock());
        for response in &outcome.responses {
            writeln!(out, "{}", response.to_json()).map_err(|e| e.to_string())?;
        }
        out.flush().map_err(|e| e.to_string())?;
    }
    eprintln!("{}", outcome.stats.to_value().to_json());
    if outcome.stats.errors > 0 {
        return Ok(ExitCode::from(2));
    }
    Ok(ExitCode::SUCCESS)
}

fn lint(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err("lint needs exactly one workspace JSONL file argument".into());
    };
    let input = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut engine = engine_with(opts.threads, &opts)?;
    // Load the workspace: the file may also carry decision requests (their
    // verdicts are discarded here but warm the shared memo cache), yet any
    // failing line is a broken workspace and stops the lint.
    let outcome = engine.run_batch_lines(&input);
    if outcome.stats.errors > 0 {
        for response in &outcome.responses {
            if response.get("ok").and_then(Value::as_bool) != Some(true) {
                eprintln!(
                    "xsat lint: workspace error: {}",
                    response
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("request failed"),
                );
            }
        }
        return Ok(ExitCode::from(2));
    }
    let mut fields = vec![("op".to_owned(), Value::from("lint"))];
    let mut rules: Vec<(String, Value)> = Vec::new();
    for rule in &opts.deny {
        rules.push((rule.clone(), Value::from("error")));
    }
    for rule in &opts.allow {
        rules.push((rule.clone(), Value::from("off")));
    }
    if !rules.is_empty() {
        fields.push(("rules".to_owned(), Value::Obj(rules)));
    }
    if let Some(name) = &opts.type_name {
        fields.push(("type".to_owned(), Value::from(name.as_str())));
    }
    if let Some(n) = opts.max_diamonds {
        fields.push(("max_diamonds".to_owned(), Value::from(n)));
    }
    if let Some(b) = opts.backend {
        fields.push(("backend".to_owned(), Value::from(b.as_str())));
    }
    let req = Request::from_value(&Value::Obj(fields))?;
    let response = engine.execute(&req);
    if response.get("ok").and_then(Value::as_bool) != Some(true) {
        return Err(response
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("lint failed")
            .to_owned());
    }
    if opts.json {
        println!("{}", response.to_json());
    } else {
        print_lint_human(&response);
    }
    let errors = response
        .get("errors")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    Ok(if errors > 0.0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// Renders lint findings rustc-style: one `severity[rule]` headline per
/// finding with its span and solver evidence indented below, then a
/// one-line summary.
fn print_lint_human(response: &Value) {
    let empty = Vec::new();
    let diagnostics = match response.get("diagnostics") {
        Some(Value::Arr(items)) => items,
        _ => &empty,
    };
    for d in diagnostics {
        let s = |k: &str| d.get(k).and_then(Value::as_str).unwrap_or("?");
        println!(
            "{}[{}] {}: {}",
            s("severity"),
            s("rule"),
            s("subject"),
            s("message")
        );
        if let Some(span) = d.get("span").and_then(Value::as_str) {
            match d.get("step").and_then(Value::as_f64) {
                Some(step) => println!("  --> {} step {step}: `{span}`", s("subject")),
                None => println!("  --> {}: `{span}`", s("subject")),
            }
        }
        if let Some(ev) = d.get("evidence") {
            let op = ev.get("op").and_then(Value::as_str).unwrap_or("?");
            if let Some(xml) = ev.get("witness").and_then(Value::as_str) {
                println!("  evidence: oracle-verified {op} witness {xml}");
            } else if let Some(status) = ev.get("status").and_then(Value::as_str) {
                println!("  evidence: {op} verdict `{status}`");
            }
        }
    }
    let n = |k: &str| response.get(k).and_then(Value::as_f64).unwrap_or(0.0) as usize;
    let wall = response
        .get("wall_ms")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    if response.get("status").and_then(Value::as_str) == Some("clean") {
        println!("lint: clean — {} probes in {wall:.3} ms", n("probes"));
    } else {
        println!(
            "lint: {} findings ({} errors, {} warnings, {} infos) — {} probes in {wall:.3} ms",
            n("findings"),
            n("errors"),
            n("warnings"),
            n("infos"),
            n("probes"),
        );
    }
}

fn serve(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    if !opts.positional.is_empty() {
        return Err("serve takes no positional arguments".into());
    }
    if let Some(addr) = &opts.tcp {
        return serve_tcp(addr, &opts);
    }
    let mut engine = engine_with(opts.threads, &opts)?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    engine
        .serve(stdin.lock(), stdout.lock())
        .map_err(|e| e.to_string())?;
    Ok(ExitCode::SUCCESS)
}

/// Boots the TCP serving tier on `addr` and blocks until a client's
/// `shutdown` request drains it.
fn serve_tcp(addr: &str, opts: &Opts) -> Result<ExitCode, String> {
    use std::time::Duration;
    let defaults = xsat::serve::ServerConfig::default();
    let config = xsat::serve::ServerConfig {
        threads: opts.threads,
        backend: opts.backend.unwrap_or_default(),
        limits: opts.limits.clone(),
        max_connections: opts.max_connections.unwrap_or(defaults.max_connections),
        queue_depth: opts.queue_depth.unwrap_or(defaults.queue_depth),
        tenant_inflight: opts.tenant_inflight.unwrap_or(defaults.tenant_inflight),
        read_timeout: match opts.read_timeout_ms {
            // `--read-timeout-ms 0` disables the idle timeout entirely.
            Some(0) => None,
            Some(ms) => Some(Duration::from_millis(ms)),
            None => defaults.read_timeout,
        },
        drain_deadline: opts
            .drain_ms
            .map_or(defaults.drain_deadline, Duration::from_millis),
        max_line_bytes: opts.max_line_bytes.unwrap_or(defaults.max_line_bytes),
        ..defaults
    };
    let server = xsat::serve::Server::bind(config, addr).map_err(|e| e.to_string())?;
    eprintln!("xsat: serving JSONL protocol on {}", server.local_addr());
    let report = server.wait();
    eprintln!(
        "xsat: drained ({} cancelled, {} pending) — bye",
        if report.forced { "stragglers" } else { "none" },
        report.pending
    );
    Ok(ExitCode::SUCCESS)
}

fn metrics(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    match opts.positional.as_slice() {
        [] => {}
        [path] => {
            let input =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut engine = engine_with(opts.threads, &opts)?;
            let outcome = engine.run_batch_lines(&input);
            eprintln!("{}", outcome.stats.to_value().to_json());
        }
        _ => return Err("metrics takes at most one JSONL file argument".into()),
    }
    print!("{}", xsat::obs::metrics().render_prometheus());
    Ok(ExitCode::SUCCESS)
}

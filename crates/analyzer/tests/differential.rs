//! Randomized differential testing of the four user-facing backends.
//!
//! Every generated decision problem — random small DTDs, random XPath
//! queries, every operation of the [`Problem`] algebra — is posed to the
//! `symbolic`, `explicit`, `witnessed` and `portfolio` backends, and their
//! verdicts must agree wherever they decide (an enumerating backend may
//! answer `unknown` on an oversized lean; that is a budget, not a
//! disagreement).
//!
//! Every produced witness is additionally replayed through *independent*
//! oracles that share no code with the satisfiability pipeline:
//!
//! * the XPath set semantics of Fig 5/6 ([`xpath::eval_on_tree`]) — the
//!   marked context node must actually select/refute what the verdict
//!   claims;
//! * [`Dtd::validates`] — typed witnesses must inhabit their DTD.
//!
//! (The analyzer itself already re-checks every witness through the
//! [`mulogic::model_check`] oracle before returning it — a rejection
//! surfaces as `SolveError::WitnessInvalid`, which this test treats as an
//! immediate failure.)
//!
//! The generators are seeded deterministically by test name (see
//! `vendor/proptest`), so CI runs a fixed, reproducible corpus; the case
//! count is pinned at 256 and overridable via `PROPTEST_CASES`.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use analyzer::{Analyzer, BackendChoice, Limits, Problem, SolveError};
use ftree::FocusedTree;
use proptest::prelude::*;
use solver::Model;
use treetypes::Dtd;
use xpath::Expr;

const AXES: [&str; 5] = [
    "child",
    "descendant",
    "self",
    "foll-sibling",
    "prec-sibling",
];
const TESTS: [&str; 4] = ["a", "b", "c", "*"];

fn axis() -> impl Strategy<Value = &'static str> {
    prop::sample::select(&AXES[..])
}

fn node_test() -> impl Strategy<Value = &'static str> {
    prop::sample::select(&TESTS[..])
}

fn predicate() -> BoxedStrategy<String> {
    prop_oneof![
        3 => Just(String::new()),
        1 => (axis(), node_test()).prop_map(|(ax, nt)| format!("[{ax}::{nt}]")),
        1 => (axis(), node_test()).prop_map(|(ax, nt)| format!("[not({ax}::{nt})]")),
    ]
    .boxed()
}

fn step() -> impl Strategy<Value = String> {
    (axis(), node_test(), predicate()).prop_map(|(ax, nt, pred)| format!("{ax}::{nt}{pred}"))
}

fn query() -> impl Strategy<Value = Arc<Expr>> {
    prop::collection::vec(step(), 1..=3).prop_map(|steps| {
        let src = steps.join("/");
        Arc::new(xpath::parse(&src).expect("generated query parses"))
    })
}

// Content models form a DAG (r → a → b → c, c always EMPTY), so every
// generated DTD terminates and parses.
const R_MODELS: [&str; 5] = ["(a*, b*)", "(a | b)", "(a, b?)", "(a+, c?)", "(b*)"];
const A_MODELS: [&str; 5] = ["(b*)", "(b | c)", "EMPTY", "(b?, c?)", "(c+)"];
const B_MODELS: [&str; 3] = ["(c*)", "EMPTY", "(c?)"];

fn dtd() -> impl Strategy<Value = Arc<Dtd>> {
    (
        prop::sample::select(&R_MODELS[..]),
        prop::sample::select(&A_MODELS[..]),
        prop::sample::select(&B_MODELS[..]),
    )
        .prop_map(|(r, a, b)| {
            let src =
                format!("<!ELEMENT r {r}> <!ELEMENT a {a}> <!ELEMENT b {b}> <!ELEMENT c EMPTY>");
            Arc::new(Dtd::parse(&src).expect("generated dtd parses"))
        })
}

fn maybe_dtd() -> BoxedStrategy<Option<Arc<Dtd>>> {
    prop_oneof![
        1 => Just(None),
        1 => dtd().prop_map(Some),
    ]
    .boxed()
}

fn problem() -> impl Strategy<Value = Problem> {
    (0..7u32, query(), query(), maybe_dtd(), dtd(), dtd()).prop_map(
        |(op, q1, q2, ty, din, dout)| match op {
            0 => Problem::sat(q1, ty),
            1 => Problem::empty(q1, ty),
            2 => Problem::contains(q1, ty.clone(), q2, ty),
            3 => Problem::overlap(q1, ty.clone(), q2, ty),
            4 => Problem::equiv(q1, ty.clone(), q2, ty),
            5 => Problem::covers(q1, ty, [q2]),
            _ => Problem::type_check(q1, din, dout),
        },
    )
}

/// All four user-facing backends of the differential panel.
const BACKENDS: [BackendChoice; 4] = [
    BackendChoice::Symbolic,
    BackendChoice::Explicit,
    BackendChoice::Witnessed,
    BackendChoice::Portfolio,
];

/// A tight-but-honest budget: the panel must stay fast across hundreds of
/// cases, and an exhausted budget is a skip, not a failure — agreement is
/// only required among the backends that decide.
fn limits() -> Limits {
    Limits {
        deadline: Some(Duration::from_millis(250)),
        ..Limits::default()
    }
}

fn foci_set(found: Vec<FocusedTree>) -> HashSet<FocusedTree> {
    found.into_iter().collect()
}

/// The XPath-semantics oracle for one witness model: checks the claim the
/// verdict makes about the witness using the Fig 5/6 interpreter, which
/// shares no code with the satisfiability solvers. Returns an error
/// message when the oracle disagrees. Multi-rooted or multi-marked models
/// fall outside the interpreter's domain and are skipped (`Ok`).
fn xpath_oracle(p: &Problem, holds: bool, m: &Model) -> Result<(), String> {
    let [root] = m.roots() else { return Ok(()) };
    if root.mark_count() != 1 {
        return Ok(());
    }
    let sel = |e: &Expr| foci_set(xpath::eval_on_tree(e, root));
    match p {
        Problem::Sat { query, .. } if holds && sel(query).is_empty() => {
            return Err("sat witness selects nothing".into());
        }
        Problem::Empty { query, .. } if !holds && sel(query).is_empty() => {
            return Err("emptiness counter-example selects nothing".into());
        }
        Problem::Overlap { lhs, rhs, .. }
            if holds && sel(lhs).intersection(&sel(rhs)).next().is_none() =>
        {
            return Err("overlap witness has no common selected node".into());
        }
        Problem::Contains { lhs, rhs, .. }
            if !holds && sel(lhs).difference(&sel(rhs)).next().is_none() =>
        {
            return Err("containment counter-example refutes nothing".into());
        }
        Problem::Equiv { lhs, rhs, .. } if !holds => {
            let (sl, sr) = (sel(lhs), sel(rhs));
            if sl == sr {
                return Err("equivalence counter-example separates nothing".into());
            }
        }
        Problem::Covers { query, by, .. } if !holds => {
            let mut uncovered = sel(query);
            for (e, _) in by {
                uncovered = uncovered.difference(&sel(e)).cloned().collect();
            }
            if uncovered.is_empty() {
                return Err("coverage counter-example is fully covered".into());
            }
        }
        _ => {}
    }
    Ok(())
}

/// The DTDs a witness of `p` must inhabit (the positively-occurring type
/// slots — mirrors the analyzer's own choice, but checked independently
/// here via `Dtd::validates`).
fn governing_dtds(p: &Problem, holds: bool) -> Vec<Arc<Dtd>> {
    match p {
        Problem::Sat { ty, .. } | Problem::Empty { ty, .. } | Problem::Covers { ty, .. } => {
            ty.iter().cloned().collect()
        }
        Problem::Contains { ltype, rtype, .. } | Problem::Equiv { ltype, rtype, .. } => {
            // A containment witness inhabits the failing direction's left
            // type; for `equiv` either direction may have failed, and the
            // generator uses one type for both sides, so this stays exact.
            ltype.iter().chain(rtype.iter()).take(1).cloned().collect()
        }
        Problem::Overlap { ltype, rtype, .. } if holds => {
            ltype.iter().chain(rtype.iter()).cloned().collect()
        }
        Problem::TypeCheck { input, .. } => vec![input.clone()],
        Problem::Overlap { .. } => Vec::new(),
    }
}

/// Pose `p` to one backend and run the witness oracles on the outcome.
/// `Ok(None)` means the backend ran out of budget (a skip); `Err` carries
/// a human-readable bug report.
fn run_backend(p: &Problem, backend: BackendChoice) -> Result<Option<bool>, String> {
    let mut az = Analyzer::new();
    az.set_backend(backend);
    match az.solve(p, &limits()) {
        Ok(a) => {
            if let Some(m) = &a.counter_example {
                if let Err(msg) = xpath_oracle(p, a.holds, m) {
                    return Err(format!(
                        "{backend}: {msg}\n  problem: {p:?}\n  witness: {}",
                        m.xml()
                    ));
                }
                if let [root] = m.roots() {
                    for dtd in governing_dtds(p, a.holds) {
                        if !dtd.validates(root) {
                            return Err(format!(
                                "{backend}: witness violates its DTD\n  problem: {p:?}\n  witness: {}",
                                m.xml()
                            ));
                        }
                    }
                }
            }
            Ok(Some(a.holds))
        }
        // An exhausted budget is a skip for this backend only.
        Err(SolveError::ResourceExhausted { .. }) => Ok(None),
        // Disagreements and oracle-rejected witnesses are bugs.
        Err(e) => Err(format!("{backend}: solver error {e}\n  problem: {p:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The panel: all four backends agree on every decided verdict, and
    /// every witness passes the independent XPath and DTD oracles. The
    /// backends run concurrently — each on its own [`Analyzer`] — so a
    /// case costs the slowest backend, not the sum of all four.
    #[test]
    fn backends_agree_and_witnesses_check_out(p in problem()) {
        let outcomes: Vec<(BackendChoice, Result<Option<bool>, String>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = BACKENDS
                    .iter()
                    .map(|&backend| {
                        let p = &p;
                        (backend, scope.spawn(move || run_backend(p, backend)))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(backend, h)| (backend, h.join().expect("backend panicked")))
                    .collect()
            });

        let mut verdicts: Vec<(BackendChoice, bool)> = Vec::new();
        for (backend, outcome) in outcomes {
            match outcome {
                Ok(Some(holds)) => verdicts.push((backend, holds)),
                Ok(None) => {}
                Err(msg) => return Err(proptest::test_runner::TestCaseError::Fail(msg)),
            }
        }
        prop_assert!(!verdicts.is_empty(), "no backend decided {:?}", &p);
        let (b0, h0) = verdicts[0];
        for &(b, h) in &verdicts[1..] {
            prop_assert_eq!(
                h0, h,
                "verdict disagreement on {:?}: {} says {}, {} says {}",
                &p, b0, h0, b, h
            );
        }
    }
}

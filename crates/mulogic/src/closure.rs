//! Fisher–Ladner closure `cl(ψ)` and the lean `Lean(ψ)` (§6.1).
//!
//! The closure is the set of subformulas of ψ where fixpoints are unwound
//! once (`→e` relation). Every formula of `cl*(ψ)` is a boolean combination
//! of the *lean*:
//!
//! ```text
//! Lean(ψ) = {⟨a⟩⊤ | a ∈ {1,2,1̄,2̄}} ∪ Σ(ψ) ∪ {σx} ∪ {s} ∪ {⟨a⟩ϕ ∈ cl(ψ)}
//! ```
//!
//! where `σx` is a fresh name standing for every label not occurring in ψ.
//! A ψ-type is a subset of the lean subject to the consistency constraints
//! enforced by the solver. The *order* of lean atoms matters for the
//! BDD-based solver: §7.4 reports that a breadth-first traversal order of ψ,
//! which keeps sister subformulas close, performs best — that is the order
//! produced here.

use std::collections::HashMap;

use ftree::Label;

use crate::syntax::{Formula, FormulaKind, Program};
use crate::Logic;

/// One atom of the lean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeanAtom {
    /// `⟨a⟩⊤` — a topological proposition: an `a`-neighbour exists.
    DiamTrue(Program),
    /// An atomic proposition σ (one of them is the fresh `σx`).
    Prop(Label),
    /// The start proposition `s`.
    Start,
    /// An existential `⟨a⟩ϕ` from the closure, with `ϕ ≠ ⊤`.
    Diam(Program, Formula),
}

/// The Fisher–Ladner closure of a µ-only closed formula.
#[derive(Debug)]
pub struct Closure {
    formulas: Vec<Formula>,
}

impl Closure {
    /// Computes `cl(ψ)` in breadth-first discovery order.
    ///
    /// # Panics
    ///
    /// Panics if ψ contains a greatest fixpoint (run
    /// [`Logic::collapse_nu`] first) or a free variable.
    pub fn compute(lg: &mut Logic, psi: Formula) -> Closure {
        assert!(lg.is_closed(psi), "closure requires a closed formula");
        let mut seen: HashMap<Formula, ()> = HashMap::new();
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(psi);
        while let Some(f) = queue.pop_front() {
            if seen.contains_key(&f) {
                continue;
            }
            seen.insert(f, ());
            order.push(f);
            match lg.kind(f).clone() {
                FormulaKind::Or(a, b) | FormulaKind::And(a, b) => {
                    queue.push_back(a);
                    queue.push_back(b);
                }
                FormulaKind::Diam(_, p) => queue.push_back(p),
                FormulaKind::Mu(..) => {
                    let e = lg.exp(f);
                    queue.push_back(e);
                }
                FormulaKind::Nu(..) => {
                    panic!("closure: greatest fixpoint present; collapse_nu first")
                }
                FormulaKind::Var(v) => {
                    panic!("closure: free variable {}", lg.var_name(v))
                }
                _ => {}
            }
        }
        Closure { formulas: order }
    }

    /// The closure members in discovery (BFS) order; the first element is ψ.
    pub fn formulas(&self) -> &[Formula] {
        &self.formulas
    }

    /// Number of formulas in the closure.
    pub fn len(&self) -> usize {
        self.formulas.len()
    }

    /// Whether the closure is empty (it never is: ψ itself belongs to it).
    pub fn is_empty(&self) -> bool {
        self.formulas.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, f: Formula) -> bool {
        self.formulas.contains(&f)
    }
}

/// The lean of a formula: the atoms from which ψ-types are built.
///
/// Tree successors are deterministic (a node has at most one `a`-neighbour
/// for every program), so `⟨a⟩¬ξ ⟺ ⟨a⟩⊤ ∧ ¬⟨a⟩ξ`. When both a modality
/// and its negated-argument twin occur in the closure (typical for
/// containment goals `ϕ1 ∧ ¬ϕ2` sharing subformulas), only one *canonical*
/// atom is allocated; the twin is represented through
/// [`Lean::diam_lookup`]'s `negated` flag. This keeps the lean — the
/// exponent of the complexity bound — close to the number of semantically
/// distinct modalities.
#[derive(Debug)]
pub struct Lean {
    atoms: Vec<LeanAtom>,
    /// Labels of Σ(ψ) plus the fresh `σx` (last).
    props: Vec<Label>,
    other: Label,
    diam_true: [usize; 4],
    start: usize,
    prop_index: HashMap<Label, usize>,
    /// `(a, ϕ) → (canonical index, negated)`: when `negated`, the formula
    /// `⟨a⟩ϕ` is represented as `⟨a⟩⊤ ∧ ¬atom`.
    diam_index: HashMap<(Program, Formula), (usize, bool)>,
}

impl Lean {
    /// Builds `Lean(ψ)` from its closure.
    ///
    /// Atoms are laid out in breadth-first discovery order of ψ —
    /// propositions and modalities *interleaved* exactly as they appear —
    /// which keeps sister subformulas on nearby BDD variables (§7.4). The
    /// four `⟨a⟩⊤` and `s` come first; the fresh `σx` last.
    pub fn compute(lg: &mut Logic, closure: &Closure) -> Lean {
        let mut atoms = Vec::new();
        let mut diam_true = [0usize; 4];
        for (i, a) in Program::ALL.iter().enumerate() {
            diam_true[i] = atoms.len();
            atoms.push(LeanAtom::DiamTrue(*a));
        }
        let start = atoms.len();
        atoms.push(LeanAtom::Start);
        let mut props: Vec<Label> = Vec::new();
        let mut prop_index = HashMap::new();
        let mut diam_index: HashMap<(Program, Formula), (usize, bool)> = HashMap::new();
        for &f in closure.formulas() {
            match lg.kind(f) {
                FormulaKind::Prop(l) | FormulaKind::NotProp(l) if !prop_index.contains_key(l) => {
                    prop_index.insert(*l, atoms.len());
                    atoms.push(LeanAtom::Prop(*l));
                    props.push(*l);
                }
                FormulaKind::Diam(a, p) => {
                    let (a, p) = (*a, *p);
                    if matches!(lg.kind(p), FormulaKind::True) {
                        continue; // canonicalized as DiamTrue
                    }
                    if diam_index.contains_key(&(a, p)) {
                        continue;
                    }
                    // Determinism: ⟨a⟩¬ξ = ⟨a⟩⊤ ∧ ¬⟨a⟩ξ — reuse the twin's
                    // atom when the negated argument is already canonical.
                    // Negation flips mu to nu; collapse back so the twin
                    // key matches the mu-only closure (Lemma 4.2).
                    let np = lg.not(p);
                    let np = lg.collapse_nu(np);
                    if let Some(&(idx, neg)) = diam_index.get(&(a, np)) {
                        diam_index.insert((a, p), (idx, !neg));
                        continue;
                    }
                    let idx = atoms.len();
                    atoms.push(LeanAtom::Diam(a, p));
                    diam_index.insert((a, p), (idx, false));
                }
                _ => {}
            }
        }
        // σx: a name not occurring in ψ.
        let other = {
            let mut name = "_other".to_owned();
            while props.iter().any(|l| l.as_str() == name) {
                name.push('_');
            }
            Label::new(&name)
        };
        prop_index.insert(other, atoms.len());
        atoms.push(LeanAtom::Prop(other));
        props.push(other);
        Lean {
            atoms,
            props,
            other,
            diam_true,
            start,
            prop_index,
            diam_index,
        }
    }

    /// The atoms, in BDD variable order.
    pub fn atoms(&self) -> &[LeanAtom] {
        &self.atoms
    }

    /// Number of lean atoms `n = |Lean(ψ)|` (the exponent of the complexity
    /// bound `2^O(n)`).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the lean is empty (it never is).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Index of `⟨a⟩⊤`.
    pub fn diam_true_index(&self, a: Program) -> usize {
        let pos = Program::ALL.iter().position(|x| *x == a).expect("program");
        self.diam_true[pos]
    }

    /// Index of the start proposition.
    pub fn start_index(&self) -> usize {
        self.start
    }

    /// Index of the atomic proposition `σ`, if it belongs to Σ(ψ) ∪ {σx}.
    pub fn prop_index(&self, l: Label) -> Option<usize> {
        self.prop_index.get(&l).copied()
    }

    /// Canonical representation of `⟨a⟩ϕ` (with `ϕ ≠ ⊤`), if it belongs to
    /// the lean: the atom index and whether the formula is the *negated*
    /// twin of that atom (`⟨a⟩ϕ = ⟨a⟩⊤ ∧ ¬atom`).
    pub fn diam_lookup(&self, a: Program, phi: Formula) -> Option<(usize, bool)> {
        self.diam_index.get(&(a, phi)).copied()
    }

    /// Index of `⟨a⟩ϕ` when it is a canonical (non-negated) lean atom.
    pub fn diam_index(&self, a: Program, phi: Formula) -> Option<usize> {
        match self.diam_index.get(&(a, phi)) {
            Some(&(idx, false)) => Some(idx),
            _ => None,
        }
    }

    /// The labels Σ(ψ) ∪ {σx}; the fresh `σx` is last.
    pub fn props(&self) -> &[Label] {
        &self.props
    }

    /// The fresh label `σx` standing for all names not in ψ.
    pub fn other_prop(&self) -> Label {
        self.other
    }

    /// Iterates over the `⟨a⟩ϕ` entries (excluding `⟨a⟩⊤`) with their
    /// indices.
    pub fn diam_entries(&self) -> impl Iterator<Item = (usize, Program, Formula)> + '_ {
        self.atoms.iter().enumerate().filter_map(|(i, a)| match a {
            LeanAtom::Diam(p, f) => Some((i, *p, *f)),
            _ => None,
        })
    }

    /// Iterates over the proposition entries with their indices (σx
    /// included).
    pub fn prop_entries(&self) -> impl Iterator<Item = (usize, Label)> + '_ {
        self.atoms.iter().enumerate().filter_map(|(i, a)| match a {
            LeanAtom::Prop(l) => Some((i, *l)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree::Direction;

    /// Builds the lean of `a ∧ ⟨1⟩(µX. b ∨ ⟨2⟩X)`.
    fn sample(lg: &mut Logic) -> (Formula, Closure, Lean) {
        let a = lg.prop(Label::new("a"));
        let b = lg.prop(Label::new("b"));
        let x = lg.fresh_var("X");
        let xv = lg.var(x);
        let d2 = lg.diam(Direction::Down2, xv);
        let or = lg.or(b, d2);
        let mu = lg.mu1(x, or);
        let d1 = lg.diam(Direction::Down1, mu);
        let psi = lg.and(a, d1);
        let cl = Closure::compute(lg, psi);
        let lean = Lean::compute(lg, &cl);
        (psi, cl, lean)
    }

    #[test]
    fn closure_contains_unfolding() {
        let mut lg = Logic::new();
        let (psi, cl, _) = sample(&mut lg);
        assert!(cl.contains(psi));
        // The unfolded body b ∨ ⟨2⟩(µX=…in X) must appear.
        assert!(cl.len() >= 6);
    }

    #[test]
    fn lean_layout() {
        let mut lg = Logic::new();
        let (_, _, lean) = sample(&mut lg);
        // 4 ⟨a⟩⊤ + s + props {a, b, σx} + 2 diamonds (⟨1⟩µ…, ⟨2⟩µ…).
        assert_eq!(lean.len(), 4 + 1 + 3 + 2);
        assert_eq!(lean.diam_true_index(Direction::Down1), 0);
        assert_eq!(lean.start_index(), 4);
        assert!(lean.prop_index(Label::new("a")).is_some());
        assert!(lean.prop_index(Label::new("b")).is_some());
        assert!(lean.prop_index(lean.other_prop()).is_some());
        assert_eq!(lean.diam_entries().count(), 2);
    }

    #[test]
    fn other_prop_is_fresh() {
        let mut lg = Logic::new();
        let o = lg.prop(Label::new("_other"));
        let cl = Closure::compute(&mut lg, o);
        let lean = Lean::compute(&mut lg, &cl);
        assert_ne!(lean.other_prop(), Label::new("_other"));
        assert_eq!(lean.other_prop().as_str(), "_other_");
    }

    #[test]
    fn closure_of_fixpoint_is_finite() {
        let mut lg = Logic::new();
        // µX. ⟨1⟩X ∨ ⟨2⟩X — expansion must converge by hash-consing.
        let x = lg.fresh_var("X");
        let xv = lg.var(x);
        let d1 = lg.diam(Direction::Down1, xv);
        let d2 = lg.diam(Direction::Down2, xv);
        let or = lg.or(d1, d2);
        let mu = lg.mu1(x, or);
        let cl = Closure::compute(&mut lg, mu);
        assert!(cl.len() < 12, "closure blew up: {}", cl.len());
    }

    #[test]
    fn negated_diamond_twins_share_an_atom() {
        let mut lg = Logic::new();
        // ⟨1⟩(b ∧ c) ∧ ¬⟨1⟩(b ∧ c): the negation expands to
        // ¬⟨1⟩⊤ ∨ ⟨1⟩(¬b ∨ ¬c); the twin argument must not allocate a new
        // lean atom.
        let b = lg.prop(Label::new("b"));
        let c = lg.prop(Label::new("c"));
        let bc = lg.and(b, c);
        let d = lg.diam(Direction::Down1, bc);
        let nd = lg.not(d);
        let psi = lg.and(d, nd); // unsatisfiable, but the lean is what matters
        let cl = Closure::compute(&mut lg, psi);
        let lean = Lean::compute(&mut lg, &cl);
        assert_eq!(lean.diam_entries().count(), 1, "twins must share an atom");
        // The canonical entry answers both lookups, with opposite polarity.
        let (i1, n1) = lean.diam_lookup(Direction::Down1, bc).unwrap();
        let nbc = lg.not(bc);
        let (i2, n2) = lean.diam_lookup(Direction::Down1, nbc).unwrap();
        assert_eq!(i1, i2);
        assert_ne!(n1, n2);
    }

    #[test]
    #[should_panic(expected = "closed formula")]
    fn closure_rejects_open_formulas() {
        let mut lg = Logic::new();
        let x = lg.fresh_var("X");
        let xv = lg.var(x);
        Closure::compute(&mut lg, xv);
    }
}

//! Differential property tests over *random* DTDs and documents: the three
//! semantics of a regular tree type must agree on every tree —
//!
//! 1. the Brzozowski-derivative validator ([`Dtd::validates`]),
//! 2. the binary tree type encoding ([`BinaryType::matches_tree`], Fig 13),
//! 3. the Lµ translation (Fig 14) evaluated by the model checker at the
//!    root focus.

use ftree::{Label, Tree};
use mulogic::{cycle_free, Logic, ModelChecker};
use proptest::prelude::*;
use treetypes::{BinaryType, Content, Dtd};

const NAMES: [&str; 4] = ["r", "x", "y", "z"];

fn arb_name() -> impl Strategy<Value = &'static str> {
    prop::sample::select(&NAMES[..])
}

fn arb_content(depth: u32) -> BoxedStrategy<Content> {
    let leaf = prop_oneof![
        Just(Content::Empty),
        Just(Content::PCData),
        arb_name().prop_map(|n| Content::Name(Label::new(n))),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_content(depth - 1);
    prop_oneof![
        3 => leaf,
        2 => (arb_content(depth - 1), arb_content(depth - 1))
            .prop_map(|(a, b)| Content::Seq(Box::new(a), Box::new(b))),
        2 => (arb_content(depth - 1), arb_content(depth - 1))
            .prop_map(|(a, b)| Content::Choice(Box::new(a), Box::new(b))),
        1 => sub.clone().prop_map(|c| Content::Opt(Box::new(c))),
        1 => sub.clone().prop_map(|c| Content::Star(Box::new(c))),
        1 => sub.prop_map(|c| Content::Plus(Box::new(c))),
    ]
    .boxed()
}

/// A DTD declaring all four names with random content models; `r` is the
/// start symbol.
fn arb_dtd() -> impl Strategy<Value = Dtd> {
    prop::collection::vec(arb_content(2), 4).prop_map(|models| {
        let mut src = String::new();
        for (name, model) in NAMES.iter().zip(&models) {
            src.push_str(&format!("<!ELEMENT {name} {}>\n", render(model)));
        }
        Dtd::parse(&src).expect("generated dtd parses")
    })
}

/// Renders a content model in DTD syntax (wrapping name/particles so the
/// parser accepts it).
fn render(c: &Content) -> String {
    match c {
        Content::Empty => "EMPTY".to_owned(),
        Content::PCData => "(#PCDATA)".to_owned(),
        Content::Any => "ANY".to_owned(),
        _ => format!("({})", render_inner(c)),
    }
}

fn render_inner(c: &Content) -> String {
    match c {
        Content::Empty | Content::PCData => "#PCDATA".to_owned(),
        Content::Any => unreachable!("not generated"),
        Content::Name(l) => l.to_string(),
        Content::Seq(a, b) => format!("({}, {})", render_inner(a), render_inner(b)),
        Content::Choice(a, b) => format!("({} | {})", render_inner(a), render_inner(b)),
        Content::Opt(r) => format!("({})?", render_inner(r)),
        Content::Star(r) => format!("({})*", render_inner(r)),
        Content::Plus(r) => format!("({})+", render_inner(r)),
    }
}

fn arb_tree(depth: u32) -> impl Strategy<Value = Tree> {
    let leaf = arb_name().prop_map(Tree::leaf);
    leaf.prop_recursive(depth, 10, 3, |inner| {
        (arb_name(), prop::collection::vec(inner, 0..3)).prop_map(|(l, cs)| Tree::node(l, cs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Validator and binary type agree on random documents.
    #[test]
    fn validator_matches_binary_type(dtd in arb_dtd(), t in arb_tree(3)) {
        let bt = BinaryType::from_dtd(&dtd);
        prop_assert_eq!(dtd.validates(&t), bt.matches_tree(&t), "{}", t.to_xml());
    }

    /// The Lµ translation, model-checked at the root focus, agrees with the
    /// validator.
    #[test]
    fn formula_matches_validator(dtd in arb_dtd(), t in arb_tree(2)) {
        let mut lg = Logic::new();
        let f = dtd.formula(&mut lg);
        prop_assert!(cycle_free(&lg, f));
        let mc = ModelChecker::new(&t);
        let holds = mc.holds_at(&lg, f, &mc.foci()[0]);
        prop_assert_eq!(dtd.validates(&t), holds, "{}", t.to_xml());
    }

    /// The DTD renderer round-trips: parse(render(content)) accepts the
    /// same child rows (checked via the validator on random trees).
    #[test]
    fn derivative_matching_is_consistent(c in arb_content(2), row in prop::collection::vec(arb_name(), 0..4)) {
        let labels: Vec<Label> = row.iter().map(|n| Label::new(n)).collect();
        // matches() must agree with a naive expansion check on nullability
        // when the row is empty.
        if labels.is_empty() {
            prop_assert_eq!(c.matches(&labels), c.nullable());
        } else {
            // Matching implies the first label is mentioned by the model.
            if c.matches(&labels) {
                let mut mentioned = Vec::new();
                c.mentioned(&mut mentioned);
                prop_assert!(mentioned.contains(&labels[0]));
            }
        }
    }
}

//! The session workspace: named DTDs and named XPath queries.
//!
//! A workspace lets a client register each grammar and query **once** and
//! then pose many decision problems against them by name. Registered
//! artifacts are held behind [`Arc`] so resolving a problem snapshots cheap
//! handles — batch jobs stay valid even if a later request in the same
//! batch rebinds a name.

use std::collections::HashMap;
use std::sync::Arc;

use treetypes::Dtd;
use xpath::Expr;

/// Named, immutable analysis artifacts shared across requests.
#[derive(Debug, Default)]
pub struct Workspace {
    dtds: HashMap<String, Arc<Dtd>>,
    queries: HashMap<String, Arc<Expr>>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// Registers (or rebinds) a named DTD, parsed from its source text.
    pub fn register_dtd(&mut self, name: &str, source: &str) -> Result<(), String> {
        let dtd = Dtd::parse(source).map_err(|e| e.to_string())?;
        self.dtds.insert(name.to_owned(), Arc::new(dtd));
        Ok(())
    }

    /// Registers (or rebinds) a named query, parsed from XPath syntax.
    ///
    /// Queries are normalized at this parse boundary
    /// ([`xpath::parse_normalized`]), so the form the engine compiles, the
    /// form it displays, and the step spans lint reports against all agree.
    pub fn register_query(&mut self, name: &str, xpath: &str) -> Result<(), String> {
        let expr = xpath::parse_normalized(xpath).map_err(|e| e.to_string())?;
        self.queries.insert(name.to_owned(), Arc::new(expr));
        Ok(())
    }

    /// Resolves a query reference: a registered name, or — as a fallback so
    /// one-shot scripts need no registration round — inline XPath syntax.
    pub fn resolve_query(&self, reference: &str) -> Result<Arc<Expr>, String> {
        if let Some(e) = self.queries.get(reference) {
            return Ok(Arc::clone(e));
        }
        match xpath::parse_normalized(reference) {
            Ok(e) => Ok(Arc::new(e)),
            Err(parse_err) => Err(format!(
                "`{reference}` is not a registered query and does not parse as XPath ({parse_err})"
            )),
        }
    }

    /// Resolves a type reference: a registered name, or inline DTD source.
    pub fn resolve_dtd(&self, reference: &str) -> Result<Arc<Dtd>, String> {
        if let Some(d) = self.dtds.get(reference) {
            return Ok(Arc::clone(d));
        }
        if reference.contains("<!ELEMENT") {
            return Dtd::parse(reference)
                .map(Arc::new)
                .map_err(|e| e.to_string());
        }
        Err(format!("`{reference}` is not a registered type"))
    }

    /// Registered queries as `(name, expr)` pairs, sorted by name — the
    /// deterministic iteration order lint rules and reports rely on.
    pub fn queries_sorted(&self) -> Vec<(&str, Arc<Expr>)> {
        let mut v: Vec<_> = self
            .queries
            .iter()
            .map(|(n, e)| (n.as_str(), Arc::clone(e)))
            .collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// Registered DTDs as `(name, dtd)` pairs, sorted by name.
    pub fn dtds_sorted(&self) -> Vec<(&str, Arc<Dtd>)> {
        let mut v: Vec<_> = self
            .dtds
            .iter()
            .map(|(n, d)| (n.as_str(), Arc::clone(d)))
            .collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// Number of registered DTDs.
    pub fn dtd_count(&self) -> usize {
        self.dtds.len()
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Drops all registrations.
    pub fn clear(&mut self) {
        self.dtds.clear();
        self.queries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_resolve() {
        let mut ws = Workspace::new();
        ws.register_query("q1", "a/b").unwrap();
        ws.register_dtd("d1", "<!ELEMENT a (b*)> <!ELEMENT b EMPTY>")
            .unwrap();
        assert!(ws.resolve_query("q1").is_ok());
        assert!(ws.resolve_dtd("d1").is_ok());
        assert_eq!(ws.query_count(), 1);
        assert_eq!(ws.dtd_count(), 1);
    }

    #[test]
    fn inline_fallbacks() {
        let ws = Workspace::new();
        assert!(ws.resolve_query("child::a[child::b]").is_ok());
        assert!(ws.resolve_dtd("<!ELEMENT r EMPTY>").is_ok());
        assert!(ws.resolve_query("///").is_err());
        assert!(ws.resolve_dtd("nonexistent").is_err());
    }

    #[test]
    fn rebinding_replaces() {
        let mut ws = Workspace::new();
        ws.register_query("q", "a").unwrap();
        let before = ws.resolve_query("q").unwrap();
        ws.register_query("q", "b").unwrap();
        let after = ws.resolve_query("q").unwrap();
        assert_ne!(before, after);
    }
}

//! The unified operation cache: one direct-mapped, generational table for
//! every memoized BDD operation.
//!
//! The pre-overhaul manager kept five separate `HashMap` caches (`ite`,
//! `not`, `shift`, `exists`, `and_exists`). Complement edges deleted the
//! `not` cache outright (negation is a tag flip); the remaining four share
//! this single table, keyed by an operation tag plus up to three operand
//! words. Two properties matter on the hot path:
//!
//! * **lossy direct mapping** — a lookup is one hash, one slot probe; an
//!   insert may evict an unrelated entry. BDD operation caches tolerate
//!   loss (a miss just recomputes), so there is no bucket chain and no
//!   rehash pause;
//! * **generational invalidation** — the whole cache is dropped by bumping
//!   a generation counter in O(1), never by touching the entries. That is
//!   what makes one long-lived manager reusable across problems: `reset`
//!   and garbage collection invalidate millions of stale entries for free.
//!
//! Hit/lookup counters feed the `cache_hit_rate` telemetry surfaced
//! through `solver::Telemetry` and the engine protocol.

/// Operation tags (the first word of every cache key).
pub(crate) const OP_ITE: u32 = 1;
pub(crate) const OP_SHIFT: u32 = 2;
pub(crate) const OP_EXISTS: u32 = 3;
pub(crate) const OP_AND_EXISTS: u32 = 4;

use crate::hash::SEED;

/// Initial table size (entries); grows with the node store.
const MIN_ENTRIES: usize = 1 << 12;
/// Upper bound on the table size (4M entries ≈ 96 MB).
const MAX_ENTRIES: usize = 1 << 22;

#[derive(Debug, Clone, Copy)]
struct Entry {
    op: u32,
    a: u32,
    b: u32,
    c: u32,
    result: u32,
    /// Generation that wrote the entry; stale generations read as empty.
    generation: u32,
}

const EMPTY: Entry = Entry {
    op: 0,
    a: 0,
    b: 0,
    c: 0,
    result: 0,
    generation: 0,
};

/// The unified operation cache. See the module docs.
#[derive(Debug)]
pub(crate) struct OpCache {
    entries: Vec<Entry>,
    generation: u32,
    hits: u64,
    lookups: u64,
}

#[inline]
fn mix(state: u64, word: u64) -> u64 {
    (state.rotate_left(5) ^ word).wrapping_mul(SEED)
}

#[inline]
fn slot(op: u32, a: u32, b: u32, c: u32, mask: usize) -> usize {
    let mut h = mix(u64::from(op), u64::from(a));
    h = mix(h, (u64::from(b) << 32) | u64::from(c));
    (h >> 32) as usize & mask
}

impl OpCache {
    pub(crate) fn new() -> OpCache {
        OpCache {
            entries: vec![EMPTY; MIN_ENTRIES],
            generation: 1,
            hits: 0,
            lookups: 0,
        }
    }

    /// Looks up `(op, a, b, c)`, counting the lookup and any hit.
    #[inline]
    pub(crate) fn get(&mut self, op: u32, a: u32, b: u32, c: u32) -> Option<u32> {
        self.lookups += 1;
        let e = &self.entries[slot(op, a, b, c, self.entries.len() - 1)];
        if e.generation == self.generation && e.op == op && e.a == a && e.b == b && e.c == c {
            self.hits += 1;
            Some(e.result)
        } else {
            None
        }
    }

    /// Stores `(op, a, b, c) → result`, evicting whatever held the slot.
    #[inline]
    pub(crate) fn put(&mut self, op: u32, a: u32, b: u32, c: u32, result: u32) {
        let i = slot(op, a, b, c, self.entries.len() - 1);
        self.entries[i] = Entry {
            op,
            a,
            b,
            c,
            result,
            generation: self.generation,
        };
    }

    /// Whole-cache invalidation in O(1): every live entry's generation
    /// stamp goes stale. Counters survive (they describe the run, not the
    /// generation).
    pub(crate) fn invalidate(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // One O(n) sweep every 2³² invalidations keeps stamps sound.
            self.entries.fill(EMPTY);
            self.generation = 1;
        }
    }

    /// Grows the table toward ~1 entry per live node (power of two,
    /// bounded). Growth drops the current contents — callers only grow on
    /// node-store growth, where the working set is changing anyway.
    pub(crate) fn maybe_grow(&mut self, live_nodes: usize) {
        let len = self.entries.len();
        if len >= MAX_ENTRIES || live_nodes <= len {
            return;
        }
        let target = live_nodes
            .next_power_of_two()
            .clamp(MIN_ENTRIES, MAX_ENTRIES);
        if target > len {
            self.entries = vec![EMPTY; target];
            self.generation = 1;
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn lookups(&self) -> u64 {
        self.lookups
    }

    pub(crate) fn reset_counters(&mut self) {
        self.hits = 0;
        self.lookups = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_round_trip() {
        let mut c = OpCache::new();
        assert_eq!(c.get(OP_ITE, 1, 2, 3), None);
        c.put(OP_ITE, 1, 2, 3, 42);
        assert_eq!(c.get(OP_ITE, 1, 2, 3), Some(42));
        // Same operands under another op tag are a distinct key.
        assert_eq!(c.get(OP_SHIFT, 1, 2, 3), None);
        assert_eq!(c.lookups(), 3);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn invalidate_is_total() {
        let mut c = OpCache::new();
        c.put(OP_EXISTS, 7, 8, 0, 9);
        assert_eq!(c.get(OP_EXISTS, 7, 8, 0), Some(9));
        c.invalidate();
        assert_eq!(c.get(OP_EXISTS, 7, 8, 0), None);
    }

    #[test]
    fn grows_monotonically() {
        let mut c = OpCache::new();
        let n0 = c.len();
        c.maybe_grow(n0 * 4);
        assert!(c.len() >= n0 * 4);
        let big = c.len();
        c.maybe_grow(1); // never shrinks
        assert_eq!(c.len(), big);
    }
}

//! DTD parsing and validation.
//!
//! The parser accepts `<!ELEMENT name spec>` declarations (with `EMPTY`,
//! `ANY`, mixed `(#PCDATA | …)*` and children content specs), skips
//! comments and `<!ATTLIST …>` declarations, and treats the first declared
//! element as the start symbol (overridable). Parameter entities must be
//! pre-expanded; the bundled fixtures are stored expanded.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use ftree::{Label, Tree};

use crate::content::Content;

/// A Document Type Definition: an ordered list of element declarations and
/// a start symbol.
#[derive(Debug, Clone)]
pub struct Dtd {
    elements: Vec<(Label, Content)>,
    index: HashMap<Label, usize>,
    start: Label,
}

/// Structural equality: same start symbol and same declarations in the same
/// order. The `index` map is derived from `elements`, so it is excluded.
/// Declaration order matters — it drives binarization and the paper's
/// Table 1 measurements — so two DTDs with permuted declarations are
/// distinct.
impl PartialEq for Dtd {
    fn eq(&self, other: &Dtd) -> bool {
        self.start == other.start && self.elements == other.elements
    }
}

impl Eq for Dtd {}

/// Structural hash, consistent with [`PartialEq`]: hashes the start symbol
/// and the full content-model structure of every declaration. Unlike a
/// rendered-string key, two distinct DTDs can never alias (labels are
/// hashed as interned atoms, not as delimiter-separated text).
impl std::hash::Hash for Dtd {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.start.hash(state);
        self.elements.hash(state);
    }
}

/// Error returned by [`Dtd::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDtdError {
    msg: String,
    at: usize,
}

impl ParseDtdError {
    fn new(msg: impl Into<String>, at: usize) -> Self {
        ParseDtdError {
            msg: msg.into(),
            at,
        }
    }

    /// Byte offset of the error.
    pub fn offset(&self) -> usize {
        self.at
    }
}

impl fmt::Display for ParseDtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dtd syntax error at byte {}: {}", self.at, self.msg)
    }
}

impl Error for ParseDtdError {}

impl Dtd {
    /// Parses a DTD from element declarations.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDtdError`] on malformed input, duplicate declarations,
    /// or an empty DTD.
    ///
    /// # Example
    ///
    /// ```
    /// use treetypes::Dtd;
    ///
    /// let dtd = Dtd::parse(r#"
    ///     <!ELEMENT book (chapter+)>
    ///     <!ELEMENT chapter (section*)>
    ///     <!ELEMENT section (#PCDATA)>
    /// "#).unwrap();
    /// assert_eq!(dtd.start().as_str(), "book");
    /// assert_eq!(dtd.elements().len(), 3);
    /// ```
    pub fn parse(input: &str) -> Result<Dtd, ParseDtdError> {
        let mut p = DtdParser { input, pos: 0 };
        let mut elements: Vec<(Label, Content)> = Vec::new();
        let mut index = HashMap::new();
        loop {
            p.skip_trivia();
            if p.pos >= input.len() {
                break;
            }
            if p.eat_str("<!ELEMENT") {
                let name = p.name()?;
                let spec = p.content_spec()?;
                p.skip_ws();
                p.expect('>')?;
                let label = Label::new(&name);
                if index.contains_key(&label) {
                    return Err(p.err(format!("duplicate declaration of {name}")));
                }
                index.insert(label, elements.len());
                elements.push((label, spec));
            } else if p.eat_str("<!ATTLIST") {
                p.skip_until('>')?;
            } else {
                return Err(p.err("expected a declaration"));
            }
        }
        let Some(&(start, _)) = elements.first() else {
            return Err(ParseDtdError::new("empty dtd", 0));
        };
        Ok(Dtd {
            elements,
            index,
            start,
        })
    }

    /// The declared elements, in declaration order.
    pub fn elements(&self) -> &[(Label, Content)] {
        &self.elements
    }

    /// The start symbol (first declaration unless overridden).
    pub fn start(&self) -> Label {
        self.start
    }

    /// Overrides the start symbol.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not declared.
    pub fn with_start(mut self, start: Label) -> Dtd {
        assert!(
            self.index.contains_key(&start),
            "start symbol {start} is not declared"
        );
        self.start = start;
        self
    }

    /// The content model of an element, if declared.
    pub fn content(&self, l: Label) -> Option<&Content> {
        self.index.get(&l).map(|&i| &self.elements[i].1)
    }

    /// Number of distinct element symbols (the "Symbols" column of the
    /// paper's Table 1).
    pub fn symbol_count(&self) -> usize {
        self.elements.len()
    }

    /// Whether `tree` is valid: its root is the start symbol and every node
    /// matches its declared content model.
    pub fn validates(&self, tree: &Tree) -> bool {
        tree.label() == self.start && self.validates_subtree(tree)
    }

    /// Whether every node of `tree` matches its content model, regardless of
    /// the root symbol (partial validity, used when a type constrains a
    /// subtree).
    pub fn validates_subtree(&self, tree: &Tree) -> bool {
        let Some(model) = self.content(tree.label()) else {
            return false;
        };
        let child_labels: Vec<Label> = tree.children().iter().map(Tree::label).collect();
        let ok = match model {
            Content::Any => child_labels.iter().all(|l| self.index.contains_key(l)),
            m => m.matches(&child_labels),
        };
        ok && tree.children().iter().all(|c| self.validates_subtree(c))
    }
}

struct DtdParser<'a> {
    input: &'a str,
    pos: usize,
}

impl DtdParser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseDtdError {
        ParseDtdError::new(msg, self.pos)
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..]
            .chars()
            .next()
            .is_some_and(char::is_whitespace)
        {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments and processing instructions.
    fn skip_trivia(&mut self) {
        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with("<!--") {
                match self.input[self.pos..].find("-->") {
                    Some(i) => self.pos += i + 3,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else if self.input[self.pos..].starts_with("<?") {
                match self.input[self.pos..].find("?>") {
                    Some(i) => self.pos += i + 2,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseDtdError> {
        self.skip_ws();
        if self.input[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.err(format!("expected {c:?}")))
        }
    }

    fn skip_until(&mut self, c: char) -> Result<(), ParseDtdError> {
        match self.input[self.pos..].find(c) {
            Some(i) => {
                self.pos += i + c.len_utf8();
                Ok(())
            }
            None => Err(self.err(format!("unterminated declaration, missing {c:?}"))),
        }
    }

    fn name(&mut self) -> Result<String, ParseDtdError> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let end = rest
            .char_indices()
            .find(|(_, ch)| !(ch.is_alphanumeric() || "-_.:".contains(*ch)))
            .map_or(rest.len(), |(i, _)| i);
        if end == 0
            || !rest
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            return Err(self.err("expected a name"));
        }
        let s = rest[..end].to_owned();
        self.pos += end;
        Ok(s)
    }

    fn content_spec(&mut self) -> Result<Content, ParseDtdError> {
        self.skip_ws();
        if self.eat_str("EMPTY") {
            return Ok(Content::Empty);
        }
        if self.eat_str("ANY") {
            return Ok(Content::Any);
        }
        self.expect('(')?;
        self.skip_ws();
        if self.input[self.pos..].starts_with("#PCDATA") {
            self.pos += "#PCDATA".len();
            // Mixed content: (#PCDATA) or (#PCDATA | a | b)*.
            let mut names = Vec::new();
            loop {
                self.skip_ws();
                if self.eat_str("|") {
                    names.push(self.name()?);
                } else {
                    break;
                }
            }
            self.expect(')')?;
            if names.is_empty() {
                // An optional trailing * is allowed: (#PCDATA)*.
                self.eat_str("*");
                return Ok(Content::PCData);
            }
            if !self.eat_str("*") {
                return Err(self.err("mixed content must end with ')*'"));
            }
            let mut it = names.into_iter();
            let first = Content::Name(Label::new(&it.next().expect("nonempty")));
            let choice = it.fold(first, |acc, n| {
                Content::Choice(Box::new(acc), Box::new(Content::Name(Label::new(&n))))
            });
            return Ok(Content::Star(Box::new(choice)));
        }
        // Children content: we are just after '('.
        let inner = self.group_body()?;
        Ok(self.repetition(inner))
    }

    /// Parses the inside of a parenthesized group and consumes the ')'.
    fn group_body(&mut self) -> Result<Content, ParseDtdError> {
        let first = self.cp()?;
        self.skip_ws();
        if self.eat_str("|") {
            let mut acc = first;
            loop {
                let next = self.cp()?;
                acc = Content::Choice(Box::new(acc), Box::new(next));
                self.skip_ws();
                if !self.eat_str("|") {
                    break;
                }
            }
            self.expect(')')?;
            Ok(acc)
        } else if self.eat_str(",") {
            let mut acc = first;
            loop {
                let next = self.cp()?;
                acc = Content::Seq(Box::new(acc), Box::new(next));
                self.skip_ws();
                if !self.eat_str(",") {
                    break;
                }
            }
            self.expect(')')?;
            Ok(acc)
        } else {
            self.expect(')')?;
            Ok(first)
        }
    }

    /// One content particle: name or group, with optional repetition.
    fn cp(&mut self) -> Result<Content, ParseDtdError> {
        self.skip_ws();
        let base = if self.eat_str("(") {
            self.group_body()?
        } else if self.input[self.pos..].starts_with("#PCDATA") {
            self.pos += "#PCDATA".len();
            Content::PCData
        } else {
            Content::Name(Label::new(&self.name()?))
        };
        Ok(self.repetition(base))
    }

    fn repetition(&mut self, base: Content) -> Content {
        if self.eat_str("?") {
            Content::Opt(Box::new(base))
        } else if self.eat_str("*") {
            Content::Star(Box::new(base))
        } else if self.eat_str("+") {
            Content::Plus(Box::new(base))
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIKI: &str = r#"
        <!ELEMENT article (meta, (text | redirect))>
        <!ELEMENT meta (title, status?, interwiki*, history?)>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT interwiki (#PCDATA)>
        <!ELEMENT status (#PCDATA)>
        <!ELEMENT history (edit)+>
        <!ELEMENT edit (status?, interwiki*, (text | redirect)?)>
        <!ELEMENT redirect EMPTY>
        <!ELEMENT text (#PCDATA)>
    "#;

    #[test]
    fn parses_wikipedia_fragment() {
        let dtd = Dtd::parse(WIKI).unwrap();
        assert_eq!(dtd.symbol_count(), 9);
        assert_eq!(dtd.start().as_str(), "article");
        let edit = dtd.content(Label::new("edit")).unwrap();
        assert!(edit.nullable());
    }

    #[test]
    fn validates_documents() {
        let dtd = Dtd::parse(WIKI).unwrap();
        let ok = Tree::parse_xml("<article><meta><title/></meta><text/></article>").unwrap();
        assert!(dtd.validates(&ok));
        let ok2 = Tree::parse_xml(
            "<article><meta><title/><status/><interwiki/><interwiki/>\
             <history><edit/><edit><text/></edit></history></meta><redirect/></article>",
        )
        .unwrap();
        assert!(dtd.validates(&ok2));
        // Wrong order.
        let bad = Tree::parse_xml("<article><text/><meta><title/></meta></article>").unwrap();
        assert!(!dtd.validates(&bad));
        // Missing required title.
        let bad2 = Tree::parse_xml("<article><meta/><text/></article>").unwrap();
        assert!(!dtd.validates(&bad2));
        // Wrong root.
        let bad3 = Tree::parse_xml("<meta><title/></meta>").unwrap();
        assert!(!dtd.validates(&bad3));
        assert!(dtd.validates_subtree(&bad3));
        // Undeclared element.
        let bad4 = Tree::parse_xml("<article><meta><title/></meta><bogus/></article>").unwrap();
        assert!(!dtd.validates(&bad4));
    }

    #[test]
    fn attlist_and_comments_are_skipped() {
        let dtd = Dtd::parse(
            "<!-- a comment -->\n<!ELEMENT a (b*)>\n<!ATTLIST a x CDATA #IMPLIED>\n<!ELEMENT b EMPTY>",
        )
        .unwrap();
        assert_eq!(dtd.symbol_count(), 2);
    }

    #[test]
    fn nested_groups() {
        let dtd = Dtd::parse("<!ELEMENT a ((b | c)+, (d, e)?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY> <!ELEMENT e EMPTY>").unwrap();
        let t = Tree::parse_xml("<a><c/><b/><d/><e/></a>").unwrap();
        assert!(dtd.validates(&t));
        let t2 = Tree::parse_xml("<a><c/><d/></a>").unwrap();
        assert!(!dtd.validates(&t2));
    }

    #[test]
    fn any_content() {
        let dtd = Dtd::parse("<!ELEMENT a ANY> <!ELEMENT b EMPTY>").unwrap();
        assert!(dtd.validates(&Tree::parse_xml("<a><b/><a/><b/></a>").unwrap()));
        assert!(!dtd.validates(&Tree::parse_xml("<a><zzz/></a>").unwrap()));
    }

    #[test]
    fn with_start_override() {
        let dtd = Dtd::parse(WIKI).unwrap().with_start(Label::new("meta"));
        assert!(dtd.validates(&Tree::parse_xml("<meta><title/></meta>").unwrap()));
    }

    #[test]
    fn errors() {
        assert!(Dtd::parse("").is_err());
        assert!(Dtd::parse("<!ELEMENT a (b>").is_err());
        assert!(Dtd::parse("<!ELEMENT a (b)> <!ELEMENT a (c)>").is_err());
        assert!(Dtd::parse("garbage").is_err());
    }

    #[test]
    fn structural_equality_and_hash() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        fn h(d: &Dtd) -> u64 {
            let mut s = DefaultHasher::new();
            d.hash(&mut s);
            s.finish()
        }

        let a = Dtd::parse("<!ELEMENT r (x, y)> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY>").unwrap();
        let b = Dtd::parse("<!ELEMENT r (x , y)><!ELEMENT x EMPTY><!ELEMENT y EMPTY>").unwrap();
        assert_eq!(a, b, "whitespace does not affect structure");
        assert_eq!(h(&a), h(&b));

        let c = Dtd::parse("<!ELEMENT r (x | y)> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY>").unwrap();
        assert_ne!(a, c);

        // Same declarations, different start symbol.
        let d = a.clone().with_start(Label::new("x"));
        assert_ne!(a, d);

        // Same declarations in a different order are distinct (order drives
        // binarization).
        let e = Dtd::parse("<!ELEMENT r (x, y)> <!ELEMENT y EMPTY> <!ELEMENT x EMPTY>").unwrap();
        assert_ne!(a, e);
    }
}

//! Solver results: satisfiability verdicts, models and statistics.

use std::fmt;
use std::time::Duration;

use ftree::{BinaryTree, Label, Tree};

/// A satisfying model: a row of sibling trees (usually a single root).
///
/// The logic's models are focused trees whose top-level context may hold
/// siblings, so a satisfying "document" is in general a hedge; XML documents
/// are the common single-rooted case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    roots: Vec<Tree>,
}

impl Model {
    pub(crate) fn from_binary(root: &BinaryTree) -> Model {
        Model {
            roots: root.to_unranked_row(),
        }
    }

    /// The root row of the model.
    pub fn roots(&self) -> &[Tree] {
        &self.roots
    }

    /// The model as a single tree: the root itself if the row is a
    /// singleton, otherwise a synthetic `#hedge` element wrapping the row.
    pub fn tree(&self) -> Tree {
        match self.roots.as_slice() {
            [one] => one.clone(),
            row => Tree::node(Label::new("hedge"), row.to_vec()),
        }
    }

    /// Renders the model as XML (the start mark becomes `s="1"`).
    pub fn xml(&self) -> String {
        self.tree().to_xml()
    }

    /// Total node count.
    pub fn size(&self) -> usize {
        self.roots.iter().map(Tree::size).sum()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.xml())
    }
}

/// The verdict of a satisfiability run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A finite focused tree satisfies the formula; a minimal one is
    /// reconstructed (§7.2).
    Satisfiable(Model),
    /// No finite focused tree satisfies the formula.
    Unsatisfiable,
}

impl Outcome {
    /// Whether the verdict is satisfiable.
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, Outcome::Satisfiable(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            Outcome::Satisfiable(m) => Some(m),
            Outcome::Unsatisfiable => None,
        }
    }
}

/// Backend-specific measurements of one solver run.
///
/// Each backend reports the counters that are meaningful for its
/// representation; the [`BackendChoice::Dual`](crate::BackendChoice::Dual)
/// cross-check carries both sides. This replaces the old pair of
/// `Option` fields on [`Stats`] whose populated/empty combinations
/// encoded the backend implicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Telemetry {
    /// The symbolic BDD backend (§7).
    Symbolic {
        /// Total BDD nodes live in the store when the run finished.
        bdd_nodes: usize,
    },
    /// The explicit enumeration backend (§6.2).
    Explicit {
        /// ψ-types enumerated.
        types: usize,
    },
    /// The witnessed Fig 16 backend.
    Witnessed {
        /// ψ-types enumerated.
        types: usize,
        /// Triples proved when the run finished.
        proved: usize,
    },
    /// A dual cross-check run: both sub-runs' telemetry.
    Dual {
        /// The symbolic sub-run.
        symbolic: Box<Telemetry>,
        /// The explicit sub-run.
        explicit: Box<Telemetry>,
    },
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::Symbolic { bdd_nodes: 0 }
    }
}

impl Telemetry {
    /// The backend that produced this telemetry, by protocol name.
    pub fn backend_name(&self) -> &'static str {
        match self {
            Telemetry::Symbolic { .. } => "symbolic",
            Telemetry::Explicit { .. } => "explicit",
            Telemetry::Witnessed { .. } => "witnessed",
            Telemetry::Dual { .. } => "dual",
        }
    }

    /// BDD nodes, when a symbolic run is involved (for dual runs, the
    /// symbolic side's count).
    pub fn bdd_nodes(&self) -> Option<usize> {
        match self {
            Telemetry::Symbolic { bdd_nodes } => Some(*bdd_nodes),
            Telemetry::Dual { symbolic, .. } => symbolic.bdd_nodes(),
            _ => None,
        }
    }

    /// Enumerated ψ-types, when an enumerating run is involved (for dual
    /// runs, the explicit side's count).
    pub fn explicit_types(&self) -> Option<usize> {
        match self {
            Telemetry::Explicit { types } | Telemetry::Witnessed { types, .. } => Some(*types),
            Telemetry::Dual { explicit, .. } => explicit.explicit_types(),
            _ => None,
        }
    }

    /// Combines the telemetry of two sub-problems solved on the same
    /// backend (e.g. the two directions of an equivalence) by summing the
    /// counters; mismatched shapes keep the left side.
    pub fn merge(self, other: Telemetry) -> Telemetry {
        match (self, other) {
            (Telemetry::Symbolic { bdd_nodes: a }, Telemetry::Symbolic { bdd_nodes: b }) => {
                Telemetry::Symbolic { bdd_nodes: a + b }
            }
            (Telemetry::Explicit { types: a }, Telemetry::Explicit { types: b }) => {
                Telemetry::Explicit { types: a + b }
            }
            (
                Telemetry::Witnessed {
                    types: a,
                    proved: pa,
                },
                Telemetry::Witnessed {
                    types: b,
                    proved: pb,
                },
            ) => Telemetry::Witnessed {
                types: a + b,
                proved: pa + pb,
            },
            (
                Telemetry::Dual {
                    symbolic: sa,
                    explicit: ea,
                },
                Telemetry::Dual {
                    symbolic: sb,
                    explicit: eb,
                },
            ) => Telemetry::Dual {
                symbolic: Box::new(sa.merge(*sb)),
                explicit: Box::new(ea.merge(*eb)),
            },
            (a, _) => a,
        }
    }
}

/// Measurements of one solver run.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// `|Lean(ψ)|` — the exponent of the complexity bound.
    pub lean_size: usize,
    /// `|cl(ψ)|`.
    pub closure_size: usize,
    /// Fixpoint iterations performed.
    pub iterations: usize,
    /// Wall-clock time of the satisfiability loop.
    pub duration: Duration,
    /// Backend-specific counters.
    pub telemetry: Telemetry,
}

/// A verdict together with its statistics.
#[derive(Debug)]
pub struct Solved {
    /// The verdict.
    pub outcome: Outcome,
    /// Measurements.
    pub stats: Stats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_single_root() {
        let t = Tree::parse_xml("<a><b/></a>").unwrap();
        let b = BinaryTree::from_unranked(&t);
        let m = Model::from_binary(&b);
        assert_eq!(m.roots().len(), 1);
        assert_eq!(m.tree(), t);
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn model_hedge() {
        let a = BinaryTree::new(
            "a",
            false,
            None,
            Some(BinaryTree::new("b", false, None, None)),
        );
        let m = Model::from_binary(&a);
        assert_eq!(m.roots().len(), 2);
        assert_eq!(m.tree().label().as_str(), "hedge");
    }

    #[test]
    fn outcome_accessors() {
        let o = Outcome::Unsatisfiable;
        assert!(!o.is_satisfiable());
        assert!(o.model().is_none());
    }

    #[test]
    fn telemetry_accessors_and_merge() {
        let s = Telemetry::Symbolic { bdd_nodes: 10 };
        let e = Telemetry::Explicit { types: 4 };
        assert_eq!(s.bdd_nodes(), Some(10));
        assert_eq!(s.explicit_types(), None);
        assert_eq!(e.explicit_types(), Some(4));
        let d = Telemetry::Dual {
            symbolic: Box::new(s.clone()),
            explicit: Box::new(e.clone()),
        };
        assert_eq!(d.backend_name(), "dual");
        assert_eq!(d.bdd_nodes(), Some(10));
        assert_eq!(d.explicit_types(), Some(4));
        let merged = s.merge(Telemetry::Symbolic { bdd_nodes: 5 });
        assert_eq!(merged, Telemetry::Symbolic { bdd_nodes: 15 });
        let w = Telemetry::Witnessed {
            types: 2,
            proved: 3,
        };
        assert_eq!(
            w.clone().merge(w),
            Telemetry::Witnessed {
                types: 4,
                proved: 6
            }
        );
    }
}

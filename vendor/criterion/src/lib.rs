//! A vendored, minimal benchmark harness.
//!
//! The workspace builds offline, so the real `criterion` crate cannot be
//! fetched from crates.io. This crate reimplements the subset of its API
//! the benches use — `Criterion`, `benchmark_group` / `sample_size` /
//! `bench_function` / `bench_with_input` / `finish`, `BenchmarkId`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros —
//! with a simple mean/min-over-samples measurement printed to stdout.
//!
//! Samples per benchmark default to `sample_size` capped at 10; set
//! `CRITERION_SAMPLES` to override (e.g. `CRITERION_SAMPLES=3` for a quick
//! smoke run).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times one closure invocation per iteration.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once per sample, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let n = self.samples.capacity();
        // One untimed warm-up call.
        black_box(f());
        for _ in 0..n {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn effective_samples(configured: usize) -> usize {
    let capped = configured.clamp(1, 10);
    match std::env::var("CRITERION_SAMPLES") {
        Ok(v) => v.parse().unwrap_or(capped).max(1),
        Err(_) => capped,
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {label:<48} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench {label:<48} mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)",
        b.samples.len()
    );
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark with default sampling.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, effective_samples(10), &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, effective_samples(self.sample_size), &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, effective_samples(self.sample_size), &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally carrying a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

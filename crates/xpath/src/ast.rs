//! Abstract syntax of the XPath fragment (Fig 4 of the paper).
//!
//! The fragment covers all major navigational features of XPath 1.0 except
//! counting and data-value comparisons: the twelve axes of Fig 4, name and
//! wildcard node tests, qualifiers with full boolean structure, path
//! composition, and union/intersection of expressions. As a convenience
//! (needed for the paper's own benchmark query `html/(head | body)`),
//! union is also allowed at path level.

use std::fmt;

use ftree::Label;

/// A tree navigation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `child`
    Child,
    /// `self`
    SelfAxis,
    /// `parent`
    Parent,
    /// `descendant`
    Descendant,
    /// `descendant-or-self`
    DescOrSelf,
    /// `ancestor`
    Ancestor,
    /// `ancestor-or-self`
    AncOrSelf,
    /// `following-sibling`
    FollSibling,
    /// `preceding-sibling`
    PrecSibling,
    /// `following`
    Following,
    /// `preceding`
    Preceding,
}

impl Axis {
    /// All axes of the fragment.
    pub const ALL: [Axis; 11] = [
        Axis::Child,
        Axis::SelfAxis,
        Axis::Parent,
        Axis::Descendant,
        Axis::DescOrSelf,
        Axis::Ancestor,
        Axis::AncOrSelf,
        Axis::FollSibling,
        Axis::PrecSibling,
        Axis::Following,
        Axis::Preceding,
    ];

    /// The symmetric axis (`symmetric(child) = parent`, …), used to
    /// translate qualifiers by navigating backwards (Fig 10).
    pub fn symmetric(self) -> Axis {
        match self {
            Axis::Child => Axis::Parent,
            Axis::Parent => Axis::Child,
            Axis::SelfAxis => Axis::SelfAxis,
            Axis::Descendant => Axis::Ancestor,
            Axis::Ancestor => Axis::Descendant,
            Axis::DescOrSelf => Axis::AncOrSelf,
            Axis::AncOrSelf => Axis::DescOrSelf,
            Axis::FollSibling => Axis::PrecSibling,
            Axis::PrecSibling => Axis::FollSibling,
            Axis::Following => Axis::Preceding,
            Axis::Preceding => Axis::Following,
        }
    }

    /// The canonical (paper) name of the axis.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::SelfAxis => "self",
            Axis::Parent => "parent",
            Axis::Descendant => "descendant",
            Axis::DescOrSelf => "desc-or-self",
            Axis::Ancestor => "ancestor",
            Axis::AncOrSelf => "anc-or-self",
            Axis::FollSibling => "foll-sibling",
            Axis::PrecSibling => "prec-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A node test: an element name or the wildcard `*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// `a::σ`
    Name(Label),
    /// `a::*`
    Star,
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(l) => write!(f, "{l}"),
            NodeTest::Star => f.write_str("*"),
        }
    }
}

/// A relative path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Path {
    /// `p1/p2`
    Seq(Box<Path>, Box<Path>),
    /// `p[q]`
    Qualified(Box<Path>, Box<Qualifier>),
    /// `a::σ` or `a::*`
    Step(Axis, NodeTest),
    /// `(p1 | p2)` — path-level union.
    Union(Box<Path>, Box<Path>),
}

impl Path {
    /// A step along `axis` testing for `test`.
    pub fn step(axis: Axis, test: NodeTest) -> Path {
        Path::Step(axis, test)
    }

    /// `self / other`.
    pub fn then(self, other: Path) -> Path {
        Path::Seq(Box::new(self), Box::new(other))
    }

    /// `self[q]`.
    pub fn filter(self, q: Qualifier) -> Path {
        Path::Qualified(Box::new(self), Box::new(q))
    }

    /// Number of AST nodes (for the linear-size translation tests).
    pub fn size(&self) -> usize {
        match self {
            Path::Seq(a, b) | Path::Union(a, b) => 1 + a.size() + b.size(),
            Path::Qualified(p, q) => 1 + p.size() + q.size(),
            Path::Step(..) => 1,
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Path::Seq(a, b) => write!(f, "{a}/{b}"),
            Path::Qualified(p, q) => write!(f, "{p}[{q}]"),
            Path::Step(a, t) => write!(f, "{a}::{t}"),
            Path::Union(a, b) => write!(f, "({a} | {b})"),
        }
    }
}

/// A qualifier (XPath predicate restricted to path existence tests and
/// boolean connectives).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Qualifier {
    /// `q1 and q2`
    And(Box<Qualifier>, Box<Qualifier>),
    /// `q1 or q2`
    Or(Box<Qualifier>, Box<Qualifier>),
    /// `not(q)`
    Not(Box<Qualifier>),
    /// `p` — the path selects at least one node.
    Path(Box<Path>),
}

impl Qualifier {
    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Qualifier::And(a, b) | Qualifier::Or(a, b) => 1 + a.size() + b.size(),
            Qualifier::Not(q) => 1 + q.size(),
            Qualifier::Path(p) => 1 + p.size(),
        }
    }
}

impl fmt::Display for Qualifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Qualifier::And(a, b) => write!(f, "{a} and {b}"),
            Qualifier::Or(a, b) => write!(f, "({a} or {b})"),
            Qualifier::Not(q) => write!(f, "not({q})"),
            Qualifier::Path(p) => write!(f, "{p}"),
        }
    }
}

/// A full XPath expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// `/p` — evaluation starts at the root.
    Absolute(Path),
    /// `p` — evaluation starts at the context (marked) node.
    Relative(Path),
    /// `e1 ∪ e2`
    Union(Box<Expr>, Box<Expr>),
    /// `e1 ∩ e2`
    Intersect(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Expr::Absolute(p) | Expr::Relative(p) => 1 + p.size(),
            Expr::Union(a, b) | Expr::Intersect(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Absolute(p) => write!(f, "/{p}"),
            Expr::Relative(p) => write!(f, "{p}"),
            Expr::Union(a, b) => write!(f, "{a} | {b}"),
            Expr::Intersect(a, b) => write!(f, "({a}) intersect ({b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_is_involutive() {
        for a in Axis::ALL {
            assert_eq!(a.symmetric().symmetric(), a);
        }
    }

    #[test]
    fn display_shapes() {
        let p = Path::step(Axis::Child, NodeTest::Name(Label::new("a")))
            .then(Path::step(Axis::Descendant, NodeTest::Star));
        assert_eq!(p.to_string(), "child::a/descendant::*");
        let q = Qualifier::Not(Box::new(Qualifier::Path(Box::new(Path::step(
            Axis::Child,
            NodeTest::Name(Label::new("b")),
        )))));
        let pq = p.filter(q);
        assert_eq!(pq.to_string(), "child::a/descendant::*[not(child::b)]");
    }

    #[test]
    fn sizes() {
        let p = Path::step(Axis::Child, NodeTest::Star);
        assert_eq!(p.size(), 1);
        let e = Expr::Relative(p.clone().then(p));
        assert_eq!(e.size(), 4);
    }
}

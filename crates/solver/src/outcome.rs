//! Solver results: satisfiability verdicts, models and statistics.

use std::fmt;
use std::time::Duration;

use ftree::{BinaryTree, Label, Tree};

/// A satisfying model: a row of sibling trees (usually a single root).
///
/// The logic's models are focused trees whose top-level context may hold
/// siblings, so a satisfying "document" is in general a hedge; XML documents
/// are the common single-rooted case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    roots: Vec<Tree>,
}

impl Model {
    pub(crate) fn from_binary(root: &BinaryTree) -> Model {
        Model {
            roots: root.to_unranked_row(),
        }
    }

    /// The root row of the model.
    pub fn roots(&self) -> &[Tree] {
        &self.roots
    }

    /// The model as a single tree: the root itself if the row is a
    /// singleton, otherwise a synthetic `#hedge` element wrapping the row.
    pub fn tree(&self) -> Tree {
        match self.roots.as_slice() {
            [one] => one.clone(),
            row => Tree::node(Label::new("hedge"), row.to_vec()),
        }
    }

    /// Renders the model as XML (the start mark becomes `s="1"`).
    pub fn xml(&self) -> String {
        self.tree().to_xml()
    }

    /// Total node count.
    pub fn size(&self) -> usize {
        self.roots.iter().map(Tree::size).sum()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.xml())
    }
}

/// The verdict of a satisfiability run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A finite focused tree satisfies the formula; a minimal one is
    /// reconstructed (§7.2).
    Satisfiable(Model),
    /// No finite focused tree satisfies the formula.
    Unsatisfiable,
}

impl Outcome {
    /// Whether the verdict is satisfiable.
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, Outcome::Satisfiable(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            Outcome::Satisfiable(m) => Some(m),
            Outcome::Unsatisfiable => None,
        }
    }
}

/// Measurements of one solver run.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// `|Lean(ψ)|` — the exponent of the complexity bound.
    pub lean_size: usize,
    /// `|cl(ψ)|`.
    pub closure_size: usize,
    /// Fixpoint iterations performed.
    pub iterations: usize,
    /// Wall-clock time of the satisfiability loop.
    pub duration: Duration,
    /// Total BDD nodes allocated (symbolic backend only).
    pub bdd_nodes: Option<usize>,
    /// Number of ψ-types enumerated (explicit backend only).
    pub explicit_types: Option<usize>,
}

/// A verdict together with its statistics.
#[derive(Debug)]
pub struct Solved {
    /// The verdict.
    pub outcome: Outcome,
    /// Measurements.
    pub stats: Stats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_single_root() {
        let t = Tree::parse_xml("<a><b/></a>").unwrap();
        let b = BinaryTree::from_unranked(&t);
        let m = Model::from_binary(&b);
        assert_eq!(m.roots().len(), 1);
        assert_eq!(m.tree(), t);
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn model_hedge() {
        let a = BinaryTree::new(
            "a",
            false,
            None,
            Some(BinaryTree::new("b", false, None, None)),
        );
        let m = Model::from_binary(&a);
        assert_eq!(m.roots().len(), 2);
        assert_eq!(m.tree().label().as_str(), "hedge");
    }

    #[test]
    fn outcome_accessors() {
        let o = Outcome::Unsatisfiable;
        assert!(!o.is_satisfiable());
        assert!(o.model().is_none());
    }
}

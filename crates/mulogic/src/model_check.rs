//! Model checker: the denotational semantics of Fig 2 evaluated over the
//! foci of one concrete finite tree.
//!
//! The interpretation domain is the (finite) set of focused trees obtained
//! by focusing each node of a given tree. `⟨a⟩ϕ` holds at a focus `f` iff
//! `f⟨a⟩` is defined and satisfies ϕ; fixpoints are computed by Kleene
//! iteration (least from ∅, greatest from the full set).
//!
//! This module is the semantic *oracle* of the code base: translations and
//! the satisfiability solver are property-tested against it.

use std::collections::HashMap;

use ftree::{FocusedTree, Tree};

use crate::syntax::{Formula, FormulaKind, Program, Var};
use crate::Logic;

/// A set of foci of the checker's tree, as a bit set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FociSet {
    words: Vec<u64>,
    len: usize,
}

impl FociSet {
    fn empty(len: usize) -> Self {
        FociSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    fn full(len: usize) -> Self {
        let mut s = FociSet::empty(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Whether focus index `i` belongs to the set.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of foci in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn union(&self, o: &FociSet) -> FociSet {
        FociSet {
            words: self
                .words
                .iter()
                .zip(&o.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    fn inter(&self, o: &FociSet) -> FociSet {
        FociSet {
            words: self
                .words
                .iter()
                .zip(&o.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Indices of member foci, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.contains(i))
    }
}

/// Evaluates Lµ formulas over the foci of a fixed tree.
///
/// # Example
///
/// ```
/// use ftree::Tree;
/// use mulogic::{Logic, ModelChecker};
///
/// let mut lg = Logic::new();
/// // "some following sibling is named c"
/// let f = lg.parse("let_mu X = <2>c | <2>X in X").unwrap();
/// let tree = Tree::parse_xml("<r><a/><b/><c/></r>").unwrap();
/// let mc = ModelChecker::new(&tree);
/// let sat = mc.eval(&lg, f);
/// // holds at <a/> and <b/>, not at <c/> or <r>
/// assert_eq!(sat.count(), 2);
/// ```
#[derive(Debug)]
pub struct ModelChecker {
    foci: Vec<FocusedTree>,
    /// `succ[p][i] = Some(j)` iff `foci[i]⟨p⟩ = foci[j]`.
    succ: [Vec<Option<usize>>; 4],
    marked: FociSet,
}

impl ModelChecker {
    /// Builds the focus universe and transition tables of `tree`.
    pub fn new(tree: &Tree) -> Self {
        Self::new_row(std::slice::from_ref(tree))
    }

    /// Builds the checker over a top-level sibling row (a *hedge*): the
    /// general shape of the logic's models, whose `Top` context may hold
    /// siblings.
    pub fn new_row(row: &[Tree]) -> Self {
        let foci = FocusedTree::row_foci(row);
        let index: HashMap<&FocusedTree, usize> =
            foci.iter().enumerate().map(|(i, f)| (f, i)).collect();
        let mut succ = [const { Vec::new() }; 4];
        for (pi, p) in Program::ALL.iter().enumerate() {
            succ[pi] = foci
                .iter()
                .map(|f| f.step(*p).and_then(|g| index.get(&g).copied()))
                .collect();
        }
        let mut marked = FociSet::empty(foci.len());
        for (i, f) in foci.iter().enumerate() {
            if f.is_marked() {
                marked.insert(i);
            }
        }
        ModelChecker { foci, succ, marked }
    }

    /// The focus universe, in document order (index 0 is the root).
    pub fn foci(&self) -> &[FocusedTree] {
        &self.foci
    }

    /// Index of a focus in the universe, if it focuses this tree.
    pub fn index_of(&self, f: &FocusedTree) -> Option<usize> {
        self.foci.iter().position(|g| g == f)
    }

    /// The interpretation `⟦f⟧∅` restricted to this tree's foci.
    pub fn eval(&self, lg: &Logic, f: Formula) -> FociSet {
        self.eval_env(lg, f, &HashMap::new())
    }

    /// Whether `f` holds at the given focus.
    pub fn holds_at(&self, lg: &Logic, f: Formula, focus: &FocusedTree) -> bool {
        match self.index_of(focus) {
            Some(i) => self.eval(lg, f).contains(i),
            None => false,
        }
    }

    /// Foci satisfying `f`, materialized.
    pub fn sat_foci(&self, lg: &Logic, f: Formula) -> Vec<FocusedTree> {
        let s = self.eval(lg, f);
        s.iter().map(|i| self.foci[i].clone()).collect()
    }

    fn eval_env(&self, lg: &Logic, f: Formula, env: &HashMap<Var, FociSet>) -> FociSet {
        let n = self.foci.len();
        match lg.kind(f) {
            FormulaKind::True => FociSet::full(n),
            FormulaKind::False => FociSet::empty(n),
            FormulaKind::Prop(l) => {
                let mut s = FociSet::empty(n);
                for (i, fo) in self.foci.iter().enumerate() {
                    if fo.label() == *l {
                        s.insert(i);
                    }
                }
                s
            }
            FormulaKind::NotProp(l) => {
                let mut s = FociSet::empty(n);
                for (i, fo) in self.foci.iter().enumerate() {
                    if fo.label() != *l {
                        s.insert(i);
                    }
                }
                s
            }
            FormulaKind::Start => self.marked.clone(),
            FormulaKind::NotStart => {
                let mut s = FociSet::empty(n);
                for i in 0..n {
                    if !self.marked.contains(i) {
                        s.insert(i);
                    }
                }
                s
            }
            FormulaKind::Var(v) => env
                .get(v)
                .cloned()
                .unwrap_or_else(|| panic!("model check: unbound variable {}", lg.var_name(*v))),
            FormulaKind::Or(a, b) => {
                let sa = self.eval_env(lg, *a, env);
                let sb = self.eval_env(lg, *b, env);
                sa.union(&sb)
            }
            FormulaKind::And(a, b) => {
                let sa = self.eval_env(lg, *a, env);
                let sb = self.eval_env(lg, *b, env);
                sa.inter(&sb)
            }
            FormulaKind::Diam(p, phi) => {
                let sp = self.eval_env(lg, *phi, env);
                let pi = Program::ALL.iter().position(|x| x == p).expect("program");
                let mut s = FociSet::empty(n);
                for i in 0..n {
                    if let Some(j) = self.succ[pi][i] {
                        if sp.contains(j) {
                            s.insert(i);
                        }
                    }
                }
                s
            }
            FormulaKind::NotDiamTrue(p) => {
                let pi = Program::ALL.iter().position(|x| x == p).expect("program");
                let mut s = FociSet::empty(n);
                for i in 0..n {
                    if self.succ[pi][i].is_none() {
                        s.insert(i);
                    }
                }
                s
            }
            FormulaKind::Mu(binds, body) => self.eval_fixpoint(lg, binds, *body, env, false),
            FormulaKind::Nu(binds, body) => self.eval_fixpoint(lg, binds, *body, env, true),
        }
    }

    fn eval_fixpoint(
        &self,
        lg: &Logic,
        binds: &[(Var, Formula)],
        body: Formula,
        env: &HashMap<Var, FociSet>,
        greatest: bool,
    ) -> FociSet {
        let n = self.foci.len();
        let mut cur = env.clone();
        for &(v, _) in binds {
            cur.insert(
                v,
                if greatest {
                    FociSet::full(n)
                } else {
                    FociSet::empty(n)
                },
            );
        }
        loop {
            let next: Vec<(Var, FociSet)> = binds
                .iter()
                .map(|&(v, phi)| (v, self.eval_env(lg, phi, &cur)))
                .collect();
            let stable = next.iter().all(|(v, s)| cur.get(v) == Some(s));
            for (v, s) in next {
                cur.insert(v, s);
            }
            if stable {
                break;
            }
        }
        self.eval_env(lg, body, &cur)
    }
}

/// Whether `f` is satisfied somewhere on the top-level sibling row `roots`
/// — the oracle predicate behind witness verification.
///
/// The satisfiability solvers answer "some finite tree has a focus
/// satisfying ψ" (the plunging formula of §7.1 quantifies over foci), so a
/// reconstructed model is *valid* exactly when ψ's denotation over the
/// model's foci is non-empty. Every counter-example the analyzer emits is
/// re-checked through this function before it leaves the engine.
///
/// # Example
///
/// ```
/// use ftree::Tree;
/// use mulogic::{model_check, Logic};
///
/// let mut lg = Logic::new();
/// let f = lg.parse("a & <1>b").unwrap();
/// let good = Tree::parse_xml("<a><b/></a>").unwrap();
/// let bad = Tree::parse_xml("<a><c/></a>").unwrap();
/// assert!(model_check(&lg, f, std::slice::from_ref(&good)));
/// assert!(!model_check(&lg, f, std::slice::from_ref(&bad)));
/// ```
pub fn model_check(lg: &Logic, f: Formula, roots: &[Tree]) -> bool {
    if roots.is_empty() {
        return false;
    }
    !ModelChecker::new_row(roots).eval(lg, f).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree::{Direction, Label};

    fn tree() -> Tree {
        // <a><b><d/></b><c/></a>
        Tree::parse_xml("<a><b><d/></b><c/></a>").unwrap()
    }

    #[test]
    fn props_and_modalities() {
        let mut lg = Logic::new();
        let mc = ModelChecker::new(&tree());
        let b = lg.prop(Label::new("b"));
        let sat = mc.eval(&lg, b);
        assert_eq!(sat.count(), 1);
        // ⟨1⟩b holds at a only.
        let d = lg.diam(Direction::Down1, b);
        let sat = mc.sat_foci(&lg, d);
        assert_eq!(sat.len(), 1);
        assert_eq!(sat[0].label().as_str(), "a");
    }

    #[test]
    fn no_first_child_at_leaves() {
        let mut lg = Logic::new();
        let mc = ModelChecker::new(&tree());
        let f = lg.not_diam_true(Direction::Down1);
        let sat = mc.sat_foci(&lg, f);
        let mut labels: Vec<&str> = sat.iter().map(|f| f.label().as_str()).collect();
        labels.sort();
        assert_eq!(labels, vec!["c", "d"]);
    }

    #[test]
    fn least_fixpoint_descendant() {
        let mut lg = Logic::new();
        // µX. ⟨1⟩(d ∨ X) ∨ ⟨2⟩X : "d is among my descendants" (binary-style)
        let d = lg.prop(Label::new("d"));
        let x = lg.fresh_var("X");
        let xv = lg.var(x);
        let or_inner = lg.or(d, xv);
        let d1 = lg.diam(Direction::Down1, or_inner);
        let d2 = lg.diam(Direction::Down2, xv);
        let phi = lg.or(d1, d2);
        let f = lg.mu1(x, phi);
        let mc = ModelChecker::new(&tree());
        let sat = mc.sat_foci(&lg, f);
        let mut labels: Vec<&str> = sat.iter().map(|f| f.label().as_str()).collect();
        labels.sort();
        // In binary style: b has ⟨1⟩d; a has ⟨1⟩(b with X)... a and b hold.
        assert_eq!(labels, vec!["a", "b"]);
    }

    #[test]
    fn empty_least_vs_greatest_nonguarded() {
        // ϕ = µX.⟨1⟩X ∨ ⟨1̄⟩X has an empty interpretation;
        // ψ = νX.⟨1⟩X ∨ ⟨1̄⟩X holds at parent-child pairs (paper §4 example).
        let mut lg = Logic::new();
        let x = lg.fresh_var("X");
        let xv = lg.var(x);
        let d1 = lg.diam(Direction::Down1, xv);
        let u1 = lg.diam(Direction::Up1, xv);
        let or = lg.or(d1, u1);
        let mu = lg.mu1(x, or);
        let nu = lg.nu1(x, or);
        let t = Tree::parse_xml("<a><b/></a>").unwrap();
        let mc = ModelChecker::new(&t);
        assert!(mc.eval(&lg, mu).is_empty());
        assert_eq!(mc.eval(&lg, nu).count(), 2);
    }

    #[test]
    fn start_mark() {
        let mut lg = Logic::new();
        let t = Tree::parse_xml("<a><b s=\"1\"/></a>").unwrap();
        let mc = ModelChecker::new(&t);
        let s = lg.start();
        let sat = mc.sat_foci(&lg, s);
        assert_eq!(sat.len(), 1);
        assert_eq!(sat[0].label().as_str(), "b");
    }

    #[test]
    fn mutually_recursive_fixpoint() {
        // µ(X = ⟨1⟩Y, Y = c ∨ ⟨2⟩Y) in X : "some child is named c".
        let mut lg = Logic::new();
        let c = lg.prop(Label::new("c"));
        let x = lg.fresh_var("X");
        let y = lg.fresh_var("Y");
        let yv = lg.var(y);
        let xv = lg.var(x);
        let def_y = {
            let d2 = lg.diam(Direction::Down2, yv);
            lg.or(c, d2)
        };
        let def_x = lg.diam(Direction::Down1, yv);
        let f = lg.mu(vec![(x, def_x), (y, def_y)], xv);
        let mc = ModelChecker::new(&tree());
        let sat = mc.sat_foci(&lg, f);
        assert_eq!(sat.len(), 1);
        assert_eq!(sat[0].label().as_str(), "a");
    }
}

//! Resolved decision problems, their canonical memo keys, and verdicts.
//!
//! A [`Problem`] is fully structural: it holds the parsed query ASTs and
//! DTDs themselves (behind [`Arc`]), not the names they were registered
//! under. Its derived `Hash`/`Eq` therefore give a *canonical key* — the
//! same logical problem posed twice (under different names, or inline vs.
//! registered) memoizes to one cache entry, and two distinct problems can
//! never alias the way rendered-string keys could.

use std::sync::Arc;
use std::time::Instant;

use analyzer::{Analysis, Analyzer};
use treetypes::Dtd;
use xpath::Expr;

/// A fully resolved decision problem — the unit of work of the executor and
/// the key of the verdict memo cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Problem {
    /// Does the query select no node in any tree (of the type)?
    Empty {
        /// The query.
        query: Arc<Expr>,
        /// Optional type constraint.
        ty: Option<Arc<Dtd>>,
    },
    /// Does the query select a node in some tree (of the type)?
    Satisfiable {
        /// The query.
        query: Arc<Expr>,
        /// Optional type constraint.
        ty: Option<Arc<Dtd>>,
    },
    /// Is every node selected by `lhs` also selected by `rhs`?
    Contains {
        /// The contained query.
        lhs: Arc<Expr>,
        /// Type constraint of `lhs`.
        ltype: Option<Arc<Dtd>>,
        /// The containing query.
        rhs: Arc<Expr>,
        /// Type constraint of `rhs`.
        rtype: Option<Arc<Dtd>>,
    },
    /// Can the two queries select a common node?
    Overlap {
        /// First query.
        lhs: Arc<Expr>,
        /// Type constraint of `lhs`.
        ltype: Option<Arc<Dtd>>,
        /// Second query.
        rhs: Arc<Expr>,
        /// Type constraint of `rhs`.
        rtype: Option<Arc<Dtd>>,
    },
    /// Is every node selected by `query` selected by at least one of `by`?
    Covers {
        /// The covered query.
        query: Arc<Expr>,
        /// Its type constraint, shared by the covering queries.
        ty: Option<Arc<Dtd>>,
        /// The covering queries.
        by: Vec<Arc<Expr>>,
    },
    /// Containment in both directions.
    Equivalent {
        /// First query.
        lhs: Arc<Expr>,
        /// Type constraint of `lhs`.
        ltype: Option<Arc<Dtd>>,
        /// Second query.
        rhs: Arc<Expr>,
        /// Type constraint of `rhs`.
        rtype: Option<Arc<Dtd>>,
    },
    /// Is every node selected by `query` under the input type a valid root
    /// of the output type?
    TypeCheck {
        /// The annotated query.
        query: Arc<Expr>,
        /// Input type.
        input: Arc<Dtd>,
        /// Output type.
        output: Arc<Dtd>,
    },
}

impl Problem {
    /// The protocol name of the operation.
    pub fn op_name(&self) -> &'static str {
        match self {
            Problem::Empty { .. } => "empty",
            Problem::Satisfiable { .. } => "sat",
            Problem::Contains { .. } => "contains",
            Problem::Overlap { .. } => "overlap",
            Problem::Covers { .. } => "covers",
            Problem::Equivalent { .. } => "equiv",
            Problem::TypeCheck { .. } => "typecheck",
        }
    }

    /// Solves the problem on the given analyzer.
    pub fn run(&self, az: &mut Analyzer) -> Verdict {
        let started = Instant::now();
        let verdict = match self {
            Problem::Empty { query, ty } => {
                Verdict::from_analysis(az.is_empty(query, ty.as_deref()))
            }
            Problem::Satisfiable { query, ty } => {
                Verdict::from_analysis(az.is_satisfiable(query, ty.as_deref()))
            }
            Problem::Contains {
                lhs,
                ltype,
                rhs,
                rtype,
            } => Verdict::from_analysis(az.contains(lhs, ltype.as_deref(), rhs, rtype.as_deref())),
            Problem::Overlap {
                lhs,
                ltype,
                rhs,
                rtype,
            } => Verdict::from_analysis(az.overlaps(lhs, ltype.as_deref(), rhs, rtype.as_deref())),
            Problem::Covers { query, ty, by } => {
                let covers: Vec<(&Expr, Option<&Dtd>)> =
                    by.iter().map(|e| (&**e, ty.as_deref())).collect();
                Verdict::from_analysis(az.covers(query, ty.as_deref(), &covers))
            }
            Problem::Equivalent {
                lhs,
                ltype,
                rhs,
                rtype,
            } => {
                let (fwd, bwd) = az.equivalent(lhs, ltype.as_deref(), rhs, rtype.as_deref());
                Verdict::from_equivalence(fwd, bwd)
            }
            Problem::TypeCheck {
                query,
                input,
                output,
            } => Verdict::from_analysis(az.type_checks(query, input, output)),
        };
        Verdict {
            wall_ms: duration_ms(started.elapsed()),
            ..verdict
        }
    }
}

/// Solver statistics snapshot carried by every verdict (and preserved on
/// cache hits, where they describe the original solving run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerdictStats {
    /// `|Lean(ψ)|` of the goal formula (max over sub-problems).
    pub lean_size: usize,
    /// `|cl(ψ)|` (max over sub-problems).
    pub closure_size: usize,
    /// Fixpoint iterations (summed over sub-problems).
    pub iterations: usize,
    /// Wall-clock of the satisfiability loop(s), in milliseconds.
    pub solve_ms: f64,
    /// Total BDD nodes allocated, when the symbolic backend reports it.
    pub bdd_nodes: Option<usize>,
}

impl VerdictStats {
    fn from_solver(stats: &solver::Stats) -> VerdictStats {
        VerdictStats {
            lean_size: stats.lean_size,
            closure_size: stats.closure_size,
            iterations: stats.iterations,
            solve_ms: duration_ms(stats.duration),
            bdd_nodes: stats.bdd_nodes,
        }
    }

    fn merge(self, other: VerdictStats) -> VerdictStats {
        VerdictStats {
            lean_size: self.lean_size.max(other.lean_size),
            closure_size: self.closure_size.max(other.closure_size),
            iterations: self.iterations + other.iterations,
            solve_ms: self.solve_ms + other.solve_ms,
            bdd_nodes: match (self.bdd_nodes, other.bdd_nodes) {
                (Some(a), Some(b)) => Some(a + b),
                (a, b) => a.or(b),
            },
        }
    }
}

/// The outcome of one decision problem, in wire-friendly form.
///
/// Counter-examples are rendered to XML eagerly: solver models hold
/// `Rc`-based trees that cannot cross threads, while a `Verdict` must
/// travel from executor workers back to the caller and live in the shared
/// memo cache.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Whether the queried property holds.
    pub holds: bool,
    /// Witness XML: against the property for refutable ops (containment,
    /// emptiness, coverage, type-checking, equivalence), for it on
    /// satisfiability and overlap.
    pub counter_example: Option<String>,
    /// Solver measurements.
    pub stats: VerdictStats,
    /// End-to-end time for this problem (translation + solving), in
    /// milliseconds. Zero-ish on cache hits.
    pub wall_ms: f64,
}

impl Verdict {
    fn from_analysis(a: Analysis) -> Verdict {
        Verdict {
            holds: a.holds,
            counter_example: a.counter_example.map(|m| m.xml()),
            stats: VerdictStats::from_solver(&a.stats),
            wall_ms: 0.0,
        }
    }

    fn from_equivalence(fwd: Analysis, bwd: Analysis) -> Verdict {
        let holds = fwd.holds && bwd.holds;
        // The witness is whichever direction failed first.
        let counter_example = fwd.counter_example.or(bwd.counter_example).map(|m| m.xml());
        Verdict {
            holds,
            counter_example,
            stats: VerdictStats::from_solver(&fwd.stats)
                .merge(VerdictStats::from_solver(&bwd.stats)),
            wall_ms: 0.0,
        }
    }
}

pub(crate) fn duration_ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: &str) -> Arc<Expr> {
        Arc::new(xpath::parse(src).unwrap())
    }

    #[test]
    fn canonical_keys_ignore_provenance() {
        use std::collections::HashMap;
        let a = Problem::Contains {
            lhs: q("a/b"),
            ltype: None,
            rhs: q("a/*"),
            rtype: None,
        };
        let b = Problem::Contains {
            lhs: q("a/b"),
            ltype: None,
            rhs: q("a/*"),
            rtype: None,
        };
        assert_eq!(a, b);
        let mut m = HashMap::new();
        m.insert(a, 1);
        assert_eq!(m.get(&b), Some(&1));
        // Swapped sides are a different problem.
        let c = Problem::Contains {
            lhs: q("a/*"),
            ltype: None,
            rhs: q("a/b"),
            rtype: None,
        };
        assert!(!m.contains_key(&c));
    }

    #[test]
    fn run_produces_counter_example() {
        let mut az = Analyzer::new();
        let p = Problem::Contains {
            lhs: q("child::c/preceding-sibling::a[child::b]"),
            ltype: None,
            rhs: q("child::c[child::b]"),
            rtype: None,
        };
        let v = p.run(&mut az);
        assert!(!v.holds);
        let xml = v.counter_example.expect("witness expected");
        assert!(xml.contains("<a>"), "{xml}");
        assert!(v.stats.lean_size > 0);
        assert!(v.wall_ms >= 0.0);
    }

    #[test]
    fn equivalence_merges_stats() {
        let mut az = Analyzer::new();
        let p = Problem::Equivalent {
            lhs: q("a/b[c]"),
            ltype: None,
            rhs: q("a/b[c]"),
            rtype: None,
        };
        let v = p.run(&mut az);
        assert!(v.holds);
        assert!(v.counter_example.is_none());
        assert!(v.stats.iterations > 0);
    }
}

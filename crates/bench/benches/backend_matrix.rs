//! Backend matrix: the three solver backends (plus the dual cross-check
//! and the portfolio race) on the paper's Fig 18 containment family, from
//! a trivial member up to the figure's own `e1 ⊆ e2` pair.
//!
//! The enumerating backends are exponential in the lean's diamond count,
//! so members beyond `XSAT_MATRIX_MAX_DIAMONDS` (default 12) are recorded
//! as skipped for those backends rather than stalling the bench — the
//! point of the matrix is the crossover: where the symbolic backend pulls
//! away from the references. The portfolio is never skipped: it gates its
//! enumerating racers itself and degrades to symbolic-only on oversized
//! leans. Results land in `BENCH_backends.json` at the workspace root so
//! PRs touching the kernel can diff them.

use std::fmt::Write as _;
use std::time::Instant;

use analyzer::{Analyzer, BackendChoice};
use criterion::{criterion_group, criterion_main, Criterion};
use solver::Prepared;
use std::hint::black_box;

/// The Fig 18 family: containments of growing lean size, ending with the
/// paper's own pair (`e1 ⊆ e2` does not hold; the witness is the figure's
/// counter-example tree).
const FAMILY: &[(&str, &str, &str, bool)] = &[
    ("self", "child::a", "child::a", true),
    ("predicate", "child::a", "child::a[child::b]", false),
    ("sibling", "child::c/preceding-sibling::a", "child::a", true),
    (
        "fig18",
        "child::c/preceding-sibling::a[child::b]",
        "child::c[child::b]",
        false,
    ),
];

const BACKENDS: [BackendChoice; 5] = [
    BackendChoice::Symbolic,
    BackendChoice::Explicit,
    BackendChoice::Witnessed,
    BackendChoice::Dual,
    BackendChoice::Portfolio,
];

fn max_diamonds() -> usize {
    std::env::var("XSAT_MATRIX_MAX_DIAMONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

fn samples() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Builds the containment goal `⟦lhs⟧ ∧ ¬⟦rhs⟧` in a fresh analyzer and
/// returns the analyzer with the goal formula.
fn goal(lhs: &str, rhs: &str, backend: BackendChoice) -> (Analyzer, mulogic::Formula) {
    let mut az = Analyzer::new();
    az.set_backend(backend);
    let e1 = xpath::parse(lhs).expect("family query parses");
    let e2 = xpath::parse(rhs).expect("family query parses");
    let f1 = az.query_formula(&e1, None);
    let f2 = az.query_formula(&e2, None);
    let lg = az.logic_mut();
    let nf2 = lg.not(f2);
    let g = lg.and(f1, nf2);
    (az, g)
}

/// The lean diamond count of one family member (decides enumeration
/// feasibility for the explicit/witnessed/dual backends).
fn diamonds(lhs: &str, rhs: &str) -> usize {
    let (mut az, g) = goal(lhs, rhs, BackendChoice::Symbolic);
    let lg = az.logic_mut();
    let prep = Prepared::new(lg, g);
    prep.lean.diam_entries().count()
}

/// One record of the matrix: min/mean solve time over `samples` runs,
/// plus — for runs with a symbolic side — the BDD kernel telemetry
/// (live/created nodes and operation-cache hit rate).
struct Cell {
    backend: BackendChoice,
    min_ms: f64,
    mean_ms: f64,
    iterations: usize,
    bdd: Option<(usize, usize, f64)>,
    /// Which racer won, on portfolio runs (the last sample's winner).
    winner: Option<&'static str>,
}

fn measure(lhs: &str, rhs: &str, backend: BackendChoice, expect_holds: bool, n: usize) -> Cell {
    let mut times = Vec::with_capacity(n);
    let mut iterations = 0;
    let mut bdd = None;
    let mut winner = None;
    for _ in 0..n {
        let (mut az, g) = goal(lhs, rhs, backend);
        let t = Instant::now();
        let solved = az.solve_formula(black_box(g)).expect("cross-check agrees");
        times.push(t.elapsed().as_secs_f64() * 1000.0);
        // Containment holds iff the goal is unsatisfiable.
        assert_eq!(!solved.outcome.is_satisfiable(), expect_holds);
        iterations = solved.stats.iterations;
        let telemetry = &solved.stats.telemetry;
        if let (Some(nodes), Some(counters)) = (telemetry.bdd_nodes(), telemetry.bdd_counters()) {
            bdd = Some((nodes, counters.created_nodes, counters.cache_hit_rate()));
        }
        if let analyzer::Telemetry::Portfolio { winner: w, .. } = telemetry {
            winner = Some(*w);
        }
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    Cell {
        backend,
        min_ms: min,
        mean_ms: mean,
        iterations,
        bdd,
        winner,
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn bench_backend_matrix(_c: &mut Criterion) {
    let cap = max_diamonds();
    let n = samples();
    let mut rows = String::new();
    for &(name, lhs, rhs, holds) in FAMILY {
        let d = diamonds(lhs, rhs);
        let mut cells = String::new();
        for backend in BACKENDS {
            let enumerates = !matches!(backend, BackendChoice::Symbolic | BackendChoice::Portfolio);
            if enumerates && d > cap {
                println!("backend-matrix {name}/{backend}: skipped ({d} diamonds > cap {cap})");
                let _ = write!(
                    cells,
                    r#"{}{{"backend":"{backend}","skipped":true,"reason":"{d} diamonds > cap {cap}"}}"#,
                    if cells.is_empty() { "" } else { "," },
                );
                continue;
            }
            // One hand-rolled timing loop per cell: it both prints the
            // console row and feeds the JSON record, so the exponential
            // cells are not paid twice under a second harness.
            let cell = measure(lhs, rhs, backend, holds, n);
            println!(
                "bench backend-matrix/{name}/{backend}: min {:.3} ms, mean {:.3} ms ({} iterations, {n} samples)",
                cell.min_ms, cell.mean_ms, cell.iterations
            );
            let mut bdd_fields = match cell.bdd {
                Some((nodes, created, hit_rate)) => format!(
                    r#","bdd_nodes":{nodes},"created_nodes":{created},"cache_hit_rate":{}"#,
                    round3(hit_rate)
                ),
                None => String::new(),
            };
            if let Some(winner) = cell.winner {
                let _ = write!(bdd_fields, r#","winner":"{winner}""#);
            }
            let _ = write!(
                cells,
                r#"{}{{"backend":"{}","min_ms":{},"mean_ms":{},"iterations":{}{bdd_fields}}}"#,
                if cells.is_empty() { "" } else { "," },
                cell.backend,
                round3(cell.min_ms),
                round3(cell.mean_ms),
                cell.iterations,
            );
        }
        let _ = write!(
            rows,
            r#"{}{{"name":"{name}","lhs":"{lhs}","rhs":"{rhs}","holds":{holds},"diamonds":{d},"backends":[{cells}]}}"#,
            if rows.is_empty() { "" } else { "," },
        );
    }
    let json = format!(
        r#"{{"bench":"backend_matrix","family":"fig18-containment","samples":{n},"max_diamonds":{cap},"members":[{rows}]}}"#
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_backends.json");
    std::fs::write(path, json + "\n").expect("write BENCH_backends.json");
    println!("backend-matrix: wrote {path}");
}

criterion_group!(benches, bench_backend_matrix);
criterion_main!(benches);

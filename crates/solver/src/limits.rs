//! Resource governance of a solve: budgets, the resources they meter, and
//! the typed exhaustion report.
//!
//! The paper's decision procedures are EXPTIME in the lean, so a service
//! answering untrusted requests must bound every run: a hostile (or merely
//! huge) lean can otherwise pin a worker for an unbounded time or grow the
//! BDD store without limit. [`Limits`] is that admission-control contract,
//! threaded from the engine protocol (`"limits"` request objects, `xsat
//! --timeout-ms/--max-bdd-nodes/--max-lean`) through
//! [`Analyzer::solve`](../analyzer) down to
//! [`run_fixpoint`](crate::run_fixpoint) and the BDD manager's allocation
//! path. Hitting a budget is *not* an error in the solver-bug sense: it is
//! the third verdict — the caller learns which [`Resource`] ran out and can
//! retry with a larger budget.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::bits::MAX_EXPLICIT_DIAMONDS;

/// Cooperative cancellation of an in-flight solve.
///
/// The portfolio mode clones one armed token into every racer; the first
/// racer to finish flips the shared flag and the others abort at their
/// next poll point — the per-`Upd`-step check in
/// [`run_fixpoint`](crate::run_fixpoint), the symbolic backend's budget
/// poll between relational-product clauses, and the enumeration and
/// table-construction loops of the enumerating backends — with a
/// [`Resource::Cancelled`] exhaustion. The default token is inert: it is
/// never cancelled and polling it is a single `Option` check.
///
/// The token deliberately does not participate in equality or hashing:
/// two [`Limits`] that differ only in their cancellation wiring describe
/// the same budget contract (the engine's memo cache keys on `Limits`).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Option<Arc<AtomicBool>>);

impl CancelToken {
    /// The inert token: never cancelled, costs one `Option` check to poll.
    pub const fn inert() -> CancelToken {
        CancelToken(None)
    }

    /// A fresh shared flag, initially not cancelled. Clones observe each
    /// other's [`cancel`](CancelToken::cancel).
    pub fn armed() -> CancelToken {
        CancelToken(Some(Arc::new(AtomicBool::new(false))))
    }

    /// Whether this token can ever report cancellation.
    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }

    /// Requests cancellation. A no-op on the inert token.
    pub fn cancel(&self) {
        if let Some(flag) = &self.0 {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.as_ref().is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, _: &CancelToken) -> bool {
        true
    }
}

impl Eq for CancelToken {}

impl std::hash::Hash for CancelToken {
    fn hash<H: std::hash::Hasher>(&self, _: &mut H) {}
}

/// Resource budgets of one solve.
///
/// Every field is a per-solve budget (the two directions of an equivalence
/// share the wall-clock deadline but each get a fresh node budget — the
/// manager is reset between sub-solves). `Limits::default()` is the
/// service posture: no time or node budget, but the explicit enumeration
/// capped at [`MAX_EXPLICIT_DIAMONDS`] lean diamonds; [`Limits::none`]
/// lifts every cap (the posture of the direct `solve_*` wrappers).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Limits {
    /// Wall-clock budget of the whole solve. Checked before every `Upd`
    /// iteration by [`run_fixpoint`](crate::run_fixpoint) and, on the
    /// symbolic backend, between the clauses of each relational-product
    /// fold.
    pub deadline: Option<Duration>,
    /// Budget on live BDD nodes, enforced by the manager at allocation
    /// (the check is sticky: once an allocation pushes the arena past the
    /// budget the run reports exhaustion at its next poll point).
    pub max_bdd_nodes: Option<usize>,
    /// Cap on `Upd` fixpoint iterations.
    pub max_iterations: Option<usize>,
    /// Cap on `⟨a⟩ϕ` lean entries accepted by the enumerating backends
    /// (explicit, witnessed, and the explicit half of dual mode). The
    /// enumeration is exponential in this count; the default is the
    /// paper-scale [`MAX_EXPLICIT_DIAMONDS`]. Values above the
    /// enumeration's representation limit (26) are clamped to it by the
    /// governed dispatch path, so an arbitrarily large cap still yields a
    /// typed exhaustion — never a panic.
    pub max_lean_diamonds: usize,
    /// Cooperative cancellation, polled alongside the deadline at every
    /// budget check. Inert by default; the portfolio mode arms one token
    /// shared by its racers. Ignored by equality and hashing.
    pub cancel: CancelToken,
}

impl Limits {
    /// No budgets at all: the posture of the direct `solve_*` wrappers,
    /// under which a fixpoint run cannot exhaust.
    pub const fn none() -> Limits {
        Limits {
            deadline: None,
            max_bdd_nodes: None,
            max_iterations: None,
            max_lean_diamonds: usize::MAX,
            cancel: CancelToken::inert(),
        }
    }

    /// Whether any budget is set (the fast path skips deadline reads when
    /// none is). An armed cancel token counts as a bound: the run must
    /// keep polling.
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none()
            && self.max_bdd_nodes.is_none()
            && self.max_iterations.is_none()
            && self.max_lean_diamonds == usize::MAX
            && !self.cancel.is_armed()
    }

    /// One cooperative budget poll: the cancel token first, then the
    /// wall-clock deadline against `started`. Used by the long
    /// construction loops (type enumeration, status tables) that run
    /// before the fixpoint driver's own per-step checks.
    pub fn poll(&self, started: Instant) -> Result<(), Exhausted> {
        if self.cancel.is_cancelled() {
            return Err(Exhausted::cancelled(started.elapsed()));
        }
        if let Some(deadline) = self.deadline {
            let elapsed = started.elapsed();
            if elapsed >= deadline {
                return Err(Exhausted::wall_clock(elapsed, deadline));
            }
        }
        Ok(())
    }

    /// The limits that remain after `elapsed` of the wall-clock budget has
    /// been spent — what a multi-part problem (an equivalence solves two
    /// containments) hands to its next sub-solve. Errs with a
    /// [`Resource::WallClock`] exhaustion when nothing remains.
    pub fn after(&self, elapsed: Duration) -> Result<Limits, Exhausted> {
        match self.deadline {
            None => Ok(self.clone()),
            Some(total) => {
                let left = total.saturating_sub(elapsed);
                if left.is_zero() {
                    return Err(Exhausted::wall_clock(elapsed, total));
                }
                Ok(Limits {
                    deadline: Some(left),
                    ..self.clone()
                })
            }
        }
    }
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_lean_diamonds: MAX_EXPLICIT_DIAMONDS,
            ..Limits::none()
        }
    }
}

/// The meterable resources of a solve — the `resource` tag of a
/// [`ResourceExhausted`](crate::SolveError::ResourceExhausted) report and
/// of the protocol's `"status":"unknown"` verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Wall-clock time, metered in milliseconds.
    WallClock,
    /// Live BDD nodes in the symbolic backend's manager.
    BddNodes,
    /// `Upd` fixpoint iterations.
    Iterations,
    /// `⟨a⟩ϕ` lean entries presented to an enumerating backend.
    LeanDiamonds,
    /// Cooperative cancellation: another racer of a portfolio solve
    /// finished first. Never surfaces in protocol responses — the
    /// portfolio coordinator discards the losers' reports.
    Cancelled,
}

impl Resource {
    /// The protocol name of the resource.
    pub fn as_str(self) -> &'static str {
        match self {
            Resource::WallClock => "wall_clock_ms",
            Resource::BddNodes => "bdd_nodes",
            Resource::Iterations => "iterations",
            Resource::LeanDiamonds => "lean_diamonds",
            Resource::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A budget hit, reported by a backend or the fixpoint driver: which
/// resource ran out, how much was spent, and what the budget was.
///
/// `spent` and `limit` are in the resource's natural unit (milliseconds
/// for wall clock, counts otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    /// The resource that ran out.
    pub resource: Resource,
    /// How much was spent when the budget check fired.
    pub spent: u64,
    /// The configured budget.
    pub limit: u64,
}

impl Exhausted {
    /// A wall-clock exhaustion from the elapsed time and the deadline.
    pub fn wall_clock(elapsed: Duration, deadline: Duration) -> Exhausted {
        Exhausted {
            resource: Resource::WallClock,
            spent: elapsed.as_millis() as u64,
            limit: deadline.as_millis() as u64,
        }
    }

    /// A cancellation report: a concurrent racer finished first after
    /// `elapsed` of this run. There is no meaningful budget; `limit` is 0.
    pub fn cancelled(elapsed: Duration) -> Exhausted {
        Exhausted {
            resource: Resource::Cancelled,
            spent: elapsed.as_millis() as u64,
            limit: 0,
        }
    }
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::WallClock => write!(
                f,
                "resource exhausted: wall clock at {} ms, the deadline is {} ms",
                self.spent, self.limit
            ),
            Resource::BddNodes => write!(
                f,
                "resource exhausted: {} live BDD nodes, the budget is {}",
                self.spent, self.limit
            ),
            Resource::Iterations => write!(
                f,
                "resource exhausted: {} fixpoint iterations, the cap is {}",
                self.spent, self.limit
            ),
            Resource::LeanDiamonds => write!(
                f,
                "resource exhausted: lean has {} diamonds, the cap is {}",
                self.spent, self.limit
            ),
            Resource::Cancelled => write!(
                f,
                "resource exhausted: cancelled by a concurrent racer after {} ms",
                self.spent
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_caps_only_the_enumeration() {
        let d = Limits::default();
        assert_eq!(d.deadline, None);
        assert_eq!(d.max_bdd_nodes, None);
        assert_eq!(d.max_iterations, None);
        assert_eq!(d.max_lean_diamonds, MAX_EXPLICIT_DIAMONDS);
        assert!(!d.is_unbounded());
        assert!(Limits::none().is_unbounded());
    }

    #[test]
    fn after_subtracts_the_deadline() {
        let l = Limits {
            deadline: Some(Duration::from_millis(100)),
            ..Limits::default()
        };
        let rest = l.after(Duration::from_millis(40)).unwrap();
        assert_eq!(rest.deadline, Some(Duration::from_millis(60)));
        let gone = l.after(Duration::from_millis(100)).unwrap_err();
        assert_eq!(gone.resource, Resource::WallClock);
        assert_eq!(gone.limit, 100);
        // Without a deadline `after` is the identity.
        assert_eq!(
            Limits::default().after(Duration::from_secs(9)).unwrap(),
            Limits::default()
        );
    }

    #[test]
    fn cancel_token_is_shared_and_invisible_to_equality() {
        let token = CancelToken::armed();
        let racer = Limits {
            cancel: token.clone(),
            ..Limits::default()
        };
        // Armed-but-uncancelled polls pass; the token still counts as a
        // bound so pollers are not skipped.
        assert!(racer.poll(Instant::now()).is_ok());
        assert!(!Limits {
            cancel: token.clone(),
            ..Limits::none()
        }
        .is_unbounded());
        token.cancel();
        let e = racer.poll(Instant::now()).unwrap_err();
        assert_eq!(e.resource, Resource::Cancelled);
        assert_eq!(Resource::Cancelled.as_str(), "cancelled");
        // The token never participates in the budget contract's identity:
        // the memo cache must key identically-budgeted solves together.
        assert_eq!(racer, Limits::default());
        // `after` carries the token along.
        let timed = Limits {
            deadline: Some(Duration::from_millis(100)),
            cancel: token.clone(),
            ..Limits::default()
        };
        let rest = timed.after(Duration::from_millis(10)).unwrap();
        assert!(rest.cancel.is_cancelled());
    }

    #[test]
    fn exhaustion_messages_name_the_resource() {
        let e = Exhausted {
            resource: Resource::Iterations,
            spent: 7,
            limit: 7,
        };
        assert_eq!(
            e.to_string(),
            "resource exhausted: 7 fixpoint iterations, the cap is 7"
        );
        assert_eq!(Resource::BddNodes.as_str(), "bdd_nodes");
        assert_eq!(Resource::WallClock.to_string(), "wall_clock_ms");
    }
}

//! Semantic property tests for the logic:
//!
//! * **Lemma 4.2** — on finite trees, µ and ν coincide for cycle-free
//!   formulas: the model checker must give the same answer for a guarded
//!   recursion interpreted as least or as greatest fixpoint;
//! * **negation** — `⟦¬ϕ⟧` is the complement of `⟦ϕ⟧` over the foci of any
//!   tree (the boolean-closure property the collapse enables);
//! * the counter-example of §4: for formulas with modality cycles the two
//!   fixpoints genuinely differ.

use ftree::{Label, Tree};
use mulogic::{cycle_free, Formula, Logic, ModelChecker, Program};
use proptest::prelude::*;

const LABELS: [&str; 3] = ["a", "b", "c"];

fn arb_label() -> impl Strategy<Value = &'static str> {
    prop::sample::select(&LABELS[..])
}

fn arb_tree(depth: u32) -> impl Strategy<Value = Tree> {
    let leaf = arb_label().prop_map(Tree::leaf);
    leaf.prop_recursive(depth, 10, 3, |inner| {
        (arb_label(), prop::collection::vec(inner, 0..3)).prop_map(|(l, cs)| Tree::node(l, cs))
    })
}

/// A guarded single-variable recursion µ/νX. base ∨ ⟨p⟩X.
#[derive(Debug, Clone)]
struct Rec {
    base_label: &'static str,
    program: u8,
}

fn prog(code: u8) -> Program {
    match code % 4 {
        0 => Program::Down1,
        1 => Program::Down2,
        2 => Program::Up1,
        _ => Program::Up2,
    }
}

fn build(lg: &mut Logic, r: &Rec, greatest: bool) -> Formula {
    let base = lg.prop(Label::new(r.base_label));
    let x = lg.fresh_var("X");
    let xv = lg.var(x);
    let step = lg.diam(prog(r.program), xv);
    let body = lg.or(base, step);
    if greatest {
        lg.nu1(x, body)
    } else {
        lg.mu1(x, body)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Lemma 4.2: µ and ν interpretations coincide for guarded,
    /// single-direction (hence cycle-free) recursions on finite trees.
    #[test]
    fn mu_equals_nu_on_cycle_free(
        t in arb_tree(3),
        base in prop::sample::select(&LABELS[..]),
        p in 0u8..4,
    ) {
        let mut lg = Logic::new();
        let r = Rec { base_label: base, program: p };
        let mu = build(&mut lg, &r, false);
        let nu = build(&mut lg, &r, true);
        prop_assert!(cycle_free(&lg, mu));
        let mc = ModelChecker::new(&t);
        prop_assert_eq!(mc.eval(&lg, mu), mc.eval(&lg, nu));
    }

    /// Boolean closure: `⟦lg.not(ϕ)⟧` complements `⟦ϕ⟧` focus-by-focus.
    #[test]
    fn negation_is_semantic_complement(
        t in arb_tree(3),
        base in prop::sample::select(&LABELS[..]),
        p in 0u8..4,
    ) {
        let mut lg = Logic::new();
        let r = Rec { base_label: base, program: p };
        let f = build(&mut lg, &r, false);
        let collapsed = lg.collapse_nu(f);
        let nf = lg.not(collapsed);
        let nf_mu = lg.collapse_nu(nf);
        let mc = ModelChecker::new(&t);
        let pos = mc.eval(&lg, collapsed);
        let neg = mc.eval(&lg, nf_mu);
        for i in 0..mc.foci().len() {
            prop_assert!(pos.contains(i) != neg.contains(i));
        }
    }
}

/// §4's example where the fixpoints differ: νX.⟨1⟩X ∨ ⟨1̄⟩X is nonempty on
/// a two-node tree while µX.⟨1⟩X ∨ ⟨1̄⟩X is empty — the formula is not
/// cycle-free, so Lemma 4.2 does not apply.
#[test]
fn non_cycle_free_fixpoints_differ() {
    let mut lg = Logic::new();
    let x = lg.fresh_var("X");
    let xv = lg.var(x);
    let d = lg.diam(Program::Down1, xv);
    let u = lg.diam(Program::Up1, xv);
    let body = lg.or(d, u);
    let mu = lg.mu1(x, body);
    let nu = lg.nu1(x, body);
    assert!(!cycle_free(&lg, mu));
    let t = Tree::parse_xml("<a><b/></a>").unwrap();
    let mc = ModelChecker::new(&t);
    assert!(mc.eval(&lg, mu).is_empty());
    assert_eq!(mc.eval(&lg, nu).count(), 2);
}

/// µX.⟨1⟩⟨1̄⟩X vs νX.⟨1⟩⟨1̄⟩X (§4): empty vs "has a first child".
#[test]
fn modality_cycle_example() {
    let mut lg = Logic::new();
    let x = lg.fresh_var("X");
    let xv = lg.var(x);
    let u = lg.diam(Program::Up1, xv);
    let d = lg.diam(Program::Down1, u);
    let mu = lg.mu1(x, d);
    let nu = lg.nu1(x, d);
    let t = Tree::parse_xml("<a><b/><c/></a>").unwrap();
    let mc = ModelChecker::new(&t);
    assert!(mc.eval(&lg, mu).is_empty());
    // ν: every node with a first child satisfies it — only <a> here.
    let sat = mc.sat_foci(&lg, nu);
    assert_eq!(sat.len(), 1);
    assert_eq!(sat[0].label().as_str(), "a");
}

//! Satisfiability of Lµ over finite focused trees (paper §6–§7).
//!
//! Given a closed, cycle-free, µ-only formula (obtain one with
//! [`mulogic::Logic::collapse_nu`]; the [`Prepared`] step does it for you),
//! the solvers decide whether some finite focused tree satisfies it, and if
//! so reconstruct a minimal satisfying tree (§7.2).
//!
//! Three backends implement the same bottom-up fixpoint over ψ-types,
//! expressed as impls of the [`Backend`] trait and driven by the shared
//! [`run_fixpoint`] kernel loop:
//!
//! * [`solve_explicit`] — the literal algorithm of §6.2 over enumerated
//!   bit-vector types; exponential in the number of lean modalities, used
//!   as a reference implementation and for cross-validation;
//! * [`solve_symbolic`] — the BDD-based implementation of §7: sets of
//!   ψ-types as boolean functions, compatibility relations `∆_a` as
//!   conjunctively-partitioned clause lists folded with early
//!   quantification (§7.3), breadth-first variable order (§7.4), and a
//!   marked/unmarked set pair enforcing start-mark uniqueness (Fig 16);
//! * [`solve_witnessed`] — the literal Fig 16 triples with explicit
//!   witness sets and the recursive `dsat` final check.
//!
//! The first two check satisfiability through the plunging formula
//! `µX.ϕ ∨ ⟨1⟩X ∨ ⟨2⟩X` at root types (§7.1), so only *sets* of types are
//! tracked; per-iteration snapshots then drive minimal-depth counter-example
//! reconstruction.
//!
//! Backend selection is a first-class concept: [`BackendChoice`] names the
//! three backends plus the [`BackendChoice::Dual`] cross-check mode and
//! the [`BackendChoice::Portfolio`] racing mode (every feasible backend on
//! worker threads under one shared deadline, first verdict wins, the rest
//! are cooperatively cancelled through [`Limits::cancel`]), and
//! [`solve_with`] dispatches on it. Each run reports typed per-backend
//! [`Telemetry`] in its [`Stats`].
//!
//! Runs are *resource-governed*: [`solve_with`] (and the kernel's
//! [`run_fixpoint`]) take a [`Limits`] value — wall-clock deadline, BDD
//! node budget, fixpoint iteration cap, and the lean-diamond cap of the
//! enumerating backends — and report a budget hit as the typed
//! [`SolveError::ResourceExhausted`], the "unknown" third verdict a
//! service turns into admission control. The direct `solve_*` wrappers run
//! unbounded ([`Limits::none`]).
//!
//! # Example
//!
//! ```
//! use mulogic::Logic;
//! use solver::solve_symbolic;
//!
//! let mut lg = Logic::new();
//! // "the focus is an a-node whose first child is named b"
//! let goal = lg.parse("a & <1>b")?;
//! let solved = solve_symbolic(&mut lg, goal);
//! let model = solved.outcome.model().expect("satisfiable");
//! assert_eq!(model.tree().label().as_str(), "a");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod explicit;
pub mod kernel;
mod limits;
mod outcome;
pub(crate) mod portfolio;
mod prepare;
mod symbolic;
mod witnessed;

pub use bits::{TypeBits, TypeEnumerator, MAX_EXPLICIT_DIAMONDS};
pub use explicit::solve_explicit;
pub use kernel::{
    run_fixpoint, run_fixpoint_traced, solve_with, solve_with_in, solve_with_traced, Backend,
    BackendChoice, CrossCheckError, SolveError, StepObservation,
};
pub use limits::{CancelToken, Exhausted, Limits, Resource};
pub use outcome::{BddCounters, Model, Outcome, Solved, Stats, Telemetry};
pub use prepare::Prepared;
pub use symbolic::{
    solve_symbolic, solve_symbolic_in, solve_symbolic_traced, solve_symbolic_with, SymbolicOptions,
    VarOrder,
};
pub use witnessed::{lean_diamonds, solve_witnessed};

//! Quickstart: the typed `Problem`/`Limits` API — decide XPath
//! containment, overlap and emptiness, print counter-examples, and bound
//! a solve so it returns the `unknown` third verdict instead of running
//! away.
//!
//! Run with `cargo run --example quickstart`.

use xsat::analyzer::{Analyzer, Limits, Problem, SolveError};
use xsat::xpath::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut az = Analyzer::new();

    // Containment that holds: filtering commutes with the descendant step.
    let p = Problem::contains(
        parse("a/b//d[prec-sibling::c]/e")?,
        None,
        parse("a/b//c/foll-sibling::d/e")?,
        None,
    );
    let v = az.solve(&p, &Limits::default())?;
    println!("{} -> {}", p.op_name(), verdict(v.holds));
    println!(
        "  lean = {} atoms, {} iterations, {:?}\n",
        v.stats.lean_size, v.stats.iterations, v.stats.duration
    );

    // Containment that fails: the solver produces a counter-example tree.
    let p = Problem::contains(
        parse("child::c/preceding-sibling::a[child::b]")?,
        None,
        parse("child::c[child::b]")?,
        None,
    );
    let v = az.solve(&p, &Limits::default())?;
    println!("{} (Fig 18) -> {}", p.op_name(), verdict(v.holds));
    if let Some(m) = &v.counter_example {
        println!("  counter-example (s=\"1\" marks the context node):");
        println!("  {}\n", m.xml());
    }

    // Emptiness: no node is both an a and a b.
    let p = Problem::empty(parse("child::a ∩ child::b")?, None);
    let v = az.solve(&p, &Limits::default())?;
    println!("child::a ∩ child::b is empty -> {}", verdict(v.holds));

    // Overlap: a witness where both queries select the same node.
    let p = Problem::overlap(parse("child::*[child::b]")?, None, parse("child::a")?, None);
    let v = az.solve(&p, &Limits::default())?;
    println!("\noverlap -> {}", verdict(v.holds));
    if let Some(m) = &v.counter_example {
        println!("  witness: {}\n", m.xml());
    }

    // Resource governance: the same containment under a deliberately
    // starved BDD node budget neither proves nor refutes — the typed
    // `ResourceExhausted` error is the `unknown` third verdict, and the
    // caller decides whether to retry with a bigger budget.
    let p = Problem::contains(
        parse("a/b//d[prec-sibling::c]/e")?,
        None,
        parse("a/b//c/foll-sibling::d/e")?,
        None,
    );
    let starved = Limits {
        max_bdd_nodes: Some(64),
        ..Limits::default()
    };
    match az.solve(&p, &starved) {
        Err(SolveError::ResourceExhausted {
            resource,
            spent,
            limit,
        }) => {
            println!("starved solve -> UNKNOWN ({resource}: spent {spent}, budget {limit})");
        }
        other => panic!("expected an exhausted budget, got {other:?}"),
    }
    // Retrying with the budget lifted decides the same problem.
    let v = az.solve(&p, &Limits::default())?;
    println!("retried with no budget -> {}", verdict(v.holds));
    Ok(())
}

fn verdict(b: bool) -> &'static str {
    if b {
        "YES"
    } else {
        "NO"
    }
}

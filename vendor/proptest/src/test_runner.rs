//! The deterministic runner: configuration, RNG and case outcomes.

/// Per-test configuration. Only `cases` is implemented.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases (the `ProptestConfig::with_cases`
    /// constructor of the real crate).
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }

    /// The configured case count, overridable with `PROPTEST_CASES`.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The inputs did not meet a `prop_assume!` precondition; the case is
    /// discarded and retried with fresh inputs.
    Reject,
    /// A `prop_assert*!` failed with the given message.
    Fail(String),
}

/// A small deterministic PRNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (stable across runs) xor'd with
    /// `PROPTEST_SEED` when set, for reproducible-but-variable exploration.
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let extra: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        TestRng { state: h ^ extra }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Modulo bias is irrelevant for test generation purposes.
        self.next_u64() % n
    }

    /// True with probability `num/den`.
    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        self.below(u64::from(den)) < u64::from(num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::from_name("range");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}

//! Schema evolution analysis: when a DTD changes, which guarantees
//! survive? This is the "XPath equivalence under type constraints" use-case
//! of the paper's §8 — checking that queries keep selecting the same nodes
//! when an input type evolves — combined with type-level inclusion checks.
//!
//! Run with `cargo run --release --example schema_evolution`.

use xsat::analyzer::Analyzer;
use xsat::treetypes::Dtd;
use xsat::xpath::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Version 1: an article has a title then paragraphs.
    let v1 = Dtd::parse(
        "<!ELEMENT article (title, para*)>\n\
         <!ELEMENT title (#PCDATA)>\n\
         <!ELEMENT para (#PCDATA)>",
    )?;
    // Version 2 adds an optional abstract between title and paragraphs.
    let v2 = Dtd::parse(
        "<!ELEMENT article (title, abstract?, para*)>\n\
         <!ELEMENT title (#PCDATA)>\n\
         <!ELEMENT abstract (para*)>\n\
         <!ELEMENT para (#PCDATA)>",
    )?;

    let mut az = Analyzer::new();

    // Backward compatibility: every v1 document is a valid v2 document.
    let v = az.type_subset(&v1, &v2).unwrap();
    println!("v1 ⊆ v2 (backward compatible): {}", v.holds);
    // …but not conversely.
    let v = az.type_subset(&v2, &v1).unwrap();
    println!("v2 ⊆ v1: {}", v.holds);
    if let Some(m) = &v.counter_example {
        println!("  v2-only document: {}", m.tree().clear_marks().to_xml());
    }

    // Query stability: "the paragraphs of the article" — evaluated from the
    // context node, the article root (type contexts are root-anchored).
    // Under v1 the direct children are all of them; under v2 the same query
    // misses the paragraphs that moved inside <abstract>.
    let direct = parse("para")?;
    let all_paras = parse(".//para")?;
    let (fwd, bwd) = az
        .equivalent(&direct, Some(&v1), &all_paras, Some(&v1))
        .unwrap();
    println!("under v1, para ≡ .//para: {}", fwd.holds && bwd.holds);
    let (fwd, bwd) = az
        .equivalent(&direct, Some(&v2), &all_paras, Some(&v2))
        .unwrap();
    println!("under v2, para ≡ .//para: {}", fwd.holds && bwd.holds);
    if let Some(m) = bwd.counter_example.or(fwd.counter_example) {
        println!("  separating document: {}", m.xml());
    }

    // The migration fix: (para | abstract/para) recovers equivalence with
    // .//para under v2.
    let fixed = parse("(para | abstract/para)")?;
    let (fwd, bwd) = az
        .equivalent(&fixed, Some(&v2), &all_paras, Some(&v2))
        .unwrap();
    println!(
        "under v2, (para | abstract/para) ≡ .//para: {}",
        fwd.holds && bwd.holds
    );
    Ok(())
}

//! Translation of binary regular tree types into Lµ (paper §5.2, Fig 14).
//!
//! Each binary type variable `X` with alternatives `σᵢ(X₁ᵢ, X₂ᵢ)` becomes a
//! fixpoint binding
//!
//! ```text
//! X = ⋁ᵢ σᵢ ∧ succ₁(X₁ᵢ) ∧ succ₂(X₂ᵢ)
//! ```
//!
//! where the frontier function `succ_α` encodes nullability:
//!
//! * `¬⟨α⟩⊤` when the successor variable is bound to ε only,
//! * `¬⟨α⟩⊤ ∨ ⟨α⟩X` when it is nullable,
//! * `⟨α⟩X` otherwise.
//!
//! The translation uses only downward modalities, so it is trivially
//! cycle-free; it is linear in the size of the type.

use std::collections::HashMap;

use mulogic::{Formula, Logic, Program, Var};

use crate::binarize::{BinDef, BinVar, BinaryType};
use crate::dtd::Dtd;

impl BinaryType {
    /// Compiles the type into a (closed, cycle-free) Lµ formula that holds
    /// at the root of every tree of the type.
    ///
    /// No condition is imposed on the *context* of that root: the formula
    /// can be conjoined with a query translation wherever the typed tree is
    /// plugged (paper §5.2).
    pub fn formula(&self, lg: &mut Logic) -> Formula {
        // Allocate one fixpoint variable per binary variable that has node
        // alternatives (ε-only variables are expressed by ¬⟨α⟩⊤ alone).
        let mut fp: HashMap<BinVar, Var> = HashMap::new();
        for v in self.vars() {
            if !self.def(v).alts.is_empty() {
                fp.insert(v, lg.fresh_var(&format!("T_{}", self.name(v))));
            }
        }
        let succ =
            |lg: &mut Logic, fp: &HashMap<BinVar, Var>, alpha: Program, x: BinVar, def: &BinDef| {
                if def.alts.is_empty() {
                    // ε only.
                    lg.not_diam_true(alpha)
                } else {
                    let xv = fp[&x];
                    let var = lg.var(xv);
                    let step = lg.diam(alpha, var);
                    if def.nullable {
                        let none = lg.not_diam_true(alpha);
                        lg.or(none, step)
                    } else {
                        step
                    }
                }
            };
        let mut bindings = Vec::new();
        for v in self.vars() {
            let def = self.def(v);
            if def.alts.is_empty() {
                continue;
            }
            let mut alts = Vec::new();
            for a in &def.alts {
                let prop = lg.prop(a.label);
                let c_def = self.def(a.content);
                let n_def = self.def(a.next);
                let s1 = succ(lg, &fp, Program::Down1, a.content, c_def);
                let s2 = succ(lg, &fp, Program::Down2, a.next, n_def);
                let conj1 = lg.and(prop, s1);
                alts.push(lg.and(conj1, s2));
            }
            let body = lg.or_all(alts);
            bindings.push((fp[&v], body));
        }
        let start_def = self.def(self.start());
        if start_def.alts.is_empty() {
            // A type accepting only the empty forest: no tree satisfies it.
            return lg.ff();
        }
        let body = lg.var(fp[&self.start()]);
        lg.mu(bindings, body)
    }
}

impl Dtd {
    /// Convenience: binarizes and compiles the DTD in one step.
    ///
    /// # Example
    ///
    /// ```
    /// use mulogic::Logic;
    /// use treetypes::Dtd;
    ///
    /// let dtd = Dtd::parse("<!ELEMENT a (b*)> <!ELEMENT b EMPTY>").unwrap();
    /// let mut lg = Logic::new();
    /// let f = dtd.formula(&mut lg);
    /// assert!(mulogic::cycle_free(&lg, f));
    /// ```
    pub fn formula(&self, lg: &mut Logic) -> Formula {
        crate::binarize::BinaryType::from_dtd(self).formula(lg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree::Tree;
    use mulogic::{cycle_free, ModelChecker};

    fn wiki() -> Dtd {
        Dtd::parse(
            r#"
            <!ELEMENT article (meta, (text | redirect))>
            <!ELEMENT meta (title, status?, interwiki*, history?)>
            <!ELEMENT title (#PCDATA)>
            <!ELEMENT interwiki (#PCDATA)>
            <!ELEMENT status (#PCDATA)>
            <!ELEMENT history (edit)+>
            <!ELEMENT edit (status?, interwiki*, (text | redirect)?)>
            <!ELEMENT redirect EMPTY>
            <!ELEMENT text (#PCDATA)>
        "#,
        )
        .unwrap()
    }

    /// The type formula holds at the root iff the validator accepts.
    #[test]
    fn formula_agrees_with_validator() {
        let dtd = wiki();
        let mut lg = Logic::new();
        let f = dtd.formula(&mut lg);
        assert!(cycle_free(&lg, f));
        assert!(lg.is_closed(f));
        let docs = [
            ("<article><meta><title/></meta><text/></article>", true),
            (
                "<article><meta><title/><interwiki/><history><edit><status/></edit></history></meta><redirect/></article>",
                true,
            ),
            ("<article><meta><title/></meta></article>", false),
            ("<article><text/><meta><title/></meta></article>", false),
            ("<title/>", false),
        ];
        for (src, expect) in docs {
            let t = Tree::parse_xml(src).unwrap();
            let mc = ModelChecker::new(&t);
            let root = &mc.foci()[0];
            assert_eq!(
                mc.holds_at(&lg, f, root),
                expect,
                "type formula at root of {src}"
            );
            assert_eq!(dtd.validates(&t), expect, "validator on {src}");
        }
    }

    #[test]
    fn formula_is_context_free() {
        // The type formula may hold at an inner node: it describes the
        // subtree, not the whole document (paper §5.2).
        let dtd = Dtd::parse("<!ELEMENT b EMPTY>").unwrap();
        let mut lg = Logic::new();
        let f = dtd.formula(&mut lg);
        let t = Tree::parse_xml("<a><b/></a>").unwrap();
        let mc = ModelChecker::new(&t);
        let b_focus = mc.foci()[1].clone();
        assert_eq!(b_focus.label().as_str(), "b");
        assert!(mc.holds_at(&lg, f, &b_focus));
        assert!(!mc.holds_at(&lg, f, &mc.foci()[0]));
    }

    #[test]
    fn translation_size_is_linear() {
        // Chain DTDs of growing size.
        let mut sizes = Vec::new();
        for n in [4usize, 8, 16] {
            let mut src = String::new();
            for i in 0..n {
                if i + 1 < n {
                    src.push_str(&format!("<!ELEMENT e{i} (e{}*)>\n", i + 1));
                } else {
                    src.push_str(&format!("<!ELEMENT e{i} EMPTY>\n"));
                }
            }
            let dtd = Dtd::parse(&src).unwrap();
            let mut lg = Logic::new();
            let f = dtd.formula(&mut lg);
            sizes.push(lg.size(f));
        }
        let d1 = sizes[1] - sizes[0];
        let d2 = sizes[2] - sizes[1];
        assert!(d2 <= 2 * d1 + 8, "superlinear: {sizes:?}");
    }

    #[test]
    fn mark_does_not_disturb_type() {
        // Type formulas say nothing about the start mark.
        let dtd = Dtd::parse("<!ELEMENT a (b)> <!ELEMENT b EMPTY>").unwrap();
        let mut lg = Logic::new();
        let f = dtd.formula(&mut lg);
        let t = Tree::parse_xml("<a><b s=\"1\"/></a>").unwrap();
        let mc = ModelChecker::new(&t);
        assert!(mc.holds_at(&lg, f, &mc.foci()[0]));
    }
}

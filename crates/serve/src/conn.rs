//! Per-connection I/O: a framed, bounded, timeout-guarded reader thread
//! and a reorder-buffer writer thread.
//!
//! The reader assigns every handled line a connection-local sequence
//! number and answers it exactly once — inline for registrations and
//! service ops (preserving registration order), through the worker pool
//! for decision problems. The writer receives `(seq, response)` pairs in
//! completion order and writes them in *sequence* order, so pipelined
//! clients always read responses in the order they sent requests, however
//! the solves interleaved.
//!
//! Hostile-peer bounds all live on the reader: the per-line byte cap
//! (oversized lines cost one `error` response), lossy UTF-8 decoding
//! (garbage costs a parse error, not the stream), and the socket read
//! timeout (a stuck client is dropped; an injected `error` line tells it
//! why if it ever reads again).

use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use engine::{
    error_response, json, metrics_response, read_framed, registration_response, Framed, Job,
    LimitsSpec, Request, RequestKind, Value, PROTOCOL_VERSION,
};

use crate::server::{LifeState, Shared};
use crate::tenant::Tenant;
use crate::worker::{shed_response, FaultKind, FaultUnit, SolveUnit, WorkUnit};
use crate::DEFAULT_TENANT;

/// What the reader does after answering a line.
enum LineOutcome {
    /// Keep reading.
    Continue,
    /// Close the connection (a handled `shutdown` op).
    Close,
}

/// Runs one accepted connection to completion: spawns the writer, loops
/// the reader, joins the writer once every response is delivered.
pub(crate) fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let _ = stream.set_read_timeout(shared.config.read_timeout);
    let _ = stream.set_nodelay(true);
    let (tx, rx) = std::sync::mpsc::channel::<(u64, Value)>();
    let writer = std::thread::Builder::new()
        .name("serve-writer".into())
        .spawn(move || writer_loop(&rx, write_half));
    reader_loop(shared, stream, &tx);
    // Dropping the reader's sender lets the writer drain in-flight
    // responses (worker-held senders drop as their units finish) and exit.
    drop(tx);
    if let Ok(h) = writer {
        let _ = h.join();
    }
}

/// Writes responses in sequence order, whatever order they complete in:
/// a `BTreeMap` reorder buffer holds out-of-order completions until the
/// next expected sequence number arrives. Flushes per line (the protocol
/// is a conversation, not a dump).
fn writer_loop(rx: &Receiver<(u64, Value)>, stream: TcpStream) {
    let mut out = BufWriter::new(stream);
    let mut next: u64 = 0;
    let mut pending: BTreeMap<u64, Value> = BTreeMap::new();
    while let Ok((seq, response)) = rx.recv() {
        pending.insert(seq, response);
        let mut wrote = false;
        while let Some(response) = pending.remove(&next) {
            if writeln!(out, "{}", response.to_json()).is_err() {
                return; // peer gone; drain-and-drop the rest
            }
            next += 1;
            wrote = true;
        }
        if wrote && out.flush().is_err() {
            return;
        }
    }
}

/// The reader loop: framed reads, per-line dispatch, one response per
/// handled line.
fn reader_loop(shared: &Arc<Shared>, stream: TcpStream, tx: &Sender<(u64, Value)>) {
    let mut reader = BufReader::new(stream);
    let mut seq: u64 = 0;
    loop {
        match read_framed(&mut reader, shared.max_line_bytes()) {
            Err(e) => {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    obs::metrics()
                        .counter("xsat_conn_timeouts_total", &[])
                        .inc();
                    let _ = tx.send((
                        seq,
                        error_response(
                            None,
                            "idle timeout: no complete request line arrived in time; \
                             the connection is closed",
                        ),
                    ));
                }
                return;
            }
            Ok(Framed::Eof) => return,
            Ok(Framed::Oversized { limit }) => {
                let _ = tx.send((
                    seq,
                    error_response(
                        None,
                        &format!("request line exceeds the {limit}-byte cap and was discarded"),
                    ),
                ));
                seq += 1;
            }
            Ok(Framed::Line(line)) => {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                match handle_line(shared, line, seq, tx) {
                    LineOutcome::Continue => seq += 1,
                    LineOutcome::Close => return,
                }
            }
        }
    }
}

/// Parses and dispatches one request line, sending exactly one response
/// with the line's sequence number.
fn handle_line(
    shared: &Arc<Shared>,
    line: &str,
    seq: u64,
    tx: &Sender<(u64, Value)>,
) -> LineOutcome {
    let send = |response: Value| {
        let _ = tx.send((seq, response));
    };
    let v = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            send(error_response(None, &e.to_string()));
            return LineOutcome::Continue;
        }
    };
    let id = v.get("id").cloned();
    let tenant_name = match v.get("tenant") {
        None => DEFAULT_TENANT,
        Some(Value::Str(s)) => s.as_str(),
        Some(_) => {
            send(error_response(
                id.as_ref(),
                "the `tenant` field must be a string",
            ));
            return LineOutcome::Continue;
        }
    };
    let tenant = shared.tenants.resolve(tenant_name);
    match v.get("op").and_then(Value::as_str) {
        Some("shutdown") => {
            let report = shared.drain_and_stop();
            let mut fields = Vec::new();
            if let Some(id) = &id {
                fields.push(("id".to_owned(), id.clone()));
            }
            fields.extend([
                ("ok".to_owned(), Value::Bool(true)),
                ("op".to_owned(), Value::from("shutdown")),
                ("drained".to_owned(), Value::Bool(report.drained)),
                ("forced".to_owned(), Value::Bool(report.forced)),
                ("pending".to_owned(), Value::from(report.pending)),
            ]);
            send(Value::Obj(fields));
            LineOutcome::Close
        }
        Some("panic") if shared.config.fault_injection => {
            admit_fault(shared, &tenant, FaultKind::Panic, id, seq, tx);
            LineOutcome::Continue
        }
        Some("sleep") if shared.config.fault_injection => {
            let ms = v.get("ms").and_then(Value::as_f64).unwrap_or(0.0).max(0.0) as u64;
            admit_fault(shared, &tenant, FaultKind::Sleep { ms }, id, seq, tx);
            LineOutcome::Continue
        }
        _ => {
            match Request::from_value(&v) {
                Ok(req) => handle_request(shared, &tenant, req, seq, tx),
                Err(e) => send(error_response(id.as_ref(), &e)),
            }
            LineOutcome::Continue
        }
    }
}

/// Admission for a fault-injection unit: the same tenant cap and queue
/// bound as a real solve — a saturating `sleep` burst is exactly how the
/// harness tests the shed path.
fn admit_fault(
    shared: &Arc<Shared>,
    tenant: &Arc<Tenant>,
    kind: FaultKind,
    id: Option<Value>,
    seq: u64,
    tx: &Sender<(u64, Value)>,
) {
    let send = |response: Value| {
        let _ = tx.send((seq, response));
    };
    let op_name = match kind {
        FaultKind::Panic => "panic",
        FaultKind::Sleep { .. } => "sleep",
    };
    let Some(guard) = admit(shared, tenant) else {
        send(fault_shed(shared, tenant, id.as_ref(), op_name));
        return;
    };
    let unit = WorkUnit::Fault(FaultUnit {
        kind,
        id,
        seq,
        reply: tx.clone(),
        guard,
    });
    if let Err((WorkUnit::Fault(u), _)) = shared.queue.try_push(unit) {
        send(fault_shed(shared, tenant, u.id.as_ref(), op_name));
    }
}

/// A shed response for a fault op (which has no protocol [`engine::Op`]):
/// same `status: "unknown", resource: "shed"` shape, hand-assembled.
fn fault_shed(
    shared: &Arc<Shared>,
    tenant: &Arc<Tenant>,
    id: Option<&Value>,
    op_name: &str,
) -> Value {
    let (scope, spent, limit) = shed_scope(shared, tenant);
    obs::metrics()
        .counter("xsat_shed_total", &[("scope", scope)])
        .inc();
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), id.clone()));
    }
    fields.extend([
        ("ok".to_owned(), Value::Bool(true)),
        ("op".to_owned(), Value::from(op_name)),
        ("status".to_owned(), Value::from("unknown")),
        ("resource".to_owned(), Value::from("shed")),
        ("scope".to_owned(), Value::from(scope)),
        ("spent".to_owned(), Value::Num(spent as f64)),
        ("limit".to_owned(), Value::Num(limit as f64)),
        ("cached".to_owned(), Value::Bool(false)),
    ]);
    Value::Obj(fields)
}

/// Which admission bound is binding right now, for shed reporting.
fn shed_scope(shared: &Arc<Shared>, tenant: &Arc<Tenant>) -> (&'static str, u64, u64) {
    if shared.state() != LifeState::Running {
        ("drain", 0, 0)
    } else if tenant.inflight() >= tenant.max_inflight {
        (
            "tenant",
            tenant.inflight() as u64,
            tenant.max_inflight as u64,
        )
    } else {
        (
            "queue",
            shared.queue.len() as u64,
            shared.queue.capacity() as u64,
        )
    }
}

/// Takes a tenant in-flight slot if the server is running and the tenant
/// is under its cap.
fn admit(shared: &Arc<Shared>, tenant: &Arc<Tenant>) -> Option<crate::tenant::InflightGuard> {
    if shared.state() != LifeState::Running {
        return None;
    }
    tenant.try_admit(&shared.inflight)
}

/// Dispatches one parsed protocol request.
fn handle_request(
    shared: &Arc<Shared>,
    tenant: &Arc<Tenant>,
    req: Request,
    seq: u64,
    tx: &Sender<(u64, Value)>,
) {
    let send = |response: Value| {
        let _ = tx.send((seq, response));
    };
    match req.kind {
        RequestKind::RegisterDtd { name, source } => {
            let result = write_ws(tenant).register_dtd(&name, &source);
            send(match result {
                Ok(()) => registration_response(req.id.as_ref(), "dtd", &name),
                Err(e) => error_response(req.id.as_ref(), &e),
            });
        }
        RequestKind::RegisterQuery { name, xpath } => {
            let result = write_ws(tenant).register_query(&name, &xpath);
            send(match result {
                Ok(()) => registration_response(req.id.as_ref(), "query", &name),
                Err(e) => error_response(req.id.as_ref(), &e),
            });
        }
        RequestKind::Problem {
            spec,
            backend,
            limits,
            trace,
        } => {
            let backend = backend.unwrap_or(shared.config.backend);
            let op = spec.op();
            // Resolve against the tenant's namespace *before* admission:
            // the memo key is structural, so tenants can never alias.
            let problem = {
                let ws = tenant
                    .workspace
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                spec.resolve(&ws)
            };
            let problem = match problem {
                Ok(p) => p,
                Err(e) => {
                    send(error_response(req.id.as_ref(), &e));
                    return;
                }
            };
            let Some(guard) = admit(shared, tenant) else {
                let (scope, spent, limit) = shed_scope(shared, tenant);
                send(shed_response(
                    req.id.as_ref(),
                    op,
                    backend,
                    scope,
                    spent,
                    limit,
                ));
                return;
            };
            let effective = limits.as_ref().map_or_else(
                || tenant.limits.clone(),
                |l: &LimitsSpec| l.apply(&tenant.limits),
            );
            let unit = WorkUnit::Solve(Box::new(SolveUnit {
                job: Job { problem, backend },
                limits: effective,
                trace,
                id: req.id.clone(),
                op,
                seq,
                reply: tx.clone(),
                guard,
            }));
            if let Err((WorkUnit::Solve(u), _)) = shared.queue.try_push(unit) {
                let (scope, spent, limit) = shed_scope(shared, tenant);
                send(shed_response(
                    u.id.as_ref(),
                    u.op,
                    backend,
                    scope,
                    spent,
                    limit,
                ));
            }
        }
        RequestKind::Stats => send(stats_response(shared, tenant, req.id.as_ref())),
        RequestKind::Metrics => {
            send(metrics_response(
                req.id.as_ref(),
                &obs::metrics().snapshot(),
            ));
        }
        RequestKind::Reset => {
            write_ws(tenant).clear();
            send(registration_response(
                req.id.as_ref(),
                "reset",
                &tenant.name,
            ));
        }
        RequestKind::SlowLog => send(error_response(
            req.id.as_ref(),
            "`slowlog` is not available on the TCP serving tier",
        )),
        RequestKind::Lint(_) => send(error_response(
            req.id.as_ref(),
            "`lint` is not available on the TCP serving tier",
        )),
    }
}

/// The tenant's workspace, write-locked (poison-tolerant).
fn write_ws(tenant: &Arc<Tenant>) -> std::sync::RwLockWriteGuard<'_, engine::Workspace> {
    tenant
        .workspace
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The server-level `stats` response: admission and pool state, scoped to
/// the requesting tenant.
fn stats_response(shared: &Arc<Shared>, tenant: &Arc<Tenant>, id: Option<&Value>) -> Value {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), id.clone()));
    }
    fields.extend([
        ("ok".to_owned(), Value::Bool(true)),
        (
            "protocol".to_owned(),
            Value::from(usize::try_from(PROTOCOL_VERSION).unwrap_or(usize::MAX)),
        ),
        ("tenant".to_owned(), Value::from(tenant.name.as_str())),
        ("tenant_inflight".to_owned(), Value::from(tenant.inflight())),
        (
            "tenant_inflight_cap".to_owned(),
            Value::from(tenant.max_inflight),
        ),
        ("queue_depth".to_owned(), Value::from(shared.queue.len())),
        (
            "queue_capacity".to_owned(),
            Value::from(shared.queue.capacity()),
        ),
        (
            "connections_active".to_owned(),
            Value::from(shared.active_connections()),
        ),
        ("threads".to_owned(), Value::from(shared.threads)),
        (
            "draining".to_owned(),
            Value::Bool(shared.state() != LifeState::Running),
        ),
    ]);
    Value::Obj(fields)
}

//! Property tests for the first-child/next-sibling encoding (§7.2):
//! `to_unranked ∘ from_unranked` is the identity on arbitrary n-ary trees,
//! so every counter-example the solver reconstructs as a [`BinaryTree`]
//! decodes to exactly one unranked XML document.

use ftree::{BinaryTree, Tree};
use proptest::prelude::*;

const LABELS: [&str; 4] = ["a", "b", "c", "d"];

fn arb_label() -> impl Strategy<Value = &'static str> {
    prop::sample::select(&LABELS[..])
}

/// Random unranked trees up to depth 4 with up to 4 children per node,
/// with independently marked nodes (the encoding must preserve marks
/// wherever they sit, even if the logic only ever places one).
fn arb_tree(depth: u32) -> impl Strategy<Value = Tree> {
    let leaf = (arb_label(), any::<bool>()).prop_map(|(l, m)| {
        if m {
            Tree::marked_node(l, Vec::new())
        } else {
            Tree::leaf(l)
        }
    });
    leaf.prop_recursive(depth, 16, 4, |inner| {
        (
            arb_label(),
            any::<bool>(),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(l, m, cs)| {
                if m {
                    Tree::marked_node(l, cs)
                } else {
                    Tree::node(l, cs)
                }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Unbinarization inverts binarization node-for-node.
    #[test]
    fn binarize_then_unbinarize_is_identity(t in arb_tree(4)) {
        let b = BinaryTree::from_unranked(&t);
        prop_assert_eq!(b.to_unranked(), t.clone());
        // Node counts agree: the encoding is a bijection on nodes.
        prop_assert_eq!(b.size(), t.size());
        // The root of the encoding never grows a 2-successor.
        prop_assert!(b.child2().is_none());
    }

    /// The encoding round-trips through XML serialization too: the
    /// counter-example pipeline (reconstruct → unbinarize → serialize)
    /// loses nothing that `parse_xml` can see.
    #[test]
    fn roundtrip_through_xml(t in arb_tree(3)) {
        let b = BinaryTree::from_unranked(&t);
        let xml = b.to_unranked().to_xml();
        prop_assert_eq!(Tree::parse_xml(&xml).unwrap(), t.clone());
        // The pretty form parses back to the same tree as the compact form.
        let pretty = b.to_unranked().to_xml_pretty();
        prop_assert_eq!(Tree::parse_xml(&pretty).unwrap(), t);
    }

    /// A sibling row (the general model shape: the focused root may have
    /// siblings) survives `to_unranked_row`.
    #[test]
    fn sibling_rows_roundtrip(row in prop::collection::vec(arb_tree(3), 1..4)) {
        // Encode the row as a 2-chain, the way reconstruction produces it.
        let mut encoded: Option<BinaryTree> = None;
        for t in row.iter().rev() {
            let one = BinaryTree::from_unranked(t);
            encoded = Some(BinaryTree::new(
                one.label(),
                one.is_marked(),
                one.child1().cloned(),
                encoded,
            ));
        }
        let decoded = encoded.expect("non-empty row").to_unranked_row();
        prop_assert_eq!(decoded, row);
    }
}

/// The smallest document: a single unmarked leaf.
#[test]
fn empty_document_roundtrips() {
    let t = Tree::leaf("doc");
    let b = BinaryTree::from_unranked(&t);
    assert_eq!(b.size(), 1);
    assert!(b.child1().is_none() && b.child2().is_none());
    assert_eq!(b.to_unranked(), t);
    assert_eq!(b.to_unranked().to_xml(), "<doc/>");
}

/// Labels standing in for text nodes and attributes: the tree fragment has
/// no text or attribute nodes, so tools encode them as specially-named
/// element labels (`_text`, `att:id`, `xml.lang` — every char class the
/// XML name parser accepts). The encoding must treat them as opaque.
#[test]
fn text_and_attribute_style_labels_roundtrip() {
    for label in ["_text", "att:id", "xml.lang", "x-y_z.0"] {
        let t = Tree::node("e", vec![Tree::leaf(label)]);
        let b = BinaryTree::from_unranked(&t);
        assert_eq!(b.to_unranked(), t, "{label}");
        let xml = b.to_unranked().to_xml();
        assert_eq!(Tree::parse_xml(&xml).unwrap(), t, "{xml}");
    }
}

/// Deep 1-chains and wide 2-chains — the two degenerate shapes of the
/// encoding — both invert.
#[test]
fn degenerate_shapes_roundtrip() {
    // Deep: a/b/c/d nested.
    let deep = Tree::parse_xml("<a><b><c><d/></c></b></a>").unwrap();
    let b = BinaryTree::from_unranked(&deep);
    assert_eq!(b.to_unranked(), deep);
    // Wide: one root with five leaf children becomes a 2-chain.
    let wide = Tree::parse_xml("<r><a/><a/><a/><a/><a/></r>").unwrap();
    let b = BinaryTree::from_unranked(&wide);
    let mut chain = 0;
    let mut cur = b.child1();
    while let Some(n) = cur {
        chain += 1;
        cur = n.child2();
    }
    assert_eq!(chain, 5);
    assert_eq!(b.to_unranked(), wide);
}

/// The start mark survives wherever it sits.
#[test]
fn marks_roundtrip_at_every_position() {
    let base = Tree::parse_xml("<a><b><d/></b><c/></a>").unwrap();
    for path in base.node_paths() {
        let marked = base.mark_at(&path).unwrap();
        let b = BinaryTree::from_unranked(&marked);
        assert_eq!(b.to_unranked(), marked, "{path:?}");
        assert_eq!(b.to_unranked().mark_count(), 1);
    }
}

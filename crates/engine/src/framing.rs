//! Bounded JSONL framing: reading one request line without trusting the
//! peer.
//!
//! `BufRead::read_line` has two failure modes a service cannot afford: a
//! line with no newline grows the buffer without bound (a hostile or
//! broken client can exhaust memory with one request), and invalid UTF-8
//! kills the whole stream with an [`std::io::Error`] even though every
//! later line might be fine. [`read_framed`] fixes both — it reads at most
//! `max_bytes` of one line, discards the oversized remainder in bounded
//! chunks so framing recovers at the next newline, and converts bytes
//! lossily so a garbage line becomes a parse error *response* rather than
//! a dead connection. Both the stdin serve loop ([`Engine::serve`]) and
//! the TCP serving tier read frames through this module.
//!
//! [`Engine::serve`]: crate::Engine::serve

use std::io::BufRead;

/// The default per-line byte cap of the serve loops: generous enough for
/// inline DTD sources, small enough that one client cannot balloon the
/// process. Overridable via [`EngineConfig::max_line_bytes`].
///
/// [`EngineConfig::max_line_bytes`]: crate::EngineConfig::max_line_bytes
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// One framed read from a JSONL stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Framed {
    /// A complete line (without its newline), decoded lossily — invalid
    /// UTF-8 becomes replacement characters and then a parse-error
    /// response, never a dead stream.
    Line(String),
    /// A line longer than the cap. The oversized remainder (up to the next
    /// newline or end of stream) has already been discarded, so the next
    /// read starts on a fresh frame.
    Oversized {
        /// The cap that was exceeded.
        limit: usize,
    },
    /// End of stream.
    Eof,
}

/// Reads one newline-delimited frame, holding at most `max_bytes` of it in
/// memory.
///
/// Returns [`Framed::Oversized`] when the line exceeds the cap; the rest
/// of that line is consumed (in `max_bytes`-sized chunks, never buffered
/// whole) so the stream stays line-synchronized. I/O errors — including
/// read timeouts on sockets — surface as `Err` for the caller's
/// connection policy to handle.
pub fn read_framed<R: BufRead>(reader: &mut R, max_bytes: usize) -> std::io::Result<Framed> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // End of stream: a final unterminated line still counts.
            return Ok(if line.is_empty() {
                Framed::Eof
            } else {
                Framed::Line(decode(line))
            });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if line.len() + nl > max_bytes {
                    reader.consume(nl + 1);
                    return Ok(Framed::Oversized { limit: max_bytes });
                }
                line.extend_from_slice(&buf[..nl]);
                reader.consume(nl + 1);
                return Ok(Framed::Line(decode(line)));
            }
            None => {
                let chunk = buf.len();
                if line.len() + chunk > max_bytes {
                    reader.consume(chunk);
                    discard_to_newline(reader)?;
                    return Ok(Framed::Oversized { limit: max_bytes });
                }
                line.extend_from_slice(buf);
                reader.consume(chunk);
            }
        }
    }
}

/// Consumes bytes up to and including the next newline (or end of stream)
/// without buffering them — the recovery path after an oversized frame.
fn discard_to_newline<R: BufRead>(reader: &mut R) -> std::io::Result<()> {
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(());
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                reader.consume(nl + 1);
                return Ok(());
            }
            None => {
                let n = buf.len();
                reader.consume(n);
            }
        }
    }
}

/// Lossy UTF-8 decoding: replacement characters instead of a dead stream.
fn decode(bytes: Vec<u8>) -> String {
    match String::from_utf8(bytes) {
        Ok(s) => s,
        Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(input: &[u8], max: usize) -> Vec<Framed> {
        let mut r = std::io::BufReader::with_capacity(8, input);
        let mut out = Vec::new();
        loop {
            let f = read_framed(&mut r, max).unwrap();
            let eof = f == Framed::Eof;
            out.push(f);
            if eof {
                return out;
            }
        }
    }

    #[test]
    fn frames_lines_and_final_unterminated() {
        let frames = read_all(b"alpha\nbeta\ngamma", 64);
        assert_eq!(
            frames,
            vec![
                Framed::Line("alpha".into()),
                Framed::Line("beta".into()),
                Framed::Line("gamma".into()),
                Framed::Eof,
            ]
        );
    }

    #[test]
    fn oversized_line_is_discarded_and_framing_recovers() {
        let input = format!("ok1\n{}\nok2\n", "x".repeat(100));
        let frames = read_all(input.as_bytes(), 10);
        assert_eq!(
            frames,
            vec![
                Framed::Line("ok1".into()),
                Framed::Oversized { limit: 10 },
                Framed::Line("ok2".into()),
                Framed::Eof,
            ]
        );
    }

    #[test]
    fn oversized_final_line_without_newline() {
        let input = format!("ok\n{}", "y".repeat(50));
        let frames = read_all(input.as_bytes(), 10);
        assert_eq!(
            frames,
            vec![
                Framed::Line("ok".into()),
                Framed::Oversized { limit: 10 },
                Framed::Eof,
            ]
        );
    }

    #[test]
    fn invalid_utf8_decodes_lossily() {
        let input = b"\xff\xfe{not json}\nok\n";
        let frames = read_all(input, 64);
        assert_eq!(frames.len(), 3);
        match &frames[0] {
            Framed::Line(s) => assert!(s.contains('\u{FFFD}'), "{s}"),
            other => panic!("expected a lossy line, got {other:?}"),
        }
        assert_eq!(frames[1], Framed::Line("ok".into()));
    }

    #[test]
    fn empty_lines_are_frames() {
        let frames = read_all(b"\n\nx\n", 8);
        assert_eq!(
            frames,
            vec![
                Framed::Line(String::new()),
                Framed::Line(String::new()),
                Framed::Line("x".into()),
                Framed::Eof,
            ]
        );
    }
}

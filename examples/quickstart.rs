//! Quickstart: decide XPath containment, overlap and emptiness, and print
//! counter-examples.
//!
//! Run with `cargo run --example quickstart`.

use xsat::analyzer::Analyzer;
use xsat::xpath::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut az = Analyzer::new();

    // Containment that holds: filtering commutes with the descendant step.
    let q1 = parse("a/b//d[prec-sibling::c]/e")?;
    let q2 = parse("a/b//c/foll-sibling::d/e")?;
    let v = az.contains(&q1, None, &q2, None).unwrap();
    println!("{q1}\n  ⊆ {q2}\n  -> {}", verdict(v.holds));
    println!(
        "  lean = {} atoms, {} iterations, {:?}\n",
        v.stats.lean_size, v.stats.iterations, v.stats.duration
    );

    // Containment that fails: the solver produces a counter-example tree.
    let e1 = parse("child::c/preceding-sibling::a[child::b]")?;
    let e2 = parse("child::c[child::b]")?;
    let v = az.contains(&e1, None, &e2, None).unwrap();
    println!("{e1}\n  ⊆ {e2}\n  -> {}", verdict(v.holds));
    if let Some(m) = &v.counter_example {
        println!("  counter-example (s=\"1\" marks the context node):");
        println!("  {}\n", m.xml());
    }

    // Emptiness: no node is both an a and a b.
    let e = parse("child::a ∩ child::b")?;
    let v = az.is_empty(&e, None).unwrap();
    println!("{e}\n  is empty -> {}", verdict(v.holds));

    // Overlap: a witness where both queries select the same node.
    let o1 = parse("child::*[child::b]")?;
    let o2 = parse("child::a")?;
    let v = az.overlaps(&o1, None, &o2, None).unwrap();
    println!("\n{o1} overlaps {o2} -> {}", verdict(v.holds));
    if let Some(m) = &v.counter_example {
        println!("  witness: {}", m.xml());
    }
    Ok(())
}

fn verdict(b: bool) -> &'static str {
    if b {
        "YES"
    } else {
        "NO"
    }
}

//! Integration test for the schema-evolution workflow (the
//! `schema_evolution` example, asserted): type inclusion across DTD
//! versions and query-equivalence drift under the new type.

use xsat::analyzer::Analyzer;
use xsat::treetypes::Dtd;
use xsat::xpath::parse;

fn v1() -> Dtd {
    Dtd::parse(
        "<!ELEMENT article (title, para*)>\n\
         <!ELEMENT title (#PCDATA)>\n\
         <!ELEMENT para (#PCDATA)>",
    )
    .unwrap()
}

fn v2() -> Dtd {
    Dtd::parse(
        "<!ELEMENT article (title, abstract?, para*)>\n\
         <!ELEMENT title (#PCDATA)>\n\
         <!ELEMENT abstract (para*)>\n\
         <!ELEMENT para (#PCDATA)>",
    )
    .unwrap()
}

#[test]
fn evolution_is_backward_compatible_only() {
    let mut az = Analyzer::new();
    assert!(az.type_subset(&v1(), &v2()).unwrap().holds);
    let back = az.type_subset(&v2(), &v1()).unwrap();
    assert!(!back.holds);
    let doc = back.counter_example.unwrap().tree().clear_marks();
    assert!(
        v2().validates(&doc) && !v1().validates(&doc),
        "{}",
        doc.to_xml()
    );
}

#[test]
fn query_equivalence_drifts_with_the_type() {
    let mut az = Analyzer::new();
    let direct = parse("para").unwrap();
    let all = parse(".//para").unwrap();
    let (f1, b1) = az
        .equivalent(&direct, Some(&v1()), &all, Some(&v1()))
        .unwrap();
    assert!(f1.holds && b1.holds, "equivalent under v1");
    let (f2, b2) = az
        .equivalent(&direct, Some(&v2()), &all, Some(&v2()))
        .unwrap();
    assert!(!(f2.holds && b2.holds), "no longer equivalent under v2");
    // The separating document is v2-valid and separates for real.
    let m = b2.counter_example.or(f2.counter_example).unwrap();
    let tree = m.tree();
    assert!(v2().validates(&tree.clear_marks()));
    let s_direct = xsat::xpath::eval_on_tree(&direct, &tree);
    let s_all = xsat::xpath::eval_on_tree(&all, &tree);
    assert_ne!(s_direct, s_all);
}

#[test]
fn migration_fix_restores_equivalence() {
    let mut az = Analyzer::new();
    let fixed = parse("(para | abstract/para)").unwrap();
    let all = parse(".//para").unwrap();
    let (f, b) = az
        .equivalent(&fixed, Some(&v2()), &all, Some(&v2()))
        .unwrap();
    assert!(f.holds && b.holds);
}

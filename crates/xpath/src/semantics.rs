//! Denotational semantics of XPath over focused-tree sets (Figs 5 and 6).
//!
//! Expressions denote functions `2^F → 2^F` where `F` is the set of foci of
//! a marked tree; the mark records the context node where evaluation of a
//! relative expression starts. This interpreter is executable and serves as
//! the oracle against which the Lµ compilation is property-tested.

use std::collections::HashSet;

use ftree::{FocusedTree, Tree};

use crate::ast::{Axis, Expr, NodeTest, Path, Qualifier};

type FSet = HashSet<FocusedTree>;

/// Evaluates `e` over the foci of a marked tree.
///
/// The tree must carry exactly one start mark: the context node. The result
/// is the set of foci selected by the expression.
///
/// # Panics
///
/// Panics if the tree does not contain exactly one mark.
///
/// # Example
///
/// ```
/// use ftree::Tree;
/// use xpath::{parse, eval_on_tree};
///
/// let t = Tree::parse_xml("<a s=\"1\"><b/><c/></a>").unwrap();
/// let e = parse("child::*").unwrap();
/// let picked = eval_on_tree(&e, &t);
/// assert_eq!(picked.len(), 2);
/// ```
pub fn eval_on_tree(e: &Expr, tree: &Tree) -> Vec<FocusedTree> {
    assert_eq!(tree.mark_count(), 1, "tree must carry exactly one mark");
    let universe: FSet = FocusedTree::all_foci(tree).into_iter().collect();
    let mut out: Vec<FocusedTree> = eval_expr(e, &universe).into_iter().collect();
    // Deterministic order for assertions: by document order in the universe.
    let order = FocusedTree::all_foci(tree);
    out.sort_by_key(|f| order.iter().position(|g| g == f));
    out
}

/// `S_e⟦e⟧F` (Fig 5).
pub fn eval_expr(e: &Expr, universe: &FSet) -> FSet {
    match e {
        Expr::Absolute(p) => {
            let roots: FSet = universe.iter().map(ftree::FocusedTree::root).collect();
            eval_path(p, &roots, universe)
        }
        Expr::Relative(p) => {
            let start: FSet = universe.iter().filter(|f| f.is_marked()).cloned().collect();
            eval_path(p, &start, universe)
        }
        Expr::Union(a, b) => {
            let sa = eval_expr(a, universe);
            let sb = eval_expr(b, universe);
            sa.union(&sb).cloned().collect()
        }
        Expr::Intersect(a, b) => {
            let sa = eval_expr(a, universe);
            let sb = eval_expr(b, universe);
            sa.intersection(&sb).cloned().collect()
        }
    }
}

/// `S_p⟦p⟧F` (Fig 5).
fn eval_path(p: &Path, from: &FSet, universe: &FSet) -> FSet {
    match p {
        Path::Seq(p1, p2) => {
            let mid = eval_path(p1, from, universe);
            eval_path(p2, &mid, universe)
        }
        Path::Qualified(p, q) => eval_path(p, from, universe)
            .into_iter()
            .filter(|f| eval_qualifier(q, f, universe))
            .collect(),
        Path::Step(a, t) => eval_axis(*a, from)
            .into_iter()
            .filter(|f| match t {
                NodeTest::Name(l) => f.label() == *l,
                NodeTest::Star => true,
            })
            .collect(),
        Path::Union(p1, p2) => {
            let s1 = eval_path(p1, from, universe);
            let s2 = eval_path(p2, from, universe);
            s1.union(&s2).cloned().collect()
        }
    }
}

/// `S_q⟦q⟧f` (Fig 5).
fn eval_qualifier(q: &Qualifier, f: &FocusedTree, universe: &FSet) -> bool {
    match q {
        Qualifier::And(a, b) => eval_qualifier(a, f, universe) && eval_qualifier(b, f, universe),
        Qualifier::Or(a, b) => eval_qualifier(a, f, universe) || eval_qualifier(b, f, universe),
        Qualifier::Not(q) => !eval_qualifier(q, f, universe),
        Qualifier::Path(p) => {
            let singleton: FSet = std::iter::once(f.clone()).collect();
            !eval_path(p, &singleton, universe).is_empty()
        }
    }
}

fn image(from: &FSet, step: impl Fn(&FocusedTree) -> Option<FocusedTree>) -> FSet {
    from.iter().filter_map(step).collect()
}

/// Transitive closure of a one-step function, excluding the seeds.
fn plus(from: &FSet, step: impl Fn(&FocusedTree) -> Option<FocusedTree> + Copy) -> FSet {
    let mut acc = FSet::new();
    let mut frontier = image(from, step);
    while !frontier.is_empty() {
        let mut next = FSet::new();
        for f in frontier {
            if acc.insert(f.clone()) {
                if let Some(g) = step(&f) {
                    next.insert(g);
                }
            }
        }
        frontier = next;
    }
    acc
}

/// Closure over an arbitrary set-valued step, excluding the seeds.
fn plus_set(from: &FSet, step: impl Fn(&FSet) -> FSet) -> FSet {
    let mut acc = FSet::new();
    let mut frontier = step(from);
    loop {
        let fresh: FSet = frontier.difference(&acc).cloned().collect();
        if fresh.is_empty() {
            return acc;
        }
        acc.extend(fresh.iter().cloned());
        frontier = step(&fresh);
    }
}

/// `S_a⟦a⟧F` (Fig 5).
pub fn eval_axis(a: Axis, from: &FSet) -> FSet {
    match a {
        Axis::SelfAxis => from.clone(),
        Axis::Child => {
            let first = image(from, FocusedTree::down1);
            let later = plus(&first, ftree::FocusedTree::down2);
            first.union(&later).cloned().collect()
        }
        Axis::FollSibling => plus(from, ftree::FocusedTree::down2),
        Axis::PrecSibling => plus(from, ftree::FocusedTree::up2),
        Axis::Parent => image(from, ftree::FocusedTree::parent),
        Axis::Descendant => plus_set(from, |s| eval_axis(Axis::Child, s)),
        Axis::DescOrSelf => {
            let desc = eval_axis(Axis::Descendant, from);
            from.union(&desc).cloned().collect()
        }
        Axis::Ancestor => plus(from, ftree::FocusedTree::parent),
        Axis::AncOrSelf => {
            let anc = eval_axis(Axis::Ancestor, from);
            from.union(&anc).cloned().collect()
        }
        Axis::Following => {
            let anc = eval_axis(Axis::AncOrSelf, from);
            let sib = eval_axis(Axis::FollSibling, &anc);
            eval_axis(Axis::DescOrSelf, &sib)
        }
        Axis::Preceding => {
            let anc = eval_axis(Axis::AncOrSelf, from);
            let sib = eval_axis(Axis::PrecSibling, &anc);
            eval_axis(Axis::DescOrSelf, &sib)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn labels(mut v: Vec<FocusedTree>) -> Vec<String> {
        v.sort_by_key(|f| f.label().as_str());
        v.iter().map(|f| f.label().to_string()).collect()
    }

    /// `<a s><b><d/><e/></b><c/></a>` with the mark at the root.
    fn doc() -> Tree {
        Tree::parse_xml("<a s=\"1\"><b><d/><e/></b><c/></a>").unwrap()
    }

    #[test]
    fn child_axis() {
        let sel = eval_on_tree(&parse("child::*").unwrap(), &doc());
        assert_eq!(labels(sel), vec!["b", "c"]);
    }

    #[test]
    fn descendant_axis() {
        let sel = eval_on_tree(&parse("descendant::*").unwrap(), &doc());
        assert_eq!(labels(sel), vec!["b", "c", "d", "e"]);
    }

    #[test]
    fn parent_and_ancestor() {
        let t = doc().mark_at(&[0, 0]).unwrap(); // mark on d
        let sel = eval_on_tree(&parse("parent::*").unwrap(), &t);
        assert_eq!(labels(sel), vec!["b"]);
        let sel = eval_on_tree(&parse("ancestor::*").unwrap(), &t);
        assert_eq!(labels(sel), vec!["a", "b"]);
        let sel = eval_on_tree(&parse("anc-or-self::*").unwrap(), &t);
        assert_eq!(labels(sel), vec!["a", "b", "d"]);
    }

    #[test]
    fn siblings() {
        let t = doc().mark_at(&[0, 0]).unwrap(); // mark on d
        let sel = eval_on_tree(&parse("foll-sibling::*").unwrap(), &t);
        assert_eq!(labels(sel), vec!["e"]);
        let t2 = doc().mark_at(&[1]).unwrap(); // mark on c
        let sel = eval_on_tree(&parse("prec-sibling::*").unwrap(), &t2);
        assert_eq!(labels(sel), vec!["b"]);
    }

    #[test]
    fn following_and_preceding() {
        let t = doc().mark_at(&[0, 1]).unwrap(); // mark on e
        let sel = eval_on_tree(&parse("following::*").unwrap(), &t);
        assert_eq!(labels(sel), vec!["c"]);
        let t2 = doc().mark_at(&[1]).unwrap(); // mark on c
        let sel = eval_on_tree(&parse("preceding::*").unwrap(), &t2);
        assert_eq!(labels(sel), vec!["b", "d", "e"]);
    }

    #[test]
    fn absolute_vs_relative() {
        let t = doc().mark_at(&[0]).unwrap(); // mark on b
        let rel = eval_on_tree(&parse("child::*").unwrap(), &t);
        assert_eq!(labels(rel), vec!["d", "e"]);
        let abs = eval_on_tree(&parse("/child::*").unwrap(), &t);
        // Absolute paths ignore the mark: children of the root <a>.
        assert_eq!(labels(abs), vec!["b", "c"]);
    }

    #[test]
    fn qualifiers_filter() {
        let sel = eval_on_tree(&parse("child::*[child::d]").unwrap(), &doc());
        assert_eq!(labels(sel), vec!["b"]);
        let sel = eval_on_tree(&parse("child::*[not(child::d)]").unwrap(), &doc());
        assert_eq!(labels(sel), vec!["c"]);
        let sel = eval_on_tree(&parse("child::*[child::d and child::e]").unwrap(), &doc());
        assert_eq!(labels(sel), vec!["b"]);
        let sel = eval_on_tree(&parse("child::*[child::d or self::c]").unwrap(), &doc());
        assert_eq!(labels(sel), vec!["b", "c"]);
    }

    #[test]
    fn union_intersection() {
        let sel = eval_on_tree(&parse("child::b | child::c").unwrap(), &doc());
        assert_eq!(labels(sel), vec!["b", "c"]);
        let sel = eval_on_tree(&parse("child::* ∩ child::c").unwrap(), &doc());
        assert_eq!(labels(sel), vec!["c"]);
    }

    #[test]
    fn double_slash() {
        let sel = eval_on_tree(&parse("//d").unwrap(), &doc());
        assert_eq!(labels(sel), vec!["d"]);
        let sel = eval_on_tree(&parse(".//e").unwrap(), &doc());
        assert_eq!(labels(sel), vec!["e"]);
    }

    #[test]
    fn path_union() {
        let t = Tree::parse_xml("<html s=\"1\"><head/><body><p/></body></html>").unwrap();
        let sel = eval_on_tree(&parse("html/(head | body)").unwrap(), &t);
        // Relative from the marked root: html has no child named html.
        assert_eq!(labels(sel), Vec::<String>::new());
        let sel = eval_on_tree(&parse("(head | body)").unwrap(), &t);
        assert_eq!(labels(sel), vec!["body", "head"]);
    }

    #[test]
    fn absolute_in_qualifier() {
        // [//e] holds anywhere in this document.
        let sel = eval_on_tree(&parse("child::c[//e]").unwrap(), &doc());
        assert_eq!(labels(sel), vec!["c"]);
        // [//zzz] holds nowhere.
        let sel = eval_on_tree(&parse("child::c[//zzz]").unwrap(), &doc());
        assert!(sel.is_empty());
    }
}

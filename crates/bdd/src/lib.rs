//! A from-scratch Binary Decision Diagram engine.
//!
//! The symbolic satisfiability solver of the paper (§7.1) represents *sets of
//! ψ-types* as boolean functions over one variable per lean atom, and the
//! compatibility relations `∆_a` as functions over two interleaved copies of
//! those variables. This crate provides the BDD machinery it needs:
//!
//! * hash-consed nodes with **complement edges** in a single unique-table
//!   arena ([`Bdd`]): negation is a constant-time tag flip, `f` and `¬f`
//!   share every node, and the unique table is an open-addressed slot
//!   array co-located with the node arena rather than a tuple-keyed hash
//!   map;
//! * the classic `ite` (if-then-else) operation, from which conjunction,
//!   disjunction, implication and equivalence derive, memoized — together
//!   with shifting and quantification — in **one generational operation
//!   cache** whose whole contents invalidate in O(1) ([`Bdd::reset`]), so
//!   a long-lived manager is reusable across problems;
//! * existential quantification over interned variable sets, and the fused
//!   relational product [`Bdd::and_exists`] — the `∃ȳ (h(ȳ) ∧ ∆(x̄,ȳ))`
//!   step that conjunctive partitioning with early quantification (§7.3)
//!   relies on;
//! * monotone variable shifting ([`Bdd::shift`]) to move a set function
//!   between the `x̄` (even) and `ȳ` (odd) variable rails;
//! * model extraction ([`Bdd::sat_one`]), satisfying-assignment counting,
//!   mark-compact garbage collection ([`Bdd::gc`]) and run telemetry
//!   ([`Bdd::stats`] → [`BddStats`]: peak live nodes, unique-table load
//!   factor, operation-cache hit rate).
//!
//! # Example
//!
//! ```
//! use bdd::Bdd;
//!
//! let mut m = Bdd::new();
//! let x = m.var(0);
//! let y = m.var(1);
//! let f = m.and(x, y);
//! let g = m.or(x, y);
//! assert!(m.implies_check(f, g));
//! let cube = m.quant_set([1]);
//! assert_eq!(m.exists(f, cube), x); // ∃y. x∧y = x
//! // Negation is a tag flip: no nodes allocated, involution by construction.
//! let nf = m.not(f);
//! assert_eq!(m.not(nf), f);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hash;
mod manager;
mod quant;

pub use manager::{Bdd, BddStats, NodeId};
pub use quant::QuantSet;

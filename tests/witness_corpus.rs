//! Seeded witness regression corpus.
//!
//! Each entry pins the exact counterexample (or inhabitation) document the
//! witnessed backend produced for a known decision problem — the Fig 18
//! containment family, emptiness refutations, and a typed satisfiability
//! witness. The corpus is replayed two ways:
//!
//! * **pin replay** — the pinned XML is parsed back into a [`Model`] and
//!   pushed through [`analyzer::witness::verify_model`], i.e. the Fig 2
//!   model-checking oracle plus the governing-DTD oracle, against a goal
//!   formula rebuilt from the public `Analyzer` API. A corpus document
//!   must *stay* a genuine witness no matter how the solvers evolve.
//! * **fresh solve** — the problem is re-solved on the witnessed backend;
//!   the verdict must match and a witness must be produced. Its shape may
//!   differ run to run (reconstruction order is not pinned), so the fresh
//!   witness is pushed through the same oracles rather than compared to
//!   the pin byte for byte.
//!
//! A third pass corrupts every pinned document (drops its mark) and
//! demands [`SolveError::WitnessInvalid`] — the verifier must never wave
//! a broken witness through.

use std::sync::Arc;

use analyzer::{witness, Analyzer, BackendChoice, Limits, Problem, SolveError};
use ftree::Tree;
use mulogic::Formula;
use solver::Model;
use treetypes::Dtd;

/// The DTD of the typed corpus entries.
const CORPUS_DTD: &str = "<!ELEMENT r (a, b?)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>";

/// A deeper DTD for the typed predicate-containment entry.
const PREDICATE_DTD: &str =
    "<!ELEMENT r (a*)> <!ELEMENT a (b*, c?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>";

/// One seeded corpus entry: a problem, whether it holds, and the pinned
/// witness document of its `counter_example` slot.
struct Entry {
    name: &'static str,
    holds: bool,
    witness: &'static str,
    problem: fn() -> Problem,
}

fn dtd() -> Arc<Dtd> {
    Arc::new(Dtd::parse(CORPUS_DTD).expect("corpus dtd parses"))
}

fn predicate_dtd() -> Arc<Dtd> {
    Arc::new(Dtd::parse(PREDICATE_DTD).expect("predicate dtd parses"))
}

fn q(src: &str) -> Arc<xpath::Expr> {
    Arc::new(xpath::parse(src).expect("corpus query parses"))
}

const CORPUS: &[Entry] = &[
    Entry {
        name: "fig18-containment",
        holds: false,
        witness: "<a><b/><a><a/><a><a><a s=\"1\"><a><b/></a><c/></a></a></a></a><b/></a>",
        problem: || {
            Problem::contains(
                q("child::c/preceding-sibling::a[child::b]"),
                None,
                q("child::c[child::b]"),
                None,
            )
        },
    },
    Entry {
        name: "label-containment",
        holds: false,
        witness: "<b s=\"1\"><a/></b>",
        problem: || Problem::contains(q("child::a"), None, q("child::b"), None),
    },
    Entry {
        name: "predicate-containment",
        holds: false,
        witness: "<r s=\"1\"><a><c/></a><a/><a><c/></a><a><b/></a><a/></r>",
        problem: || {
            Problem::contains(
                q("child::a[child::b]"),
                Some(predicate_dtd()),
                q("child::a[child::c]"),
                Some(predicate_dtd()),
            )
        },
    },
    Entry {
        name: "descendant-emptiness",
        holds: false,
        witness: "<b s=\"1\"><b/></b>",
        problem: || Problem::empty(q("descendant::b"), None),
    },
    Entry {
        name: "typed-satisfiability",
        holds: true,
        witness: "<r s=\"1\"><a/></r>",
        problem: || Problem::sat(q("child::a"), Some(dtd())),
    },
    Entry {
        name: "descendant-vs-child-equivalence",
        holds: false,
        witness: "<b s=\"1\"><b><b/></b></b>",
        problem: || Problem::equiv(q("descendant::b"), None, q("child::b"), None),
    },
];

/// Rebuild the goal formula whose witness the entry pins, from the public
/// `Analyzer` surface (`query_formula` is the same compilation the solve
/// path uses; containment/equivalence goals are `⟦e1⟧ ∧ ¬⟦e2⟧`).
fn goal_of(az: &mut Analyzer, p: &Problem) -> Formula {
    match p {
        Problem::Sat { query, ty } | Problem::Empty { query, ty } => {
            az.query_formula(query, ty.as_deref())
        }
        Problem::Contains {
            lhs,
            ltype,
            rhs,
            rtype,
        }
        | Problem::Equiv {
            lhs,
            ltype,
            rhs,
            rtype,
        } => {
            let f1 = az.query_formula(lhs, ltype.as_deref());
            let f2 = az.query_formula(rhs, rtype.as_deref());
            let lg = az.logic_mut();
            let nf2 = lg.not(f2);
            lg.and(f1, nf2)
        }
        other => unreachable!("corpus has no {} entries", other.op_name()),
    }
}

/// The DTDs the entry's witness must validate against (the positively
/// occurring type slots; `None` entries are untyped).
fn governing_dtds(p: &Problem) -> Vec<Arc<Dtd>> {
    match p {
        Problem::Sat { ty, .. } | Problem::Empty { ty, .. } => ty.iter().cloned().collect(),
        Problem::Contains { ltype, .. } | Problem::Equiv { ltype, .. } => {
            ltype.iter().cloned().collect()
        }
        _ => Vec::new(),
    }
}

fn pinned_model(e: &Entry) -> Model {
    let tree = Tree::parse_xml(e.witness).expect("pinned witness parses");
    Model::from_trees(vec![tree])
}

#[test]
fn pinned_witnesses_still_verify() {
    for e in CORPUS {
        let p = (e.problem)();
        let mut az = Analyzer::new();
        let goal = goal_of(&mut az, &p);
        let model = pinned_model(e);
        let dtds = governing_dtds(&p);
        let dtd_refs: Vec<&Dtd> = dtds.iter().map(Arc::as_ref).collect();
        witness::verify_model(az.logic_mut(), goal, &model, &dtd_refs)
            .unwrap_or_else(|err| panic!("{}: pinned witness no longer verifies: {err}", e.name));
    }
}

#[test]
fn fresh_solves_still_refute_and_their_witnesses_verify() {
    for e in CORPUS {
        let p = (e.problem)();
        let mut az = Analyzer::new();
        az.set_backend(BackendChoice::Witnessed);
        let a = az
            .solve(&p, &Limits::default())
            .unwrap_or_else(|err| panic!("{}: solve failed: {err}", e.name));
        assert_eq!(a.holds, e.holds, "{}: verdict drifted", e.name);
        let m = a
            .counter_example
            .unwrap_or_else(|| panic!("{}: witnessed backend produced no witness", e.name));
        // Replay the fresh witness through the same oracles as the pin
        // (the solve itself already verified it once; this exercises the
        // publicly rebuilt goal too).
        let goal = goal_of(&mut az, &p);
        let dtds = governing_dtds(&p);
        let dtd_refs: Vec<&Dtd> = dtds.iter().map(Arc::as_ref).collect();
        witness::verify_model(az.logic_mut(), goal, &m, &dtd_refs)
            .unwrap_or_else(|err| panic!("{}: fresh witness fails the oracles: {err}", e.name));
    }
}

#[test]
fn corrupted_pins_are_rejected_loudly() {
    for e in CORPUS {
        let p = (e.problem)();
        let mut az = Analyzer::new();
        let goal = goal_of(&mut az, &p);
        // Drop the mark: the document shape survives but the context/
        // selection evidence is gone, so the model checker must refute it.
        let tree = Tree::parse_xml(e.witness).expect("pinned witness parses");
        let corrupted = Model::from_trees(vec![tree.clear_marks()]);
        let err = witness::verify_model(az.logic_mut(), goal, &corrupted, &[])
            .expect_err("unmarked witness must be rejected");
        assert!(
            matches!(err, SolveError::WitnessInvalid { .. }),
            "{}: expected WitnessInvalid, got {err}",
            e.name
        );
    }
}

/// Regeneration helper: prints the current witness for every corpus
/// problem so the pins above can be updated after a deliberate
/// reconstruction change. Run with
/// `cargo test --test witness_corpus -- --ignored --nocapture`.
#[test]
#[ignore = "regeneration helper, not a check"]
fn regenerate_pins() {
    for e in CORPUS {
        let p = (e.problem)();
        let mut az = Analyzer::new();
        az.set_backend(BackendChoice::Witnessed);
        let a = az.solve(&p, &Limits::default()).expect("solve");
        match &a.counter_example {
            Some(m) => println!("{}: holds={} witness={}", e.name, a.holds, m.xml()),
            None => println!("{}: holds={} (no witness)", e.name, a.holds),
        }
    }
}

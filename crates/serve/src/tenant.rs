//! Per-tenant isolation: namespaced workspaces, per-tenant default
//! limits, and in-flight caps.
//!
//! The `tenant` request field selects a namespace. Each tenant owns its
//! own [`Workspace`] — `q1` bound by tenant `a` and `q1` bound by tenant
//! `b` are different registrations that can never alias, because decision
//! problems are resolved to structural ASTs *before* they reach the
//! shared memo cache (which is keyed by the resolved problem, not by
//! names; cross-tenant sharing of structurally identical problems is
//! therefore safe and deliberate). Each tenant also carries its own
//! default [`Limits`] and an in-flight cap: a tenant at its cap is shed
//! immediately, so one noisy tenant saturates its own budget, not the
//! server.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

use engine::Workspace;
use solver::{CancelToken, Limits};

use crate::{ServerConfig, DEFAULT_TENANT};

/// The server-wide count of admitted-but-unanswered requests, with a
/// condition variable so a draining shutdown can wait for zero.
pub(crate) struct Inflight {
    n: Mutex<usize>,
    zero: Condvar,
}

impl Inflight {
    pub(crate) fn new() -> Inflight {
        Inflight {
            n: Mutex::new(0),
            zero: Condvar::new(),
        }
    }

    fn inc(&self) {
        *lock(&self.n) += 1;
    }

    fn dec(&self) {
        let mut n = lock(&self.n);
        *n = n.saturating_sub(1);
        if *n == 0 {
            self.zero.notify_all();
        }
    }

    /// The current count.
    pub(crate) fn count(&self) -> usize {
        *lock(&self.n)
    }

    /// Blocks until the count reaches zero or `deadline` elapses; returns
    /// whether zero was reached.
    pub(crate) fn wait_zero(&self, deadline: Duration) -> bool {
        let n = lock(&self.n);
        let (n, _) = self
            .zero
            .wait_timeout_while(n, deadline, |n| *n > 0)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *n == 0
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One tenant: a workspace namespace with its own limits and cap.
pub(crate) struct Tenant {
    /// The wire name.
    pub name: String,
    /// Metrics label: the configured name (leaked once, bounded by
    /// configuration) or `"other"` for tenants created dynamically —
    /// traffic must not be able to grow label cardinality.
    pub label: &'static str,
    /// The tenant's registrations. Readers resolve problems concurrently;
    /// registrations take the write lock briefly.
    pub workspace: RwLock<Workspace>,
    /// Default limits for this tenant's solves (its cancel token is the
    /// server's drain token, so a shutdown can cancel in-flight work).
    pub limits: Limits,
    /// Admitted-but-unanswered requests.
    inflight: AtomicUsize,
    /// The in-flight cap.
    pub max_inflight: usize,
}

impl Tenant {
    /// Tries to take one in-flight slot; `None` means the tenant is at
    /// its cap and the request must be shed. An admitted request also
    /// counts in the server-wide `global` tally the drain waits on.
    pub(crate) fn try_admit(self: &Arc<Tenant>, global: &Arc<Inflight>) -> Option<InflightGuard> {
        let admitted = self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.max_inflight).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            return None;
        }
        global.inc();
        obs::metrics()
            .gauge("xsat_tenant_inflight", &[("tenant", self.label)])
            .add(1);
        Some(InflightGuard {
            tenant: self.clone(),
            global: global.clone(),
        })
    }

    /// The tenant's current in-flight count.
    pub(crate) fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }
}

/// Holds one tenant in-flight slot; dropping it (response sent, or the
/// request died with its connection) releases the slot, the server-wide
/// tally, and the gauge.
pub(crate) struct InflightGuard {
    tenant: Arc<Tenant>,
    global: Arc<Inflight>,
}

impl InflightGuard {
    /// The tenant this slot belongs to.
    pub(crate) fn tenant(&self) -> &Arc<Tenant> {
        &self.tenant
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.tenant.inflight.fetch_sub(1, Ordering::AcqRel);
        obs::metrics()
            .gauge("xsat_tenant_inflight", &[("tenant", self.tenant.label)])
            .sub(1);
        self.global.dec();
    }
}

/// The tenant registry: configured tenants are created up front with
/// leaked (bounded) metric labels; unknown tenants are created on first
/// use with the server defaults and the shared `"other"` label.
pub(crate) struct Tenants {
    map: Mutex<HashMap<String, Arc<Tenant>>>,
    default_limits: Limits,
    default_inflight: usize,
}

impl Tenants {
    /// Builds the registry from the server configuration. `drain` is the
    /// server's armed drain token, cloned into every tenant's default
    /// limits so shutdown can cancel whatever is still running.
    pub(crate) fn new(config: &ServerConfig, drain: &CancelToken) -> Tenants {
        let with_drain = |base: &Limits| Limits {
            cancel: drain.clone(),
            ..base.clone()
        };
        let default_limits = with_drain(&config.limits);
        let mut map = HashMap::new();
        for tc in &config.tenants {
            let label: &'static str = Box::leak(tc.name.clone().into_boxed_str());
            map.insert(
                tc.name.clone(),
                Arc::new(Tenant {
                    name: tc.name.clone(),
                    label,
                    workspace: RwLock::new(Workspace::new()),
                    limits: with_drain(tc.limits.as_ref().unwrap_or(&config.limits)),
                    inflight: AtomicUsize::new(0),
                    max_inflight: tc.max_inflight.unwrap_or(config.tenant_inflight),
                }),
            );
        }
        // The fallback tenant always exists, with its own label.
        map.entry(DEFAULT_TENANT.to_owned()).or_insert_with(|| {
            Arc::new(Tenant {
                name: DEFAULT_TENANT.to_owned(),
                label: DEFAULT_TENANT,
                workspace: RwLock::new(Workspace::new()),
                limits: default_limits.clone(),
                inflight: AtomicUsize::new(0),
                max_inflight: config.tenant_inflight,
            })
        });
        Tenants {
            map: Mutex::new(map),
            default_limits,
            default_inflight: config.tenant_inflight,
        }
    }

    /// Resolves (creating on first use) the tenant named `name`.
    pub(crate) fn resolve(&self, name: &str) -> Arc<Tenant> {
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(t) = map.get(name) {
            return t.clone();
        }
        let tenant = Arc::new(Tenant {
            name: name.to_owned(),
            label: "other",
            workspace: RwLock::new(Workspace::new()),
            limits: self.default_limits.clone(),
            inflight: AtomicUsize::new(0),
            max_inflight: self.default_inflight,
        });
        map.insert(name.to_owned(), tenant.clone());
        tenant
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Tenants {
        let config = ServerConfig {
            tenant_inflight: 2,
            ..ServerConfig::default()
        };
        Tenants::new(&config, &CancelToken::armed())
    }

    #[test]
    fn inflight_cap_sheds_then_recovers() {
        let tenants = registry();
        let global = Arc::new(Inflight::new());
        let t = tenants.resolve("acme");
        let g1 = t.try_admit(&global).expect("slot 1");
        let _g2 = t.try_admit(&global).expect("slot 2");
        assert!(t.try_admit(&global).is_none(), "cap of 2 reached");
        assert_eq!(global.count(), 2);
        drop(g1);
        assert_eq!(global.count(), 1);
        assert!(t.try_admit(&global).is_some(), "slot released");
        assert!(
            !global.wait_zero(Duration::from_millis(10)),
            "still in flight"
        );
    }

    #[test]
    fn tenants_have_distinct_workspaces() {
        let tenants = registry();
        let a = tenants.resolve("a");
        let b = tenants.resolve("b");
        a.workspace
            .write()
            .unwrap()
            .register_query("q1", "child::a")
            .unwrap();
        b.workspace
            .write()
            .unwrap()
            .register_query("q1", "child::b")
            .unwrap();
        let qa = a.workspace.read().unwrap().resolve_query("q1").unwrap();
        let qb = b.workspace.read().unwrap().resolve_query("q1").unwrap();
        assert_ne!(qa, qb, "same name, different tenants, different ASTs");
        // Resolving again yields the same tenant object.
        assert!(Arc::ptr_eq(&a, &tenants.resolve("a")));
    }
}

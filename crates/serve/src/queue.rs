//! The bounded admission queue between connection readers and the worker
//! pool.
//!
//! Admission control lives here: [`Queue::try_push`] never blocks and
//! never grows past the configured depth — a full queue is the caller's
//! signal to shed the request with a typed `unknown` verdict instead of
//! letting latency collapse. Workers block in [`Queue::pop`]; closing the
//! queue wakes them all for shutdown once the backlog is drained.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Queue::try_push`] refused an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue is at capacity: shed the request.
    Full,
    /// The queue is closed (the server is draining or stopped).
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A depth-bounded MPMC queue: non-blocking producers, blocking consumers.
pub(crate) struct Queue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Queue<T> {
    pub(crate) fn new(capacity: usize) -> Queue<T> {
        Queue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits `item` unless the queue is full or closed. Never blocks —
    /// rejection must be immediate for the shed path to bound latency —
    /// and hands the item back on refusal so the caller can answer it.
    pub(crate) fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = lock(&self.inner);
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        inner.items.push_back(item);
        obs::metrics()
            .gauge("xsat_serve_queue_depth", &[])
            .set(inner.items.len() as u64);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// drained — workers finish the backlog before exiting.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                obs::metrics()
                    .gauge("xsat_serve_queue_depth", &[])
                    .set(inner.items.len() as u64);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// The current backlog.
    pub(crate) fn len(&self) -> usize {
        lock(&self.inner).items.len()
    }

    /// The configured depth bound.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Closes the queue: producers get [`PushError::Closed`], consumers
    /// drain the backlog and then see `None`.
    pub(crate) fn close(&self) {
        lock(&self.inner).closed = true;
        self.ready.notify_all();
    }
}

/// Locks ignoring poisoning: a panicked thread must not wedge admission.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_push_and_fifo_pop() {
        let q: Queue<u32> = Queue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_backlog_then_ends() {
        let q: Queue<u32> = Queue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err((8, PushError::Closed)));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = std::sync::Arc::new(Queue::<u32>::new(1));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }
}

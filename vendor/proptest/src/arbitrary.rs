//! `any::<T>()` — canonical strategies for plain types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized + 'static {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::new(rng.next_u64())
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

//! Table 2, row 5: the anchor-nesting check. The XHTML 1.0 Strict DTD
//! forbids `<a>` directly inside `<a>`, but query e8
//! (`descendant::a[ancestor::a]`) is *satisfiable* under the DTD: nothing
//! syntactically prevents nesting anchors through an intermediate inline
//! element. The solver finds a witness document.
//!
//! This is the paper's heaviest single-query instance (2630 ms on 2007
//! hardware); expect a few minutes here. Run with
//! `cargo run --release --example xhtml_anchors`.

use xsat::analyzer::{paper, Analyzer};
use xsat::treetypes::xhtml_1_0_strict;

fn main() {
    let dtd = xhtml_1_0_strict();
    println!(
        "XHTML 1.0 Strict: {} element symbols (paper Table 1: 77)",
        dtd.symbol_count()
    );

    let e8 = paper::query(8);
    println!("e8 = {e8}");

    let mut az = Analyzer::new();
    let v = az.is_satisfiable(&e8, Some(&dtd)).unwrap();
    println!("satisfiable under XHTML 1.0 Strict: {}", v.holds);
    println!(
        "lean = {} atoms, {} iterations, {:?}",
        v.stats.lean_size, v.stats.iterations, v.stats.duration
    );
    if let Some(m) = &v.counter_example {
        println!("witness ({} nodes):", m.size());
        println!("{}", m.xml());
        let tree = m.tree().clear_marks();
        assert!(dtd.validates(&tree), "witness must be XHTML-valid");
        println!("(validated against the DTD — anchors do nest!)");
    }
}

//! Strategies: composable deterministic generators.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values of type [`Strategy::Value`].
///
/// Unlike the real proptest there is no shrinking: a strategy is just a
/// pure function from an RNG to a value, and combinators compose those
/// functions.
pub trait Strategy: Clone + 'static {
    /// The type of generated values.
    type Value: 'static;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: 'static,
        F: Fn(Self::Value) -> U + Clone + 'static,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Builds recursive values: `recurse` wraps an inner strategy into one
    /// producing a value one level deeper, applied up to `depth` times with
    /// `self` as the leaf case. The `_desired_size` / `_expected_branch`
    /// hints of the real API are accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        S2: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + Clone + 'static,
        Self: Sized,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            let leaf = base.clone();
            current = BoxedStrategy(Rc::new(move |rng| {
                // Mix in the leaf so generated shapes vary in depth.
                if rng.ratio(1, 4) {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        current
    }
}

/// A type-erased strategy (the `.boxed()` form).
pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: 'static,
    F: Fn(S::Value) -> U + Clone + 'static,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy always producing a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Uniform choice.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted choice.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, usize);

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (i64::from(self.end) - i64::from(self.start)) as u64;
                (i64::from(self.start) + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_union() {
        let mut rng = TestRng::from_name("map_and_union");
        let s = crate::prop_oneof![
            2 => (0u32..4).prop_map(|n| n * 10),
            1 => Just(100u32),
        ];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 100 || v < 40);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(T::Leaf).prop_recursive(4, 8, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        let mut rng = TestRng::from_name("recursive_terminates");
        for _ in 0..200 {
            assert!(depth(&s.generate(&mut rng)) <= 4);
        }
    }
}

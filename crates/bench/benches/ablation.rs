//! Ablations of the implementation techniques of §7:
//!
//! * conjunctive partitioning + early quantification (§7.3) vs a
//!   monolithic `∆_a` relation quantified in one step;
//! * breadth-first lean/BDD variable order (§7.4) vs the reversed order;
//! * symbolic (BDD) solver vs the explicit-state reference solver on a
//!   problem small enough for both.
//!
//! The paper argues each technique is essential in practice; these benches
//! quantify that on this implementation.

use analyzer::Analyzer;
use bench::{ablation_configs, containment_goal};
use criterion::{criterion_group, criterion_main, Criterion};
use mulogic::Logic;
use std::hint::black_box;

fn bench_delta_and_order(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/e1-in-e2");
    g.sample_size(10);
    for (name, opts) in ablation_configs() {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut az = Analyzer::with_options(analyzer::AnalyzerOptions {
                    symbolic: opts.clone(),
                    ..Default::default()
                });
                let goal = containment_goal(&mut az, black_box(1), black_box(2), None);
                let s = az.solve_formula(goal).unwrap();
                assert!(!s.outcome.is_satisfiable());
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation/e4-in-e3");
    g.sample_size(10);
    for (name, opts) in ablation_configs() {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut az = Analyzer::with_options(analyzer::AnalyzerOptions {
                    symbolic: opts.clone(),
                    ..Default::default()
                });
                let goal = containment_goal(&mut az, black_box(4), black_box(3), None);
                let s = az.solve_formula(goal).unwrap();
                assert!(!s.outcome.is_satisfiable());
            });
        });
    }
    g.finish();
}

fn bench_explicit_vs_symbolic(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/backend");
    g.sample_size(10);
    // A formula small enough for explicit enumeration:
    // a node with a `b` child whose next sibling chain reaches `c`.
    let src = "a & <1>(b & let_mu X = c | <2>X in X) & ~<-1>T";
    g.bench_function("symbolic", |b| {
        b.iter(|| {
            let mut lg = Logic::new();
            let goal = lg.parse(black_box(src)).unwrap();
            let s = solver::solve_symbolic(&mut lg, goal);
            assert!(s.outcome.is_satisfiable());
        });
    });
    g.bench_function("explicit", |b| {
        b.iter(|| {
            let mut lg = Logic::new();
            let goal = lg.parse(black_box(src)).unwrap();
            let s = solver::solve_explicit(&mut lg, goal);
            assert!(s.outcome.is_satisfiable());
        });
    });
    g.bench_function("witnessed", |b| {
        b.iter(|| {
            let mut lg = Logic::new();
            let goal = lg.parse(black_box(src)).unwrap();
            let s = solver::solve_witnessed(&mut lg, goal);
            assert!(s.outcome.is_satisfiable());
        });
    });
    g.finish();
}

criterion_group!(benches, bench_delta_and_order, bench_explicit_vs_symbolic);
criterion_main!(benches);

//! A from-scratch Binary Decision Diagram engine.
//!
//! The symbolic satisfiability solver of the paper (§7.1) represents *sets of
//! ψ-types* as boolean functions over one variable per lean atom, and the
//! compatibility relations `∆_a` as functions over two interleaved copies of
//! those variables. This crate provides the BDD machinery it needs:
//!
//! * hash-consed nodes with a shared unique table ([`Bdd`]);
//! * the classic `ite` (if-then-else) operation with memoization, from which
//!   conjunction, disjunction, negation, implication and equivalence derive;
//! * existential quantification over interned variable sets, and the fused
//!   relational product [`Bdd::and_exists`] — the `∃ȳ (h(ȳ) ∧ ∆(x̄,ȳ))`
//!   step that conjunctive partitioning with early quantification (§7.3)
//!   relies on;
//! * monotone variable shifting ([`Bdd::shift`]) to move a set function
//!   between the `x̄` (even) and `ȳ` (odd) variable rails;
//! * model extraction ([`Bdd::sat_one`]) and satisfying-assignment counting.
//!
//! Nodes are never garbage collected: the managers used by the solver are
//! short-lived and bounded by the fixpoint computation they serve.
//!
//! # Example
//!
//! ```
//! use bdd::Bdd;
//!
//! let mut m = Bdd::new();
//! let x = m.var(0);
//! let y = m.var(1);
//! let f = m.and(x, y);
//! let g = m.or(x, y);
//! assert!(m.implies_check(f, g));
//! let cube = m.quant_set([1]);
//! assert_eq!(m.exists(f, cube), x); // ∃y. x∧y = x
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod manager;
mod quant;

pub use manager::{Bdd, NodeId};
pub use quant::QuantSet;

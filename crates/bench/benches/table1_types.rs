//! Table 1: compilation of the evaluation DTDs into binary tree types and
//! Lµ formulas (SMIL 1.0: 19 symbols, XHTML 1.0 Strict: 77 symbols, plus
//! the Wikipedia fragment of Fig 12).
//!
//! The paper reports only the sizes (symbols / binary type variables);
//! this bench additionally times the whole type-compilation pipeline and
//! prints the measured sizes for EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use mulogic::Logic;
use std::hint::black_box;
use treetypes::{BinaryType, Dtd};

fn pipeline(src: &str) -> (usize, usize, usize) {
    let dtd = Dtd::parse(src).expect("fixture parses");
    let bt = BinaryType::from_dtd(&dtd);
    let mut lg = Logic::new();
    let f = bt.formula(&mut lg);
    (dtd.symbol_count(), bt.var_count(), lg.size(f))
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    for (name, src) in [
        ("wikipedia", treetypes::WIKIPEDIA_DTD),
        ("smil-1.0", treetypes::SMIL_1_0_DTD),
        ("xhtml-1.0-strict", treetypes::XHTML_1_0_STRICT_DTD),
    ] {
        let (symbols, vars, fsize) = pipeline(src);
        println!("table1 {name}: symbols={symbols} binary-vars={vars} formula-size={fsize}");
        g.bench_function(name, |b| b.iter(|| pipeline(black_box(src))));
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);

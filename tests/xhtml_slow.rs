//! The two XHTML rows of Table 2 — slow (seconds in release, much more in
//! debug), so `#[ignore]`d by default. Run with
//! `cargo test --release -- --ignored`.

use xsat::analyzer::{paper, Analyzer};
use xsat::treetypes::xhtml_1_0_strict;
use xsat::xpath::eval_on_tree;

/// Table 2 row 5: e8 = `descendant::a[ancestor::a]` is satisfiable under
/// XHTML 1.0 Strict — the DTD does not prohibit nested anchors.
#[test]
#[ignore = "XHTML-scale instance: ~15 s in release mode"]
fn row5_e8_satisfiable_under_xhtml() {
    let dtd = xhtml_1_0_strict();
    let e8 = paper::query(8);
    let mut az = Analyzer::new();
    let v = az.is_satisfiable(&e8, Some(&dtd)).unwrap();
    assert!(v.holds, "paper: satisfiable");
    let m = v.counter_example.expect("witness");
    let tree = m.tree();
    assert!(
        dtd.validates(&tree.clear_marks()),
        "witness must be XHTML-valid: {}",
        m.xml()
    );
    let picked = eval_on_tree(&e8, &tree);
    assert!(!picked.is_empty(), "e8 must select a node in {}", m.xml());
}

/// Table 2 row 6: coverage `e9 ⊆ e10 ∪ e11 ∪ e12` under XHTML. Over
/// element-only trees (no XPath document node above `html`) the coverage
/// does not hold — `/descendant::*` selects `head` while
/// `html/(head|body)` from the html root selects nothing. The interpreter
/// confirms the counter-example; see EXPERIMENTS.md.
#[test]
#[ignore = "XHTML-scale instance: ~5 s in release mode"]
fn row6_coverage_counter_example_is_real() {
    let dtd = xhtml_1_0_strict();
    let e9 = paper::query(9);
    let e10 = paper::query(10);
    let e11 = paper::query(11);
    let e12 = paper::query(12);
    let mut az = Analyzer::new();
    let v = az
        .covers(
            &e9,
            Some(&dtd),
            &[(&e10, Some(&dtd)), (&e11, Some(&dtd)), (&e12, Some(&dtd))],
        )
        .unwrap();
    assert!(!v.holds);
    let m = v.counter_example.expect("counter-example");
    let tree = m.tree();
    assert!(dtd.validates(&tree.clear_marks()), "{}", m.xml());
    let s9 = eval_on_tree(&e9, &tree);
    let mut covered = Vec::new();
    for e in [&e10, &e11, &e12] {
        covered.extend(eval_on_tree(e, &tree));
    }
    assert!(
        s9.iter().any(|f| !covered.contains(f)),
        "interpreter must confirm the gap on {}",
        m.xml()
    );
}

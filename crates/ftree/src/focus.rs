//! Focused trees `f ::= (t, c)` and binary-style navigation (paper §3).

use std::fmt;

use crate::{Context, Label, Tree};

/// The four programs (modalities) of the logic.
///
/// `Down1`/`Down2` are the forward programs `1`/`2`; `Up1`/`Up2` are their
/// converses `1̄`/`2̄`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// `⟨1⟩` — first child.
    Down1,
    /// `⟨2⟩` — next sibling.
    Down2,
    /// `⟨1̄⟩` — parent, defined on leftmost siblings only.
    Up1,
    /// `⟨2̄⟩` — previous sibling.
    Up2,
}

impl Direction {
    /// All four programs, forward first.
    pub const ALL: [Direction; 4] = [
        Direction::Down1,
        Direction::Down2,
        Direction::Up1,
        Direction::Up2,
    ];

    /// The converse program `ā` (with `ā̄ = a`).
    pub fn converse(self) -> Direction {
        match self {
            Direction::Down1 => Direction::Up1,
            Direction::Down2 => Direction::Up2,
            Direction::Up1 => Direction::Down1,
            Direction::Up2 => Direction::Down2,
        }
    }

    /// Whether this is a forward program (`1` or `2`).
    pub fn is_forward(self) -> bool {
        matches!(self, Direction::Down1 | Direction::Down2)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::Down1 => "1",
            Direction::Down2 => "2",
            Direction::Up1 => "-1",
            Direction::Up2 => "-2",
        };
        f.write_str(s)
    }
}

/// A focused tree: a subtree in focus paired with its context.
///
/// Focused trees compare structurally; two foci are equal iff they denote the
/// same position in the same underlying marked tree.
///
/// # Example
///
/// ```
/// use ftree::{Tree, FocusedTree, Direction};
///
/// let f = FocusedTree::at_root(Tree::parse_xml("<a><b/><c/></a>").unwrap());
/// let b = f.step(Direction::Down1).unwrap();
/// let c = b.step(Direction::Down2).unwrap();
/// assert_eq!(c.step(Direction::Up2), Some(b));
/// assert_eq!(c.root(), f);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct FocusedTree {
    tree: Tree,
    ctx: Context,
}

impl FocusedTree {
    /// Focuses the root of `tree` with the empty top-level context.
    pub fn at_root(tree: Tree) -> Self {
        FocusedTree {
            tree,
            ctx: Context::top(),
        }
    }

    /// Builds a focused tree from explicit parts.
    pub fn new(tree: Tree, ctx: Context) -> Self {
        FocusedTree { tree, ctx }
    }

    /// The subtree in focus.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The context around the focus.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// `nm(f)`: the label of the node in focus.
    pub fn label(&self) -> Label {
        self.tree.label()
    }

    /// Whether the node in focus carries the start mark.
    pub fn is_marked(&self) -> bool {
        self.tree.is_marked()
    }

    /// Total number of start marks in the whole underlying tree.
    pub fn mark_count(&self) -> usize {
        self.tree.mark_count() + self.ctx.mark_count()
    }

    /// `f⟨1⟩`: focus on the first child.
    pub fn down1(&self) -> Option<FocusedTree> {
        let (first, rest) = self.tree.children().split_first()?;
        Some(FocusedTree {
            tree: first.clone(),
            ctx: Context::under(
                Vec::new(),
                self.tree.label(),
                self.tree.is_marked(),
                self.ctx.clone(),
                rest.to_vec(),
            ),
        })
    }

    /// `f⟨2⟩`: focus on the next sibling.
    pub fn down2(&self) -> Option<FocusedTree> {
        let (next, rest) = self.ctx.right().split_first()?;
        let mut left = self.ctx.left().to_vec();
        left.insert(0, self.tree.clone());
        Some(FocusedTree {
            tree: next.clone(),
            ctx: self.ctx.with_rows(left, rest.to_vec()),
        })
    }

    /// `f⟨1̄⟩`: focus on the parent; defined only when the focus is a
    /// leftmost sibling.
    pub fn up1(&self) -> Option<FocusedTree> {
        if !self.ctx.left().is_empty() {
            return None;
        }
        let (label, marked, parent) = self.ctx.parent_parts()?;
        let mut children = Vec::with_capacity(1 + self.ctx.right().len());
        children.push(self.tree.clone());
        children.extend(self.ctx.right().iter().cloned());
        let node = if marked {
            Tree::marked_node(label, children)
        } else {
            Tree::node(label, children)
        };
        Some(FocusedTree {
            tree: node,
            ctx: parent.clone(),
        })
    }

    /// `f⟨2̄⟩`: focus on the previous sibling.
    pub fn up2(&self) -> Option<FocusedTree> {
        let (prev, rest) = self.ctx.left().split_first()?;
        let mut right = self.ctx.right().to_vec();
        right.insert(0, self.tree.clone());
        Some(FocusedTree {
            tree: prev.clone(),
            ctx: self.ctx.with_rows(rest.to_vec(), right),
        })
    }

    /// `f⟨a⟩` for any program `a`.
    pub fn step(&self, dir: Direction) -> Option<FocusedTree> {
        match dir {
            Direction::Down1 => self.down1(),
            Direction::Down2 => self.down2(),
            Direction::Up1 => self.up1(),
            Direction::Up2 => self.up2(),
        }
    }

    /// The parent of the focus regardless of sibling position
    /// (the `parent(F)` auxiliary of Fig 6). Returns `None` at the root row.
    pub fn parent(&self) -> Option<FocusedTree> {
        let (label, marked, parent) = self.ctx.parent_parts()?;
        let mut children: Vec<Tree> = self.ctx.left().iter().rev().cloned().collect();
        children.push(self.tree.clone());
        children.extend(self.ctx.right().iter().cloned());
        let node = if marked {
            Tree::marked_node(label, children)
        } else {
            Tree::node(label, children)
        };
        Some(FocusedTree {
            tree: node,
            ctx: parent.clone(),
        })
    }

    /// Climbs to the root row (the `root(F)` auxiliary of Fig 6): applies
    /// [`FocusedTree::parent`] until the context above is `Top`.
    pub fn root(&self) -> FocusedTree {
        let mut cur = self.clone();
        while let Some(p) = cur.parent() {
            cur = p;
        }
        cur
    }

    /// Reassembles the whole underlying tree (the focus of [`root`] when the
    /// root row is a single tree).
    ///
    /// # Panics
    ///
    /// Panics if the top-level context has sibling rows (an XML document has
    /// a single root element).
    ///
    /// [`root`]: FocusedTree::root
    pub fn into_whole_tree(self) -> Tree {
        let r = self.root();
        assert!(
            r.ctx.left().is_empty() && r.ctx.right().is_empty(),
            "top-level context has siblings"
        );
        r.tree
    }

    /// Enumerates the foci of every node of `tree`, in document order.
    ///
    /// This is the finite universe over which the model checker evaluates
    /// formulas for a fixed tree.
    pub fn all_foci(tree: &Tree) -> Vec<FocusedTree> {
        Self::row_foci(std::slice::from_ref(tree))
    }

    /// Enumerates the foci of every node of a top-level sibling row (a
    /// *hedge*), in document order.
    ///
    /// The grammar of contexts allows sibling lists at `Top`, so a
    /// satisfying model is in general a row of trees; this builds the focus
    /// universe for such a model.
    pub fn row_foci(row: &[Tree]) -> Vec<FocusedTree> {
        let Some(first) = row.first() else {
            return Vec::new();
        };
        let start = FocusedTree::new(
            first.clone(),
            Context::top_with(Vec::new(), row[1..].to_vec()),
        );
        let mut out = Vec::with_capacity(row.iter().map(Tree::size).sum());
        // Seed with the whole top row, in document order.
        let mut top_row = Vec::new();
        let mut cur = Some(start);
        while let Some(f) = cur {
            cur = f.down2();
            top_row.push(f);
        }
        let mut stack: Vec<FocusedTree> = top_row.into_iter().rev().collect();
        while let Some(f) = stack.pop() {
            if let Some(c) = f.down1() {
                let mut sib = Some(c);
                let mut row = Vec::new();
                while let Some(s) = sib {
                    sib = s.down2();
                    row.push(s);
                }
                for s in row.into_iter().rev() {
                    stack.push(s);
                }
            }
            out.push(f);
        }
        out
    }
}

impl fmt::Debug for FocusedTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}, {:?})", self.tree, self.ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FocusedTree {
        // <a><b><d/></b><c/></a>
        let t = Tree::node(
            "a",
            vec![Tree::node("b", vec![Tree::leaf("d")]), Tree::leaf("c")],
        );
        FocusedTree::at_root(t)
    }

    #[test]
    fn navigation_roundtrips() {
        let root = sample();
        let b = root.down1().unwrap();
        assert_eq!(b.label().as_str(), "b");
        assert_eq!(b.up1().unwrap(), root);

        let c = b.down2().unwrap();
        assert_eq!(c.label().as_str(), "c");
        assert_eq!(c.up2().unwrap(), b);

        let d = b.down1().unwrap();
        assert_eq!(d.label().as_str(), "d");
        assert_eq!(d.up1().unwrap(), b);
    }

    #[test]
    fn undefined_moves() {
        let root = sample();
        assert!(root.up1().is_none());
        assert!(root.up2().is_none());
        assert!(root.down2().is_none());
        let c = root.down1().unwrap().down2().unwrap();
        // c is not a leftmost sibling: ⟨1̄⟩ undefined there.
        assert!(c.up1().is_none());
        assert!(c.down1().is_none());
    }

    #[test]
    fn parent_from_any_sibling() {
        let root = sample();
        let c = root.down1().unwrap().down2().unwrap();
        assert_eq!(c.parent().unwrap(), root);
        assert_eq!(c.root(), root);
    }

    #[test]
    fn all_foci_count_and_order() {
        let root = sample();
        let foci = FocusedTree::all_foci(root.tree());
        assert_eq!(foci.len(), 4);
        let labels: Vec<&str> = foci.iter().map(|f| f.label().as_str()).collect();
        assert_eq!(labels, vec!["a", "b", "d", "c"]);
    }

    #[test]
    fn whole_tree_roundtrip() {
        let root = sample();
        let d = root.down1().unwrap().down1().unwrap();
        assert_eq!(d.into_whole_tree(), root.tree().clone());
    }

    #[test]
    fn mark_counting_through_context() {
        let t = Tree::node("a", vec![Tree::leaf("b").with_mark(true)]);
        let f = FocusedTree::at_root(t).down1().unwrap();
        assert!(f.is_marked());
        assert_eq!(f.mark_count(), 1);
        let up = f.up1().unwrap();
        assert!(!up.is_marked());
        assert_eq!(up.mark_count(), 1);
    }

    #[test]
    fn converse_involution() {
        for d in Direction::ALL {
            assert_eq!(d.converse().converse(), d);
        }
    }
}

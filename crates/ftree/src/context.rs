//! Contexts `c ::= (tl, Top, tl) | (tl, c[σ], tl)` (paper §3).

use std::fmt;
use std::rc::Rc;

use crate::{Label, Tree};

/// The context of a focused tree: everything around the subtree in focus.
///
/// A context records the left siblings (in reverse order: the first element
/// is the tree immediately to the left), the context above, and the right
/// siblings. The context above is either `Top` (the focus row is the root
/// row) or a parent node `c[σ]` whose label — and possibly start mark — is
/// stored here.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Context(Rc<CtxNode>);

#[derive(PartialEq, Eq, Hash)]
enum CtxNode {
    /// `(tl, Top, tl)`
    Top { left: Vec<Tree>, right: Vec<Tree> },
    /// `(tl, c[σ°], tl)`
    Under {
        left: Vec<Tree>,
        label: Label,
        marked: bool,
        parent: Context,
        right: Vec<Tree>,
    },
}

impl Context {
    /// The empty top-level context `(ε, Top, ε)`.
    pub fn top() -> Self {
        Context(Rc::new(CtxNode::Top {
            left: Vec::new(),
            right: Vec::new(),
        }))
    }

    /// A top-level context with explicit sibling rows. `left` is in reverse
    /// order.
    pub fn top_with(left: Vec<Tree>, right: Vec<Tree>) -> Self {
        Context(Rc::new(CtxNode::Top { left, right }))
    }

    /// A context under a parent node `c[σ°]`. `left` is in reverse order.
    pub fn under(
        left: Vec<Tree>,
        label: Label,
        marked: bool,
        parent: Context,
        right: Vec<Tree>,
    ) -> Self {
        Context(Rc::new(CtxNode::Under {
            left,
            label,
            marked,
            parent,
            right,
        }))
    }

    /// Whether the context above is `Top`.
    pub fn is_top(&self) -> bool {
        matches!(&*self.0, CtxNode::Top { .. })
    }

    /// Left siblings, reversed (first = immediately left of the focus).
    pub fn left(&self) -> &[Tree] {
        match &*self.0 {
            CtxNode::Top { left, .. } | CtxNode::Under { left, .. } => left,
        }
    }

    /// Right siblings in document order.
    pub fn right(&self) -> &[Tree] {
        match &*self.0 {
            CtxNode::Top { right, .. } | CtxNode::Under { right, .. } => right,
        }
    }

    /// The enclosing element's label, mark flag, and its own context, if the
    /// context above is not `Top`.
    pub fn parent_parts(&self) -> Option<(Label, bool, &Context)> {
        match &*self.0 {
            CtxNode::Top { .. } => None,
            CtxNode::Under {
                label,
                marked,
                parent,
                ..
            } => Some((*label, *marked, parent)),
        }
    }

    /// Number of start marks stored in the context (on enclosing elements or
    /// inside sibling trees).
    pub fn mark_count(&self) -> usize {
        let own: usize = self
            .left()
            .iter()
            .chain(self.right())
            .map(Tree::mark_count)
            .sum();
        match &*self.0 {
            CtxNode::Top { .. } => own,
            CtxNode::Under { marked, parent, .. } => {
                own + usize::from(*marked) + parent.mark_count()
            }
        }
    }

    /// Replaces the sibling rows, keeping what is above.
    pub(crate) fn with_rows(&self, left: Vec<Tree>, right: Vec<Tree>) -> Context {
        match &*self.0 {
            CtxNode::Top { .. } => Context(Rc::new(CtxNode::Top { left, right })),
            CtxNode::Under {
                label,
                marked,
                parent,
                ..
            } => Context(Rc::new(CtxNode::Under {
                left,
                label: *label,
                marked: *marked,
                parent: parent.clone(),
                right,
            })),
        }
    }
}

impl fmt::Debug for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.0 {
            CtxNode::Top { left, right } => write!(f, "({left:?}, Top, {right:?})"),
            CtxNode::Under {
                left,
                label,
                marked,
                parent,
                right,
            } => {
                let m = if *marked { "ˢ" } else { "" };
                write!(f, "({left:?}, {parent:?}[{label}{m}], {right:?})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_context() {
        let c = Context::top();
        assert!(c.is_top());
        assert!(c.left().is_empty());
        assert!(c.right().is_empty());
        assert!(c.parent_parts().is_none());
        assert_eq!(c.mark_count(), 0);
    }

    #[test]
    fn under_context_marks() {
        let c = Context::under(
            vec![Tree::leaf("x").with_mark(true)],
            Label::new("p"),
            false,
            Context::top(),
            vec![],
        );
        assert_eq!(c.mark_count(), 1);
        let (l, m, p) = c.parent_parts().unwrap();
        assert_eq!(l.as_str(), "p");
        assert!(!m);
        assert!(p.is_top());
    }
}

//! Unranked regular tree types → binary regular tree types (paper §5.2).
//!
//! The logic navigates binary (first-child / next-sibling) trees, so a DTD
//! is first compiled into the binary tree type expressions of the paper:
//!
//! ```text
//! T ::= ∅ | ε | T1 | T2 | σ(X1, X2) | let X̄i.T̄i in T
//! ```
//!
//! concretely, a list of *variables* each defined as a union of `EPSILON`
//! and/or labelled alternatives `σ(content, next)` — exactly the shape of
//! the paper's Fig 13. Each element's content model (a regular expression
//! over names) is translated with a continuation-passing construction: the
//! variable for `r · K` is built by structural recursion on `r` with `K`
//! the "rest of the siblings" variable.

use std::collections::HashMap;
use std::fmt::Write as _;

use ftree::Label;

use crate::content::Content;
use crate::dtd::Dtd;

/// A variable of a binary tree type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BinVar(u32);

impl BinVar {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a variable from its dense index (used by the Fig 13 parser).
    pub(crate) fn from_index(i: usize) -> BinVar {
        BinVar(i as u32)
    }
}

/// A labelled alternative `σ(content, next)` of a variable definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeAlt {
    /// The element name.
    pub label: Label,
    /// Variable describing the first child (the element's content).
    pub content: BinVar,
    /// Variable describing the next sibling (the continuation).
    pub next: BinVar,
}

/// One variable definition: optional `EPSILON` plus labelled alternatives.
#[derive(Debug, Clone)]
pub struct BinDef {
    /// Whether the variable accepts the empty forest (`EPSILON`).
    pub nullable: bool,
    /// The labelled alternatives.
    pub alts: Vec<NodeAlt>,
}

/// A binary regular tree type: variable definitions plus a start variable.
///
/// Produced by [`BinaryType::from_dtd`]; the paper's Fig 13 output for the
/// Wikipedia DTD fragment is reproduced by [`BinaryType::display`].
#[derive(Debug, Clone)]
pub struct BinaryType {
    defs: Vec<BinDef>,
    names: Vec<String>,
    start: BinVar,
}

/// Alternatives during construction: epsilon, node, or a reference to all
/// alternatives of another (possibly not yet finished) variable.
#[derive(Debug, Clone, Copy)]
enum RawAlt {
    Epsilon,
    Node(NodeAlt),
    Ref(BinVar),
}

struct Builder<'d> {
    dtd: &'d Dtd,
    raw: Vec<Vec<RawAlt>>,
    names: Vec<String>,
    /// Content variable of each declared element.
    content_var: HashMap<Label, BinVar>,
    /// Memo for `forest(r, k)`, keyed by the address of the content node.
    memo: HashMap<(usize, BinVar), BinVar>,
    epsilon: BinVar,
    any_var: Option<BinVar>,
}

impl Builder<'_> {
    fn fresh(&mut self, name: impl Into<String>) -> BinVar {
        let v = BinVar(self.raw.len() as u32);
        self.raw.push(Vec::new());
        self.names.push(name.into());
        v
    }

    /// The variable denoting forests matching `r` followed by a forest of
    /// `k`.
    fn forest(&mut self, r: &Content, k: BinVar) -> BinVar {
        let key = (r as *const Content as usize, k);
        if let Some(&v) = self.memo.get(&key) {
            return v;
        }
        let v = match r {
            Content::Empty | Content::PCData => k,
            Content::Any => {
                let any = self.any();
                if k == self.epsilon {
                    any
                } else {
                    // ANY followed by k: rare; approximate by a fresh var
                    // chaining any-nodes then k.
                    let v = self.fresh("any-chain");
                    self.raw[v.index()].push(RawAlt::Ref(k));
                    for &(label, _) in self.dtd.elements() {
                        let c = self.content_var[&label];
                        self.raw[v.index()].push(RawAlt::Node(NodeAlt {
                            label,
                            content: c,
                            next: v,
                        }));
                    }
                    v
                }
            }
            Content::Name(l) => {
                let v = self.fresh(format!("{l}·"));
                let content = self.content_var.get(l).copied().unwrap_or({
                    // Undeclared element: its content is unconstrained ε
                    // (the validator rejects such documents; the type
                    // translation keeps the name but no children).
                    self.epsilon
                });
                self.raw[v.index()].push(RawAlt::Node(NodeAlt {
                    label: *l,
                    content,
                    next: k,
                }));
                v
            }
            Content::Seq(a, b) => {
                let tail = self.forest(b, k);
                self.forest(a, tail)
            }
            Content::Choice(a, b) => {
                let va = self.forest(a, k);
                let vb = self.forest(b, k);
                let v = self.fresh("choice");
                self.raw[v.index()].push(RawAlt::Ref(va));
                self.raw[v.index()].push(RawAlt::Ref(vb));
                v
            }
            Content::Opt(r) => {
                let vr = self.forest(r, k);
                let v = self.fresh("opt");
                self.raw[v.index()].push(RawAlt::Ref(vr));
                self.raw[v.index()].push(RawAlt::Ref(k));
                v
            }
            Content::Star(r) => {
                // X = r·X | k — allocate X first so r may refer to it.
                let v = self.fresh("star");
                self.memo.insert(key, v);
                let body = self.forest(r, v);
                self.raw[v.index()].push(RawAlt::Ref(body));
                self.raw[v.index()].push(RawAlt::Ref(k));
                return v;
            }
            Content::Plus(r) => {
                // r+ · k = r · X with X = r·X | k (no temporary content
                // node: memo keys are addresses of real DTD nodes only).
                let x = self.fresh("plus-tail");
                let body = self.forest(r, x);
                self.raw[x.index()].push(RawAlt::Ref(body));
                self.raw[x.index()].push(RawAlt::Ref(k));
                body
            }
        };
        self.memo.insert(key, v);
        v
    }

    /// The `ANY` variable: any forest over declared elements.
    fn any(&mut self) -> BinVar {
        if let Some(v) = self.any_var {
            return v;
        }
        let v = self.fresh("any");
        self.any_var = Some(v);
        self.raw[v.index()].push(RawAlt::Epsilon);
        for &(label, _) in self.dtd.elements() {
            let content = self.content_var[&label];
            self.raw[v.index()].push(RawAlt::Node(NodeAlt {
                label,
                content,
                next: v,
            }));
        }
        v
    }
}

impl BinaryType {
    /// Assembles a binary type from raw parts (used by the Fig 13 parser);
    /// runs the same minimization as [`BinaryType::from_dtd`].
    pub(crate) fn from_parts(defs: Vec<BinDef>, names: Vec<String>, start: BinVar) -> BinaryType {
        let mut bt = BinaryType { defs, names, start };
        bt.minimize();
        bt
    }

    /// Compiles a DTD to a binary tree type.
    ///
    /// # Example
    ///
    /// ```
    /// use treetypes::{BinaryType, Dtd};
    ///
    /// let dtd = Dtd::parse("<!ELEMENT a (b*)> <!ELEMENT b EMPTY>").unwrap();
    /// let bt = BinaryType::from_dtd(&dtd);
    /// assert!(bt.var_count() >= 2);
    /// ```
    pub fn from_dtd(dtd: &Dtd) -> BinaryType {
        let mut b = Builder {
            dtd,
            raw: Vec::new(),
            names: Vec::new(),
            content_var: HashMap::new(),
            memo: HashMap::new(),
            epsilon: BinVar(0),
            any_var: None,
        };
        let eps = b.fresh("Epsilon");
        b.raw[eps.index()].push(RawAlt::Epsilon);
        b.epsilon = eps;
        // Pre-allocate one content variable per element so that recursive
        // DTDs (an element transitively containing itself) tie the knot.
        for &(label, _) in dtd.elements() {
            let v = b.fresh(format!("C_{label}"));
            b.content_var.insert(label, v);
        }
        for &(label, ref model) in dtd.elements() {
            let filled = b.forest(model, eps);
            let slot = b.content_var[&label];
            b.raw[slot.index()].push(RawAlt::Ref(filled));
        }
        // Start variable: start_label(C_start, ε).
        let start = b.fresh(format!("{}", dtd.start()));
        let c = b.content_var[&dtd.start()];
        b.raw[start.index()].push(RawAlt::Node(NodeAlt {
            label: dtd.start(),
            content: c,
            next: eps,
        }));

        // Flatten Ref indirections into (nullable, node alternatives).
        let n = b.raw.len();
        let mut defs: Vec<BinDef> = Vec::with_capacity(n);
        for i in 0..n {
            let mut nullable = false;
            let mut alts: Vec<NodeAlt> = Vec::new();
            let mut seen = vec![false; n];
            let mut stack = vec![BinVar(i as u32)];
            while let Some(v) = stack.pop() {
                if seen[v.index()] {
                    continue;
                }
                seen[v.index()] = true;
                for alt in &b.raw[v.index()] {
                    match alt {
                        RawAlt::Epsilon => nullable = true,
                        RawAlt::Node(a) => {
                            if !alts.contains(a) {
                                alts.push(*a);
                            }
                        }
                        RawAlt::Ref(r) => stack.push(*r),
                    }
                }
            }
            defs.push(BinDef { nullable, alts });
        }

        // Prune to the variables reachable from the start.
        let mut reach = vec![false; n];
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            if reach[v.index()] {
                continue;
            }
            reach[v.index()] = true;
            for a in &defs[v.index()].alts {
                stack.push(a.content);
                stack.push(a.next);
            }
        }
        let mut remap: Vec<Option<BinVar>> = vec![None; n];
        let mut out_defs = Vec::new();
        let mut out_names = Vec::new();
        for i in 0..n {
            if reach[i] {
                remap[i] = Some(BinVar(out_defs.len() as u32));
                out_defs.push(defs[i].clone());
                out_names.push(b.names[i].clone());
            }
        }
        for d in &mut out_defs {
            for a in &mut d.alts {
                a.content = remap[a.content.index()].expect("reachable");
                a.next = remap[a.next.index()].expect("reachable");
            }
        }
        let mut bt = BinaryType {
            defs: out_defs,
            names: out_names,
            start: remap[start.index()].expect("start is reachable"),
        };
        bt.minimize();
        bt
    }

    /// Merges variables with identical definitions until a fixpoint.
    ///
    /// The continuation-passing construction creates one variable per name
    /// occurrence; elements sharing a content model (very common in real
    /// DTDs — every XHTML inline element has the same `%Inline;` content)
    /// produce large families of identical definitions. Merging them is a
    /// congruence, so iterating to a fixpoint is sound and keeps the
    /// variable count comparable to the paper's Table 1.
    fn minimize(&mut self) {
        loop {
            // Canonical key of each definition under the current ids.
            let mut canon: HashMap<(bool, Vec<NodeAlt>), BinVar> = HashMap::new();
            let mut remap: Vec<BinVar> = (0..self.defs.len() as u32).map(BinVar).collect();
            let mut changed = false;
            for (i, def) in self.defs.iter().enumerate() {
                let mut alts = def.alts.clone();
                alts.sort_by_key(|a| (a.label, a.content, a.next));
                alts.dedup();
                let key = (def.nullable, alts);
                match canon.get(&key) {
                    Some(&rep) => {
                        remap[i] = rep;
                        changed = true;
                    }
                    None => {
                        canon.insert(key, BinVar(i as u32));
                    }
                }
            }
            if !changed {
                // Also canonicalize alternative order for stable display.
                for def in &mut self.defs {
                    def.alts.sort_by_key(|a| (a.label, a.content, a.next));
                    def.alts.dedup();
                }
                return;
            }
            // Apply the merge, drop unreferenced variables, and renumber.
            for def in &mut self.defs {
                for a in &mut def.alts {
                    a.content = remap[a.content.index()];
                    a.next = remap[a.next.index()];
                }
            }
            self.start = remap[self.start.index()];
            let n = self.defs.len();
            let mut reach = vec![false; n];
            let mut stack = vec![self.start];
            while let Some(v) = stack.pop() {
                if reach[v.index()] {
                    continue;
                }
                reach[v.index()] = true;
                for a in &self.defs[v.index()].alts {
                    stack.push(a.content);
                    stack.push(a.next);
                }
            }
            let mut newid: Vec<Option<BinVar>> = vec![None; n];
            let mut defs = Vec::new();
            let mut names = Vec::new();
            for i in 0..n {
                if reach[i] {
                    newid[i] = Some(BinVar(defs.len() as u32));
                    defs.push(self.defs[i].clone());
                    names.push(self.names[i].clone());
                }
            }
            for def in &mut defs {
                for a in &mut def.alts {
                    a.content = newid[a.content.index()].expect("reachable");
                    a.next = newid[a.next.index()].expect("reachable");
                }
            }
            self.start = newid[self.start.index()].expect("start reachable");
            self.defs = defs;
            self.names = names;
        }
    }

    /// The variable definitions.
    pub fn defs(&self) -> &[BinDef] {
        &self.defs
    }

    /// The definition of one variable.
    pub fn def(&self, v: BinVar) -> &BinDef {
        &self.defs[v.index()]
    }

    /// The start variable.
    pub fn start(&self) -> BinVar {
        self.start
    }

    /// Display name of a variable.
    pub fn name(&self, v: BinVar) -> &str {
        &self.names[v.index()]
    }

    /// Number of type variables (the "Binary Type Variables" column of the
    /// paper's Table 1).
    pub fn var_count(&self) -> usize {
        self.defs.len()
    }

    /// All variables.
    pub fn vars(&self) -> impl Iterator<Item = BinVar> {
        (0..self.defs.len() as u32).map(BinVar)
    }

    /// Whether a binary-encoded tree (sibling row) matches variable `v`.
    ///
    /// `row` is a sequence of sibling subtrees in unranked form; used by
    /// tests as an independent semantics of the binary type.
    pub fn matches_row(&self, v: BinVar, row: &[ftree::Tree]) -> bool {
        let def = self.def(v);
        match row.split_first() {
            None => def.nullable,
            Some((first, rest)) => def.alts.iter().any(|a| {
                a.label == first.label()
                    && self.matches_row(a.content, first.children())
                    && self.matches_row(a.next, rest)
            }),
        }
    }

    /// Whether a whole document matches the type (root = start variable).
    pub fn matches_tree(&self, t: &ftree::Tree) -> bool {
        self.matches_row(self.start, std::slice::from_ref(t))
    }

    /// Renders the type in the paper's Fig 13 style.
    pub fn display(&self) -> String {
        let mut out = String::new();
        for (i, def) in self.defs.iter().enumerate() {
            let _ = write!(out, "${} ->", self.names[i]);
            let mut first = true;
            if def.nullable {
                let _ = write!(out, " EPSILON");
                first = false;
            }
            for a in &def.alts {
                if !first {
                    let _ = write!(out, "\n    |");
                }
                let _ = write!(
                    out,
                    " {}(${}, ${})",
                    a.label,
                    self.names[a.content.index()],
                    self.names[a.next.index()]
                );
                first = false;
            }
            out.push('\n');
        }
        let _ = writeln!(out, "Start Symbol is ${}", self.names[self.start.index()]);
        let _ = write!(out, "{} type variables.", self.var_count());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree::Tree;

    fn wiki() -> Dtd {
        Dtd::parse(
            r#"
            <!ELEMENT article (meta, (text | redirect))>
            <!ELEMENT meta (title, status?, interwiki*, history?)>
            <!ELEMENT title (#PCDATA)>
            <!ELEMENT interwiki (#PCDATA)>
            <!ELEMENT status (#PCDATA)>
            <!ELEMENT history (edit)+>
            <!ELEMENT edit (status?, interwiki*, (text | redirect)?)>
            <!ELEMENT redirect EMPTY>
            <!ELEMENT text (#PCDATA)>
        "#,
        )
        .unwrap()
    }

    #[test]
    fn binary_type_agrees_with_validator() {
        let dtd = wiki();
        let bt = BinaryType::from_dtd(&dtd);
        let docs = [
            ("<article><meta><title/></meta><text/></article>", true),
            (
                "<article><meta><title/><status/><history><edit/></history></meta><redirect/></article>",
                true,
            ),
            ("<article><text/><meta><title/></meta></article>", false),
            ("<article><meta/><text/></article>", false),
            ("<article><meta><title/></meta></article>", false),
            ("<text/>", false),
        ];
        for (src, expect) in docs {
            let t = Tree::parse_xml(src).unwrap();
            assert_eq!(dtd.validates(&t), expect, "validator on {src}");
            assert_eq!(bt.matches_tree(&t), expect, "binary type on {src}");
        }
    }

    #[test]
    fn recursive_dtd_ties_the_knot() {
        let dtd = Dtd::parse("<!ELEMENT div (div*)>").unwrap();
        let bt = BinaryType::from_dtd(&dtd);
        let t = Tree::parse_xml("<div><div><div/></div><div/></div>").unwrap();
        assert!(bt.matches_tree(&t));
        assert!(dtd.validates(&t));
    }

    #[test]
    fn var_counts_are_reasonable() {
        let bt = BinaryType::from_dtd(&wiki());
        // The paper reports 9 variables for its encoding of this DTD; ours
        // may differ slightly but must stay the same order of magnitude.
        assert!(
            bt.var_count() >= 9 && bt.var_count() <= 30,
            "{}",
            bt.var_count()
        );
        let shown = bt.display();
        assert!(shown.contains("Start Symbol"), "{shown}");
        assert!(shown.contains("article($"), "{shown}");
    }

    #[test]
    fn plus_requires_one() {
        let dtd = Dtd::parse("<!ELEMENT h (e)+> <!ELEMENT e EMPTY>").unwrap();
        let bt = BinaryType::from_dtd(&dtd);
        assert!(!bt.matches_tree(&Tree::parse_xml("<h/>").unwrap()));
        assert!(bt.matches_tree(&Tree::parse_xml("<h><e/></h>").unwrap()));
        assert!(bt.matches_tree(&Tree::parse_xml("<h><e/><e/><e/></h>").unwrap()));
    }

    #[test]
    fn any_content_type() {
        let dtd = Dtd::parse("<!ELEMENT a ANY> <!ELEMENT b EMPTY>").unwrap();
        let bt = BinaryType::from_dtd(&dtd);
        assert!(bt.matches_tree(&Tree::parse_xml("<a><b/><a><b/></a></a>").unwrap()));
        assert!(!bt.matches_tree(&Tree::parse_xml("<b/>").unwrap()));
    }
}

//! Metamorphic properties of the decision procedure on random small
//! queries: algebraic laws that must hold for *any* expressions
//!
//! * `e ⊆ e ∪ p` and `e ∩ p ⊆ e` (union/intersection monotonicity),
//! * `e ⊆ e` (reflexivity),
//! * overlap symmetry,
//! * `e` empty ⇒ `e ⊆ p` for every `p` (ex falso).
//!
//! Queries are kept shallow so each solver call stays in the millisecond
//! range.

use proptest::prelude::*;
use xsat::analyzer::Analyzer;
use xsat::xpath::ast::{Axis, Expr, NodeTest, Path};

const LABELS: [&str; 2] = ["a", "b"];

fn arb_step() -> impl Strategy<Value = Path> {
    (
        prop::sample::select(&Axis::ALL[..]),
        prop_oneof![
            prop::sample::select(&LABELS[..])
                .prop_map(|l| NodeTest::Name(xsat::ftree::Label::new(l))),
            Just(NodeTest::Star),
        ],
    )
        .prop_map(|(a, t)| Path::Step(a, t))
}

fn arb_small_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        arb_step().prop_map(Expr::Relative),
        (arb_step(), arb_step()).prop_map(|(p, q)| Expr::Relative(p.then(q))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn containment_laws(e in arb_small_expr(), p in arb_small_expr()) {
        let mut az = Analyzer::new();
        // Reflexivity.
        prop_assert!(az.contains(&e, None, &e, None).unwrap().holds, "{e} ⊄ {e}");
        // Union monotonicity.
        let union = Expr::Union(Box::new(e.clone()), Box::new(p.clone()));
        prop_assert!(az.contains(&e, None, &union, None).unwrap().holds, "{e} ⊄ {union}");
        // Intersection monotonicity.
        let inter = Expr::Intersect(Box::new(e.clone()), Box::new(p.clone()));
        prop_assert!(az.contains(&inter, None, &e, None).unwrap().holds, "{inter} ⊄ {e}");
    }

    #[test]
    fn overlap_is_symmetric(e in arb_small_expr(), p in arb_small_expr()) {
        let mut az = Analyzer::new();
        let ab = az.overlaps(&e, None, &p, None).unwrap().holds;
        let ba = az.overlaps(&p, None, &e, None).unwrap().holds;
        prop_assert_eq!(ab, ba, "{} vs {}", e, p);
    }

    #[test]
    fn emptiness_implies_containment_everywhere(e in arb_small_expr(), p in arb_small_expr()) {
        let mut az = Analyzer::new();
        let inter = Expr::Intersect(Box::new(e.clone()), Box::new(p.clone()));
        if az.is_empty(&inter, None).unwrap().holds {
            prop_assert!(az.contains(&inter, None, &p, None).unwrap().holds);
            prop_assert!(az.contains(&inter, None, &e, None).unwrap().holds);
        }
    }
}

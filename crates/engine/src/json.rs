//! A small self-contained JSON value type with parser and writer.
//!
//! The engine speaks JSON-lines on its wire protocol; the workspace builds
//! offline, so instead of `serde_json` this module implements the (small)
//! subset of JSON handling the protocol needs: a [`Value`] tree, a strict
//! recursive-descent parser and a compact writer with correct string
//! escaping. Objects preserve insertion order so responses render with
//! stable field order.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`parse`]: a message and the byte offset it refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    msg: String,
    at: usize,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json syntax error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseJsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseJsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseJsonError {
        ParseJsonError {
            msg: msg.into(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseJsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.bytes[self.pos..].starts_with(w.as_bytes()) {
            self.pos += w.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, ParseJsonError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_word("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_word("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseJsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Value::Obj(fields));
        }
    }

    fn array(&mut self) -> Result<Value, ParseJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Value::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + low surrogate.
                            if (0xd800..0xdc00).contains(&cp) {
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid code point"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid code point"))?,
                                );
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits (the caller consumes the `\u`).
    fn hex4(&mut self) -> Result<u32, ParseJsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseJsonError> {
        let start = self.pos;
        self.eat(b'-');
        // Integer part per RFC 8259: `0` alone, or a nonzero digit followed
        // by digits (no leading zeros).
        match self.bytes.get(self.pos) {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.eat(b'.') {
            if !matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after `.`"));
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if !self.eat(b'+') {
                self.eat(b'-');
            }
            if !matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Builds an object value from `(key, value)` pairs.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let src = r#"{"op":"contains","lhs":"q1","rhs":"q2","n":3,"neg":-1.5,"ok":true,"none":null,"xs":[1,2,3],"s":"a\"b\\c\nd"}"#;
        let v = parse(src).unwrap();
        let reparsed = parse(&v.to_json()).unwrap();
        assert_eq!(v, reparsed);
        assert_eq!(v.get("op").unwrap().as_str(), Some("contains"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("xs").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Num(42.0).to_json(), "42");
        assert_eq!(Value::Num(0.5).to_json(), "0.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"\\q\"").is_err());
    }

    #[test]
    fn strict_numbers() {
        assert_eq!(parse("0.5").unwrap(), Value::Num(0.5));
        assert_eq!(parse("-0").unwrap(), Value::Num(-0.0));
        assert_eq!(parse("1e9").unwrap(), Value::Num(1e9));
        assert_eq!(parse("1.5e-3").unwrap(), Value::Num(1.5e-3));
        // Forms every conforming JSON parser rejects.
        assert!(parse("01").is_err());
        assert!(parse("1.").is_err());
        assert!(parse("-.5").is_err());
        assert!(parse("-").is_err());
        assert!(parse("1e").is_err());
        assert!(parse("1e+").is_err());
    }

    #[test]
    fn control_chars_escaped_on_write() {
        let v = Value::Str("a\u{1}b".to_owned());
        assert_eq!(v.to_json(), "\"a\\u0001b\"");
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }
}

//! Finite focused trees — the data model of the Lµ logic (paper §3).
//!
//! An XML document is modeled as a finite unranked tree whose nodes carry a
//! [`Label`]. To navigate both downward *and* upward without losing
//! information, the paper uses *focused trees*, a variant of Huet's zipper: a
//! pair of the subtree in focus and its [`Context`] (left siblings in reverse
//! order, the parent context, right siblings).
//!
//! Navigation is *binary style*: the four programs of the logic are
//!
//! * `⟨1⟩` — [`FocusedTree::down1`]: to the first child,
//! * `⟨2⟩` — [`FocusedTree::down2`]: to the next sibling,
//! * `⟨1̄⟩` — [`FocusedTree::up1`]: to the parent (only from a leftmost child),
//! * `⟨2̄⟩` — [`FocusedTree::up2`]: to the previous sibling.
//!
//! A single node of the tree may carry the *start mark* `s`, recording where
//! the evaluation of an XPath request started (needed for containment).
//!
//! # Example
//!
//! ```
//! use ftree::{Tree, FocusedTree};
//!
//! let t = Tree::parse_xml("<a><b/><c/></a>").unwrap();
//! let f = FocusedTree::at_root(t);
//! let b = f.down1().unwrap();
//! assert_eq!(b.label().as_str(), "b");
//! let c = b.down2().unwrap();
//! assert_eq!(c.label().as_str(), "c");
//! assert_eq!(c.up2().unwrap(), b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod context;
mod focus;
mod label;
mod tree;
mod xml;

pub use binary::BinaryTree;
pub use context::Context;
pub use focus::{Direction, FocusedTree};
pub use label::Label;
pub use tree::{Tree, TreeBuilder};
pub use xml::ParseXmlError;

//! Additional decision problems over the paper's Fig 21 queries, beyond
//! the rows of Table 2: overlap, emptiness and coverage combinations whose
//! witnesses are re-validated with the denotational interpreter.

use xsat::analyzer::{paper, Analyzer};
use xsat::xpath::{eval_on_tree, parse};

/// e1 and e2 overlap (e1 ⊆ e2, and e1 is non-empty).
#[test]
fn e1_e2_overlap() {
    let e1 = paper::query(1);
    let e2 = paper::query(2);
    let mut az = Analyzer::new();
    let v = az.overlaps(&e1, None, &e2, None).unwrap();
    assert!(v.holds);
    let m = v.counter_example.expect("witness");
    let tree = m.tree();
    let s1 = eval_on_tree(&e1, &tree);
    let s2 = eval_on_tree(&e2, &tree);
    assert!(
        s1.iter().any(|f| s2.contains(f)),
        "witness must be selected by both: {}",
        m.xml()
    );
}

/// None of the paper's queries is empty (they all select something on some
/// tree).
#[test]
fn no_paper_query_is_empty() {
    let mut az = Analyzer::new();
    for i in 1..=6 {
        let e = paper::query(i);
        let v = az.is_empty(&e, None).unwrap();
        assert!(!v.holds, "e{i} unexpectedly empty");
        let m = v.counter_example.expect("witness tree");
        assert!(
            !eval_on_tree(&e, &m.tree()).is_empty(),
            "e{i} witness fails: {}",
            m.xml()
        );
    }
}

/// e3 and e4 are equivalent, so each covers the other alone.
#[test]
fn coverage_via_equivalence() {
    let e3 = paper::query(3);
    let e4 = paper::query(4);
    let mut az = Analyzer::new();
    assert!(az.covers(&e3, None, &[(&e4, None)]).unwrap().holds);
    assert!(az.covers(&e4, None, &[(&e3, None)]).unwrap().holds);
}

/// A query is always covered by itself plus anything.
#[test]
fn coverage_is_reflexive() {
    let e5 = paper::query(5);
    let mut az = Analyzer::new();
    assert!(az.covers(&e5, None, &[(&e5, None)]).unwrap().holds);
}

/// Intersection with a disjoint query is empty: e5 requires the start's
/// `a`-child context while a query demanding a `z` root cannot overlap it
/// at the same node.
#[test]
fn emptiness_of_contradictory_intersection() {
    let mut az = Analyzer::new();
    let e = parse("child::a ∩ child::b").unwrap();
    assert!(az.is_empty(&e, None).unwrap().holds);
    // Same node can match a wildcard and a name, though.
    let e2 = parse("child::a ∩ child::*").unwrap();
    assert!(!az.is_empty(&e2, None).unwrap().holds);
}

/// Self-overlap of e6 (it is satisfiable, so it overlaps itself) and
/// equivalence of e6 with itself. Two compilations of the same query share
/// no fixpoint variables, so this is one of the larger untyped instances.
#[test]
#[ignore = "large untyped instance (~35 s release)"]
fn e6_self_relations() {
    let e6 = paper::query(6);
    let mut az = Analyzer::new();
    assert!(az.overlaps(&e6, None, &e6, None).unwrap().holds);
    let (f, b) = az.equivalent(&e6, None, &e6, None).unwrap();
    assert!(f.holds && b.holds);
}

//! Table 2, row 4: satisfiability of
//! `*//switch[ancestor::head]//seq//audio[prec-sibling::video]`
//! (query e7 of Fig 21) under the SMIL 1.0 DTD — a query mixing recursive
//! forward and backward axes with a real-world type constraint.
//!
//! Run with `cargo run --release --example smil_switch`.

use xsat::analyzer::{paper, Analyzer};
use xsat::treetypes::smil_1_0;

fn main() {
    let dtd = smil_1_0();
    println!(
        "SMIL 1.0: {} element symbols (paper Table 1: 19)",
        dtd.symbol_count()
    );

    let e7 = paper::query(7);
    println!("e7 = {e7}");

    let mut az = Analyzer::new();
    let v = az.is_satisfiable(&e7, Some(&dtd)).unwrap();
    println!(
        "satisfiable under SMIL 1.0: {} (paper: yes, 157 ms on 2007 hardware)",
        v.holds
    );
    println!(
        "lean = {} atoms, {} iterations, {:?}",
        v.stats.lean_size, v.stats.iterations, v.stats.duration
    );
    if let Some(m) = &v.counter_example {
        println!("witness presentation ({} nodes):", m.size());
        println!("{}", m.xml());
        // The witness really is SMIL-valid — check it with the independent
        // DTD validator.
        let tree = m.tree().clear_marks();
        assert!(dtd.validates(&tree), "witness must be SMIL-valid");
        println!("(validated against the DTD)");
    }
}

//! The JSON-lines wire protocol, version 2: requests in, verdicts out.
//!
//! Each request is one JSON object per line. Every request may carry an
//! `"id"` field (any JSON value), echoed verbatim on its response so
//! pipelined clients can correlate. Decision ops reference queries and
//! types by registered name, with inline XPath / DTD source accepted as a
//! fallback (see [`Workspace`]), and may carry a `"backend"` field
//! (`symbolic` | `explicit` | `witnessed` | `dual` | `portfolio`)
//! selecting the solver
//! and a `"limits"` object overriding the engine's resource budgets
//! per request (see [`LimitsSpec`]).
//!
//! Protocol v2 gives every verdict a `"status"` field — `holds`, `fails`,
//! `unknown` (a resource budget ran out; the exhausted resource is named)
//! or `error` — and echoes the protocol version on `stats`. Operation
//! aliases are folded through one canonical table ([`Op::TABLE`]), shared
//! by the parser, the verdict echo, and `docs/PROTOCOL.md`.
//!
//! ```text
//! {"op":"dtd","name":"d1","source":"<!ELEMENT a (b*)> <!ELEMENT b EMPTY>"}
//! {"op":"query","name":"q1","xpath":"a/b"}
//! {"op":"contains","lhs":"q1","rhs":"a/*","type":"d1"}
//! {"op":"contains","lhs":"q1","rhs":"a/*","backend":"dual"}
//! {"op":"sat","query":"q1","limits":{"timeout_ms":250,"max_bdd_nodes":200000}}
//! {"op":"covers","query":"child::*","by":["child::a","child::*[not(self::a)]"]}
//! {"op":"typecheck","query":"child::x","input":"din","output":"dout"}
//! {"op":"stats"}
//! ```

use std::sync::Arc;

use analyzer::{BackendChoice, Limits, Telemetry};

use crate::json::{obj, Value};
use crate::problem::{CounterExample, Problem, UnknownVerdict, Verdict};
use crate::workspace::Workspace;

/// The protocol version spoken by this engine, echoed on `stats`
/// responses. Version 2 added `status` on every verdict, per-request
/// `limits`, and `unknown` verdicts for exhausted budgets.
pub const PROTOCOL_VERSION: u64 = 2;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client correlation id, echoed on the response.
    pub id: Option<Value>,
    /// The operation.
    pub kind: RequestKind,
}

/// The operation of a request.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Register (or rebind) a named DTD.
    RegisterDtd {
        /// Workspace name.
        name: String,
        /// DTD source text.
        source: String,
    },
    /// Register (or rebind) a named query.
    RegisterQuery {
        /// Workspace name.
        name: String,
        /// XPath source text.
        xpath: String,
    },
    /// Pose a decision problem.
    Problem {
        /// The problem, by reference (names or inline sources).
        spec: ProblemSpec,
        /// Requested solver backend; `None` falls back to the engine
        /// default.
        backend: Option<BackendChoice>,
        /// Per-request limit overrides; fields not given fall back to the
        /// engine's default limits.
        limits: Option<LimitsSpec>,
        /// Whether to return the solve's phase-event trace on the
        /// response (`"trace": true`).
        trace: bool,
    },
    /// Lint the workspace: run the solver-backed rule registry over every
    /// registered query and DTD.
    Lint(LintSpec),
    /// Report engine counters.
    Stats,
    /// Snapshot the process-wide metrics registry.
    Metrics,
    /// Dump the ring buffer of captured slow solves.
    SlowLog,
    /// Drop all registrations and cached verdicts.
    Reset,
}

/// The decision operations, with one canonical wire-alias table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// XPath emptiness.
    Empty,
    /// XPath satisfiability.
    Sat,
    /// XPath containment.
    Contains,
    /// XPath overlap.
    Overlap,
    /// XPath coverage.
    Covers,
    /// XPath equivalence.
    Equiv,
    /// Static type-checking.
    TypeCheck,
}

impl Op {
    /// The canonical wire-alias table: for each op, its accepted request
    /// names, canonical name first. This is the *single* alias authority —
    /// the request parser resolves against it, the verdict `op` echo is
    /// its first column, and `docs/PROTOCOL.md` documents it verbatim.
    pub const TABLE: &'static [(Op, &'static [&'static str])] = &[
        (Op::Empty, &["empty", "emptiness"]),
        (Op::Sat, &["sat", "satisfiable"]),
        (Op::Contains, &["contains", "containment"]),
        (Op::Overlap, &["overlap", "overlaps"]),
        (Op::Covers, &["covers", "coverage"]),
        (Op::Equiv, &["equiv", "equivalent"]),
        (Op::TypeCheck, &["typecheck", "type-check"]),
    ];

    /// The canonical name (the verdict echo; aliases folded).
    pub fn canonical(self) -> &'static str {
        Op::TABLE
            .iter()
            .find(|(op, _)| *op == self)
            .map(|(_, names)| names[0])
            .expect("every op is in the table")
    }

    /// Resolves a wire name (canonical or alias) to its op.
    pub fn from_wire(name: &str) -> Option<Op> {
        Op::TABLE
            .iter()
            .find(|(_, names)| names.contains(&name))
            .map(|(op, _)| *op)
    }
}

/// Wire verdict status (protocol v2): the answer class of a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The decided property holds.
    Holds,
    /// The decided property does not hold.
    Fails,
    /// A resource budget ran out before the solve could decide.
    Unknown,
    /// The request failed (parse, resolution, or solver-level error).
    Error,
}

impl Status {
    /// The wire name of the status.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Holds => "holds",
            Status::Fails => "fails",
            Status::Unknown => "unknown",
            Status::Error => "error",
        }
    }

    /// The status of a definite verdict.
    pub fn of(holds: bool) -> Status {
        if holds {
            Status::Holds
        } else {
            Status::Fails
        }
    }
}

/// A decision problem by reference (names or inline sources), before
/// resolution against a workspace — the typed mirror of
/// [`Problem`], one variant per [`Op`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemSpec {
    /// `empty`: does the query select nothing?
    Empty {
        /// Query reference.
        query: String,
        /// Optional type reference.
        ty: Option<String>,
    },
    /// `sat`: does the query select something?
    Sat {
        /// Query reference.
        query: String,
        /// Optional type reference.
        ty: Option<String>,
    },
    /// `contains`: `lhs ⊆ rhs`.
    Contains {
        /// Left query reference.
        lhs: String,
        /// Type reference of `lhs`.
        ltype: Option<String>,
        /// Right query reference.
        rhs: String,
        /// Type reference of `rhs`.
        rtype: Option<String>,
    },
    /// `overlap`: some node selected by both.
    Overlap {
        /// Left query reference.
        lhs: String,
        /// Type reference of `lhs`.
        ltype: Option<String>,
        /// Right query reference.
        rhs: String,
        /// Type reference of `rhs`.
        rtype: Option<String>,
    },
    /// `covers`: the query within the union of the covering queries.
    Covers {
        /// Covered query reference.
        query: String,
        /// Optional type reference, shared by every query.
        ty: Option<String>,
        /// Covering query references (non-empty).
        by: Vec<String>,
    },
    /// `equiv`: containment both ways.
    Equiv {
        /// Left query reference.
        lhs: String,
        /// Type reference of `lhs`.
        ltype: Option<String>,
        /// Right query reference.
        rhs: String,
        /// Type reference of `rhs`.
        rtype: Option<String>,
    },
    /// `typecheck`: selected nodes valid against the output type.
    TypeCheck {
        /// Query reference.
        query: String,
        /// Input type reference.
        input: String,
        /// Output type reference.
        output: String,
    },
}

impl ProblemSpec {
    /// The operation of the spec.
    pub fn op(&self) -> Op {
        match self {
            ProblemSpec::Empty { .. } => Op::Empty,
            ProblemSpec::Sat { .. } => Op::Sat,
            ProblemSpec::Contains { .. } => Op::Contains,
            ProblemSpec::Overlap { .. } => Op::Overlap,
            ProblemSpec::Covers { .. } => Op::Covers,
            ProblemSpec::Equiv { .. } => Op::Equiv,
            ProblemSpec::TypeCheck { .. } => Op::TypeCheck,
        }
    }

    /// Resolves name references against the workspace into a structural
    /// [`Problem`].
    pub fn resolve(&self, ws: &Workspace) -> Result<Problem, String> {
        let ty = |name: &Option<String>| -> Result<Option<Arc<treetypes::Dtd>>, String> {
            match name {
                Some(name) => ws.resolve_dtd(name).map(Some),
                None => Ok(None),
            }
        };
        match self {
            ProblemSpec::Empty { query, ty: t } => Ok(Problem::Empty {
                query: ws.resolve_query(query)?,
                ty: ty(t)?,
            }),
            ProblemSpec::Sat { query, ty: t } => Ok(Problem::Sat {
                query: ws.resolve_query(query)?,
                ty: ty(t)?,
            }),
            ProblemSpec::Contains {
                lhs,
                ltype,
                rhs,
                rtype,
            } => Ok(Problem::Contains {
                lhs: ws.resolve_query(lhs)?,
                ltype: ty(ltype)?,
                rhs: ws.resolve_query(rhs)?,
                rtype: ty(rtype)?,
            }),
            ProblemSpec::Overlap {
                lhs,
                ltype,
                rhs,
                rtype,
            } => Ok(Problem::Overlap {
                lhs: ws.resolve_query(lhs)?,
                ltype: ty(ltype)?,
                rhs: ws.resolve_query(rhs)?,
                rtype: ty(rtype)?,
            }),
            ProblemSpec::Equiv {
                lhs,
                ltype,
                rhs,
                rtype,
            } => Ok(Problem::Equiv {
                lhs: ws.resolve_query(lhs)?,
                ltype: ty(ltype)?,
                rhs: ws.resolve_query(rhs)?,
                rtype: ty(rtype)?,
            }),
            ProblemSpec::Covers { query, ty: t, by } => {
                let shared = ty(t)?;
                Ok(Problem::Covers {
                    query: ws.resolve_query(query)?,
                    ty: shared.clone(),
                    by: by
                        .iter()
                        .map(|q| Ok((ws.resolve_query(q)?, shared.clone())))
                        .collect::<Result<_, String>>()?,
                })
            }
            ProblemSpec::TypeCheck {
                query,
                input,
                output,
            } => Ok(Problem::TypeCheck {
                query: ws.resolve_query(query)?,
                input: ws.resolve_dtd(input)?,
                output: ws.resolve_dtd(output)?,
            }),
        }
    }
}

/// The configuration of a `lint` request, before defaults are applied.
///
/// Wire shape:
///
/// ```text
/// {"op":"lint","type":"d1",
///  "rules":{"dead-step":"error","query-shadowing":"off"},
///  "max_diamonds":16,"limits":{"timeout_ms":500},"backend":"symbolic"}
/// ```
///
/// Every field is optional. `rules` maps rule ids ([`lint::RuleId::TABLE`])
/// to a severity (`error` | `warning` | `info`, with `deny`/`warn` as
/// aliases) or to `off`/`allow` to disable the rule; unlisted rules run at
/// their default severity. `type` names the governing DTD (defaulting to
/// the single registered DTD when there is exactly one). `max_diamonds`
/// overrides the `wildcard-explosion` threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct LintSpec {
    /// Per-rule overrides, in wire order.
    pub rules: Vec<(lint::RuleId, lint::RuleSetting)>,
    /// The governing type name (see [`lint::LintConfig::type_name`]).
    pub type_name: Option<String>,
    /// `wildcard-explosion` threshold override.
    pub max_diamonds: Option<usize>,
    /// Requested solver backend for the probes.
    pub backend: Option<BackendChoice>,
    /// Per-request limit overrides for every probe solve.
    pub limits: Option<LimitsSpec>,
}

impl LintSpec {
    /// The effective lint configuration.
    pub fn config(&self) -> lint::LintConfig {
        let mut config = lint::LintConfig {
            type_name: self.type_name.clone(),
            ..lint::LintConfig::default()
        };
        if let Some(n) = self.max_diamonds {
            config.max_diamonds = n;
        }
        for &(rule, setting) in &self.rules {
            config.settings.insert(rule, setting);
        }
        config
    }
}

/// Parses the fields of a `lint` request.
fn lint_spec(v: &Value) -> Result<LintSpec, String> {
    let mut rules = Vec::new();
    if let Some(r) = v.get("rules") {
        let Value::Obj(fields) = r else {
            return Err("`rules` must be an object mapping rule ids to severities".to_owned());
        };
        for (key, val) in fields {
            let rule =
                lint::RuleId::from_wire(key).ok_or_else(|| format!("unknown lint rule `{key}`"))?;
            let name = val
                .as_str()
                .ok_or_else(|| format!("rule `{key}` setting must be a string"))?;
            let setting = match name {
                "off" | "allow" => lint::RuleSetting::Off,
                other => lint::Severity::from_wire(other)
                    .map(lint::RuleSetting::At)
                    .ok_or_else(|| {
                        format!(
                            "unknown severity `{other}` for rule `{key}` \
                             (expected error, warning, info or off)"
                        )
                    })?,
            };
            rules.push((rule, setting));
        }
    }
    let max_diamonds = match v.get("max_diamonds") {
        None => None,
        Some(n) => Some(
            n.as_f64()
                .filter(|x| x.fract() == 0.0 && *x >= 0.0)
                .map(|x| x as usize)
                .ok_or_else(|| "`max_diamonds` must be a non-negative integer".to_owned())?,
        ),
    };
    Ok(LintSpec {
        rules,
        type_name: opt_str_field(v, "type"),
        max_diamonds,
        backend: backend_field(v)?,
        limits: limits_field(v)?,
    })
}

/// Per-request limit overrides, parsed from the `"limits"` object.
///
/// Each field overrides the corresponding engine default when present;
/// absent fields inherit it. Wire keys: `timeout_ms`, `max_bdd_nodes`,
/// `max_iterations`, `max_lean`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct LimitsSpec {
    /// Wall-clock budget override, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// BDD node budget override.
    pub max_bdd_nodes: Option<usize>,
    /// Fixpoint iteration cap override.
    pub max_iterations: Option<usize>,
    /// Lean-diamond cap override for the enumerating backends.
    pub max_lean: Option<usize>,
}

impl LimitsSpec {
    /// The effective limits: the engine defaults with this spec's
    /// overrides applied.
    pub fn apply(&self, base: &Limits) -> Limits {
        Limits {
            deadline: self
                .timeout_ms
                .map(std::time::Duration::from_millis)
                .or(base.deadline),
            max_bdd_nodes: self.max_bdd_nodes.or(base.max_bdd_nodes),
            max_iterations: self.max_iterations.or(base.max_iterations),
            max_lean_diamonds: self.max_lean.unwrap_or(base.max_lean_diamonds),
            cancel: base.cancel.clone(),
        }
    }
}

impl Request {
    /// Parses one JSON-line request.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = crate::json::parse(line).map_err(|e| e.to_string())?;
        Request::from_value(&v)
    }

    /// Interprets a parsed JSON value as a request.
    pub fn from_value(v: &Value) -> Result<Request, String> {
        let id = v.get("id").cloned();
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| "request needs a string `op` field".to_owned())?;
        let kind = match op {
            "dtd" | "register-dtd" => RequestKind::RegisterDtd {
                name: str_field(v, "name")?,
                source: str_field(v, "source")?,
            },
            "query" | "register-query" => RequestKind::RegisterQuery {
                name: str_field(v, "name")?,
                xpath: str_field(v, "xpath")?,
            },
            "lint" => RequestKind::Lint(lint_spec(v)?),
            "stats" => RequestKind::Stats,
            "metrics" => RequestKind::Metrics,
            "slowlog" | "slow-log" => RequestKind::SlowLog,
            "reset" => RequestKind::Reset,
            other => match Op::from_wire(other) {
                Some(op) => RequestKind::Problem {
                    spec: problem_spec(op, v)?,
                    backend: backend_field(v)?,
                    limits: limits_field(v)?,
                    trace: trace_field(v)?,
                },
                None => return Err(format!("unknown op `{other}`")),
            },
        };
        Ok(Request { id, kind })
    }
}

/// Parses the op-specific fields of a decision request.
fn problem_spec(op: Op, v: &Value) -> Result<ProblemSpec, String> {
    // Shared shape of the binary ops: `lhs`, `rhs`, and either one `type`
    // for both sides or per-side `ltype` / `rtype`.
    let binary = |v: &Value| -> Result<(String, Option<String>, String, Option<String>), String> {
        let both = opt_str_field(v, "type");
        let ltype = opt_str_field(v, "ltype").or_else(|| both.clone());
        let rtype = opt_str_field(v, "rtype").or(both);
        Ok((str_field(v, "lhs")?, ltype, str_field(v, "rhs")?, rtype))
    };
    Ok(match op {
        Op::Empty => ProblemSpec::Empty {
            query: str_field(v, "query")?,
            ty: opt_str_field(v, "type"),
        },
        Op::Sat => ProblemSpec::Sat {
            query: str_field(v, "query")?,
            ty: opt_str_field(v, "type"),
        },
        Op::Contains => {
            let (lhs, ltype, rhs, rtype) = binary(v)?;
            ProblemSpec::Contains {
                lhs,
                ltype,
                rhs,
                rtype,
            }
        }
        Op::Overlap => {
            let (lhs, ltype, rhs, rtype) = binary(v)?;
            ProblemSpec::Overlap {
                lhs,
                ltype,
                rhs,
                rtype,
            }
        }
        Op::Equiv => {
            let (lhs, ltype, rhs, rtype) = binary(v)?;
            ProblemSpec::Equiv {
                lhs,
                ltype,
                rhs,
                rtype,
            }
        }
        Op::Covers => {
            let by_items = v
                .get("by")
                .and_then(Value::as_arr)
                .ok_or_else(|| "`covers` needs a `by` array of query references".to_owned())?;
            if by_items.is_empty() {
                return Err("`covers` needs at least one covering query".to_owned());
            }
            let by = by_items
                .iter()
                .map(|item| {
                    item.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| "`by` entries must be strings".to_owned())
                })
                .collect::<Result<_, _>>()?;
            ProblemSpec::Covers {
                query: str_field(v, "query")?,
                ty: opt_str_field(v, "type"),
                by,
            }
        }
        Op::TypeCheck => ProblemSpec::TypeCheck {
            query: str_field(v, "query")?,
            input: str_field(v, "input")?,
            output: str_field(v, "output")?,
        },
    })
}

/// Parses the optional `trace` flag of a decision request.
fn trace_field(v: &Value) -> Result<bool, String> {
    match v.get("trace") {
        None => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err("`trace` must be a boolean".to_owned()),
    }
}

/// Parses the optional `backend` field of a request.
fn backend_field(v: &Value) -> Result<Option<BackendChoice>, String> {
    match v.get("backend") {
        None => Ok(None),
        Some(b) => {
            let name = b
                .as_str()
                .ok_or_else(|| "`backend` must be a string".to_owned())?;
            name.parse().map(Some)
        }
    }
}

/// Parses the optional `limits` object of a request.
fn limits_field(v: &Value) -> Result<Option<LimitsSpec>, String> {
    let Some(l) = v.get("limits") else {
        return Ok(None);
    };
    if !matches!(l, Value::Obj(_)) {
        return Err("`limits` must be an object".to_owned());
    }
    let field = |key: &str| -> Result<Option<u64>, String> {
        match l.get(key) {
            None => Ok(None),
            Some(n) => {
                let x = n
                    .as_f64()
                    .filter(|x| x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64)
                    .ok_or_else(|| format!("`limits.{key}` must be a non-negative integer"))?;
                Ok(Some(x as u64))
            }
        }
    };
    if let Value::Obj(fields) = l {
        const KNOWN: [&str; 4] = ["timeout_ms", "max_bdd_nodes", "max_iterations", "max_lean"];
        if let Some((k, _)) = fields.iter().find(|(k, _)| !KNOWN.contains(&k.as_str())) {
            return Err(format!(
                "unknown `limits` field `{k}` (expected timeout_ms, max_bdd_nodes, \
                 max_iterations or max_lean)"
            ));
        }
    }
    Ok(Some(LimitsSpec {
        timeout_ms: field("timeout_ms")?,
        max_bdd_nodes: field("max_bdd_nodes")?.map(|x| x as usize),
        max_iterations: field("max_iterations")?.map(|x| x as usize),
        max_lean: field("max_lean")?.map(|x| x as usize),
    }))
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn opt_str_field(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_owned)
}

/// Builds the response for a successful registration.
pub fn registration_response(id: Option<&Value>, kind: &str, name: &str) -> Value {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    fields.extend([
        ("ok", Value::Bool(true)),
        ("registered", Value::from(name)),
        ("kind", Value::from(kind)),
    ]);
    obj(fields)
}

/// Builds the response for a solved (or cache-served) decision problem.
/// `trace` is the serialized event array for requests that set
/// `"trace": true` (see [`trace_value`]); `None` omits the field.
pub fn verdict_response(
    id: Option<&Value>,
    op: Op,
    verdict: &Verdict,
    cached: bool,
    wall_ms: f64,
    trace: Option<Value>,
) -> Value {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    fields.extend([
        ("ok", Value::Bool(true)),
        ("op", Value::from(op.canonical())),
        ("backend", Value::from(verdict.backend.as_str())),
        ("status", Value::from(Status::of(verdict.holds).as_str())),
        ("holds", Value::Bool(verdict.holds)),
    ]);
    match &verdict.counter_example {
        Some(xml) => fields.push(("counter_example", Value::from(xml.as_str()))),
        None => fields.push(("counter_example", Value::Null)),
    }
    if let Some(ce) = &verdict.counterexample {
        fields.push(("counterexample", counterexample_value(ce)));
    }
    fields.push(("cached", Value::Bool(cached)));
    fields.push(("wall_ms", Value::Num(round3(wall_ms))));
    let s = &verdict.stats;
    let stats = vec![
        ("lean_size", Value::from(s.lean_size)),
        ("closure_size", Value::from(s.closure_size)),
        ("iterations", Value::from(s.iterations)),
        ("solve_ms", Value::Num(round3(s.solve_ms))),
        ("telemetry", telemetry_value(&s.telemetry)),
    ];
    fields.push(("stats", obj(stats)));
    if let Some(trace) = trace {
        fields.push(("trace", trace));
    }
    obj(fields)
}

/// Builds the `"status":"unknown"` response for a budget-exhausted solve:
/// `ok` stays true (the protocol worked; the solve was inconclusive),
/// `holds` is `null`, and the exhausted resource is named with what was
/// spent against what budget. Unknown verdicts are never cached.
pub fn unknown_response(
    id: Option<&Value>,
    op: Op,
    unknown: &UnknownVerdict,
    trace: Option<Value>,
) -> Value {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    fields.extend([
        ("ok", Value::Bool(true)),
        ("op", Value::from(op.canonical())),
        ("backend", Value::from(unknown.backend.as_str())),
        ("status", Value::from(Status::Unknown.as_str())),
        ("holds", Value::Null),
        ("resource", Value::from(unknown.resource)),
        ("spent", Value::Num(unknown.spent as f64)),
        ("limit", Value::Num(unknown.limit as f64)),
        ("reason", Value::from(unknown.reason.as_str())),
        ("cached", Value::Bool(false)),
        ("wall_ms", Value::Num(round3(unknown.wall_ms))),
    ]);
    if let Some(trace) = trace {
        fields.push(("trace", trace));
    }
    obj(fields)
}

/// Builds the response for a `lint` request: the per-severity tallies and
/// the diagnostics in their deterministic order (rule id, then subject,
/// step, span). `status` is `"clean"` exactly when there are no findings.
pub fn lint_response(
    id: Option<&Value>,
    diagnostics: &[lint::Diagnostic],
    probes: usize,
    wall_ms: f64,
) -> Value {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    let count = |sev: lint::Severity| diagnostics.iter().filter(|d| d.severity == sev).count();
    let status = if diagnostics.is_empty() {
        "clean"
    } else {
        "findings"
    };
    fields.extend([
        ("ok", Value::Bool(true)),
        ("op", Value::from("lint")),
        ("status", Value::from(status)),
        ("findings", Value::from(diagnostics.len())),
        ("errors", Value::from(count(lint::Severity::Error))),
        ("warnings", Value::from(count(lint::Severity::Warning))),
        ("infos", Value::from(count(lint::Severity::Info))),
        ("probes", Value::from(probes)),
        (
            "diagnostics",
            Value::Arr(diagnostics.iter().map(diagnostic_value).collect()),
        ),
        ("wall_ms", Value::Num(round3(wall_ms))),
    ]);
    obj(fields)
}

/// Serializes one lint finding. `evidence` is `null` for pure graph passes
/// (`unreachable-element`) and unverified degradations; a witness-backed
/// finding carries the decided problem's op name, the oracle-verified
/// witness document, and `"verified": true`; a verdict-backed finding
/// carries the op name and the decisive status instead.
fn diagnostic_value(d: &lint::Diagnostic) -> Value {
    let step = match d.step {
        Some(n) => Value::from(n),
        None => Value::Null,
    };
    let span = match &d.span {
        Some(s) => Value::from(s.as_str()),
        None => Value::Null,
    };
    let evidence = match &d.evidence {
        None => Value::Null,
        Some(ev @ lint::Evidence::Witness { xml, .. }) => obj(vec![
            ("op", Value::from(ev.op_name())),
            ("witness", Value::from(xml.as_str())),
            ("verified", Value::Bool(true)),
        ]),
        Some(ev @ lint::Evidence::Verdict { status, .. }) => obj(vec![
            ("op", Value::from(ev.op_name())),
            ("status", Value::from(*status)),
        ]),
    };
    obj(vec![
        ("rule", Value::from(d.rule.as_str())),
        ("severity", Value::from(d.severity.as_str())),
        ("subject", Value::from(d.subject.as_str())),
        ("step", step),
        ("span", span),
        ("message", Value::from(d.message.as_str())),
        ("unverified", Value::Bool(d.unverified())),
        ("evidence", evidence),
    ])
}

/// Serializes a verified counter-example as the protocol's
/// `"counterexample"` object: compact `xml`, indented `pretty`, node
/// `size`, and the `verified` oracle stamp. Present exactly on `fails`
/// verdicts that carry a witness (see `docs/PROTOCOL.md`).
pub fn counterexample_value(ce: &CounterExample) -> Value {
    obj(vec![
        ("xml", Value::from(ce.xml.as_str())),
        ("pretty", Value::from(ce.pretty.as_str())),
        ("size", Value::from(ce.size)),
        ("verified", Value::Bool(ce.verified)),
    ])
}

/// Serializes per-backend telemetry as a tagged JSON object.
///
/// The symbolic payload carries the BDD kernel counters (live/peak/created
/// nodes, unique-table capacity, operation-cache traffic) plus the two
/// derived ratios — `load_factor` and `cache_hit_rate` — rounded to three
/// decimals. See `docs/PROTOCOL.md` for the normative schema.
pub fn telemetry_value(t: &Telemetry) -> Value {
    let mut fields = vec![("backend", Value::from(t.backend_name()))];
    match t {
        Telemetry::Symbolic {
            bdd_nodes,
            counters,
        } => {
            fields.push(("bdd_nodes", Value::from(*bdd_nodes)));
            fields.push(("peak_nodes", Value::from(counters.peak_nodes)));
            fields.push(("created_nodes", Value::from(counters.created_nodes)));
            fields.push(("table_capacity", Value::from(counters.table_capacity)));
            fields.push(("load_factor", Value::Num(round3(counters.load_factor()))));
            fields.push(("cache_hits", Value::from(counters.cache_hits as usize)));
            fields.push((
                "cache_lookups",
                Value::from(counters.cache_lookups as usize),
            ));
            fields.push((
                "cache_hit_rate",
                Value::Num(round3(counters.cache_hit_rate())),
            ));
        }
        Telemetry::Explicit { types } => {
            fields.push(("types", Value::from(*types)));
        }
        Telemetry::Witnessed { types, proved, .. } => {
            fields.push(("types", Value::from(*types)));
            fields.push(("proved", Value::from(*proved)));
        }
        Telemetry::Dual {
            symbolic,
            explicit,
            symbolic_iterations,
            explicit_iterations,
        } => {
            fields.push(("symbolic_iterations", Value::from(*symbolic_iterations)));
            fields.push(("explicit_iterations", Value::from(*explicit_iterations)));
            fields.push(("symbolic", telemetry_value(symbolic)));
            fields.push(("explicit", telemetry_value(explicit)));
        }
        Telemetry::Portfolio {
            winner,
            raced,
            inner,
        } => {
            fields.push(("winner", Value::from(*winner)));
            fields.push((
                "raced",
                Value::Arr(raced.iter().map(|b| Value::from(*b)).collect()),
            ));
            fields.push(("inner", telemetry_value(inner)));
        }
    }
    obj(fields)
}

/// Serializes one trace event as a flat JSON object — the same shape as a
/// [`obs::Event::to_jsonl`] line: the `solve`/`seq`/`t_us`/`kind`
/// envelope followed by the kind-specific fields.
pub fn event_value(e: &obs::Event) -> Value {
    let mut fields = vec![
        ("solve", Value::Num(e.solve as f64)),
        ("seq", Value::Num(e.seq as f64)),
        ("t_us", Value::Num(e.t_us as f64)),
        ("kind", Value::from(e.kind)),
    ];
    for (name, value) in &e.fields {
        fields.push((
            *name,
            match value {
                obs::FieldValue::U64(v) => Value::Num(*v as f64),
                obs::FieldValue::I64(v) => Value::Num(*v as f64),
                obs::FieldValue::F64(v) => Value::Num(if v.is_finite() { *v } else { 0.0 }),
                obs::FieldValue::Bool(v) => Value::Bool(*v),
                obs::FieldValue::Str(v) => Value::from(*v),
            },
        ));
    }
    obj(fields)
}

/// Serializes a solve's event trace as a JSON array (the `"trace"` field
/// of traced verdict responses).
pub fn trace_value(events: &[obs::Event]) -> Value {
    Value::Arr(events.iter().map(event_value).collect())
}

/// Builds the `metrics` response: a deterministic snapshot of the
/// process-wide registry. Counters and gauges carry a `value`; histograms
/// carry `count`, `sum_ms` and cumulative `buckets` keyed by upper bound
/// in milliseconds (the final `+Inf` bucket serialized as the string
/// `"+Inf"`).
pub fn metrics_response(id: Option<&Value>, snapshot: &[obs::Snapshot]) -> Value {
    let rows = snapshot
        .iter()
        .map(|s| {
            let labels = obj(s.labels.iter().map(|&(k, v)| (k, Value::from(v))).collect());
            let mut fields = vec![("name", Value::from(s.name)), ("labels", labels)];
            match &s.value {
                obs::MetricValue::Counter(v) => {
                    fields.push(("kind", Value::from("counter")));
                    fields.push(("value", Value::Num(*v as f64)));
                }
                obs::MetricValue::Gauge(v) => {
                    fields.push(("kind", Value::from("gauge")));
                    fields.push(("value", Value::Num(*v as f64)));
                }
                obs::MetricValue::Histogram {
                    count,
                    sum_ms,
                    buckets,
                } => {
                    fields.push(("kind", Value::from("histogram")));
                    fields.push(("count", Value::Num(*count as f64)));
                    fields.push(("sum_ms", Value::Num(round3(*sum_ms))));
                    fields.push((
                        "buckets",
                        Value::Arr(
                            buckets
                                .iter()
                                .map(|&(bound, cumulative)| {
                                    let le = if bound.is_finite() {
                                        Value::Num(bound)
                                    } else {
                                        Value::from("+Inf")
                                    };
                                    obj(vec![("le", le), ("count", Value::Num(cumulative as f64))])
                                })
                                .collect(),
                        ),
                    ));
                }
            }
            obj(fields)
        })
        .collect();
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    fields.extend([
        ("ok", Value::Bool(true)),
        ("op", Value::from("metrics")),
        ("protocol", Value::from(PROTOCOL_VERSION as usize)),
        ("metrics", Value::Arr(rows)),
    ]);
    obj(fields)
}

/// Builds the `slowlog` response: the configured threshold (`null` when
/// slow-solve capture is off) and the captured entries, oldest first,
/// each with its full event trace.
pub fn slowlog_response(
    id: Option<&Value>,
    threshold_ms: Option<u64>,
    entries: &[obs::SlowEntry],
) -> Value {
    let rows = entries
        .iter()
        .map(|e| {
            obj(vec![
                ("op", Value::from(e.op)),
                ("backend", Value::from(e.backend)),
                ("status", Value::from(e.status)),
                ("wall_ms", Value::Num(round3(e.wall_ms))),
                ("threshold_ms", Value::Num(e.threshold_ms as f64)),
                ("cached", Value::Bool(e.cached)),
                ("trace", trace_value(&e.events)),
            ])
        })
        .collect();
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    fields.extend([
        ("ok", Value::Bool(true)),
        ("op", Value::from("slowlog")),
        ("protocol", Value::from(PROTOCOL_VERSION as usize)),
        (
            "threshold_ms",
            match threshold_ms {
                Some(t) => Value::Num(t as f64),
                None => Value::Null,
            },
        ),
        ("count", Value::from(entries.len())),
        ("entries", Value::Arr(rows)),
    ]);
    obj(fields)
}

/// Builds an error response (`"status":"error"`).
pub fn error_response(id: Option<&Value>, message: &str) -> Value {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    fields.extend([
        ("ok", Value::Bool(false)),
        ("status", Value::from(Status::Error.as_str())),
        ("error", Value::from(message)),
    ]);
    obj(fields)
}

fn round3(ms: f64) -> f64 {
    (ms * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_of(r: Request) -> (ProblemSpec, Option<BackendChoice>, Option<LimitsSpec>) {
        match r.kind {
            RequestKind::Problem {
                spec,
                backend,
                limits,
                ..
            } => (spec, backend, limits),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn trace_flag_parses_and_rejects() {
        let r = Request::parse(r#"{"op":"sat","query":"a","trace":true}"#).unwrap();
        assert!(matches!(r.kind, RequestKind::Problem { trace: true, .. }));
        let r = Request::parse(r#"{"op":"sat","query":"a"}"#).unwrap();
        assert!(matches!(r.kind, RequestKind::Problem { trace: false, .. }));
        let e = Request::parse(r#"{"op":"sat","query":"a","trace":1}"#).unwrap_err();
        assert!(e.contains("`trace` must be a boolean"), "{e}");
        // The introspection service ops parse too.
        let r = Request::parse(r#"{"op":"metrics"}"#).unwrap();
        assert_eq!(r.kind, RequestKind::Metrics);
        let r = Request::parse(r#"{"op":"slowlog"}"#).unwrap();
        assert_eq!(r.kind, RequestKind::SlowLog);
    }

    #[test]
    fn parses_the_issue_example() {
        let r = Request::parse(r#"{"op":"contains","lhs":"q1","rhs":"q2","type":"dtd1"}"#).unwrap();
        let (spec, _, _) = spec_of(r);
        assert_eq!(spec.op(), Op::Contains);
        match spec {
            ProblemSpec::Contains {
                lhs,
                ltype,
                rhs,
                rtype,
            } => {
                assert_eq!((lhs.as_str(), rhs.as_str()), ("q1", "q2"));
                assert_eq!(ltype.as_deref(), Some("dtd1"));
                assert_eq!(rtype.as_deref(), Some("dtd1"));
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn per_side_types_override_shared() {
        let r =
            Request::parse(r#"{"op":"equiv","lhs":"a","rhs":"b","type":"t","rtype":"u"}"#).unwrap();
        let (spec, _, _) = spec_of(r);
        match spec {
            ProblemSpec::Equiv { ltype, rtype, .. } => {
                assert_eq!(ltype.as_deref(), Some("t"));
                assert_eq!(rtype.as_deref(), Some("u"));
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn id_is_preserved() {
        let r = Request::parse(r#"{"id":7,"op":"stats"}"#).unwrap();
        assert_eq!(r.id, Some(Value::Num(7.0)));
        assert_eq!(r.kind, RequestKind::Stats);
    }

    #[test]
    fn every_alias_folds_to_its_canonical_op() {
        for &(op, names) in Op::TABLE {
            assert_eq!(names[0], op.canonical());
            for name in names {
                assert_eq!(Op::from_wire(name), Some(op), "{name}");
            }
        }
        assert_eq!(Op::from_wire("frobnicate"), None);
        // A request through an alias echoes the canonical name: the parse
        // itself resolves through the table.
        let r = Request::parse(r#"{"op":"containment","lhs":"a","rhs":"b"}"#).unwrap();
        let (spec, _, _) = spec_of(r);
        assert_eq!(spec.op().canonical(), "contains");
        let r = Request::parse(r#"{"op":"coverage","query":"a","by":["b"]}"#).unwrap();
        let (spec, _, _) = spec_of(r);
        assert_eq!(spec.op().canonical(), "covers");
    }

    #[test]
    fn backend_field_parses_and_rejects() {
        let r = Request::parse(r#"{"op":"sat","query":"a","backend":"explicit"}"#).unwrap();
        let (_, backend, _) = spec_of(r);
        assert_eq!(backend, Some(BackendChoice::Explicit));
        let r = Request::parse(r#"{"op":"sat","query":"a"}"#).unwrap();
        let (_, backend, limits) = spec_of(r);
        assert_eq!(backend, None);
        assert_eq!(limits, None);
        let e = Request::parse(r#"{"op":"sat","query":"a","backend":"frobnicate"}"#).unwrap_err();
        assert!(e.contains("unknown backend `frobnicate`"), "{e}");
        let e = Request::parse(r#"{"op":"sat","query":"a","backend":7}"#).unwrap_err();
        assert!(e.contains("`backend` must be a string"), "{e}");
    }

    #[test]
    fn limits_object_parses_and_rejects() {
        let r = Request::parse(
            r#"{"op":"sat","query":"a","limits":{"timeout_ms":250,"max_bdd_nodes":1000,"max_iterations":50,"max_lean":12}}"#,
        )
        .unwrap();
        let (_, _, limits) = spec_of(r);
        let spec = limits.expect("limits parsed");
        assert_eq!(spec.timeout_ms, Some(250));
        assert_eq!(spec.max_bdd_nodes, Some(1000));
        assert_eq!(spec.max_iterations, Some(50));
        assert_eq!(spec.max_lean, Some(12));
        // Overrides merge over a base: absent fields inherit.
        let base = Limits::default();
        let eff = spec.apply(&base);
        assert_eq!(eff.deadline, Some(std::time::Duration::from_millis(250)));
        assert_eq!(eff.max_bdd_nodes, Some(1000));
        assert_eq!(eff.max_iterations, Some(50));
        assert_eq!(eff.max_lean_diamonds, 12);
        let partial = LimitsSpec {
            timeout_ms: Some(9),
            ..LimitsSpec::default()
        };
        let eff = partial.apply(&base);
        assert_eq!(eff.deadline, Some(std::time::Duration::from_millis(9)));
        assert_eq!(eff.max_lean_diamonds, base.max_lean_diamonds);

        let e = Request::parse(r#"{"op":"sat","query":"a","limits":7}"#).unwrap_err();
        assert!(e.contains("`limits` must be an object"), "{e}");
        let e =
            Request::parse(r#"{"op":"sat","query":"a","limits":{"timeout_ms":-1}}"#).unwrap_err();
        assert!(
            e.contains("`limits.timeout_ms` must be a non-negative integer"),
            "{e}"
        );
        let e =
            Request::parse(r#"{"op":"sat","query":"a","limits":{"frobnicate":1}}"#).unwrap_err();
        assert!(e.contains("unknown `limits` field `frobnicate`"), "{e}");
    }

    #[test]
    fn telemetry_serializes_tagged() {
        let t = Telemetry::Dual {
            symbolic: Box::new(Telemetry::Symbolic {
                bdd_nodes: 3,
                counters: analyzer::BddCounters {
                    peak_nodes: 5,
                    created_nodes: 6,
                    table_capacity: 1024,
                    cache_hits: 3,
                    cache_lookups: 4,
                },
            }),
            explicit: Box::new(Telemetry::Explicit { types: 9 }),
            symbolic_iterations: 4,
            explicit_iterations: 7,
        };
        let v = telemetry_value(&t);
        assert_eq!(v.get("backend").and_then(Value::as_str), Some("dual"));
        assert_eq!(
            v.get("symbolic_iterations").and_then(Value::as_f64),
            Some(4.0)
        );
        assert_eq!(
            v.get("explicit_iterations").and_then(Value::as_f64),
            Some(7.0)
        );
        let sym = v.get("symbolic").unwrap();
        assert_eq!(sym.get("bdd_nodes").and_then(Value::as_f64), Some(3.0));
        assert_eq!(sym.get("peak_nodes").and_then(Value::as_f64), Some(5.0));
        assert_eq!(sym.get("created_nodes").and_then(Value::as_f64), Some(6.0));
        assert_eq!(
            sym.get("table_capacity").and_then(Value::as_f64),
            Some(1024.0)
        );
        assert_eq!(sym.get("load_factor").and_then(Value::as_f64), Some(0.005));
        assert_eq!(
            sym.get("cache_hit_rate").and_then(Value::as_f64),
            Some(0.75)
        );
        let exp = v.get("explicit").unwrap();
        assert_eq!(exp.get("types").and_then(Value::as_f64), Some(9.0));

        let p = Telemetry::Portfolio {
            winner: "symbolic",
            raced: vec!["symbolic", "explicit"],
            inner: Box::new(Telemetry::Explicit { types: 9 }),
        };
        let v = telemetry_value(&p);
        assert_eq!(v.get("backend").and_then(Value::as_str), Some("portfolio"));
        assert_eq!(v.get("winner").and_then(Value::as_str), Some("symbolic"));
        let raced = match v.get("raced").unwrap() {
            Value::Arr(xs) => xs
                .iter()
                .map(|x| x.as_str().unwrap().to_owned())
                .collect::<Vec<_>>(),
            other => panic!("raced serialized as {other:?}"),
        };
        assert_eq!(raced, ["symbolic", "explicit"]);
        let inner = v.get("inner").unwrap();
        assert_eq!(
            inner.get("backend").and_then(Value::as_str),
            Some("explicit")
        );
        assert_eq!(inner.get("types").and_then(Value::as_f64), Some(9.0));
    }

    #[test]
    fn rejects_malformed() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"noop":1}"#).is_err());
        assert!(Request::parse(r#"{"op":"frobnicate"}"#).is_err());
        assert!(Request::parse(r#"{"op":"contains","lhs":"a"}"#).is_err());
        assert!(Request::parse(r#"{"op":"covers","query":"a","by":[]}"#).is_err());
    }

    #[test]
    fn resolve_covers_and_typecheck() {
        let mut ws = Workspace::new();
        ws.register_dtd("d", "<!ELEMENT r (x)> <!ELEMENT x EMPTY>")
            .unwrap();
        let r =
            Request::parse(r#"{"op":"covers","query":"child::*","by":["child::x"],"type":"d"}"#)
                .unwrap();
        let (spec, _, _) = spec_of(r);
        let p = spec.resolve(&ws).unwrap();
        assert_eq!(p.op_name(), "covers");

        let r = Request::parse(
            r#"{"op":"typecheck","query":"child::x","input":"d","output":"<!ELEMENT x EMPTY>"}"#,
        )
        .unwrap();
        let (spec, _, _) = spec_of(r);
        assert_eq!(spec.resolve(&ws).unwrap().op_name(), "typecheck");
    }
}

//! BDD kernel telemetry on the Fig 18 containment family: node
//! allocations, peak live nodes, unique-table load and operation-cache
//! hit rate of the symbolic backend, compared against the pre-overhaul
//! kernel (plain `Vec` store + five `HashMap` caches, no complement
//! edges) as the committed baseline.
//!
//! Results land in `BENCH_bdd.json` at the workspace root. The baseline
//! numbers were measured on the kernel as of PR 2 (commit dee3672):
//! `bdd_nodes` there is total allocations, because that store never
//! reclaimed or shared complemented nodes — the comparable figure for the
//! new kernel is `created_nodes`. The acceptance bar for the overhaul is
//! an allocation drop ≥ 30% (or a mean-time improvement) on this family.

use std::fmt::Write as _;
use std::time::Instant;

use analyzer::{Analyzer, BackendChoice};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The Fig 18 family (same members as `backend_matrix`).
const FAMILY: &[(&str, &str, &str, bool)] = &[
    ("self", "child::a", "child::a", true),
    ("predicate", "child::a", "child::a[child::b]", false),
    ("sibling", "child::c/preceding-sibling::a", "child::a", true),
    (
        "fig18",
        "child::c/preceding-sibling::a[child::b]",
        "child::c[child::b]",
        false,
    ),
];

/// Pre-overhaul kernel baseline, measured at commit dee3672 (PR 2):
/// `(name, allocated nodes, mean solve ms)` — the node counts from a
/// 3-sample probe of the old manager, the times from the committed
/// `BENCH_backends.json` of that revision.
const BASELINE: &[(&str, usize, f64)] = &[
    ("self", 497, 0.164),
    ("predicate", 817, 0.161),
    ("sibling", 1176, 0.24),
    ("fig18", 2541, 0.538),
];

fn samples() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

struct Row {
    mean_ms: f64,
    bdd_nodes: usize,
    peak_nodes: usize,
    created_nodes: usize,
    load_factor: f64,
    cache_hit_rate: f64,
    iterations: usize,
}

/// Solves one family member `n` times on `az` (whose long-lived manager is
/// generationally reset per solve — the engine worker configuration) and
/// reports mean time plus the last run's kernel telemetry.
fn measure(az: &mut Analyzer, lhs: &str, rhs: &str, expect_holds: bool, n: usize) -> Row {
    let mut times = Vec::with_capacity(n);
    let mut row = Row {
        mean_ms: 0.0,
        bdd_nodes: 0,
        peak_nodes: 0,
        created_nodes: 0,
        load_factor: 0.0,
        cache_hit_rate: 0.0,
        iterations: 0,
    };
    for _ in 0..n {
        let e1 = xpath::parse(lhs).expect("family query parses");
        let e2 = xpath::parse(rhs).expect("family query parses");
        let f1 = az.query_formula(&e1, None);
        let f2 = az.query_formula(&e2, None);
        let lg = az.logic_mut();
        let nf2 = lg.not(f2);
        let g = lg.and(f1, nf2);
        let t = Instant::now();
        let solved = az
            .solve_formula(black_box(g))
            .expect("symbolic never fails");
        times.push(t.elapsed().as_secs_f64() * 1000.0);
        assert_eq!(!solved.outcome.is_satisfiable(), expect_holds);
        let telemetry = &solved.stats.telemetry;
        let counters = telemetry.bdd_counters().expect("symbolic telemetry");
        row = Row {
            mean_ms: 0.0,
            bdd_nodes: telemetry.bdd_nodes().unwrap(),
            peak_nodes: counters.peak_nodes,
            created_nodes: counters.created_nodes,
            load_factor: telemetry.load_factor().unwrap(),
            cache_hit_rate: counters.cache_hit_rate(),
            iterations: solved.stats.iterations,
        };
    }
    row.mean_ms = times.iter().sum::<f64>() / times.len() as f64;
    row
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn bench_bdd_kernel(_c: &mut Criterion) {
    let n = samples();
    // One analyzer for the whole family: every solve after the first
    // reuses the manager's arena, unique table and cache allocations.
    let mut az = Analyzer::new();
    az.set_backend(BackendChoice::Symbolic);
    let mut rows = String::new();
    for &(name, lhs, rhs, holds) in FAMILY {
        let r = measure(&mut az, lhs, rhs, holds, n);
        let &(_, base_nodes, base_ms) = BASELINE
            .iter()
            .find(|(b, _, _)| *b == name)
            .expect("baseline covers the family");
        let reduction = 100.0 * (1.0 - r.created_nodes as f64 / base_nodes as f64);
        println!(
            "bench bdd-kernel/{name}: mean {:.3} ms (baseline {base_ms:.3}), \
             created {} nodes (baseline {base_nodes}, -{reduction:.1}%), peak {}, \
             load {:.3}, cache hit rate {:.3}",
            r.mean_ms, r.created_nodes, r.peak_nodes, r.load_factor, r.cache_hit_rate,
        );
        let _ = write!(
            rows,
            concat!(
                r#"{}{{"name":"{}","mean_ms":{},"iterations":{},"bdd_nodes":{},"#,
                r#""peak_nodes":{},"created_nodes":{},"load_factor":{},"cache_hit_rate":{},"#,
                r#""baseline_created_nodes":{},"baseline_mean_ms":{},"node_reduction_pct":{}}}"#
            ),
            if rows.is_empty() { "" } else { "," },
            name,
            round3(r.mean_ms),
            r.iterations,
            r.bdd_nodes,
            r.peak_nodes,
            r.created_nodes,
            round3(r.load_factor),
            round3(r.cache_hit_rate),
            base_nodes,
            base_ms,
            round3(reduction),
        );
    }
    let json = format!(
        concat!(
            r#"{{"bench":"bdd_kernel","family":"fig18-containment","samples":{},"#,
            r#""baseline":"pre-overhaul kernel at dee3672 (Vec store, per-op HashMap caches, "#,
            r#"no complement edges)","members":[{}]}}"#
        ),
        n, rows
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_bdd.json");
    std::fs::write(path, json + "\n").expect("write BENCH_bdd.json");
    println!("bdd-kernel: wrote {path}");
}

criterion_group!(benches, bench_bdd_kernel);
criterion_main!(benches);

//! Decision problems on regular tree types themselves.
//!
//! Since a DTD translates to an Lµ formula (Fig 14), relations *between
//! types* reduce to satisfiability exactly like query problems:
//!
//! * inclusion `T1 ⊆ T2` — every T1-document is a T2-document
//!   (`⟦T1⟧ ∧ ¬⟦T2⟧` unsatisfiable);
//! * equivalence — inclusion both ways;
//! * disjointness — no document inhabits both;
//! * emptiness — no document at all inhabits the type.
//!
//! These are the schema-evolution checks of the paper's introduction (is
//! the new schema backward compatible?), and they compose with query
//! problems ([`Analyzer::type_checks`](crate::Analyzer::type_checks)).

use treetypes::Dtd;

use crate::{Analysis, AnalysisResult, Analyzer, Limits, SolveError};

impl Analyzer {
    /// Type inclusion: every document valid for `sub` is valid for `sup`.
    ///
    /// The witness of a failed inclusion is a document of `sub` outside
    /// `sup`.
    ///
    /// # Example
    ///
    /// ```
    /// use analyzer::Analyzer;
    /// use treetypes::Dtd;
    ///
    /// let old = Dtd::parse("<!ELEMENT a (b)> <!ELEMENT b EMPTY>")?;
    /// let new = Dtd::parse("<!ELEMENT a (b+)> <!ELEMENT b EMPTY>")?;
    /// let mut az = Analyzer::new();
    /// assert!(az.type_subset(&old, &new)?.holds);  // b ⊆ b+
    /// assert!(!az.type_subset(&new, &old)?.holds); // b+ ⊄ b
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn type_subset(&mut self, sub: &Dtd, sup: &Dtd) -> AnalysisResult {
        let f_sub = self.type_formula(sub);
        let f_sup = self.type_formula(sup);
        let lg = self.logic_mut();
        let n_sup = lg.not(f_sup);
        let goal = lg.and(f_sub, n_sup);
        self.check_unsat(goal, &Limits::default())
    }

    /// Type equivalence: inclusion both ways.
    pub fn type_equivalent(
        &mut self,
        t1: &Dtd,
        t2: &Dtd,
    ) -> Result<(Analysis, Analysis), SolveError> {
        Ok((self.type_subset(t1, t2)?, self.type_subset(t2, t1)?))
    }

    /// Type disjointness: no document is valid for both. The witness of a
    /// failed disjointness is a common document.
    pub fn type_disjoint(&mut self, t1: &Dtd, t2: &Dtd) -> AnalysisResult {
        let f1 = self.type_formula(t1);
        let f2 = self.type_formula(t2);
        let goal = self.logic_mut().and(f1, f2);
        self.check_unsat(goal, &Limits::default())
    }

    /// Type emptiness: the type has no finite document at all (e.g. an
    /// element transitively requiring itself).
    pub fn type_empty(&mut self, t: &Dtd) -> AnalysisResult {
        let f = self.type_formula(t);
        self.check_unsat(f, &Limits::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dtd(src: &str) -> Dtd {
        Dtd::parse(src).expect("test dtd parses")
    }

    #[test]
    fn subset_star_plus_opt() {
        let star = dtd("<!ELEMENT a (b*)> <!ELEMENT b EMPTY>");
        let plus = dtd("<!ELEMENT a (b+)> <!ELEMENT b EMPTY>");
        let opt = dtd("<!ELEMENT a (b?)> <!ELEMENT b EMPTY>");
        let one = dtd("<!ELEMENT a (b)> <!ELEMENT b EMPTY>");
        let mut az = Analyzer::new();
        assert!(az.type_subset(&plus, &star).unwrap().holds);
        assert!(!az.type_subset(&star, &plus).unwrap().holds);
        assert!(az.type_subset(&opt, &star).unwrap().holds);
        assert!(az.type_subset(&one, &plus).unwrap().holds);
        assert!(az.type_subset(&one, &opt).unwrap().holds);
        assert!(!az.type_subset(&opt, &one).unwrap().holds);
        // Failed inclusion yields a concrete separating document.
        let v = az.type_subset(&star, &one).unwrap();
        let w = v.counter_example.expect("separating document");
        let t = w.tree().clear_marks();
        assert!(star.validates(&t) && !one.validates(&t), "{w}");
    }

    #[test]
    fn equivalence_of_rewritten_models() {
        // (b, c) | (b, d)  ≡  b, (c | d)
        let t1 = dtd(
            "<!ELEMENT a ((b, c) | (b, d))> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>",
        );
        let t2 = dtd(
            "<!ELEMENT a (b, (c | d))> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>",
        );
        let mut az = Analyzer::new();
        let (fwd, bwd) = az.type_equivalent(&t1, &t2).unwrap();
        assert!(fwd.holds && bwd.holds);
    }

    #[test]
    fn disjointness() {
        let t1 = dtd("<!ELEMENT a (b)> <!ELEMENT b EMPTY>");
        let t2 = dtd("<!ELEMENT a (c)> <!ELEMENT c EMPTY>");
        let t3 = dtd("<!ELEMENT a (b | c)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>");
        let mut az = Analyzer::new();
        assert!(az.type_disjoint(&t1, &t2).unwrap().holds);
        let v = az.type_disjoint(&t1, &t3).unwrap();
        assert!(!v.holds);
        let w = v.counter_example.expect("common document");
        let t = w.tree().clear_marks();
        assert!(t1.validates(&t) && t3.validates(&t), "{w}");
    }

    #[test]
    fn empty_type_detected() {
        // a requires itself forever: no finite document.
        let t = dtd("<!ELEMENT a (a)>");
        let mut az = Analyzer::new();
        assert!(az.type_empty(&t).unwrap().holds);
        // a allows stopping: inhabited.
        let t2 = dtd("<!ELEMENT a (a?)>");
        let v = az.type_empty(&t2).unwrap();
        assert!(!v.holds);
    }

    #[test]
    fn wikipedia_not_included_in_smil() {
        let wiki = treetypes::wikipedia();
        let smil = treetypes::smil_1_0();
        let mut az = Analyzer::new();
        assert!(!az.type_subset(&wiki, &smil).unwrap().holds);
        assert!(az.type_disjoint(&wiki, &smil).unwrap().holds);
    }
}

//! The symbolic BDD-based solver (§7.1–§7.4) — the paper's production
//! algorithm.
//!
//! Sets of ψ-types are characteristic functions over one BDD variable per
//! lean atom. Two variable rails are interleaved: lean atom `i` is BDD
//! variable `2·π(i)` on the `x̄` rail (the candidate type) and `2·π(i)+1`
//! on the `ȳ` rail (the witness type), where π is the variable order —
//! breadth-first by default (§7.4).
//!
//! One fixpoint iteration computes
//!
//! ```text
//! Upd(T)(x̄) = T(x̄) ∨ (χTypes(x̄) ∧ ⋀_{a∈{1,2}} Wit_a(T)(x̄))
//! Wit_a(T)(x̄) = isparent_a(x̄) → ∃ȳ (T(ȳ) ∧ ischild_a(ȳ) ∧ ∆_a(x̄,ȳ))
//! ```
//!
//! with the relational product computed by conjunctive partitioning and
//! early quantification (§7.3): `∆_a` is kept as one equivalence clause per
//! lean modality and folded with [`bdd::Bdd::and_exists`], quantifying each
//! `ȳ` variable as soon as no remaining clause mentions it; the clause
//! order follows the greedy min-cost heuristic. The start-mark uniqueness of
//! Fig 16 is kept by running the fixpoint on a *pair* of sets — unmarked
//! `T°` and marked `T•` — with the four update cases of the paper.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use bdd::{Bdd, NodeId, QuantSet};
use ftree::BinaryTree;
use mulogic::{status, BoolAlg, Formula, Logic, Program};

use obs::Recorder;

use crate::kernel::{limit_event, run_fixpoint_traced, Backend, SolveError, StepObservation};
use crate::limits::{CancelToken, Exhausted, Limits, Resource};
use crate::outcome::{Model, Solved, Telemetry};
use crate::prepare::Prepared;

/// Variable-order choice for the lean → BDD variable mapping (§7.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VarOrder {
    /// Breadth-first formula order — the paper's recommendation.
    #[default]
    Bfs,
    /// The reverse order; exists for the ablation benchmarks.
    Reversed,
}

/// Tuning knobs of the symbolic solver (all paper-faithful by default).
#[derive(Debug, Clone, Default)]
pub struct SymbolicOptions {
    /// Compute relational products by folding individual `∆_a` clauses with
    /// early quantification (§7.3). When disabled, the full `∆_a` relation
    /// is materialized and quantified in one step (the ablation baseline).
    pub monolithic_delta: bool,
    /// Variable order (§7.4).
    pub var_order: VarOrder,
    /// Node-count threshold that triggers garbage collection (default: a
    /// few million). Tests set it very low to exercise collection on every
    /// step.
    pub gc_threshold: Option<usize>,
}

/// A [`BoolAlg`] producing BDDs over the `x̄` rail.
struct XRail<'b> {
    bdd: &'b mut Bdd,
    xvar: &'b [u32],
}

impl BoolAlg for XRail<'_> {
    type Value = NodeId;
    fn tt(&mut self) -> NodeId {
        self.bdd.one()
    }
    fn ff(&mut self) -> NodeId {
        self.bdd.zero()
    }
    fn var(&mut self, i: usize) -> NodeId {
        self.bdd.var(self.xvar[i])
    }
    fn not(&mut self, v: NodeId) -> NodeId {
        self.bdd.not(v)
    }
    fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bdd.and(a, b)
    }
    fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bdd.or(a, b)
    }
}

/// The partitioned (or monolithic) relation `∆_a` with its quantification
/// schedule.
struct DeltaRelation {
    /// Clauses in fold order.
    clauses: Vec<NodeId>,
    /// Variables quantified immediately after conjoining each clause.
    quants: Vec<QuantSet>,
    /// `ȳ` variables appearing in no clause: quantified up front.
    pre_quant: QuantSet,
}

/// Mutable fixpoint state: the two type sets, the cumulative relational
/// images, the per-iteration snapshots, and the adaptive GC threshold.
/// Kept as a struct so garbage collection can reach every live handle even
/// in the middle of a relational-product fold.
struct FixpointState {
    un: NodeId,
    mk: NodeId,
    im_un: [NodeId; 2],
    im_mk: [NodeId; 2],
    done_un: NodeId,
    done_mk: NodeId,
    snapshots: Vec<(NodeId, NodeId)>,
    gc_limit: usize,
    gc_floor: usize,
    /// Steps taken so far (the `XSAT_DEBUG` trace labels lines with it).
    round: usize,
}

/// Collect when the store first exceeds this many nodes.
const GC_FLOOR: usize = 2_000_000;

struct Sym<'m> {
    prep: Prepared,
    /// The caller-owned manager: reset (not reallocated) per run, so a
    /// long-lived worker reuses its arena, unique table and operation
    /// cache across problems.
    bdd: &'m mut Bdd,
    /// Lean index → x-rail BDD variable.
    xvar: Vec<u32>,
    /// Status BDDs (x̄ rail) of each lean diamond argument, by lean index.
    arg_status: HashMap<usize, NodeId>,
    psi_status: NodeId,
    types: NodeId,
    delta: [DeltaRelation; 2],
    /// Lean entries `(lean index, program)` of the diamonds.
    diams: Vec<(usize, Program)>,
    state: FixpointState,
    /// When the run started (for deadline polls inside a step).
    started: Instant,
    /// Wall-clock budget of the run, when one is set.
    deadline: Option<Duration>,
    /// Cooperative cancellation, polled with the deadline: a portfolio
    /// sibling's win aborts this run between relational-product clauses.
    cancel: CancelToken,
}

impl<'m> Sym<'m> {
    /// Builds the backend. `started` is when the *solve* began — before
    /// preparation and this constructor's status-BDD work — so the
    /// deadline polls charge construction time too, and the node budget
    /// armed here already meters the constructor's own allocations.
    fn new(
        lg: &mut Logic,
        prep: Prepared,
        opts: &SymbolicOptions,
        bdd: &'m mut Bdd,
        limits: &Limits,
        started: Instant,
    ) -> Self {
        let n = prep.lean.len();
        let perm: Vec<usize> = match opts.var_order {
            VarOrder::Bfs => (0..n).collect(),
            VarOrder::Reversed => (0..n).rev().collect(),
        };
        let xvar: Vec<u32> = perm.iter().map(|&p| 2 * p as u32).collect();
        // Generational reset: the previous problem's nodes and cache
        // entries vanish in O(1) while the allocations stay warm. The node
        // budget is re-armed per run (reset disarms it).
        bdd.reset();
        bdd.set_node_budget(limits.max_bdd_nodes);

        // Status BDDs for every diamond argument and for ψ, sharing a memo.
        let mut memo: HashMap<Formula, NodeId> = HashMap::new();
        let entries: Vec<(usize, Program, Formula)> = prep.lean.diam_entries().collect();
        let mut arg_status = HashMap::new();
        {
            let mut alg = XRail {
                bdd: &mut *bdd,
                xvar: &xvar,
            };
            for &(i, _, phi) in &entries {
                let s = status(lg, &prep.lean, phi, &mut alg, &mut memo);
                arg_status.insert(i, s);
            }
        }
        let psi_status = {
            let mut alg = XRail {
                bdd: &mut *bdd,
                xvar: &xvar,
            };
            status(lg, &prep.lean, prep.psi, &mut alg, &mut memo)
        };

        // χTypes: modal consistency, child-kind exclusion, one-hot labels.
        let types = {
            let mut acc = bdd.one();
            for &(i, p, _) in &entries {
                let xi = bdd.var(xvar[i]);
                let xt = bdd.var(xvar[prep.lean.diam_true_index(p)]);
                let imp = bdd.implies(xi, xt);
                acc = bdd.and(acc, imp);
            }
            let u1 = bdd.var(xvar[prep.lean.diam_true_index(Program::Up1)]);
            let u2 = bdd.var(xvar[prep.lean.diam_true_index(Program::Up2)]);
            let both = bdd.and(u1, u2);
            let not_both = bdd.not(both);
            acc = bdd.and(acc, not_both);
            // Exactly one atomic proposition.
            let props: Vec<u32> = prep.lean.prop_entries().map(|(i, _)| xvar[i]).collect();
            let mut none = bdd.one();
            let mut one = bdd.zero();
            for &v in props.iter().rev() {
                let pv = bdd.var(v);
                let npv = bdd.not(pv);
                // one' = (v ∧ none) ∨ (¬v ∧ one); none' = ¬v ∧ none
                let t1 = bdd.and(pv, none);
                let t2 = bdd.and(npv, one);
                one = bdd.or(t1, t2);
                none = bdd.and(npv, none);
            }
            bdd.and(acc, one)
        };

        let diams: Vec<(usize, Program)> = entries.iter().map(|&(i, p, _)| (i, p)).collect();
        let delta = [
            Self::build_delta(bdd, &xvar, &arg_status, &entries, Program::Down1, opts),
            Self::build_delta(bdd, &xvar, &arg_status, &entries, Program::Down2, opts),
        ];

        let gc_floor = opts.gc_threshold.unwrap_or(GC_FLOOR);
        let state = FixpointState {
            un: bdd.zero(),
            mk: bdd.zero(),
            im_un: [bdd.zero(); 2],
            im_mk: [bdd.zero(); 2],
            done_un: bdd.zero(),
            done_mk: bdd.zero(),
            snapshots: Vec::new(),
            gc_limit: gc_floor,
            gc_floor,
            round: 0,
        };
        Sym {
            prep,
            bdd,
            xvar,
            arg_status,
            psi_status,
            types,
            delta,
            diams,
            state,
            started,
            deadline: limits.deadline,
            cancel: limits.cancel.clone(),
        }
    }

    /// The mid-step budget poll: fires on a node-budget overrun recorded
    /// by the manager at allocation, or a blown deadline. Called at the
    /// top of every `Upd` step and between the clauses of each
    /// relational-product fold, so even a single expensive step cannot run
    /// far past its budget.
    fn check_budget(&self) -> Result<(), Exhausted> {
        if let Some((live, budget)) = self.bdd.budget_exceeded() {
            return Err(Exhausted {
                resource: Resource::BddNodes,
                spent: live as u64,
                limit: budget as u64,
            });
        }
        if let Some(deadline) = self.deadline {
            let elapsed = self.started.elapsed();
            if elapsed >= deadline {
                return Err(Exhausted::wall_clock(elapsed, deadline));
            }
        }
        if self.cancel.is_cancelled() {
            return Err(Exhausted::cancelled(self.started.elapsed()));
        }
        Ok(())
    }

    /// Builds the clause list and quantification schedule for `∆_a`.
    fn build_delta(
        bdd: &mut Bdd,
        xvar: &[u32],
        arg_status: &HashMap<usize, NodeId>,
        entries: &[(usize, Program, Formula)],
        a: Program,
        opts: &SymbolicOptions,
    ) -> DeltaRelation {
        let conv = a.converse();
        // Build the clauses R_i with their y-supports D_i.
        let mut clauses: Vec<(NodeId, Vec<u32>)> = Vec::new();
        for &(i, p, _) in entries {
            let s = arg_status[&i];
            if p == a {
                // x_i ↔ status_ϕ(ȳ)
                let sy = bdd.shift(s, 1);
                let xi = bdd.var(xvar[i]);
                let c = bdd.iff(xi, sy);
                let dy: Vec<u32> = bdd.support(c).into_iter().filter(|v| v % 2 == 1).collect();
                clauses.push((c, dy));
            } else if p == conv {
                // y_i ↔ status_ϕ(x̄)
                let yi = bdd.var(xvar[i] + 1);
                let c = bdd.iff(yi, s);
                let dy: Vec<u32> = bdd.support(c).into_iter().filter(|v| v % 2 == 1).collect();
                clauses.push((c, dy));
            }
        }
        let all_y: Vec<u32> = (0..xvar.len()).map(|i| xvar[i] + 1).collect();
        if opts.monolithic_delta {
            // Ablation: one big relation, quantified in a single step.
            let mut rel = bdd.one();
            for (c, _) in &clauses {
                rel = bdd.and(rel, *c);
            }
            let all = bdd.quant_set(all_y.iter().copied());
            return DeltaRelation {
                clauses: vec![rel],
                quants: vec![all],
                pre_quant: bdd.quant_set(std::iter::empty::<u32>()),
            };
        }
        // Greedy min-cost elimination order (§7.3): repeatedly pick the
        // variable whose containing clauses are smallest, emitting any
        // not-yet-placed clause that mentions it.
        let mut order: Vec<usize> = Vec::new();
        let mut placed = vec![false; clauses.len()];
        let mut remaining_vars: std::collections::BTreeSet<u32> = clauses
            .iter()
            .flat_map(|(_, d)| d.iter().copied())
            .collect();
        while !remaining_vars.is_empty() {
            let (&best, _) = remaining_vars
                .iter()
                .map(|v| {
                    let cost: usize = clauses
                        .iter()
                        .enumerate()
                        .filter(|(i, (_, d))| !placed[*i] && d.contains(v))
                        .map(|(_, (_, d))| d.len())
                        .sum();
                    (v, cost)
                })
                .min_by_key(|&(_, c)| c)
                .expect("nonempty");
            for (i, (_, d)) in clauses.iter().enumerate() {
                if !placed[i] && d.contains(&best) {
                    placed[i] = true;
                    order.push(i);
                }
            }
            remaining_vars.remove(&best);
        }
        for (i, &p) in placed.iter().enumerate() {
            if !p {
                order.push(i); // clauses with no y-support
            }
        }
        // E_i: variables of D_ρ(i) not mentioned by any later clause.
        let mut quants = Vec::with_capacity(order.len());
        for (pos, &ci) in order.iter().enumerate() {
            let later: std::collections::HashSet<u32> = order[pos + 1..]
                .iter()
                .flat_map(|&cj| clauses[cj].1.iter().copied())
                .collect();
            let ei: Vec<u32> = clauses[ci]
                .1
                .iter()
                .copied()
                .filter(|v| !later.contains(v))
                .collect();
            quants.push(bdd.quant_set(ei));
        }
        let in_some: std::collections::HashSet<u32> = clauses
            .iter()
            .flat_map(|(_, d)| d.iter().copied())
            .collect();
        let pre: Vec<u32> = all_y
            .iter()
            .copied()
            .filter(|v| !in_some.contains(v))
            .collect();
        DeltaRelation {
            clauses: order.iter().map(|&i| clauses[i].0).collect(),
            quants,
            pre_quant: bdd.quant_set(pre),
        }
    }

    fn xv(&mut self, lean_idx: usize) -> NodeId {
        self.bdd.var(self.xvar[lean_idx])
    }

    fn dt(&self, p: Program) -> usize {
        self.prep.lean.diam_true_index(p)
    }

    /// `∃ȳ (set(ȳ) ∧ ischild_a(ȳ) ∧ ∆_a(x̄,ȳ))`.
    ///
    /// Takes the set by `&mut` so the caller's handle stays valid across
    /// the mid-fold garbage collections. Aborts with the budget hit when
    /// the node budget or deadline runs out mid-fold.
    fn image(&mut self, a: Program, set_x: &mut NodeId) -> Result<NodeId, Exhausted> {
        let ai = if a == Program::Down1 { 0 } else { 1 };
        let set_y = self.bdd.shift(*set_x, 1);
        let ischild = self.bdd.var(self.xvar[self.dt(a.converse())] + 1);
        let mut h = self.bdd.and(set_y, ischild);
        h = self.bdd.exists(h, self.delta[ai].pre_quant);
        // Clauses are re-read from `self.delta` at every step: the mid-fold
        // garbage collection remaps those handles in place.
        for k in 0..self.delta[ai].clauses.len() {
            let clause = self.delta[ai].clauses[k];
            let quant = self.delta[ai].quants[k];
            h = self.bdd.and_exists(h, clause, quant);
            self.maybe_gc(&mut [&mut h, set_x]);
            self.check_budget()?;
        }
        Ok(h)
    }

    /// Mark-compact the BDD store when it exceeds the adaptive threshold,
    /// keeping the solver's persistent handles, the fixpoint state and the
    /// supplied extra roots alive. Callable mid-fold: every live handle is
    /// reachable from `self.state` or `extras`.
    fn maybe_gc(&mut self, extras: &mut [&mut NodeId]) {
        if self.bdd.node_count() <= self.state.gc_limit {
            return;
        }
        let Sym {
            bdd,
            psi_status,
            types,
            arg_status,
            delta,
            state,
            ..
        } = self;
        let mut roots: Vec<&mut NodeId> = vec![
            psi_status,
            types,
            &mut state.un,
            &mut state.mk,
            &mut state.done_un,
            &mut state.done_mk,
        ];
        roots.extend(state.im_un.iter_mut());
        roots.extend(state.im_mk.iter_mut());
        for (a, b) in &mut state.snapshots {
            roots.push(a);
            roots.push(b);
        }
        roots.extend(arg_status.values_mut());
        for d in delta.iter_mut() {
            roots.extend(d.clauses.iter_mut());
        }
        for r in extras.iter_mut() {
            roots.push(r);
        }
        bdd.gc(&mut roots);
        state.gc_limit = (bdd.node_count() * 2).max(state.gc_floor);
        if std::env::var_os("XSAT_DEBUG").is_some() {
            eprintln!("[xsat] gc: {} live nodes", bdd.node_count());
        }
    }

    /// Extracts one concrete type (bits per lean atom) from a set BDD.
    fn pick_type(&mut self, set: NodeId) -> Option<Vec<bool>> {
        let path = self.bdd.sat_one(set)?;
        let mut by_var: HashMap<u32, bool> = path.into_iter().collect();
        Some(
            (0..self.xvar.len())
                .map(|i| by_var.remove(&self.xvar[i]).unwrap_or(false))
                .collect(),
        )
    }

    /// Constraint (over the x̄ rail) that a type is a valid `a`-child of the
    /// concrete parent type `t`.
    fn child_constraint(&mut self, a: Program, t: &[bool]) -> NodeId {
        let conv = a.converse();
        // Assignment of the parent on the x rail, for evaluating status BDDs.
        let max_var = 2 * self.xvar.len();
        let mut assignment = vec![false; max_var + 2];
        for (i, &b) in t.iter().enumerate() {
            assignment[self.xvar[i] as usize] = b;
        }
        let mut c = self.xv(self.dt(conv)); // ischild_a
        let diams = self.diams.clone();
        for (i, p) in diams {
            if p == a {
                // ⟨a⟩ϕ ∈ t ⇔ status_ϕ(child)
                let s = self.arg_status[&i];
                let lit = if t[i] { s } else { self.bdd.not(s) };
                c = self.bdd.and(c, lit);
            } else if p == conv {
                // ⟨ā⟩ϕ ∈ child ⇔ status_ϕ(t)
                let holds = self.bdd.eval(self.arg_status[&i], &assignment);
                let xi = self.xv(i);
                let lit = if holds { xi } else { self.bdd.not(xi) };
                c = self.bdd.and(c, lit);
            }
        }
        c
    }

    /// Finds an `a`-child of `t` in the earliest snapshot (minimal depth).
    fn find_child(
        &mut self,
        snapshots: &[(NodeId, NodeId)],
        a: Program,
        t: &[bool],
        marked: bool,
    ) -> Option<Vec<bool>> {
        let c = self.child_constraint(a, t);
        for &(un, mk) in snapshots {
            let set = if marked { mk } else { un };
            let cand = self.bdd.and(set, c);
            if cand != self.bdd.zero() {
                return self.pick_type(cand);
            }
        }
        None
    }

    /// Rebuilds a minimal satisfying binary tree from the snapshots (§7.2).
    fn rebuild(
        &mut self,
        snapshots: &[(NodeId, NodeId)],
        t: &[bool],
        need_mark: bool,
    ) -> BinaryTree {
        let label = self
            .prep
            .lean
            .prop_entries()
            .find(|&(i, _)| t[i])
            .map(|(_, l)| l)
            .expect("every type carries exactly one label");
        let here_marked = t[self.prep.lean.start_index()];
        let has1 = t[self.dt(Program::Down1)];
        let has2 = t[self.dt(Program::Down2)];
        let below = need_mark && !here_marked;
        // Decide which side holds the mark (both the marked child and the
        // other, unmarked, child must exist for the chosen split).
        let (m1, m2) = if !below {
            (false, false)
        } else {
            let via1 = has1
                && self
                    .find_child(snapshots, Program::Down1, t, true)
                    .is_some()
                && (!has2
                    || self
                        .find_child(snapshots, Program::Down2, t, false)
                        .is_some());
            if via1 {
                (true, false)
            } else {
                (false, true)
            }
        };
        let child1 = if has1 {
            let ct = self
                .find_child(snapshots, Program::Down1, t, m1)
                .expect("1-witness exists by construction");
            Some(self.rebuild(snapshots, &ct, m1))
        } else {
            None
        };
        let child2 = if has2 {
            let ct = self
                .find_child(snapshots, Program::Down2, t, m2)
                .expect("2-witness exists by construction");
            Some(self.rebuild(snapshots, &ct, m2))
        } else {
            None
        };
        BinaryTree::new(label, here_marked, child1, child2)
    }
}

impl Backend for Sym<'_> {
    /// The satisfying root set: `target ∧ final_filter`, nonempty.
    type Hit = NodeId;

    fn step(&mut self) -> Result<bool, Exhausted> {
        let uses_mark = self.prep.uses_mark;
        let s_idx = self.prep.lean.start_index();
        self.state.round += 1;
        self.maybe_gc(&mut []);
        self.check_budget()?;
        // Refresh the cumulative images with the new frontier. These calls
        // may garbage-collect, so every handle used below is created
        // afterwards.
        if self.state.un != self.state.done_un {
            let mut frontier = self.bdd.diff(self.state.un, self.state.done_un);
            for (ai, a) in [Program::Down1, Program::Down2].into_iter().enumerate() {
                let img = self.image(a, &mut frontier)?;
                self.state.im_un[ai] = self.bdd.or(self.state.im_un[ai], img);
            }
            self.state.done_un = self.state.un;
        }
        if uses_mark && self.state.mk != self.state.done_mk {
            let mut frontier = self.bdd.diff(self.state.mk, self.state.done_mk);
            for (ai, a) in [Program::Down1, Program::Down2].into_iter().enumerate() {
                let img = self.image(a, &mut frontier)?;
                self.state.im_mk[ai] = self.bdd.or(self.state.im_mk[ai], img);
            }
            self.state.done_mk = self.state.mk;
        }
        let s_x = self.xv(s_idx);
        let not_s = self.bdd.not(s_x);
        let p1 = self.xv(self.dt(Program::Down1));
        let p2 = self.xv(self.dt(Program::Down2));
        let w1 = self.bdd.implies(p1, self.state.im_un[0]);
        let w2 = self.bdd.implies(p2, self.state.im_un[1]);
        // T° update.
        let mut fresh = self.bdd.and(self.types, not_s);
        fresh = self.bdd.and(fresh, w1);
        fresh = self.bdd.and(fresh, w2);
        let un_next = self.bdd.or(self.state.un, fresh);
        // T• update (three cases), only when the mark matters.
        let mk_next = if uses_mark {
            let case_a = {
                let mut c = self.bdd.and(self.types, s_x);
                c = self.bdd.and(c, w1);
                c = self.bdd.and(c, w2);
                c
            };
            let m1 = self.bdd.and(p1, self.state.im_mk[0]);
            let m2 = self.bdd.and(p2, self.state.im_mk[1]);
            let case_b = {
                let mut c = self.bdd.and(self.types, not_s);
                c = self.bdd.and(c, m1);
                c = self.bdd.and(c, w2);
                c
            };
            let case_c = {
                let mut c = self.bdd.and(self.types, not_s);
                c = self.bdd.and(c, w1);
                c = self.bdd.and(c, m2);
                c
            };
            let bc = self.bdd.or(case_b, case_c);
            let abc = self.bdd.or(case_a, bc);
            self.bdd.or(self.state.mk, abc)
        } else {
            self.state.mk
        };
        self.state.snapshots.push((un_next, mk_next));
        if std::env::var_os("XSAT_DEBUG").is_some() {
            eprintln!(
                "[xsat] iter {}: nodes={} set_size={} marked_size={}",
                self.state.round,
                self.bdd.node_count(),
                self.bdd.size(un_next),
                self.bdd.size(mk_next),
            );
        }
        let changed = un_next != self.state.un || mk_next != self.state.mk;
        self.state.un = un_next;
        self.state.mk = mk_next;
        Ok(changed)
    }

    fn check(&mut self) -> Option<NodeId> {
        // The plunging-formula root filter: no pending backward modality
        // and ψ ∈̇ t (§7.1). Built from persistent handles only, so it is
        // safe against the collections triggered inside `step`.
        let final_filter = {
            let u1 = self.xv(self.dt(Program::Up1));
            let u2 = self.xv(self.dt(Program::Up2));
            let nu1 = self.bdd.not(u1);
            let nu2 = self.bdd.not(u2);
            let root_cond = self.bdd.and(nu1, nu2);
            self.bdd.and(root_cond, self.psi_status)
        };
        let target = if self.prep.uses_mark {
            self.state.mk
        } else {
            self.state.un
        };
        let hit = self.bdd.and(target, final_filter);
        (hit != self.bdd.zero()).then_some(hit)
    }

    fn reconstruct(&mut self, hit: NodeId) -> Model {
        let uses_mark = self.prep.uses_mark;
        let root = self.pick_type(hit).expect("hit is satisfiable");
        let snapshots = std::mem::take(&mut self.state.snapshots);
        let tree = self.rebuild(&snapshots, &root, uses_mark);
        Model::from_binary(&tree)
    }

    fn telemetry(&self) -> Telemetry {
        let s = self.bdd.stats();
        Telemetry::Symbolic {
            bdd_nodes: s.live_nodes,
            counters: s.into(),
        }
    }

    fn observe(&self) -> StepObservation {
        let s = self.bdd.stats();
        // The type sets live on the x̄ rail (even variables); counting
        // satisfying assignments over both rails and dividing out the 2ⁿ
        // unconstrained ȳ variables yields the proved-type cardinality.
        let n = self.xvar.len() as u32;
        let free = 2f64.powi(n as i32);
        let card = |set: NodeId| (self.bdd.sat_count(set, 2 * n) / free).round() as u64;
        StepObservation {
            store_nodes: s.live_nodes as u64,
            proved: card(self.state.un) + card(self.state.mk),
            cache_hits: s.cache_hits,
            cache_lookups: s.cache_lookups,
        }
    }
}

/// Decides satisfiability of `goal` with the symbolic backend and default
/// options.
///
/// # Example
///
/// ```
/// use mulogic::Logic;
/// use solver::solve_symbolic;
///
/// let mut lg = Logic::new();
/// let goal = lg.parse("a & <1>b").unwrap();
/// let solved = solve_symbolic(&mut lg, goal);
/// assert!(solved.outcome.is_satisfiable());
/// ```
pub fn solve_symbolic(lg: &mut Logic, goal: Formula) -> Solved {
    solve_symbolic_with(lg, goal, &SymbolicOptions::default())
}

/// Decides satisfiability with explicit options (ablation hooks).
pub fn solve_symbolic_with(lg: &mut Logic, goal: Formula, opts: &SymbolicOptions) -> Solved {
    let mut bdd = Bdd::new();
    solve_symbolic_in(lg, goal, opts, &mut bdd, &Limits::none())
        .expect("an unbounded symbolic run cannot exhaust")
}

/// Decides satisfiability inside a caller-owned BDD manager, governed by
/// the caller's [`Limits`].
///
/// The manager is [`reset`](Bdd::reset) — not reallocated — before the
/// run: its arena, unique table and operation cache keep their capacity,
/// the previous problem's state is invalidated generationally in O(1),
/// and the node budget (if any) is re-armed for this run. This is the
/// entry point long-lived workers (the engine's batch executor, `xsat
/// serve`) use to amortize allocation across problems; verdicts are
/// identical to a fresh-manager run. Under [`Limits::none`] the run
/// cannot fail; with budgets set, a deadline or node-budget hit comes
/// back as [`SolveError::ResourceExhausted`].
pub fn solve_symbolic_in(
    lg: &mut Logic,
    goal: Formula,
    opts: &SymbolicOptions,
    bdd: &mut Bdd,
    limits: &Limits,
) -> Result<Solved, SolveError> {
    solve_symbolic_traced(lg, goal, opts, bdd, limits, &Recorder::noop())
}

/// [`solve_symbolic_in`] with trace recording: the lean construction and
/// the backend build (binarization, status BDDs, ∆ clauses) each get a
/// phase span, and the fixpoint loop emits per-iteration `step` events.
pub fn solve_symbolic_traced(
    lg: &mut Logic,
    goal: Formula,
    opts: &SymbolicOptions,
    bdd: &mut Bdd,
    limits: &Limits,
    rec: &Recorder,
) -> Result<Solved, SolveError> {
    // The deadline covers the whole solve: preparation and the backend's
    // status-BDD construction are charged against it (the backend's
    // internal polls measure from `started`, and the driver gets only
    // what construction left over).
    let started = Instant::now();
    let prep = {
        let _span = rec.span("lean");
        Prepared::new(lg, goal)
    };
    let (lean_size, closure_size) = (prep.lean.len(), prep.closure.len());
    let backend = {
        let _span = rec.span("build");
        Sym::new(lg, prep, opts, bdd, limits, started)
    };
    let remaining = limits.after(started.elapsed()).inspect_err(|e| {
        limit_event(rec, e);
    })?;
    run_fixpoint_traced(backend, lean_size, closure_size, &remaining, rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mulogic::ModelChecker;

    fn solve(src: &str) -> Solved {
        let mut lg = Logic::new();
        let goal = lg.parse(src).unwrap();
        solve_symbolic(&mut lg, goal)
    }

    #[test]
    fn trivial_cases() {
        assert!(solve("a").outcome.is_satisfiable());
        assert!(!solve("a & ~a").outcome.is_satisfiable());
        assert!(!solve("F").outcome.is_satisfiable());
        assert!(solve("T").outcome.is_satisfiable());
    }

    #[test]
    fn structure_and_model_check() {
        let cases = [
            "a & <1>(b & <2>c)",
            "a & ~<1>T",
            "let_mu X = b | <2>X in <1>X",
            "a & <1>(b & <-1>a)",
            "b & <-1>a",
            "a & <1>(let_mu X = d | <1>X | <2>X in X)",
        ];
        for src in cases {
            let mut lg = Logic::new();
            let goal = lg.parse(src).unwrap();
            let s = solve_symbolic(&mut lg, goal);
            let m = s.outcome.model().unwrap_or_else(|| panic!("{src} unsat"));
            let mc = ModelChecker::new(&m.tree());
            assert!(
                !mc.eval(&lg, goal).is_empty(),
                "model of {src} fails model check: {m}"
            );
        }
    }

    #[test]
    fn marks_are_unique() {
        let s = solve("a & <1>(b & s)");
        let m = s.outcome.model().unwrap();
        assert_eq!(m.tree().mark_count(), 1, "{m}");
        assert!(!solve("s & <1>s").outcome.is_satisfiable());
    }

    #[test]
    fn options_do_not_change_verdicts() {
        let cases = ["a & <1>b", "a & ~a", "s & <2>(c & ~s)", "b & <-2>a"];
        for src in cases {
            let mut verdicts = Vec::new();
            for monolithic in [false, true] {
                for order in [VarOrder::Bfs, VarOrder::Reversed] {
                    let mut lg = Logic::new();
                    let goal = lg.parse(src).unwrap();
                    let s = solve_symbolic_with(
                        &mut lg,
                        goal,
                        &SymbolicOptions {
                            monolithic_delta: monolithic,
                            var_order: order,
                            ..SymbolicOptions::default()
                        },
                    );
                    verdicts.push(s.outcome.is_satisfiable());
                }
            }
            assert!(
                verdicts.windows(2).all(|w| w[0] == w[1]),
                "{src}: {verdicts:?}"
            );
        }
    }

    #[test]
    fn gc_stress_preserves_verdicts_and_models() {
        // A tiny GC threshold forces collection after every relational
        // product step; verdicts and witnesses must be unchanged.
        let cases = [
            ("a & <1>(b & <2>c)", true),
            ("s & <2>(c & ~s)", true),
            ("a & ~a", false),
            ("b & <-1>a & <1>(let_mu X = d | <2>X in X)", true),
        ];
        for (src, expect_sat) in cases {
            let mut lg = Logic::new();
            let goal = lg.parse(src).unwrap();
            let s = solve_symbolic_with(
                &mut lg,
                goal,
                &SymbolicOptions {
                    gc_threshold: Some(1),
                    ..SymbolicOptions::default()
                },
            );
            assert_eq!(s.outcome.is_satisfiable(), expect_sat, "{src}");
            if let Some(m) = s.outcome.model() {
                let mc = ModelChecker::new_row(m.roots());
                assert!(!mc.eval(&lg, goal).is_empty(), "{src}: {m}");
            }
        }
    }

    #[test]
    fn stats_report_bdd_nodes() {
        let s = solve("a & <1>b");
        assert!(s.stats.telemetry.bdd_nodes().unwrap() > 10);
        assert_eq!(s.stats.telemetry.backend_name(), "symbolic");
        assert!(s.stats.lean_size > 0);
    }
}

//! The engine as a library: register a workspace once, then fan a batch of
//! decision problems out across worker threads with memoized verdicts —
//! including protocol-v2 resource limits and an `unknown` verdict from a
//! deliberately starved budget.
//!
//! ```text
//! cargo run --release --example batch_service
//! ```

use xsat::engine::{Engine, EngineConfig, Limits, Request, Value};

fn main() -> Result<(), String> {
    let mut engine = Engine::with_config(EngineConfig {
        threads: 4,
        // Engine-wide defaults; individual requests override them with a
        // "limits" object.
        limits: Limits::default(),
        ..EngineConfig::default()
    });

    let lines = [
        // Register once…
        r#"{"op":"dtd","name":"d1","source":"<!ELEMENT r (x, y)> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY>"}"#,
        r#"{"op":"query","name":"all","xpath":"child::*"}"#,
        r#"{"op":"query","name":"xy","xpath":"child::x | child::y"}"#,
        // …then pose many problems against the names.
        r#"{"id":1,"op":"contains","lhs":"all","rhs":"xy","type":"d1"}"#,
        r#"{"id":2,"op":"contains","lhs":"all","rhs":"xy"}"#,
        r#"{"id":3,"op":"overlap","lhs":"child::x","rhs":"all","type":"d1"}"#,
        r#"{"id":4,"op":"covers","query":"all","by":["child::x","child::*[not(self::x)]"]}"#,
        // A repeat of id 1: answered from the memo cache.
        r#"{"id":5,"op":"contains","lhs":"all","rhs":"xy","type":"d1"}"#,
    ];
    let requests: Vec<Request> = lines
        .iter()
        .map(|l| Request::parse(l))
        .collect::<Result<_, _>>()?;

    let outcome = engine.run_batch(&requests);
    for response in &outcome.responses {
        println!("{}", response.to_json());
    }
    eprintln!("summary: {}", outcome.stats.to_value().to_json());

    // A deliberately starved iteration budget: the engine answers
    // "status":"unknown" naming the exhausted resource, and never caches
    // it — a retry with bigger limits re-solves.
    let unknown = engine
        .execute_line(r#"{"id":6,"op":"sat","query":"a/b[c]","limits":{"max_iterations":1}}"#);
    println!("{}", unknown.to_json());
    assert_eq!(
        unknown.get("status").and_then(Value::as_str),
        Some("unknown")
    );
    assert_eq!(
        unknown.get("resource").and_then(Value::as_str),
        Some("iterations")
    );

    // The same problem under the default limits decides normally (and the
    // unknown above left no cache entry behind).
    let decided = engine.execute_line(r#"{"id":7,"op":"sat","query":"a/b[c]"}"#);
    println!("{}", decided.to_json());
    assert_eq!(decided.get("status").and_then(Value::as_str), Some("holds"));
    assert_eq!(decided.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(engine.counters().unknown, 1);
    Ok(())
}

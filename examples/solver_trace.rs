//! The example run of the algorithm from the paper's §6.3 / Fig 18:
//! is `child::c/preceding-sibling::a[child::b]` contained in
//! `child::c[child::b]`?
//!
//! The answer is *no*: the containment formula `ϕ1 ∧ ¬ϕ2` is satisfiable
//! and the solver reconstructs the paper's depth-3 counter-example — a
//! context node with an `a[b]` child followed by a `c` child.
//!
//! Run with `cargo run --example solver_trace`. Pass
//! `--trace-file FILE` to stream the solve's structured trace — compile,
//! lean and build phases, one `step` event per fixpoint iteration with
//! BDD node and cache-rate deltas — to FILE as JSON lines (the same
//! format `xsat --trace-file` emits; schema in docs/OBSERVABILITY.md).

use std::sync::Arc;

use xsat::bdd::Bdd;
use xsat::mulogic::{cycle_free, Logic, ModelChecker};
use xsat::obs::{JsonlSink, Recorder};
use xsat::solver::{solve_symbolic_traced, Limits, Prepared, SymbolicOptions};
use xsat::xpath::{compile_query, eval_on_tree, parse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let recorder = match args.as_slice() {
        [] => Recorder::noop(),
        [flag, path] if flag == "--trace-file" => {
            println!("tracing to {path}");
            Recorder::new(Arc::new(JsonlSink::create(path)?))
        }
        _ => return Err("usage: solver_trace [--trace-file FILE]".into()),
    };
    let e1 = parse("child::c/preceding-sibling::a[child::b]")?;
    let e2 = parse("child::c[child::b]")?;
    println!("e1 = {e1}");
    println!("e2 = {e2}");

    let mut lg = Logic::new();
    let f1 = compile_query(&mut lg, &e1);
    let f2 = compile_query(&mut lg, &e2);
    println!("\nϕ1 = {}", lg.display(f1));
    println!("ϕ2 = {}", lg.display(f2));
    assert!(cycle_free(&lg, f1) && cycle_free(&lg, f2));

    // ψ = ϕ1 ∧ ¬ϕ2 — the negated containment.
    let nf2 = lg.not(f2);
    let goal = lg.and(f1, nf2);

    let prep = Prepared::new(&mut lg, goal);
    println!(
        "\nLean(ψ): {} atoms over cl(ψ) of {} formulas",
        prep.lean.len(),
        prep.closure.len()
    );

    let solved = solve_symbolic_traced(
        &mut lg,
        goal,
        &SymbolicOptions::default(),
        &mut Bdd::new(),
        &Limits::none(),
        &recorder,
    )?;
    println!(
        "fixpoint reached satisfiability after {} iterations ({:?})",
        solved.stats.iterations, solved.stats.duration
    );
    let model = solved.outcome.model().expect("e1 is not contained in e2");
    println!("\ncounter-example: {}", model.xml());

    // Demonstrate it: evaluate both queries on the counter-example.
    let tree = model.tree();
    let sel1 = eval_on_tree(&e1, &tree);
    let sel2 = eval_on_tree(&e2, &tree);
    println!(
        "e1 selects {} node(s), e2 selects {} node(s)",
        sel1.len(),
        sel2.len()
    );
    assert!(!sel1.is_empty() && sel2.is_empty());

    // And the model checker agrees the goal holds somewhere.
    let mc = ModelChecker::new(&tree);
    assert!(!mc.eval(&lg, goal).is_empty());
    println!("verified by the XPath interpreter and the model checker.");
    Ok(())
}

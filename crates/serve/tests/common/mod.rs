//! Test harness shared by the TCP serving-tier suites: a tiny JSONL
//! client over a real socket, plus config shorthands.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of the helpers.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use engine::{json, Value};
use serve::{Server, ServerConfig};

/// A blocking JSONL client on a real TCP connection.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `server`.
    pub fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        // Tests must fail, not hang, when a response never arrives.
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Client { stream, reader }
    }

    /// Sends one request line.
    pub fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").expect("send");
        self.stream.flush().expect("flush");
    }

    /// Sends raw bytes, no newline appended.
    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send raw");
        self.stream.flush().expect("flush");
    }

    /// Reads one response line; `None` at EOF (connection closed).
    pub fn recv(&mut self) -> Option<Value> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        if n == 0 {
            return None;
        }
        Some(json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}")))
    }

    /// One request, one response.
    pub fn roundtrip(&mut self, line: &str) -> Value {
        self.send(line);
        self.recv().expect("response before EOF")
    }

    /// The write half, for tests that shut down rudely.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// A small, deterministic test server: 2 workers, fault injection on.
pub fn test_config() -> ServerConfig {
    ServerConfig {
        threads: 2,
        fault_injection: true,
        ..ServerConfig::default()
    }
}

/// Binds a server on a free loopback port.
pub fn start(config: ServerConfig) -> Server {
    Server::bind(config, "127.0.0.1:0").expect("bind")
}

/// Field accessors for assertions.
pub fn s<'v>(v: &'v Value, k: &str) -> Option<&'v str> {
    v.get(k).and_then(Value::as_str)
}

/// Boolean field.
pub fn b(v: &Value, k: &str) -> Option<bool> {
    v.get(k).and_then(Value::as_bool)
}

/// Polls the server-side `stats` op until `pred` holds (or panics after
/// ~2s) — the deterministic way to wait for a queue/in-flight state.
pub fn wait_stats(client: &mut Client, pred: impl Fn(&Value) -> bool) {
    for _ in 0..200 {
        let stats = client.roundtrip(r#"{"op":"stats"}"#);
        if pred(&stats) {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("stats predicate never held");
}

//! The cycle-freeness judgment `∆ ‖ Γ ⊢ᴿᵢ ϕ` of Fig 3.
//!
//! Cycle-free formulas bound the number of *modality cycles* `⟨a⟩⟨ā⟩` along
//! every path, independently of fixpoint unfolding. This is the syntactic
//! condition under which least and greatest fixpoints collapse on finite
//! trees (Lemma 4.2), making the logic closed under negation. The
//! translations of XPath expressions and regular tree types are cycle-free
//! by construction (Proposition 5.1); this module provides the check used to
//! validate that invariant and arbitrary user-written formulas.

use std::collections::{HashMap, HashSet};

use crate::syntax::{Formula, FormulaKind, Program, Var};
use crate::Logic;

/// Direction information Γ(X) attached to a fixpoint variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// `⊘` — nothing known yet (the variable occurs under no modality).
    Unknown,
    /// `⟨a⟩` — the last modality taken was consistent.
    Mod(Program),
    /// `⊥` — a modality cycle `⟨a⟩⟨ā⟩` was detected.
    Bot,
}

impl Dir {
    /// The `· C ⟨a⟩` operator: updates the direction when crossing `⟨a⟩`.
    ///
    /// A cycle appears exactly when the new modality is the converse of the
    /// previous one (the table of §4).
    fn cross(self, a: Program) -> Dir {
        match self {
            Dir::Bot => Dir::Bot,
            Dir::Unknown => Dir::Mod(a),
            Dir::Mod(prev) => {
                if a == prev.converse() {
                    Dir::Bot
                } else {
                    Dir::Mod(a)
                }
            }
        }
    }
}

struct Checker<'a> {
    lg: &'a Logic,
    /// ∆: recursion variables to their defining formulas.
    defs: HashMap<Var, Formula>,
}

impl Checker<'_> {
    /// `∆ ‖ Γ ⊢ᴿᵢ ϕ` — returns true iff derivable.
    fn check(
        &mut self,
        gamma: &HashMap<Var, Dir>,
        expanded: &HashSet<Var>, // R
        ignored: &HashSet<Var>,  // I
        f: Formula,
    ) -> bool {
        match self.lg.kind(f).clone() {
            FormulaKind::True
            | FormulaKind::False
            | FormulaKind::Prop(_)
            | FormulaKind::NotProp(_)
            | FormulaKind::Start
            | FormulaKind::NotStart
            | FormulaKind::NotDiamTrue(_) => true,
            FormulaKind::Or(a, b) | FormulaKind::And(a, b) => {
                self.check(gamma, expanded, ignored, a) && self.check(gamma, expanded, ignored, b)
            }
            FormulaKind::Diam(a, phi) => {
                let crossed: HashMap<Var, Dir> =
                    gamma.iter().map(|(&v, &d)| (v, d.cross(a))).collect();
                self.check(&crossed, expanded, ignored, phi)
            }
            FormulaKind::Mu(binds, body) | FormulaKind::Nu(binds, body) => {
                let bound: Vec<Var> = binds.iter().map(|&(v, _)| v).collect();
                // ∆ + X̄ : ϕ̄
                let saved: Vec<(Var, Option<Formula>)> = bound
                    .iter()
                    .map(|&v| (v, self.defs.get(&v).copied()))
                    .collect();
                for &(v, phi) in &binds {
                    self.defs.insert(v, phi);
                }
                // Γ + X̄ : ⊘ ; R \ X̄ ; I \ X̄
                let mut g2 = gamma.clone();
                let mut r2 = expanded.clone();
                let mut i2 = ignored.clone();
                for &v in &bound {
                    g2.insert(v, Dir::Unknown);
                    r2.remove(&v);
                    i2.remove(&v);
                }
                let defs_ok = binds.iter().all(|&(_, phi)| self.check(&g2, &r2, &i2, phi));
                // Body: ∆ ‖ Γ ⊢ with I ∪ X̄ and R \ X̄.
                let mut ib = ignored.clone();
                let mut rb = expanded.clone();
                for &v in &bound {
                    ib.insert(v);
                    rb.remove(&v);
                }
                let body_ok = defs_ok && self.check(gamma, &rb, &ib, body);
                // Restore ∆.
                for (v, old) in saved {
                    match old {
                        Some(phi) => {
                            self.defs.insert(v, phi);
                        }
                        None => {
                            self.defs.remove(&v);
                        }
                    }
                }
                body_ok
            }
            FormulaKind::Var(v) => {
                // Ign: already fully checked.
                if ignored.contains(&v) {
                    return true;
                }
                if expanded.contains(&v) {
                    // NoRec: needs a consistent direction.
                    return matches!(gamma.get(&v), Some(Dir::Mod(_)));
                }
                // Rec: expand the definition once.
                match self.defs.get(&v).copied() {
                    Some(def) => {
                        let mut r2 = expanded.clone();
                        r2.insert(v);
                        self.check(gamma, &r2, ignored, def)
                    }
                    // A free variable: treated as an atom (no cycles through it).
                    None => true,
                }
            }
        }
    }
}

/// Decides whether `f` is a cycle-free formula (Fig 3).
///
/// # Example
///
/// ```
/// use mulogic::Logic;
///
/// let mut lg = Logic::new();
/// let ok = lg.parse("let_mu X = a | <2>X in X").unwrap();
/// assert!(mulogic::cycle_free(&lg, ok));
/// let bad = lg.parse("let_mu X = <1>(a | <-1>X) in X").unwrap();
/// assert!(!mulogic::cycle_free(&lg, bad));
/// ```
pub fn cycle_free(lg: &Logic, f: Formula) -> bool {
    let mut ck = Checker {
        lg,
        defs: HashMap::new(),
    };
    ck.check(&HashMap::new(), &HashSet::new(), &HashSet::new(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree::{Direction, Label};

    fn lg() -> Logic {
        Logic::new()
    }

    #[test]
    fn atoms_are_cycle_free() {
        let mut l = lg();
        let a = l.prop(Label::new("a"));
        assert!(cycle_free(&l, a));
        let t = l.tt();
        assert!(cycle_free(&l, t));
    }

    #[test]
    fn child_axis_translation_is_cycle_free() {
        // µZ. ⟨1̄⟩a ∨ ⟨2̄⟩Z
        let mut l = lg();
        let a = l.prop(Label::new("a"));
        let z = l.fresh_var("Z");
        let zv = l.var(z);
        let up1 = l.diam(Direction::Up1, a);
        let up2 = l.diam(Direction::Up2, zv);
        let phi = l.or(up1, up2);
        let f = l.mu1(z, phi);
        assert!(cycle_free(&l, f));
    }

    #[test]
    fn direct_cycle_rejected() {
        // µX. ⟨1⟩⟨1̄⟩X — has a modality cycle even though X is guarded.
        let mut l = lg();
        let x = l.fresh_var("X");
        let xv = l.var(x);
        let up = l.diam(Direction::Up1, xv);
        let dn = l.diam(Direction::Down1, up);
        let f = l.mu1(x, dn);
        assert!(!cycle_free(&l, f));
    }

    #[test]
    fn paper_example_not_cycle_free() {
        // µX = ⟨1⟩(a ∨ ⟨1̄⟩X) in X — the paper writes ⊤ in place of `a`; the
        // smart constructors would simplify `⊤ ∨ ϕ`, so a proposition is
        // used to preserve the shape. Any unfolding accumulates ⟨1⟩⟨1̄⟩
        // cycles.
        let mut l = lg();
        let x = l.fresh_var("X");
        let xv = l.var(x);
        let a = l.prop(Label::new("a"));
        let up = l.diam(Direction::Up1, xv);
        let or = l.or(a, up);
        let dn = l.diam(Direction::Down1, or);
        let f = l.mu1(x, dn);
        assert!(!cycle_free(&l, f));
    }

    #[test]
    fn paper_example_cycle_free_pair() {
        // µX = ⟨1⟩(X ∨ Y), Y = ⟨1̄⟩(Y ∨ ⊤) in X — at most one cycle per path.
        let mut l = lg();
        let x = l.fresh_var("X");
        let y = l.fresh_var("Y");
        let xv = l.var(x);
        let yv = l.var(y);
        let tt = l.tt();
        let or_xy = l.or(xv, yv);
        let def_x = l.diam(Direction::Down1, or_xy);
        let or_yt = l.or(yv, tt);
        let def_y = l.diam(Direction::Up1, or_yt);
        let f = l.mu(vec![(x, def_x), (y, def_y)], xv);
        assert!(cycle_free(&l, f));
    }

    #[test]
    fn unguarded_variable_rejected() {
        // µX. X ∨ a — X occurs under no modality: Γ(X) = ⊘ at occurrence.
        let mut l = lg();
        let x = l.fresh_var("X");
        let xv = l.var(x);
        let a = l.prop(Label::new("a"));
        let phi = l.or(xv, a);
        let f = l.mu1(x, phi);
        assert!(!cycle_free(&l, f));
    }

    #[test]
    fn plunging_formula_is_cycle_free() {
        // µX. ϕ ∨ ⟨1⟩X ∨ ⟨2⟩X with ϕ cycle-free (§7.1).
        let mut l = lg();
        let a = l.prop(Label::new("a"));
        let x = l.fresh_var("X");
        let xv = l.var(x);
        let d1 = l.diam(Direction::Down1, xv);
        let d2 = l.diam(Direction::Down2, xv);
        let or1 = l.or(a, d1);
        let phi = l.or(or1, d2);
        let f = l.mu1(x, phi);
        assert!(cycle_free(&l, f));
    }

    #[test]
    fn forward_backward_composition_cycle_free() {
        // Fig 11: following-sibling then preceding-sibling — back and forth
        // yet cycle-free.
        // a ∧ µZ.⟨2̄⟩s ∨ ⟨2̄⟩Z wrapped under b ∧ µY.⟨2⟩(…) ∨ ⟨2⟩Y
        let mut l = lg();
        let s = l.start();
        let z = l.fresh_var("Z");
        let zv = l.var(z);
        let u1 = l.diam(Direction::Up2, s);
        let u2 = l.diam(Direction::Up2, zv);
        let or_u = l.or(u1, u2);
        let a = l.prop(Label::new("a"));
        let mu_z = l.mu1(z, or_u);
        let inner = l.and(a, mu_z);
        let y = l.fresh_var("Y");
        let yv = l.var(y);
        let d1 = l.diam(Direction::Down2, inner);
        let d2 = l.diam(Direction::Down2, yv);
        let or_d = l.or(d1, d2);
        let b = l.prop(Label::new("b"));
        let mu_y = l.mu1(y, or_d);
        let f = l.and(b, mu_y);
        assert!(cycle_free(&l, f));
    }
}

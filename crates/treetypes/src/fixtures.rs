//! DTD fixtures used by the paper's evaluation (§8, Table 1): SMIL 1.0,
//! XHTML 1.0 Strict, and the Wikipedia fragment of Fig 12.
//!
//! The W3C DTDs use parameter entities extensively; they are stored here
//! with entities expanded (the content models are faithful transcriptions
//! of the published element declarations). The symbol counts match the
//! paper's Table 1: 19 for SMIL 1.0 and 77 for XHTML 1.0 Strict.

use crate::dtd::Dtd;

/// The Wikipedia encyclopedia DTD fragment of the paper's Fig 12.
pub const WIKIPEDIA_DTD: &str = r#"
<!ELEMENT article (meta, (text | redirect))>
<!ELEMENT meta (title, status?, interwiki*, history?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT interwiki (#PCDATA)>
<!ELEMENT status (#PCDATA)>
<!ELEMENT history (edit)+>
<!ELEMENT edit (status?, interwiki*, (text | redirect)?)>
<!ELEMENT redirect EMPTY>
<!ELEMENT text (#PCDATA)>
"#;

/// SMIL 1.0 (19 element symbols), parameter entities expanded.
///
/// `%media-object;` = `audio|video|text|img|animation|textstream|ref`,
/// `%container-content;` = schedule | switch | link.
pub const SMIL_1_0_DTD: &str = r#"
<!ELEMENT smil (head?, body?)>
<!ELEMENT head (meta*, ((layout | switch), meta*)?)>
<!ELEMENT layout ANY>
<!ELEMENT region EMPTY>
<!ELEMENT root-layout EMPTY>
<!ELEMENT meta EMPTY>
<!ELEMENT body (par | seq | audio | video | text | img | animation | textstream | ref | switch | a)*>
<!ELEMENT par (par | seq | audio | video | text | img | animation | textstream | ref | switch | a)*>
<!ELEMENT seq (par | seq | audio | video | text | img | animation | textstream | ref | switch | a)*>
<!ELEMENT switch (par | seq | audio | video | text | img | animation | textstream | ref | a | switch | layout)*>
<!ELEMENT audio (anchor)*>
<!ELEMENT video (anchor)*>
<!ELEMENT text (anchor)*>
<!ELEMENT img (anchor)*>
<!ELEMENT animation (anchor)*>
<!ELEMENT textstream (anchor)*>
<!ELEMENT ref (anchor)*>
<!ELEMENT a (par | seq | audio | video | text | img | animation | textstream | ref | switch)*>
<!ELEMENT anchor EMPTY>
"#;

/// XHTML 1.0 Strict (77 element symbols), parameter entities expanded.
///
/// Entity expansions used below:
/// * `%inline;`  = `a | br | span | bdo | map | object | img | tt | i | b |
///   big | small | em | strong | dfn | code | q | samp | kbd | var | cite |
///   abbr | acronym | sub | sup | input | select | textarea | label |
///   button`
/// * `%Inline;`  = `(#PCDATA | %inline; | ins | del | script)*`
/// * `%block;`   = `p | h1..h6 | div | ul | ol | dl | pre | hr |
///   blockquote | address | fieldset | table`
/// * `%Block;`   = `(%block; | form | noscript | ins | del | script)*`
/// * `%Flow;`    = `(#PCDATA | %block; | form | %inline; | noscript | ins |
///   del | script)*`
pub const XHTML_1_0_STRICT_DTD: &str = r#"
<!ELEMENT html (head, body)>
<!ELEMENT head ((script | style | meta | link | object)*, ((title, (script | style | meta | link | object)*, (base, (script | style | meta | link | object)*)?) | (base, (script | style | meta | link | object)*, (title, (script | style | meta | link | object)*))))>
<!ELEMENT title (#PCDATA)>
<!ELEMENT base EMPTY>
<!ELEMENT meta EMPTY>
<!ELEMENT link EMPTY>
<!ELEMENT style (#PCDATA)>
<!ELEMENT script (#PCDATA)>
<!ELEMENT noscript (p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | hr | blockquote | address | fieldset | table | form | noscript | ins | del | script)*>
<!ELEMENT body (p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | hr | blockquote | address | fieldset | table | form | noscript | ins | del | script)*>
<!ELEMENT div (#PCDATA | p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | hr | blockquote | address | fieldset | table | form | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | noscript | ins | del | script)*>
<!ELEMENT p (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT h1 (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT h2 (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT h3 (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT h4 (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT h5 (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT h6 (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT ul (li)+>
<!ELEMENT ol (li)+>
<!ELEMENT li (#PCDATA | p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | hr | blockquote | address | fieldset | table | form | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | noscript | ins | del | script)*>
<!ELEMENT dl (dt | dd)+>
<!ELEMENT dt (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT dd (#PCDATA | p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | hr | blockquote | address | fieldset | table | form | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | noscript | ins | del | script)*>
<!ELEMENT address (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT hr EMPTY>
<!ELEMENT pre (#PCDATA | a | br | span | bdo | map | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT blockquote (p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | hr | blockquote | address | fieldset | table | form | noscript | ins | del | script)*>
<!ELEMENT ins (#PCDATA | p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | hr | blockquote | address | fieldset | table | form | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | noscript | ins | del | script)*>
<!ELEMENT del (#PCDATA | p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | hr | blockquote | address | fieldset | table | form | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | noscript | ins | del | script)*>
<!ELEMENT a (#PCDATA | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT span (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT bdo (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT br EMPTY>
<!ELEMENT em (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT strong (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT dfn (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT code (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT samp (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT kbd (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT var (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT cite (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT abbr (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT acronym (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT q (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT sub (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT sup (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT tt (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT i (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT b (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT big (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT small (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT object (#PCDATA | param | p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | hr | blockquote | address | fieldset | table | form | a | br | span | bdo | map | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT param EMPTY>
<!ELEMENT img EMPTY>
<!ELEMENT map ((p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | hr | blockquote | address | fieldset | table | form | noscript | ins | del | script)+ | area+)>
<!ELEMENT area EMPTY>
<!ELEMENT form (p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | hr | blockquote | address | fieldset | table | noscript | ins | del | script)*>
<!ELEMENT label (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | button | ins | del | script)*>
<!ELEMENT input EMPTY>
<!ELEMENT select (optgroup | option)+>
<!ELEMENT optgroup (option)+>
<!ELEMENT option (#PCDATA)>
<!ELEMENT textarea (#PCDATA)>
<!ELEMENT fieldset (#PCDATA | legend | p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | hr | blockquote | address | fieldset | table | form | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | noscript | ins | del | script)*>
<!ELEMENT legend (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT button (#PCDATA | p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | blockquote | address | table | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | noscript | ins | del | script)*>
<!ELEMENT table (caption?, (col* | colgroup*), thead?, tfoot?, (tbody+ | tr+))>
<!ELEMENT caption (#PCDATA | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | ins | del | script)*>
<!ELEMENT thead (tr)+>
<!ELEMENT tfoot (tr)+>
<!ELEMENT tbody (tr)+>
<!ELEMENT colgroup (col)*>
<!ELEMENT col EMPTY>
<!ELEMENT tr (th | td)+>
<!ELEMENT th (#PCDATA | p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | hr | blockquote | address | fieldset | table | form | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | noscript | ins | del | script)*>
<!ELEMENT td (#PCDATA | p | h1 | h2 | h3 | h4 | h5 | h6 | div | ul | ol | dl | pre | hr | blockquote | address | fieldset | table | form | a | br | span | bdo | map | object | img | tt | i | b | big | small | em | strong | dfn | code | q | samp | kbd | var | cite | abbr | acronym | sub | sup | input | select | textarea | label | button | noscript | ins | del | script)*>
"#;

/// Parses the bundled Wikipedia DTD fragment (Fig 12).
///
/// # Example
///
/// ```
/// let dtd = treetypes::wikipedia();
/// assert_eq!(dtd.symbol_count(), 9);
/// ```
pub fn wikipedia() -> Dtd {
    Dtd::parse(WIKIPEDIA_DTD).expect("bundled wikipedia dtd parses")
}

/// Parses the bundled SMIL 1.0 DTD (19 symbols, Table 1).
pub fn smil_1_0() -> Dtd {
    Dtd::parse(SMIL_1_0_DTD).expect("bundled smil dtd parses")
}

/// Parses the bundled XHTML 1.0 Strict DTD (77 symbols, Table 1).
pub fn xhtml_1_0_strict() -> Dtd {
    Dtd::parse(XHTML_1_0_STRICT_DTD).expect("bundled xhtml dtd parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binarize::BinaryType;
    use ftree::Tree;

    #[test]
    fn table1_symbol_counts() {
        assert_eq!(smil_1_0().symbol_count(), 19);
        assert_eq!(xhtml_1_0_strict().symbol_count(), 77);
        assert_eq!(wikipedia().symbol_count(), 9);
    }

    #[test]
    fn smil_accepts_presentation() {
        let dtd = smil_1_0();
        let doc = Tree::parse_xml(
            "<smil><head><meta/><switch><seq><video/><audio/></seq></switch></head>\
             <body><par><video/><audio/></par></body></smil>",
        )
        .unwrap();
        assert!(dtd.validates(&doc));
        // region under body is invalid.
        let bad = Tree::parse_xml("<smil><body><region/></body></smil>").unwrap();
        assert!(!dtd.validates(&bad));
    }

    #[test]
    fn xhtml_accepts_basic_page() {
        let dtd = xhtml_1_0_strict();
        let doc = Tree::parse_xml(
            "<html><head><title/></head><body><p><a><span/></a></p>\
             <table><tr><td><p/></td></tr></table></body></html>",
        )
        .unwrap();
        assert!(dtd.validates(&doc));
        // body may not directly contain text-level a.
        let bad = Tree::parse_xml("<html><head><title/></head><body><a/></body></html>").unwrap();
        assert!(!dtd.validates(&bad));
        // head requires a title.
        let bad2 = Tree::parse_xml("<html><head/><body/></html>").unwrap();
        assert!(!dtd.validates(&bad2));
    }

    #[test]
    fn xhtml_anchor_nesting_is_possible_indirectly() {
        // The e8 experiment: anchors cannot nest directly…
        let dtd = xhtml_1_0_strict();
        let direct =
            Tree::parse_xml("<html><head><title/></head><body><p><a><a/></a></p></body></html>")
                .unwrap();
        assert!(!dtd.validates(&direct));
        // …but can through an intermediate inline element such as span.
        let indirect = Tree::parse_xml(
            "<html><head><title/></head><body><p><a><span><a/></span></a></p></body></html>",
        )
        .unwrap();
        assert!(dtd.validates(&indirect));
    }

    #[test]
    fn binary_sizes_are_reported() {
        let smil = BinaryType::from_dtd(&smil_1_0());
        let xhtml = BinaryType::from_dtd(&xhtml_1_0_strict());
        // Paper (Table 1): 11 and 325 with the authors' encoding; ours is a
        // different but comparable construction.
        assert!(smil.var_count() >= 11, "{}", smil.var_count());
        assert!(xhtml.var_count() >= 77, "{}", xhtml.var_count());
    }

    #[test]
    fn binary_types_agree_with_validator_on_fixtures() {
        for dtd in [wikipedia(), smil_1_0()] {
            let bt = BinaryType::from_dtd(&dtd);
            let docs = [
                "<article><meta><title/></meta><text/></article>",
                "<smil><body><seq><audio/></seq></body></smil>",
                "<smil><head><meta/></head></smil>",
                "<article><redirect/></article>",
                "<smil/>",
            ];
            for src in docs {
                let t = Tree::parse_xml(src).unwrap();
                assert_eq!(
                    dtd.validates(&t),
                    bt.matches_tree(&t),
                    "disagreement on {src}"
                );
            }
        }
    }
}

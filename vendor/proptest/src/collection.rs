//! Collection strategies: random-length `Vec`s.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size interval for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

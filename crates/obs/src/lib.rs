//! Observability substrate for the xsat stack.
//!
//! Three independent pieces, all dependency-free and cheap enough to stay
//! compiled into release builds:
//!
//! * [`Recorder`] — phase-scoped tracing. A recorder is either *disabled*
//!   (the [`Recorder::noop`] default: one `Option` check per call site, no
//!   allocation, no atomics) or wired to an [`Sink`] that receives
//!   structured [`Event`]s: solve begin/end, phase spans, per-iteration
//!   fixpoint steps, limit checks and memo-cache lookups. Field values are
//!   scalars and `&'static str` only, so recording an event allocates a
//!   single small `Vec` and nothing else.
//! * [`Registry`] — a process-wide metrics registry of atomic counters,
//!   gauges and fixed-bucket latency histograms, rendered either as a
//!   snapshot (for the JSONL protocol) or as Prometheus text exposition
//!   format (for `xsat metrics`). The shared instance lives behind
//!   [`metrics()`].
//! * [`SlowLog`] — a bounded ring buffer of fully-traced slow solves,
//!   fed by the engine when a solve exceeds its configured threshold.
//!
//! The event schema and metric names are documented in
//! `docs/OBSERVABILITY.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod slow;
mod trace;

pub use metrics::{metrics, Counter, Gauge, Histogram, MetricValue, Registry, Snapshot};
pub use slow::{SlowEntry, SlowLog};
pub use trace::{Event, FieldValue, JsonlSink, MemorySink, Recorder, Sink, Span, TeeSink};

//! Bit-vector ψ-types for the explicit solver, plus the word-parallel
//! machinery behind its table construction: [`TypeBits`] doubles as a
//! packed bitset over the type universe (word-level union, intersection,
//! popcount), and [`status_columns`] evaluates `status_ϕ` over 64 types
//! per formula walk by instantiating the status evaluator's [`BoolAlg`]
//! at `u64`.

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use mulogic::{status, BoolAlg, Formula, Lean, Logic, Program};

use crate::limits::{Exhausted, Limits};

/// A ψ-type as a bit vector over the lean (one bit per [`mulogic::LeanAtom`]).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeBits {
    words: Box<[u64]>,
    len: usize,
}

impl TypeBits {
    /// The all-zero vector over a lean of `len` atoms.
    pub fn empty(len: usize) -> Self {
        TypeBits {
            words: vec![0; len.div_ceil(64)].into_boxed_slice(),
            len,
        }
    }

    /// Number of atoms (bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        if v {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// The bits as a `Vec<bool>` (for the status evaluator).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Builds from a `bool` slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut t = TypeBits::empty(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            t.set(i, b);
        }
        t
    }

    /// The all-one vector of `len` bits (tail bits of the last word stay
    /// zero, preserving the popcount invariant).
    pub fn full(len: usize) -> Self {
        let mut t = TypeBits::empty(len);
        for (w, word) in t.words.iter_mut().enumerate() {
            *word = Self::tail_mask(len, w);
        }
        t
    }

    /// The valid-bit mask of word `w` for a vector of `len` bits.
    fn tail_mask(len: usize, w: usize) -> u64 {
        let lo = w * 64;
        let width = len.saturating_sub(lo).min(64);
        if width == 64 {
            !0
        } else {
            (1u64 << width) - 1
        }
    }

    /// Number of set bits (word-level popcount).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// In-place union (`self |= other`). Both sides must have equal length.
    pub fn union_with(&mut self, other: &TypeBits) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection (`self &= other`).
    pub fn intersect_with(&mut self, other: &TypeBits) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    /// In-place difference (`self &= !other`) — the complement-free way to
    /// clear bits, so the tail invariant survives.
    pub fn difference_with(&mut self, other: &TypeBits) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// The index of the first set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        self.words
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(i, w)| i * 64 + w.trailing_zeros() as usize)
    }

    /// Iterates the indices of the set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            std::iter::successors((word != 0).then_some(word), |&w| {
                let next = w & (w - 1);
                (next != 0).then_some(next)
            })
            .map(move |w| wi * 64 + w.trailing_zeros() as usize)
        })
    }
}

impl fmt::Debug for TypeBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypeBits[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

/// [`BoolAlg`] at `u64`: one value bit per type of a 64-type block, so a
/// single `status` walk decides a formula for the whole block.
struct WordAlg<'a> {
    /// One word per lean atom: bit `j` is the atom's value at the block's
    /// `j`-th type.
    vars: &'a [u64],
}

impl BoolAlg for WordAlg<'_> {
    type Value = u64;
    fn tt(&mut self) -> u64 {
        !0
    }
    fn ff(&mut self) -> u64 {
        0
    }
    fn var(&mut self, i: usize) -> u64 {
        self.vars[i]
    }
    fn not(&mut self, v: u64) -> u64 {
        !v
    }
    fn and(&mut self, a: u64, b: u64) -> u64 {
        a & b
    }
    fn or(&mut self, a: u64, b: u64) -> u64 {
        a | b
    }
}

/// Evaluates each formula's `status` over every type, 64 types at a time.
///
/// The old table builders walked `status` once per type per formula with
/// a fresh memo each type — the dominant cost of the enumerating
/// backends. This transposes the work: per 64-type block, the lean atoms
/// are gathered into `u64` columns and every formula is evaluated once
/// over the whole block through [`WordAlg`], sharing one memo per block.
/// Returns one bitset over the type universe per formula, in order.
///
/// Polls `limits` (cancel token, then deadline) once per block so a
/// portfolio loser aborts mid-construction instead of finishing a build
/// nobody will read.
pub(crate) fn status_columns(
    lg: &mut Logic,
    lean: &Lean,
    types: &[TypeBits],
    formulas: &[Formula],
    limits: &Limits,
    started: Instant,
) -> Result<Vec<TypeBits>, Exhausted> {
    let n = types.len();
    let mut cols: Vec<TypeBits> = formulas.iter().map(|_| TypeBits::empty(n)).collect();
    let mut vars = vec![0u64; lean.len()];
    for block in 0..n.div_ceil(64) {
        limits.poll(started)?;
        let base = block * 64;
        let width = (n - base).min(64);
        for (i, v) in vars.iter_mut().enumerate() {
            let mut w = 0u64;
            for (j, t) in types[base..base + width].iter().enumerate() {
                w |= u64::from(t.get(i)) << j;
            }
            *v = w;
        }
        let mut alg = WordAlg { vars: &vars };
        let mut memo = HashMap::new();
        let valid = TypeBits::tail_mask(n, block);
        for (&f, col) in formulas.iter().zip(cols.iter_mut()) {
            col.words[block] = status(lg, lean, f, &mut alg, &mut memo) & valid;
        }
    }
    Ok(cols)
}

/// Enumerates every well-formed ψ-type of a lean (explicit solver only).
///
/// A ψ-type satisfies (§6.1):
/// * modal consistency: `⟨a⟩ϕ ∈ t ⇒ ⟨a⟩⊤ ∈ t`;
/// * not both `⟨1̄⟩⊤` and `⟨2̄⟩⊤` (a node is not two kinds of child);
/// * exactly one atomic proposition;
/// * the start proposition is free.
///
/// The number of types is exponential in the number of `⟨a⟩ϕ` entries; the
/// explicit solver is a reference implementation for small formulas. The
/// governed entry points ([`solve_with`](crate::solve_with)) refuse leans
/// beyond [`Limits::max_lean_diamonds`](crate::Limits::max_lean_diamonds)
/// — default [`MAX_EXPLICIT_DIAMONDS`] — before this enumerator runs; the
/// enumerator itself only guards the representation limit.
pub struct TypeEnumerator<'l> {
    lean: &'l Lean,
    diam_positions: Vec<(usize, Program)>,
    prop_positions: Vec<usize>,
}

/// Default cap on `⟨a⟩ϕ` lean entries accepted by the explicit enumeration
/// (the value of `Limits::max_lean_diamonds` under `Limits::default()`).
pub const MAX_EXPLICIT_DIAMONDS: usize = 16;

/// Absolute representation limit of the enumeration's `u32` masks. The
/// governed dispatch path clamps `Limits::max_lean_diamonds` to this, so
/// a wire request can never push an oversized lean past the feasibility
/// check into the enumerator's assert; raising the cap past
/// [`MAX_EXPLICIT_DIAMONDS`] at all is already a deliberate act of
/// spending exponential time.
pub(crate) const ENUMERATION_HARD_CAP: usize = 26;

impl<'l> TypeEnumerator<'l> {
    /// Prepares enumeration over the given lean.
    ///
    /// # Panics
    ///
    /// Panics if the lean has more than 26 diamond entries (the `u32`
    /// enumeration-mask limit). Budget-governed callers should bound the
    /// lean with `Limits::max_lean_diamonds` long before this fires.
    pub fn new(lean: &'l Lean) -> Self {
        let diam_positions: Vec<(usize, Program)> =
            lean.diam_entries().map(|(i, p, _)| (i, p)).collect();
        assert!(
            diam_positions.len() <= ENUMERATION_HARD_CAP,
            "lean too large for the explicit solver: {} diamonds (hard cap {})",
            diam_positions.len(),
            ENUMERATION_HARD_CAP
        );
        let prop_positions = lean.prop_entries().map(|(i, _)| i).collect();
        TypeEnumerator {
            lean,
            diam_positions,
            prop_positions,
        }
    }

    /// All well-formed types, materialized.
    pub fn all(&self) -> Vec<TypeBits> {
        self.enumerate(true, &Limits::none(), Instant::now())
            .expect("unbounded enumeration cannot exhaust")
    }

    /// [`all`](TypeEnumerator::all), budget-governed: polls `limits`
    /// (cancel token + deadline) once per diamond mask so a cancelled
    /// racer aborts mid-enumeration.
    ///
    /// Two lean-aware prunes run at the mask level, before any type of
    /// the mask materializes:
    /// * masks whose `⟨a⟩ϕ` atoms force both `⟨1̄⟩⊤` and `⟨2̄⟩⊤` are
    ///   dropped wholesale (no well-formed completion exists);
    /// * when `with_mark` is false — the goal never mentions the start
    ///   proposition, so marked type sets cannot contribute to the
    ///   verdict or witness any unmarked type — only `s ∉ t` types are
    ///   emitted, halving the universe.
    pub(crate) fn enumerate(
        &self,
        with_mark: bool,
        limits: &Limits,
        started: Instant,
    ) -> Result<Vec<TypeBits>, Exhausted> {
        let n = self.lean.len();
        let d = self.diam_positions.len();
        let mut out = Vec::new();
        let dt: Vec<usize> = Program::ALL
            .iter()
            .map(|&p| self.lean.diam_true_index(p))
            .collect();
        let up1 = Program::ALL
            .iter()
            .position(|&q| q == Program::Up1)
            .expect("program");
        let up2 = Program::ALL
            .iter()
            .position(|&q| q == Program::Up2)
            .expect("program");
        let marks: &[bool] = if with_mark { &[false, true] } else { &[false] };
        for mask in 0u32..(1 << d) {
            limits.poll(started)?;
            // Which programs are forced to have ⟨a⟩⊤ by modal consistency.
            let mut forced = [false; 4];
            for (k, &(_, p)) in self.diam_positions.iter().enumerate() {
                if mask >> k & 1 == 1 {
                    let pi = Program::ALL.iter().position(|&q| q == p).expect("program");
                    forced[pi] = true;
                }
            }
            // A node cannot be both a first child and a second child; a
            // mask forcing both has no well-formed completion at all.
            if forced[up1] && forced[up2] {
                continue;
            }
            // Free ⟨a⟩⊤ bits: those not forced may be 0 or 1.
            let free: Vec<usize> = (0..4).filter(|&i| !forced[i]).collect();
            for free_mask in 0u32..(1 << free.len()) {
                let mut has = forced;
                for (j, &fi) in free.iter().enumerate() {
                    has[fi] = free_mask >> j & 1 == 1;
                }
                if has[up1] && has[up2] {
                    continue;
                }
                for &prop_i in &self.prop_positions {
                    for &s in marks {
                        let mut t = TypeBits::empty(n);
                        for (k, &(pos, _)) in self.diam_positions.iter().enumerate() {
                            t.set(pos, mask >> k & 1 == 1);
                        }
                        for (pi, &dti) in dt.iter().enumerate() {
                            t.set(dti, has[pi]);
                        }
                        t.set(prop_i, true);
                        t.set(self.lean.start_index(), s);
                        out.push(t);
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mulogic::{Closure, Logic};

    #[test]
    fn bit_ops() {
        let mut t = TypeBits::empty(130);
        t.set(0, true);
        t.set(64, true);
        t.set(129, true);
        assert!(t.get(0) && t.get(64) && t.get(129));
        assert!(!t.get(1));
        t.set(64, false);
        assert!(!t.get(64));
        let b = t.to_bools();
        assert_eq!(TypeBits::from_bools(&b), t);
    }

    #[test]
    fn word_level_set_ops() {
        let mut a = TypeBits::empty(130);
        a.set(0, true);
        a.set(64, true);
        a.set(129, true);
        let mut b = TypeBits::empty(130);
        b.set(64, true);
        b.set(100, true);
        assert_eq!(a.count_ones(), 3);
        assert!(a.any());
        assert!(!TypeBits::empty(130).any());
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert_eq!(a.first_one(), Some(0));
        assert_eq!(TypeBits::empty(8).first_one(), None);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![0, 64, 100, 129]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![64]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
        let f = TypeBits::full(130);
        assert_eq!(f.count_ones(), 130);
        assert!(f.get(129));
    }

    #[test]
    fn status_columns_match_per_type_evaluation() {
        use mulogic::{status, BitsAlg};
        let mut lg = Logic::new();
        let f = lg.parse("a & <1>(b | <-1>a)").unwrap();
        let cl = Closure::compute(&mut lg, f);
        let lean = Lean::compute(&mut lg, &cl);
        let types = TypeEnumerator::new(&lean).all();
        assert!(types.len() > 64, "want multiple blocks: {}", types.len());
        let formulas: Vec<_> = lean.diam_entries().map(|(_, _, phi)| phi).collect();
        let cols = status_columns(
            &mut lg,
            &lean,
            &types,
            &formulas,
            &crate::limits::Limits::none(),
            Instant::now(),
        )
        .unwrap();
        for (ti, t) in types.iter().enumerate() {
            let bools = t.to_bools();
            let mut alg = BitsAlg::new(&bools);
            let mut memo = HashMap::new();
            for (k, &phi) in formulas.iter().enumerate() {
                let want = status(&mut lg, &lean, phi, &mut alg, &mut memo);
                assert_eq!(cols[k].get(ti), want, "formula {k} at type {ti}");
            }
        }
    }

    #[test]
    fn cancelled_enumeration_aborts() {
        use crate::limits::{CancelToken, Limits, Resource};
        let mut lg = Logic::new();
        let f = lg.parse("a & <1>b").unwrap();
        let cl = Closure::compute(&mut lg, f);
        let lean = Lean::compute(&mut lg, &cl);
        let en = TypeEnumerator::new(&lean);
        let token = CancelToken::armed();
        token.cancel();
        let limits = Limits {
            cancel: token,
            ..Limits::none()
        };
        let err = en.enumerate(true, &limits, Instant::now()).unwrap_err();
        assert_eq!(err.resource, Resource::Cancelled);
    }

    #[test]
    fn markless_enumeration_halves_the_universe() {
        let mut lg = Logic::new();
        let f = lg.parse("a & <1>b").unwrap();
        let cl = Closure::compute(&mut lg, f);
        let lean = Lean::compute(&mut lg, &cl);
        let en = TypeEnumerator::new(&lean);
        let all = en.all();
        let unmarked = en
            .enumerate(false, &crate::limits::Limits::none(), Instant::now())
            .unwrap();
        assert_eq!(unmarked.len() * 2, all.len());
        let s = lean.start_index();
        assert!(unmarked.iter().all(|t| !t.get(s)));
    }

    #[test]
    fn enumeration_respects_constraints() {
        let mut lg = Logic::new();
        let f = lg.parse("a & <1>b").unwrap();
        let cl = Closure::compute(&mut lg, f);
        let lean = Lean::compute(&mut lg, &cl);
        let en = TypeEnumerator::new(&lean);
        let all = en.all();
        assert!(!all.is_empty());
        let props: Vec<usize> = lean.prop_entries().map(|(i, _)| i).collect();
        for t in &all {
            // Exactly one proposition.
            assert_eq!(props.iter().filter(|&&i| t.get(i)).count(), 1);
            // Modal consistency.
            for (i, p, _) in lean.diam_entries() {
                if t.get(i) {
                    assert!(t.get(lean.diam_true_index(p)));
                }
            }
            // Not both kinds of child.
            assert!(
                !(t.get(lean.diam_true_index(Program::Up1))
                    && t.get(lean.diam_true_index(Program::Up2)))
            );
        }
        // All types distinct.
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }
}

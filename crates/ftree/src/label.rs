//! Interned node labels (the alphabet Σ of the paper).

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned element name from the alphabet Σ.
///
/// Labels are cheap to copy, compare and hash; the string itself is stored
/// once in a process-wide interner. Two labels are equal iff their strings
/// are equal.
///
/// # Example
///
/// ```
/// use ftree::Label;
///
/// let a = Label::new("section");
/// let b = Label::new("section");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "section");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Label {
    /// Interns `name` and returns its label.
    pub fn new(name: &str) -> Self {
        let mut int = interner().lock().expect("label interner poisoned");
        if let Some(&id) = int.map.get(name) {
            return Label(id);
        }
        let id = u32::try_from(int.strings.len()).expect("too many distinct labels");
        // Leaking is fine: the set of distinct element names in a session is
        // small and bounded by the input grammars/queries.
        let owned: &'static str = Box::leak(name.to_owned().into_boxed_str());
        int.strings.push(owned);
        int.map.insert(owned, id);
        Label(id)
    }

    /// Returns the interned name.
    pub fn as_str(self) -> &'static str {
        let int = interner().lock().expect("label interner poisoned");
        int.strings[self.0 as usize]
    }

    /// Returns the dense numeric id of this label (stable within a process).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({:?})", self.as_str())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Label::new("x");
        let b = Label::new("x");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn distinct_names_distinct_labels() {
        assert_ne!(Label::new("left"), Label::new("right"));
    }

    #[test]
    fn display_roundtrip() {
        let l = Label::new("chapter");
        assert_eq!(l.to_string(), "chapter");
        assert_eq!(format!("{l:?}"), "Label(\"chapter\")");
    }
}

//! Golden JSONL pins for the protocol's `lint` op: the seeded corpus in
//! `fixtures/lint/` must produce byte-stable diagnostics in the protocol's
//! deterministic order (rule id, then subject, step, span), severity
//! overrides must round-trip through the `rules` object, and starved
//! limits must degrade solver-backed findings to info-level `unverified`
//! diagnostics instead of failing the run.

use engine::{json, Engine, EngineConfig, Request, Value};

/// The seeded corpus: one planted finding per lint rule.
const SEEDED: &str = include_str!("../../../fixtures/lint/seeded.jsonl");
/// The clean workspace: zero findings expected.
const CLEAN: &str = include_str!("../../../fixtures/lint/clean.jsonl");
/// The CI golden file: `xsat lint --json` on the seeded corpus, minus the
/// volatile `wall_ms`.
const EXPECTED: &str = include_str!("../../../fixtures/lint/seeded.expected.json");

/// Drops the volatile `wall_ms` measurement field.
fn normalize(v: &Value) -> Value {
    match v {
        Value::Obj(fields) => Value::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "wall_ms")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

/// An engine with the given workspace file loaded (every line must
/// register cleanly).
fn engine_with_workspace(input: &str) -> Engine {
    let mut e = Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let outcome = e.run_batch_lines(input);
    assert_eq!(outcome.stats.errors, 0, "workspace must load cleanly");
    e
}

#[test]
fn seeded_corpus_matches_the_golden_diagnostics() {
    let mut e = engine_with_workspace(SEEDED);
    let r = e.execute_line(r#"{"op":"lint"}"#);
    let expected = json::parse(EXPECTED).unwrap();
    assert_eq!(
        normalize(&r),
        expected,
        "\n  got      {}\n  expected {}",
        normalize(&r).to_json(),
        expected.to_json(),
    );
    // Deterministic ordering: rule ids ascend, ties broken by subject.
    let diags = r.get("diagnostics").and_then(Value::as_arr).unwrap();
    let keys: Vec<(String, String)> = diags
        .iter()
        .map(|d| {
            (
                d.get("rule").and_then(Value::as_str).unwrap().to_owned(),
                d.get("subject").and_then(Value::as_str).unwrap().to_owned(),
            )
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(
        keys, sorted,
        "diagnostics must be sorted by (rule, subject)"
    );
    // Every solver-backed finding is verified evidence; only the pure
    // graph pass (`unreachable-element`) carries none.
    for d in diags {
        let rule = d.get("rule").and_then(Value::as_str).unwrap();
        assert_eq!(d.get("unverified").and_then(Value::as_bool), Some(false));
        match rule {
            "unreachable-element" => assert_eq!(d.get("evidence"), Some(&Value::Null)),
            _ => assert!(
                d.get("evidence")
                    .is_some_and(|ev| !matches!(ev, Value::Null)),
                "{rule} must carry evidence"
            ),
        }
    }
    // A repeat lint run is served from the memo cache and reproduces the
    // diagnostics byte-for-byte.
    let hits_before = e.counters().cache_hits;
    let again = e.execute_line(r#"{"op":"lint"}"#);
    assert_eq!(normalize(&again), expected);
    let probes = r.get("probes").and_then(Value::as_f64).unwrap() as u64;
    assert_eq!(e.counters().cache_hits, hits_before + probes);
    // The whole response survives a round-trip through the json module.
    assert_eq!(json::parse(&r.to_json()).unwrap(), r);
}

#[test]
fn clean_corpus_reports_clean() {
    let mut e = engine_with_workspace(CLEAN);
    let r = e.execute_line(r#"{"op":"lint"}"#);
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(r.get("status").and_then(Value::as_str), Some("clean"));
    assert_eq!(r.get("findings").and_then(Value::as_f64), Some(0.0));
    assert_eq!(
        r.get("diagnostics")
            .and_then(Value::as_arr)
            .map(<[Value]>::len),
        Some(0)
    );
}

#[test]
fn severity_overrides_round_trip_through_the_rules_object() {
    let mut e = engine_with_workspace(SEEDED);
    let r = e.execute_line(
        r#"{"op":"lint","rules":{"dead-step":"info","unreachable-element":"off","query-shadowing":"deny","contradictory-predicate":"allow"}}"#,
    );
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
    let diags = r.get("diagnostics").and_then(Value::as_arr).unwrap();
    let sev_of = |rule: &str| -> Vec<&str> {
        diags
            .iter()
            .filter(|d| d.get("rule").and_then(Value::as_str) == Some(rule))
            .map(|d| d.get("severity").and_then(Value::as_str).unwrap())
            .collect()
    };
    // Demoted to info; `deny` is an alias for error severity.
    assert_eq!(sev_of("dead-step"), ["info"]);
    assert_eq!(sev_of("query-shadowing"), ["error", "error"]);
    // Disabled rules plan no probes and emit nothing (`allow` = off).
    assert!(sev_of("unreachable-element").is_empty());
    assert!(sev_of("contradictory-predicate").is_empty());
    // The tallies follow the overridden severities.
    assert_eq!(r.get("errors").and_then(Value::as_f64), Some(2.0));
    assert_eq!(r.get("infos").and_then(Value::as_f64), Some(1.0));
    // Fewer rules, fewer probes than the default run.
    let default_probes = 56.0;
    assert!(r.get("probes").and_then(Value::as_f64).unwrap() < default_probes);
}

#[test]
fn starved_limits_degrade_to_unverified_info_diagnostics() {
    let mut e = engine_with_workspace(SEEDED);
    // One fixpoint iteration decides nothing: every solver-backed rule
    // must degrade its finding to an info-level `unverified` diagnostic
    // rather than erroring out or going silent. The pure graph pass is
    // disabled so only solver-backed rules remain.
    let r = e.execute_line(
        r#"{"op":"lint","rules":{"unreachable-element":"off"},"limits":{"max_iterations":1}}"#,
    );
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
    let diags = r.get("diagnostics").and_then(Value::as_arr).unwrap();
    assert!(!diags.is_empty(), "degraded findings must surface");
    for d in diags {
        assert_eq!(
            d.get("severity").and_then(Value::as_str),
            Some("info"),
            "{}",
            d.to_json()
        );
        assert_eq!(d.get("unverified").and_then(Value::as_bool), Some(true));
        let msg = d.get("message").and_then(Value::as_str).unwrap();
        assert!(msg.starts_with("unverified:"), "{msg}");
        assert_eq!(d.get("evidence"), Some(&Value::Null));
    }
    assert_eq!(r.get("errors").and_then(Value::as_f64), Some(0.0));
    assert_eq!(r.get("warnings").and_then(Value::as_f64), Some(0.0));
    // Unknown probe outcomes are never cached: the starved run leaves the
    // cache cold, and a follow-up lint under default limits re-solves to
    // the full golden verdict set.
    let r = e.execute_line(r#"{"op":"lint","limits":{"timeout_ms":60000}}"#);
    assert_eq!(r.get("status").and_then(Value::as_str), Some("findings"));
    assert_eq!(r.get("findings").and_then(Value::as_f64), Some(7.0));
    assert_eq!(r.get("infos").and_then(Value::as_f64), Some(0.0));
}

#[test]
fn lint_warms_the_memo_cache_for_decision_traffic() {
    let mut e = engine_with_workspace(SEEDED);
    e.execute_line(r#"{"op":"lint"}"#);
    // The shadowing rule posed exactly this satisfiability problem, so the
    // explicit decision request is a cache hit.
    let r = e.execute_line(r#"{"op":"sat","query":"narrow","type":"lib"}"#);
    assert_eq!(r.get("holds").and_then(Value::as_bool), Some(true));
    assert_eq!(r.get("cached").and_then(Value::as_bool), Some(true));
}

#[test]
fn lint_is_rejected_inside_a_batch() {
    let mut e = Engine::new();
    let out = e.run_batch(&[
        Request::parse(r#"{"op":"query","name":"q","xpath":"a/b"}"#).unwrap(),
        Request::parse(r#"{"id":"l","op":"lint"}"#).unwrap(),
    ]);
    assert_eq!(
        out.responses[1].get("ok").and_then(Value::as_bool),
        Some(false)
    );
    let msg = out.responses[1]
        .get("error")
        .and_then(Value::as_str)
        .unwrap();
    assert!(msg.contains("not valid inside a batch"), "{msg}");
    assert_eq!(
        out.responses[1].get("id").and_then(Value::as_str),
        Some("l")
    );
}

#[test]
fn config_errors_are_protocol_errors() {
    let mut e = engine_with_workspace(SEEDED);
    let r = e.execute_line(r#"{"op":"lint","rules":{"frobnicate":"error"}}"#);
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        r.get("error").and_then(Value::as_str),
        Some("unknown lint rule `frobnicate`")
    );
    let r = e.execute_line(r#"{"op":"lint","rules":{"dead-step":"fatal"}}"#);
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(false));
    assert!(r
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("unknown severity `fatal`"));
    let r = e.execute_line(r#"{"op":"lint","type":"no-such-dtd"}"#);
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(false));
    assert!(r
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("not a registered type"));
}

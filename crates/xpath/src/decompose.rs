//! Structural decomposition of XPath expressions into spine steps,
//! per-step prefixes, and predicate sites.
//!
//! The lint engine reduces workspace diagnostics to decision problems over
//! *parts* of a query: "is the query still satisfiable after step 3?",
//! "does removing this predicate change the selected set?". This module is
//! the shared vocabulary for those parts.
//!
//! A query's **spine** is the sequence of navigation steps reached by
//! walking the expression left to right, *excluding* steps nested inside
//! qualifiers. Spine steps get stable zero-based indices; every branch of a
//! union or intersection contributes its own run of indices to one global
//! sequence, so an index uniquely names a step in the whole expression.
//! Because indices are assigned over the flattened left-to-right walk they
//! are insensitive to `Seq` association and survive a
//! pretty-print→reparse round trip of the normalized expression.
//!
//! Three families of derived expressions are built from a spine:
//!
//! * [`prefix`] — the expression truncated just after step `i`, keeping
//!   only the union/intersection branch that contains the step. With
//!   [`PrefixQuals::Strip`] the target step's own qualifiers are dropped,
//!   separating "this axis/test can never match" from "this predicate is
//!   contradictory".
//! * [`predicate_sites`] / [`without_site`] — the top-level `and`-conjuncts
//!   of each step's qualifiers, and the query with one conjunct removed.
//! * [`union_branches`] — the top-level `|` branches of the expression.

use crate::ast::{Axis, Expr, NodeTest, Path, Qualifier};

/// One spine step of an expression, with its stable index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepInfo {
    /// Zero-based index in the left-to-right spine walk.
    pub index: usize,
    /// The step's axis.
    pub axis: Axis,
    /// The step's node test.
    pub test: NodeTest,
    /// Rendered `axis::test` form, for diagnostics.
    pub display: String,
}

/// How [`prefix`] treats qualifiers attached to the target step itself.
///
/// Qualifiers on *earlier* steps are always kept — they are part of the
/// path that reaches the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixQuals {
    /// Keep the target step's qualifiers.
    Keep,
    /// Drop the target step's qualifiers (dead-axis detection).
    Strip,
}

/// A top-level `and`-conjunct of some spine step's qualifiers.
///
/// `conj` counts conjuncts across all qualifier layers of the step, in
/// source order (`p[q1][q2]` lists `q1`'s conjuncts before `q2`'s).
/// Qualifier layers shared by several steps (a qualifier on a whole union,
/// `(a | b)[q]`) are not enumerated — removing such a layer would change
/// more than one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateSite {
    /// Spine index of the step the conjunct qualifies.
    pub step: usize,
    /// Zero-based conjunct ordinal within that step.
    pub conj: usize,
    /// Rendered form of the conjunct, for diagnostics.
    pub display: String,
}

/// The spine steps of `e`, in stable index order.
pub fn steps(e: &Expr) -> Vec<StepInfo> {
    let mut acc = Vec::new();
    match e {
        Expr::Absolute(p) | Expr::Relative(p) => collect_steps(p, &mut acc),
        Expr::Union(a, b) | Expr::Intersect(a, b) => {
            for branch in [a, b] {
                for s in steps(branch) {
                    acc.push(StepInfo {
                        index: acc.len(),
                        ..s
                    });
                }
            }
        }
    }
    acc
}

fn collect_steps(p: &Path, acc: &mut Vec<StepInfo>) {
    match p {
        Path::Seq(l, r) | Path::Union(l, r) => {
            collect_steps(l, acc);
            collect_steps(r, acc);
        }
        Path::Qualified(inner, _) => collect_steps(inner, acc),
        Path::Step(axis, test) => acc.push(StepInfo {
            index: acc.len(),
            axis: *axis,
            test: *test,
            display: format!("{axis}::{test}"),
        }),
    }
}

/// The expression truncated just after spine step `target`.
///
/// Only the union/intersection branch containing the step is kept, so the
/// prefix is satisfiable exactly when *that step* can select something.
/// Returns `None` if `target` is out of range.
pub fn prefix(e: &Expr, target: usize, quals: PrefixQuals) -> Option<Expr> {
    let mut counter = 0;
    expr_prefix(e, target, &mut counter, quals)
}

fn expr_prefix(e: &Expr, target: usize, counter: &mut usize, quals: PrefixQuals) -> Option<Expr> {
    match e {
        Expr::Absolute(p) => path_prefix(p, target, counter, quals).map(|(p, _)| Expr::Absolute(p)),
        Expr::Relative(p) => path_prefix(p, target, counter, quals).map(|(p, _)| Expr::Relative(p)),
        Expr::Union(a, b) | Expr::Intersect(a, b) => expr_prefix(a, target, counter, quals)
            .or_else(|| expr_prefix(b, target, counter, quals)),
    }
}

/// Truncates `p` just after spine step `target`. The boolean is true when
/// the target step is *terminal* in the truncated subpath — nothing follows
/// it, so an enclosing qualifier layer applies to it.
fn path_prefix(
    p: &Path,
    target: usize,
    counter: &mut usize,
    quals: PrefixQuals,
) -> Option<(Path, bool)> {
    match p {
        Path::Step(axis, test) => {
            let idx = *counter;
            *counter += 1;
            (idx == target).then_some((Path::Step(*axis, *test), true))
        }
        Path::Seq(l, r) => {
            if let Some((lp, _)) = path_prefix(l, target, counter, quals) {
                return Some((lp, false));
            }
            let (rp, term) = path_prefix(r, target, counter, quals)?;
            Some((Path::Seq(l.clone(), Box::new(rp)), term))
        }
        Path::Qualified(inner, q) => {
            let (ip, term) = path_prefix(inner, target, counter, quals)?;
            if term && quals == PrefixQuals::Keep {
                Some((Path::Qualified(Box::new(ip), q.clone()), true))
            } else {
                // Either the target lies strictly inside `inner` (the layer's
                // anchor steps are truncated away), or we are stripping the
                // target's own qualifiers.
                Some((ip, term))
            }
        }
        Path::Union(l, r) => path_prefix(l, target, counter, quals)
            .or_else(|| path_prefix(r, target, counter, quals)),
    }
}

/// All removable predicate sites of `e`, in (step, conj) order.
pub fn predicate_sites(e: &Expr) -> Vec<PredicateSite> {
    let mut acc = Vec::new();
    let mut counter = 0;
    expr_sites(e, &mut counter, &mut acc);
    acc.sort_by_key(|s| (s.step, s.conj));
    acc
}

fn expr_sites(e: &Expr, counter: &mut usize, acc: &mut Vec<PredicateSite>) {
    match e {
        Expr::Absolute(p) | Expr::Relative(p) => {
            path_sites(p, counter, acc);
        }
        Expr::Union(a, b) | Expr::Intersect(a, b) => {
            expr_sites(a, counter, acc);
            expr_sites(b, counter, acc);
        }
    }
}

/// Collects sites in `p`; returns the spine indices of `p`'s terminal
/// steps (the steps an enclosing qualifier layer would attach to).
fn path_sites(p: &Path, counter: &mut usize, acc: &mut Vec<PredicateSite>) -> Vec<usize> {
    match p {
        Path::Step(..) => {
            let idx = *counter;
            *counter += 1;
            vec![idx]
        }
        Path::Seq(l, r) => {
            path_sites(l, counter, acc);
            path_sites(r, counter, acc)
        }
        Path::Union(l, r) => {
            let mut terms = path_sites(l, counter, acc);
            terms.extend(path_sites(r, counter, acc));
            terms
        }
        Path::Qualified(inner, q) => {
            let terms = path_sites(inner, counter, acc);
            if let [step] = terms[..] {
                let base = acc.iter().filter(|s| s.step == step).count();
                for (i, c) in conjuncts(q).into_iter().enumerate() {
                    acc.push(PredicateSite {
                        step,
                        conj: base + i,
                        display: c.to_string(),
                    });
                }
            }
            terms
        }
    }
}

/// The top-level `and`-conjuncts of `q`, left to right.
fn conjuncts(q: &Qualifier) -> Vec<&Qualifier> {
    match q {
        Qualifier::And(a, b) => {
            let mut v = conjuncts(a);
            v.extend(conjuncts(b));
            v
        }
        _ => vec![q],
    }
}

fn rebuild_and(mut parts: Vec<Qualifier>) -> Option<Qualifier> {
    let first = match parts.is_empty() {
        true => return None,
        false => parts.remove(0),
    };
    Some(
        parts
            .into_iter()
            .fold(first, |acc, q| Qualifier::And(Box::new(acc), Box::new(q))),
    )
}

/// The expression with the conjunct at `site` removed. Spine indices of
/// the result are unchanged. Returns `None` if the site does not exist.
pub fn without_site(e: &Expr, site: &PredicateSite) -> Option<Expr> {
    let mut counter = 0;
    let mut conj_counter = 0;
    let mut removed = false;
    let out = expr_remove(e, site, &mut counter, &mut conj_counter, &mut removed);
    removed.then_some(out)
}

fn expr_remove(
    e: &Expr,
    site: &PredicateSite,
    counter: &mut usize,
    conj_counter: &mut usize,
    removed: &mut bool,
) -> Expr {
    match e {
        Expr::Absolute(p) => Expr::Absolute(path_remove(p, site, counter, conj_counter, removed).0),
        Expr::Relative(p) => Expr::Relative(path_remove(p, site, counter, conj_counter, removed).0),
        Expr::Union(a, b) => Expr::Union(
            Box::new(expr_remove(a, site, counter, conj_counter, removed)),
            Box::new(expr_remove(b, site, counter, conj_counter, removed)),
        ),
        Expr::Intersect(a, b) => Expr::Intersect(
            Box::new(expr_remove(a, site, counter, conj_counter, removed)),
            Box::new(expr_remove(b, site, counter, conj_counter, removed)),
        ),
    }
}

fn path_remove(
    p: &Path,
    site: &PredicateSite,
    counter: &mut usize,
    conj_counter: &mut usize,
    removed: &mut bool,
) -> (Path, Vec<usize>) {
    match p {
        Path::Step(axis, test) => {
            let idx = *counter;
            *counter += 1;
            (Path::Step(*axis, *test), vec![idx])
        }
        Path::Seq(l, r) => {
            let (lp, _) = path_remove(l, site, counter, conj_counter, removed);
            let (rp, terms) = path_remove(r, site, counter, conj_counter, removed);
            (Path::Seq(Box::new(lp), Box::new(rp)), terms)
        }
        Path::Union(l, r) => {
            let (lp, mut terms) = path_remove(l, site, counter, conj_counter, removed);
            let (rp, rterms) = path_remove(r, site, counter, conj_counter, removed);
            terms.extend(rterms);
            (Path::Union(Box::new(lp), Box::new(rp)), terms)
        }
        Path::Qualified(inner, q) => {
            let (ip, terms) = path_remove(inner, site, counter, conj_counter, removed);
            if terms[..] == [site.step] {
                let mut kept = Vec::new();
                for c in conjuncts(q) {
                    let ordinal = *conj_counter;
                    *conj_counter += 1;
                    if ordinal == site.conj {
                        *removed = true;
                    } else {
                        kept.push(c.clone());
                    }
                }
                match rebuild_and(kept) {
                    Some(nq) => (Path::Qualified(Box::new(ip), Box::new(nq)), terms),
                    None => (ip, terms),
                }
            } else {
                (Path::Qualified(Box::new(ip), q.clone()), terms)
            }
        }
    }
}

/// The top-level union branches of `e`, flattened.
///
/// Both expression-level union (`e1 | e2`) and a path-level union that *is*
/// the whole path (`/(a | b)`) are split; a single-branch expression
/// returns itself. Branches keep their absolute/relative anchoring.
pub fn union_branches(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Union(a, b) => {
            let mut v = union_branches(a);
            v.extend(union_branches(b));
            v
        }
        Expr::Absolute(p) => path_branches(p).into_iter().map(Expr::Absolute).collect(),
        Expr::Relative(p) => path_branches(p).into_iter().map(Expr::Relative).collect(),
        Expr::Intersect(..) => vec![e.clone()],
    }
}

fn path_branches(p: &Path) -> Vec<Path> {
    match p {
        Path::Union(a, b) => {
            let mut v = path_branches(a);
            v.extend(path_branches(b));
            v
        }
        _ => vec![p.clone()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn spine(input: &str) -> Vec<String> {
        steps(&parse(input).unwrap())
            .into_iter()
            .map(|s| s.display)
            .collect()
    }

    #[test]
    fn spine_skips_qualifier_interiors() {
        assert_eq!(
            spine("a[b/c]/d"),
            vec!["child::a".to_owned(), "child::d".to_owned()]
        );
    }

    #[test]
    fn spine_spans_union_branches() {
        let s = spine("a/b | c");
        assert_eq!(s, vec!["child::a", "child::b", "child::c"]);
        let infos = steps(&parse("a/b | c").unwrap());
        assert_eq!(
            infos.iter().map(|s| s.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn prefix_truncates_and_strips() {
        let e = parse("a[b]/c[d]/e").unwrap();
        let p1 = prefix(&e, 1, PrefixQuals::Strip).unwrap();
        assert_eq!(p1.to_string(), "child::a[child::b]/child::c");
        let p1k = prefix(&e, 1, PrefixQuals::Keep).unwrap();
        assert_eq!(p1k.to_string(), "child::a[child::b]/child::c[child::d]");
        let p2 = prefix(&e, 2, PrefixQuals::Strip).unwrap();
        assert_eq!(
            p2.to_string(),
            "child::a[child::b]/child::c[child::d]/child::e"
        );
        assert!(prefix(&e, 3, PrefixQuals::Strip).is_none());
    }

    #[test]
    fn prefix_keeps_only_the_containing_branch() {
        let e = parse("a/b | c/d").unwrap();
        assert_eq!(
            prefix(&e, 2, PrefixQuals::Strip).unwrap().to_string(),
            "child::c"
        );
        let abs = parse("/(a | b)").unwrap();
        assert_eq!(
            prefix(&abs, 1, PrefixQuals::Strip).unwrap().to_string(),
            "/child::b"
        );
    }

    #[test]
    fn sites_enumerate_conjuncts_in_order() {
        let e = parse("a[b and c]/d[e]").unwrap();
        let sites = predicate_sites(&e);
        let got: Vec<(usize, usize, &str)> = sites
            .iter()
            .map(|s| (s.step, s.conj, s.display.as_str()))
            .collect();
        assert_eq!(
            got,
            vec![(0, 0, "child::b"), (0, 1, "child::c"), (1, 0, "child::e")]
        );
    }

    #[test]
    fn layered_qualifiers_count_inner_first() {
        let e = parse("a[b][c]").unwrap();
        let sites = predicate_sites(&e);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].display, "child::b");
        assert_eq!(sites[1].display, "child::c");
    }

    #[test]
    fn shared_union_qualifier_has_no_sites() {
        let e = parse("(a | b)[c]").unwrap();
        assert!(predicate_sites(&e).is_empty());
    }

    #[test]
    fn without_site_removes_one_conjunct() {
        let e = parse("a[b and c]/d[e]").unwrap();
        let sites = predicate_sites(&e);
        let w0 = without_site(&e, &sites[0]).unwrap();
        assert_eq!(w0.to_string(), "child::a[child::c]/child::d[child::e]");
        let w2 = without_site(&e, &sites[2]).unwrap();
        assert_eq!(w2.to_string(), "child::a[child::b and child::c]/child::d");
        let bogus = PredicateSite {
            step: 7,
            conj: 0,
            display: String::new(),
        };
        assert!(without_site(&e, &bogus).is_none());
    }

    #[test]
    fn without_site_keeps_spine_indices() {
        let e = parse("a[b]/c[d]").unwrap();
        let sites = predicate_sites(&e);
        let w = without_site(&e, &sites[0]).unwrap();
        assert_eq!(
            steps(&w).iter().map(|s| s.index).collect::<Vec<_>>(),
            steps(&e).iter().map(|s| s.index).collect::<Vec<_>>()
        );
    }

    #[test]
    fn union_branches_flatten() {
        let e = parse("a | b | c").unwrap();
        let branches = union_branches(&e);
        assert_eq!(branches.len(), 3);
        assert_eq!(branches[2].to_string(), "child::c");
        let abs = parse("/(head | body)").unwrap();
        let branches = union_branches(&abs);
        assert_eq!(branches.len(), 2);
        assert_eq!(branches[0].to_string(), "/child::head");
        let single = parse("a/b").unwrap();
        assert_eq!(union_branches(&single), vec![single]);
    }
}

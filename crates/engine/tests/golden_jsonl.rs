//! Golden JSONL round-trips: a request file goes in, the verdict stream
//! must match the expected lines, for every protocol op.
//!
//! Volatile measurement fields (`wall_ms`, `stats`) are stripped before
//! comparison; everything else — including counter-example XML, `cached`
//! flags and error texts — must match byte-for-byte. The same exchange is
//! also replayed through the sequential `serve` loop, which must produce
//! the same normalized verdicts as the parallel batch executor.

use engine::{json, Engine, EngineConfig, Request, Value};

/// The golden exchange: one `(request, expected normalized response)` pair
/// per line, exercising every op of the protocol.
const GOLDEN: &[(&str, &str)] = &[
    (
        r#"{"op":"dtd","name":"d1","source":"<!ELEMENT r (x, y)> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY>"}"#,
        r#"{"ok":true,"registered":"d1","kind":"dtd"}"#,
    ),
    (
        r#"{"op":"query","name":"q1","xpath":"child::*"}"#,
        r#"{"ok":true,"registered":"q1","kind":"query"}"#,
    ),
    (
        r#"{"op":"query","name":"q2","xpath":"child::x | child::y"}"#,
        r#"{"ok":true,"registered":"q2","kind":"query"}"#,
    ),
    // Typed containment holds; untyped does not (and carries a witness).
    (
        r#"{"id":1,"op":"contains","lhs":"q1","rhs":"q2","type":"d1"}"#,
        r#"{"id":1,"ok":true,"op":"contains","holds":true,"counter_example":null,"cached":false}"#,
    ),
    (
        r#"{"id":2,"op":"contains","lhs":"q1","rhs":"q2"}"#,
        r#"{"id":2,"ok":true,"op":"contains","holds":false,"counter_example":"<_other s=\"1\"><_other/></_other>","cached":false}"#,
    ),
    // The Fig 18 counter-example-carrying containment failure.
    (
        r#"{"id":3,"op":"contains","lhs":"child::c/preceding-sibling::a[child::b]","rhs":"child::c[child::b]"}"#,
        r#"{"id":3,"ok":true,"op":"contains","holds":false,"counter_example":"<_other s=\"1\"><a><b/></a><c/></_other>","cached":false}"#,
    ),
    // Cache-hit repeat of request id 1 (same problem, same names).
    (
        r#"{"id":4,"op":"contains","lhs":"q1","rhs":"q2","type":"d1"}"#,
        r#"{"id":4,"ok":true,"op":"contains","holds":true,"counter_example":null,"cached":true}"#,
    ),
    // Cache also hits when the same problem is posed inline, unregistered.
    (
        r#"{"id":5,"op":"contains","lhs":"child::*","rhs":"child::x | child::y","type":"<!ELEMENT r (x, y)> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY>"}"#,
        r#"{"id":5,"ok":true,"op":"contains","holds":true,"counter_example":null,"cached":true}"#,
    ),
    (
        r#"{"id":6,"op":"overlap","lhs":"child::*[child::b]","rhs":"child::a"}"#,
        r#"{"id":6,"ok":true,"op":"overlap","holds":true,"counter_example":"<_other s=\"1\"><a><b/></a></_other>","cached":false}"#,
    ),
    (
        r#"{"id":7,"op":"covers","query":"child::*","by":["child::a","child::*[not(self::a)]"]}"#,
        r#"{"id":7,"ok":true,"op":"covers","holds":true,"counter_example":null,"cached":false}"#,
    ),
    (
        r#"{"id":8,"op":"covers","query":"child::*","by":["child::a"]}"#,
        r#"{"id":8,"ok":true,"op":"covers","holds":false,"counter_example":"<_other s=\"1\"><_other/></_other>","cached":false}"#,
    ),
    (
        r#"{"id":9,"op":"equiv","lhs":"a/b[c]","rhs":"a/b[c]"}"#,
        r#"{"id":9,"ok":true,"op":"equiv","holds":true,"counter_example":null,"cached":false}"#,
    ),
    (
        r#"{"id":10,"op":"empty","query":"child::a ∩ child::b"}"#,
        r#"{"id":10,"ok":true,"op":"empty","holds":true,"counter_example":null,"cached":false}"#,
    ),
    (
        r#"{"id":11,"op":"sat","query":"q1","type":"d1"}"#,
        r#"{"id":11,"ok":true,"op":"sat","holds":true,"counter_example":"<r s=\"1\"><x/><y/></r>","cached":false}"#,
    ),
    (
        r#"{"id":12,"op":"typecheck","query":"child::x","input":"<!ELEMENT r (x)> <!ELEMENT x (y)> <!ELEMENT y EMPTY>","output":"<!ELEMENT x (y)> <!ELEMENT y EMPTY>"}"#,
        r#"{"id":12,"ok":true,"op":"typecheck","holds":true,"counter_example":null,"cached":false}"#,
    ),
    (
        r#"{"id":13,"op":"typecheck","query":"child::x","input":"<!ELEMENT r (x)> <!ELEMENT x (y)> <!ELEMENT y EMPTY>","output":"<!ELEMENT x EMPTY>"}"#,
        r#"{"id":13,"ok":true,"op":"typecheck","holds":false,"counter_example":"<r s=\"1\"><x><y/></x></r>","cached":false}"#,
    ),
    // Errors: unresolvable reference and unknown op.
    (
        r#"{"id":14,"op":"contains","lhs":"q1","rhs":"q2","type":"no-such-dtd"}"#,
        r#"{"id":14,"ok":false,"error":"`no-such-dtd` is not a registered type"}"#,
    ),
    (
        r#"{"op":"frobnicate"}"#,
        r#"{"ok":false,"error":"unknown op `frobnicate`"}"#,
    ),
];

/// Drops the volatile measurement fields from a response.
fn normalize(v: &Value) -> Value {
    match v {
        Value::Obj(fields) => Value::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "wall_ms" && k != "stats")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

fn requests() -> Vec<Request> {
    GOLDEN
        .iter()
        .filter(|(req, _)| !req.is_empty())
        .map(|(req, _)| {
            Request::parse(req).unwrap_or(Request {
                id: None,
                kind: engine::RequestKind::Stats,
            })
        })
        .collect()
}

#[test]
fn batch_matches_golden_stream() {
    let mut e = Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let input: String = GOLDEN.iter().map(|(req, _)| format!("{req}\n")).collect();
    let outcome = e.run_batch_lines(&input);
    assert_eq!(outcome.responses.len(), GOLDEN.len());
    for (i, ((req, expected), got)) in GOLDEN.iter().zip(&outcome.responses).enumerate() {
        let expected_value = json::parse(expected).unwrap();
        assert_eq!(
            normalize(got),
            expected_value,
            "line {i}: request {req}\n  got      {}\n  expected {expected}",
            normalize(got).to_json(),
        );
    }
    // 13 decision problems were posed; ids 4 and 5 repeat id 1's problem.
    assert_eq!(outcome.stats.problems, 13);
    assert_eq!(outcome.stats.unique_problems, 11);
    assert_eq!(outcome.stats.cache_hits, 2);
    assert_eq!(outcome.stats.errors, 2);

    // Full round-trip: every response line re-parses to the same value.
    for got in &outcome.responses {
        assert_eq!(json::parse(&got.to_json()).unwrap(), *got);
    }
}

#[test]
fn serve_matches_golden_stream() {
    let mut e = Engine::new();
    let input: String = GOLDEN.iter().map(|(req, _)| format!("{req}\n")).collect();
    let mut out = Vec::new();
    e.serve(input.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), GOLDEN.len());
    for (i, ((req, expected), got)) in GOLDEN.iter().zip(&lines).enumerate() {
        let got = json::parse(got).unwrap();
        let expected_value = json::parse(expected).unwrap();
        assert_eq!(
            normalize(&got),
            expected_value,
            "line {i}: request {req} (serve path)"
        );
    }
}

#[test]
fn repeated_batch_is_fully_cached() {
    let mut e = Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let reqs = requests();
    let cold = e.run_batch(&reqs);
    let warm = e.run_batch(&reqs);
    assert_eq!(cold.stats.problems, warm.stats.problems);
    // Every problem of the repeat batch is served from the memo cache.
    assert_eq!(warm.stats.cache_hits, warm.stats.problems);
    // Verdicts are identical across cold and warm runs, and cache-served
    // answers report ~zero wall clock (the stats keep the original run's
    // solve time).
    for (c, w) in cold.responses.iter().zip(&warm.responses) {
        if c.get("holds").is_some() {
            assert_eq!(c.get("holds"), w.get("holds"));
            assert_eq!(c.get("counter_example"), w.get("counter_example"));
            assert_eq!(w.get("wall_ms").and_then(Value::as_f64), Some(0.0));
        }
    }
}

#[test]
fn hundred_problem_batch_fans_out() {
    let mut e = Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let mut lines = vec![
        r#"{"op":"dtd","name":"d","source":"<!ELEMENT r (a*, b*)> <!ELEMENT a (b?)> <!ELEMENT b EMPTY>"}"#
            .to_owned(),
    ];
    let labels = ["a", "b", "c", "d", "e"];
    for i in 0..120 {
        let l = labels[i % labels.len()];
        let m = labels[(i / labels.len()) % labels.len()];
        let line = match i % 4 {
            0 => format!(r#"{{"op":"contains","lhs":"{l}/{m}","rhs":"{l}/*"}}"#),
            1 => format!(r#"{{"op":"overlap","lhs":"child::{l}","rhs":"child::{m}"}}"#),
            2 => format!(r#"{{"op":"sat","query":"{l}//{m}","type":"d"}}"#),
            _ => format!(r#"{{"op":"empty","query":"child::{l} ∩ child::{m}"}}"#),
        };
        lines.push(line);
    }
    let input = lines.join("\n");
    let outcome = e.run_batch_lines(&input);
    assert_eq!(outcome.stats.problems, 120);
    assert_eq!(outcome.stats.errors, 0);
    assert_eq!(outcome.stats.threads, 4);
    for r in &outcome.responses[1..] {
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
    }
    // The label grid repeats, so the canonical cache must collapse some
    // problems even within one cold batch.
    assert!(outcome.stats.unique_problems < 120);
    assert!(outcome.stats.cache_hits > 0);

    // A warm rerun answers everything from the cache.
    let warm = e.run_batch_lines(&input);
    assert_eq!(warm.stats.cache_hits, 120);
}

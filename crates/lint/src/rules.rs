//! The rule registry: planning lint probes and judging their outcomes.
//!
//! Linting is split into two phases so the host can solve the probes any
//! way it likes (the engine batches them through its parallel executor and
//! memo cache; the standalone [`LintEngine`](crate::LintEngine) solves
//! them sequentially):
//!
//! 1. [`plan`] decomposes every workspace query into a battery of decision
//!    [`Problem`]s — the [`Probe`]s — and runs the two pure passes
//!    (`unreachable-element` over the DTD content graphs,
//!    `wildcard-explosion` over the lean-diamond accounting) whose
//!    findings need no solver.
//! 2. [`judge`] maps the per-probe [`ProbeOutcome`]s back to findings,
//!    attaches evidence (the witness document of the probe that proves the
//!    finding, or the proving verdict), degrades inconclusive probes to
//!    info-level `unverified` diagnostics, and returns the deterministic,
//!    sorted diagnostics list.
//!
//! The probe battery per rule:
//!
//! | rule | probes |
//! |---|---|
//! | `dead-step` | `sat` of every step prefix (target's own qualifiers stripped) |
//! | `contradictory-predicate` | `sat` of the chain with / without each predicate conjunct, `equiv` of the query with / without it |
//! | `redundant-union-branch` | pairwise `contains` over `\|` branches, `sat` per branch |
//! | `query-shadowing` | pairwise `contains` over registered queries, `sat` per query |

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use analyzer::{Analyzer, Problem};
use ftree::Label;
use treetypes::Dtd;
use xpath::decompose::{self, PredicateSite, PrefixQuals, StepInfo};
use xpath::Expr;

use crate::diagnostic::{sort_diagnostics, Diagnostic, Evidence, RuleId, Severity};

/// Per-rule configuration: disabled, or enabled at a severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleSetting {
    /// The rule does not run (no probes are planned for it).
    Off,
    /// The rule runs; findings carry this severity.
    At(Severity),
}

/// Lint run configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Per-rule overrides; rules not listed run at their default severity.
    pub settings: BTreeMap<RuleId, RuleSetting>,
    /// The `wildcard-explosion` threshold: lean-diamond counts above this
    /// flag the query. Defaults to the enumerating backends' cap
    /// ([`solver::MAX_EXPLICIT_DIAMONDS`]).
    pub max_diamonds: usize,
    /// The governing type: a name in the DTD list. `None` picks the single
    /// registered DTD when there is exactly one, untyped analysis
    /// otherwise.
    pub type_name: Option<String>,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            settings: BTreeMap::new(),
            max_diamonds: solver::MAX_EXPLICIT_DIAMONDS,
            type_name: None,
        }
    }
}

impl LintConfig {
    /// The effective severity of a rule: the override, or the table
    /// default. `None` means the rule is off.
    pub fn severity(&self, rule: RuleId) -> Option<Severity> {
        match self.settings.get(&rule) {
            Some(RuleSetting::Off) => None,
            Some(RuleSetting::At(s)) => Some(*s),
            None => Some(rule.default_severity()),
        }
    }
}

/// Which rule decision a probe feeds, with indices into the plan's query
/// artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeCase {
    /// `dead-step`: satisfiability of the prefix through `step`, the
    /// target's own qualifiers stripped. `chain_initial` marks the first
    /// step of its union/intersection branch (no predecessor witness).
    Prefix {
        /// Query index.
        query: usize,
        /// Spine-step index.
        step: usize,
        /// Whether the step starts its chain.
        chain_initial: bool,
    },
    /// Satisfiability of the whole query (shadowing evidence and dead-query
    /// suppression).
    FullSat {
        /// Query index.
        query: usize,
    },
    /// `contradictory-predicate`: satisfiability of the chain through the
    /// site's step, with or without the site conjunct.
    PredSat {
        /// Query index.
        query: usize,
        /// Site index.
        site: usize,
        /// Whether the site conjunct is kept.
        with_site: bool,
    },
    /// `contradictory-predicate`: equivalence of the query with and
    /// without the site conjunct.
    PredEquiv {
        /// Query index.
        query: usize,
        /// Site index.
        site: usize,
    },
    /// `redundant-union-branch`: satisfiability of one branch.
    BranchSat {
        /// Query index.
        query: usize,
        /// Branch index.
        branch: usize,
    },
    /// `redundant-union-branch`: branch `sub` contained in branch `sup`.
    BranchContains {
        /// Query index.
        query: usize,
        /// Contained branch index.
        sub: usize,
        /// Containing branch index.
        sup: usize,
    },
    /// `query-shadowing`: query `lhs` contained in query `rhs`.
    ShadowContains {
        /// Contained query index.
        lhs: usize,
        /// Containing query index.
        rhs: usize,
    },
}

/// One planned decision problem.
#[derive(Debug, Clone)]
pub struct Probe {
    /// The rule decision it feeds.
    pub case: ProbeCase,
    /// The problem to solve.
    pub problem: Problem,
}

/// One workspace query, decomposed.
#[derive(Debug, Clone)]
pub struct QueryArtifact {
    /// Workspace name.
    pub name: String,
    /// The (normalized) expression.
    pub expr: Arc<Expr>,
    /// Spine steps, in stable index order.
    pub steps: Vec<StepInfo>,
    /// Removable predicate sites.
    pub sites: Vec<PredicateSite>,
    /// Top-level union branches (the query itself when not a union).
    pub branches: Vec<Expr>,
}

/// The outcome of one probe, as reported by whoever solved it.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeOutcome {
    /// The property holds; `witness` carries the supporting model XML for
    /// satisfiability probes.
    Holds {
        /// Supporting model (oracle-verified), when one exists.
        witness: Option<String>,
    },
    /// The property fails; `witness` carries the counter-example XML for
    /// refutable probes.
    Fails {
        /// Counter-example document (oracle-verified), when one exists.
        witness: Option<String>,
    },
    /// A resource budget ran out before the probe could decide.
    Unknown {
        /// Human-readable exhaustion report.
        reason: String,
    },
    /// The solve failed (cross-check disagreement, rejected witness).
    Error {
        /// The error message.
        reason: String,
    },
}

impl ProbeOutcome {
    fn holds(&self) -> bool {
        matches!(self, ProbeOutcome::Holds { .. })
    }

    fn fails(&self) -> bool {
        matches!(self, ProbeOutcome::Fails { .. })
    }

    fn inconclusive(&self) -> Option<&str> {
        match self {
            ProbeOutcome::Unknown { reason } | ProbeOutcome::Error { reason } => Some(reason),
            _ => None,
        }
    }

    fn witness(&self) -> Option<&str> {
        match self {
            ProbeOutcome::Holds { witness } | ProbeOutcome::Fails { witness } => witness.as_deref(),
            _ => None,
        }
    }
}

/// A planned lint run: the probes awaiting a solver, the findings of the
/// pure passes, and the artifacts [`judge`] needs to interpret outcomes.
#[derive(Debug)]
pub struct LintPlan {
    /// Decision problems to solve, in deterministic planning order.
    pub probes: Vec<Probe>,
    /// Findings of the solver-free passes (`unreachable-element`,
    /// `wildcard-explosion`).
    pub immediate: Vec<Diagnostic>,
    /// Decomposed queries, sorted by name.
    pub queries: Vec<QueryArtifact>,
    /// The configuration the plan was built under.
    pub config: LintConfig,
    /// The governing DTD, when one applies.
    pub ty: Option<Arc<Dtd>>,
}

/// Builds the probe battery and runs the pure passes.
///
/// `az` is only used by the `wildcard-explosion` pass (it compiles query
/// formulas to count lean diamonds); no satisfiability is solved here.
/// Queries are sorted by name so probe order — and therefore diagnostic
/// order — is deterministic. Fails when [`LintConfig::type_name`] names no
/// registered DTD.
pub fn plan(
    az: &mut Analyzer,
    queries: &[(String, Arc<Expr>)],
    dtds: &[(String, Arc<Dtd>)],
    config: &LintConfig,
) -> Result<LintPlan, String> {
    let ty: Option<Arc<Dtd>> = match &config.type_name {
        Some(name) => Some(
            dtds.iter()
                .find(|(n, _)| n == name)
                .map(|(_, d)| Arc::clone(d))
                .ok_or_else(|| format!("`{name}` is not a registered type"))?,
        ),
        None if dtds.len() == 1 => Some(Arc::clone(&dtds[0].1)),
        None => None,
    };

    for rule in RuleId::all() {
        if config.severity(rule).is_some() {
            obs::metrics()
                .counter("xsat_lint_rules_total", &[("rule", rule.as_str())])
                .inc();
        }
    }

    let mut artifacts: Vec<QueryArtifact> = queries
        .iter()
        .map(|(name, expr)| QueryArtifact {
            name: name.clone(),
            expr: Arc::clone(expr),
            steps: decompose::steps(expr),
            sites: decompose::predicate_sites(expr),
            branches: decompose::union_branches(expr),
        })
        .collect();
    artifacts.sort_by(|a, b| a.name.cmp(&b.name));

    let mut probes: Vec<Probe> = Vec::new();
    let dead_step = config.severity(RuleId::DeadStep).is_some();
    let contradiction = config.severity(RuleId::ContradictoryPredicate).is_some();
    let union_branch = config.severity(RuleId::RedundantUnionBranch).is_some();
    let shadowing = config.severity(RuleId::QueryShadowing).is_some();

    for (qi, q) in artifacts.iter().enumerate() {
        if dead_step {
            for step in 0..q.steps.len() {
                let p = decompose::prefix(&q.expr, step, PrefixQuals::Strip)
                    .expect("step index from the same decomposition");
                let chain_initial = decompose::steps(&p).len() == 1;
                probes.push(Probe {
                    case: ProbeCase::Prefix {
                        query: qi,
                        step,
                        chain_initial,
                    },
                    problem: Problem::sat(p, ty.clone()),
                });
            }
        }
        if contradiction {
            for (si, site) in q.sites.iter().enumerate() {
                let removed = decompose::without_site(&q.expr, site)
                    .expect("site from the same decomposition");
                let with = decompose::prefix(&q.expr, site.step, PrefixQuals::Keep)
                    .expect("site step in range");
                let without = decompose::prefix(&removed, site.step, PrefixQuals::Keep)
                    .expect("removal preserves spine indices");
                probes.push(Probe {
                    case: ProbeCase::PredSat {
                        query: qi,
                        site: si,
                        with_site: true,
                    },
                    problem: Problem::sat(with, ty.clone()),
                });
                probes.push(Probe {
                    case: ProbeCase::PredSat {
                        query: qi,
                        site: si,
                        with_site: false,
                    },
                    problem: Problem::sat(without, ty.clone()),
                });
                probes.push(Probe {
                    case: ProbeCase::PredEquiv {
                        query: qi,
                        site: si,
                    },
                    problem: Problem::equiv(Arc::clone(&q.expr), ty.clone(), removed, ty.clone()),
                });
            }
        }
        if union_branch && q.branches.len() >= 2 {
            for (bi, branch) in q.branches.iter().enumerate() {
                probes.push(Probe {
                    case: ProbeCase::BranchSat {
                        query: qi,
                        branch: bi,
                    },
                    problem: Problem::sat(branch.clone(), ty.clone()),
                });
                for (bj, other) in q.branches.iter().enumerate() {
                    if bi == bj {
                        continue;
                    }
                    probes.push(Probe {
                        case: ProbeCase::BranchContains {
                            query: qi,
                            sub: bi,
                            sup: bj,
                        },
                        problem: Problem::contains(
                            branch.clone(),
                            ty.clone(),
                            other.clone(),
                            ty.clone(),
                        ),
                    });
                }
            }
        }
        if shadowing {
            probes.push(Probe {
                case: ProbeCase::FullSat { query: qi },
                problem: Problem::sat(Arc::clone(&q.expr), ty.clone()),
            });
        }
    }
    if shadowing {
        for i in 0..artifacts.len() {
            for j in (i + 1)..artifacts.len() {
                for (lhs, rhs) in [(i, j), (j, i)] {
                    probes.push(Probe {
                        case: ProbeCase::ShadowContains { lhs, rhs },
                        problem: Problem::contains(
                            Arc::clone(&artifacts[lhs].expr),
                            ty.clone(),
                            Arc::clone(&artifacts[rhs].expr),
                            ty.clone(),
                        ),
                    });
                }
            }
        }
    }

    let mut immediate = Vec::new();
    if let Some(sev) = config.severity(RuleId::UnreachableElement) {
        for (name, dtd) in dtds {
            unreachable_elements(name, dtd, sev, &mut immediate);
        }
    }
    if let Some(sev) = config.severity(RuleId::WildcardExplosion) {
        for q in &artifacts {
            wildcard_explosion(
                az,
                q,
                ty.as_deref(),
                config.max_diamonds,
                sev,
                &mut immediate,
            );
        }
    }

    Ok(LintPlan {
        probes,
        immediate,
        queries: artifacts,
        config: config.clone(),
        ty,
    })
}

/// The `unreachable-element` pure pass: BFS over the DTD content graph
/// from the root element; declared elements never reached are findings.
fn unreachable_elements(name: &str, dtd: &Dtd, sev: Severity, out: &mut Vec<Diagnostic>) {
    let mut reached: HashSet<Label> = HashSet::new();
    let mut frontier = vec![dtd.start()];
    while let Some(label) = frontier.pop() {
        if !reached.insert(label) {
            continue;
        }
        if let Some(content) = dtd.content(label) {
            let mut mentioned = Vec::new();
            content.mentioned(&mut mentioned);
            frontier.extend(mentioned);
        }
    }
    for (label, _) in dtd.elements() {
        if !reached.contains(label) {
            out.push(Diagnostic {
                rule: RuleId::UnreachableElement,
                severity: sev,
                subject: name.to_owned(),
                step: None,
                span: Some(label.to_string()),
                message: format!(
                    "element `{label}` is declared but unreachable from document root `{}`",
                    dtd.start()
                ),
                evidence: None,
            });
        }
    }
}

/// The `wildcard-explosion` pure pass: reads the lean-diamond accounting
/// of the compiled query formula — the same measure
/// [`solver::Limits::max_lean_diamonds`] gates enumeration on — and
/// localizes the first step whose prefix crosses the threshold.
fn wildcard_explosion(
    az: &mut Analyzer,
    q: &QueryArtifact,
    ty: Option<&Dtd>,
    cap: usize,
    sev: Severity,
    out: &mut Vec<Diagnostic>,
) {
    let goal = az.query_formula(&q.expr, ty);
    let total = solver::lean_diamonds(az.logic_mut(), goal);
    if total <= cap {
        return;
    }
    let mut at: Option<usize> = None;
    for step in 0..q.steps.len() {
        let Some(p) = decompose::prefix(&q.expr, step, PrefixQuals::Keep) else {
            break;
        };
        let g = az.query_formula(&p, ty);
        if solver::lean_diamonds(az.logic_mut(), g) > cap {
            at = Some(step);
            break;
        }
    }
    let span = at.map(|i| q.steps[i].display.clone());
    let localized = match at {
        Some(i) => format!("; first exceeded at step {i}"),
        None => String::new(),
    };
    out.push(Diagnostic {
        rule: RuleId::WildcardExplosion,
        severity: sev,
        subject: q.name.clone(),
        step: at,
        span,
        message: format!(
            "lean has {total} diamond modalities (cap {cap}): enumeration-based backends \
             are infeasible, solving is symbolic-only{localized}"
        ),
        evidence: None,
    });
}

/// Interprets probe outcomes into findings.
///
/// `outcomes` must be parallel to `plan.probes`. Findings are sorted into
/// the protocol's deterministic order and counted into
/// `xsat_lint_findings_total`. Probes that came back `unknown` (or failed
/// at the solver level) degrade the affected rule decision to an
/// info-level `unverified` diagnostic instead of a hard error.
pub fn judge(plan: &LintPlan, outcomes: &[ProbeOutcome]) -> Vec<Diagnostic> {
    assert_eq!(
        outcomes.len(),
        plan.probes.len(),
        "one outcome per planned probe"
    );
    let mut by_case: HashMap<ProbeCase, usize> = HashMap::new();
    for (i, p) in plan.probes.iter().enumerate() {
        by_case.insert(p.case, i);
    }
    let out = |case: ProbeCase| by_case.get(&case).map(|&i| (&outcomes[i], i));
    let problem = |i: usize| plan.probes[i].problem.clone();

    let mut diags = plan.immediate.clone();

    if let Some(sev) = plan.config.severity(RuleId::DeadStep) {
        for (qi, q) in plan.queries.iter().enumerate() {
            for step in 0..q.steps.len() {
                let case = |chain_initial| ProbeCase::Prefix {
                    query: qi,
                    step,
                    chain_initial,
                };
                let Some((o, i)) = out(case(true)).or_else(|| out(case(false))) else {
                    continue;
                };
                let chain_initial = matches!(
                    plan.probes[i].case,
                    ProbeCase::Prefix {
                        chain_initial: true,
                        ..
                    }
                );
                if let Some(reason) = o.inconclusive() {
                    diags.push(unverified(
                        RuleId::DeadStep,
                        &q.name,
                        Some(step),
                        Some(q.steps[step].display.clone()),
                        &format!("dead-step analysis of step {step} inconclusive"),
                        reason,
                    ));
                    break;
                }
                if !o.fails() {
                    continue;
                }
                // First dead step of the query: localize and stop (every
                // later prefix is unsatisfiable too).
                let schema = match &plan.ty {
                    Some(_) => "the governing schema",
                    None => "any schema",
                };
                let (message, evidence) = if chain_initial {
                    (
                        format!(
                            "step {step} (`{}`) selects nothing under {schema}",
                            q.steps[step].display
                        ),
                        Evidence::Verdict {
                            problem: problem(i),
                            status: "fails",
                        },
                    )
                } else {
                    let prev = out(ProbeCase::Prefix {
                        query: qi,
                        step: step - 1,
                        chain_initial: false,
                    })
                    .or_else(|| {
                        out(ProbeCase::Prefix {
                            query: qi,
                            step: step - 1,
                            chain_initial: true,
                        })
                    });
                    let evidence = match prev {
                        Some((po, pi)) if po.holds() && po.witness().is_some() => {
                            Evidence::Witness {
                                problem: problem(pi),
                                xml: po.witness().expect("checked").to_owned(),
                            }
                        }
                        _ => Evidence::Verdict {
                            problem: problem(i),
                            status: "fails",
                        },
                    };
                    (
                        format!(
                            "step {step} (`{}`) selects nothing under {schema}; \
                             the path up to step {} is satisfiable",
                            q.steps[step].display,
                            step - 1
                        ),
                        evidence,
                    )
                };
                diags.push(Diagnostic {
                    rule: RuleId::DeadStep,
                    severity: sev,
                    subject: q.name.clone(),
                    step: Some(step),
                    span: Some(q.steps[step].display.clone()),
                    message,
                    evidence: Some(evidence),
                });
                break;
            }
        }
    }

    if let Some(sev) = plan.config.severity(RuleId::ContradictoryPredicate) {
        for (qi, q) in plan.queries.iter().enumerate() {
            for (si, site) in q.sites.iter().enumerate() {
                let with = out(ProbeCase::PredSat {
                    query: qi,
                    site: si,
                    with_site: true,
                });
                let without = out(ProbeCase::PredSat {
                    query: qi,
                    site: si,
                    with_site: false,
                });
                let equiv = out(ProbeCase::PredEquiv {
                    query: qi,
                    site: si,
                });
                let (Some((w, _)), Some((wo, wo_i)), Some((eq, eq_i))) = (with, without, equiv)
                else {
                    continue;
                };
                let span = format!("{}[{}]", q.steps[site.step].display, site.display);
                if w.fails() && wo.holds() {
                    diags.push(Diagnostic {
                        rule: RuleId::ContradictoryPredicate,
                        severity: sev,
                        subject: q.name.clone(),
                        step: Some(site.step),
                        span: Some(span),
                        message: format!(
                            "predicate `[{}]` on step {} contradicts the schema: the step \
                             selects nothing with it and is satisfiable without it",
                            site.display, site.step
                        ),
                        evidence: Some(match wo.witness() {
                            Some(xml) => Evidence::Witness {
                                problem: problem(wo_i),
                                xml: xml.to_owned(),
                            },
                            None => Evidence::Verdict {
                                problem: problem(wo_i),
                                status: "holds",
                            },
                        }),
                    });
                    continue;
                }
                if w.fails() && wo.fails() {
                    // The chain is dead with or without the predicate —
                    // `dead-step` territory, not the predicate's fault.
                    continue;
                }
                if w.holds() && eq.holds() {
                    diags.push(Diagnostic {
                        rule: RuleId::ContradictoryPredicate,
                        severity: sev,
                        subject: q.name.clone(),
                        step: Some(site.step),
                        span: Some(span),
                        message: format!(
                            "predicate `[{}]` on step {} is redundant: removing it provably \
                             does not change the selected set",
                            site.display, site.step
                        ),
                        evidence: Some(Evidence::Verdict {
                            problem: problem(eq_i),
                            status: "holds",
                        }),
                    });
                    continue;
                }
                if let Some(reason) = [w, wo, eq].iter().find_map(|o| o.inconclusive()) {
                    // Only degrade when no definite decision was reached.
                    if !(w.holds() && eq.fails()) {
                        diags.push(unverified(
                            RuleId::ContradictoryPredicate,
                            &q.name,
                            Some(site.step),
                            Some(span),
                            &format!("predicate analysis of `[{}]` inconclusive", site.display),
                            reason,
                        ));
                    }
                }
            }
        }
    }

    if let Some(sev) = plan.config.severity(RuleId::RedundantUnionBranch) {
        for (qi, q) in plan.queries.iter().enumerate() {
            if q.branches.len() < 2 {
                continue;
            }
            // Spine indices are contiguous per branch, so branch `k`
            // starts at the sum of the earlier branches' step counts.
            let mut starts = Vec::with_capacity(q.branches.len());
            let mut acc = 0;
            for b in &q.branches {
                starts.push(acc);
                acc += decompose::steps(b).len();
            }
            for (bi, &branch_start) in starts.iter().enumerate() {
                let sat = out(ProbeCase::BranchSat {
                    query: qi,
                    branch: bi,
                });
                let mut covered_by: Option<(usize, usize)> = None;
                let mut inconclusive: Option<String> = None;
                for bj in 0..q.branches.len() {
                    if bi == bj {
                        continue;
                    }
                    let fwd = out(ProbeCase::BranchContains {
                        query: qi,
                        sub: bi,
                        sup: bj,
                    });
                    let bwd = out(ProbeCase::BranchContains {
                        query: qi,
                        sub: bj,
                        sup: bi,
                    });
                    let Some((f, f_i)) = fwd else { continue };
                    if let Some(reason) = f.inconclusive() {
                        inconclusive = Some(reason.to_owned());
                        continue;
                    }
                    if !f.holds() {
                        continue;
                    }
                    // Mutually-equivalent branches: flag only the later
                    // one, so one of the pair survives.
                    let mutual = bwd.is_some_and(|(b, _)| b.holds());
                    if !mutual || bj < bi {
                        covered_by = Some((bj, f_i));
                        break;
                    }
                }
                match (covered_by, sat) {
                    (Some((bj, f_i)), Some((s, s_i))) => {
                        if s.fails() {
                            // A dead branch is `dead-step` territory.
                            continue;
                        }
                        let evidence = Some(match s.witness() {
                            Some(xml) => Evidence::Witness {
                                problem: problem(s_i),
                                xml: xml.to_owned(),
                            },
                            // The branch's own sat probe was inconclusive;
                            // the containment verdict still proves the
                            // redundancy.
                            None => Evidence::Verdict {
                                problem: problem(f_i),
                                status: "holds",
                            },
                        });
                        diags.push(Diagnostic {
                            rule: RuleId::RedundantUnionBranch,
                            severity: sev,
                            subject: q.name.clone(),
                            step: Some(branch_start),
                            span: Some(q.branches[bi].to_string()),
                            message: format!(
                                "union branch {bi} (`{}`) is contained in branch {bj} (`{}`): \
                                 the union selects the same set without it",
                                q.branches[bi], q.branches[bj]
                            ),
                            evidence,
                        });
                    }
                    (None, _) => {
                        if let Some(reason) = inconclusive {
                            diags.push(unverified(
                                RuleId::RedundantUnionBranch,
                                &q.name,
                                Some(branch_start),
                                Some(q.branches[bi].to_string()),
                                &format!("containment of union branch {bi} inconclusive"),
                                &reason,
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    if let Some(sev) = plan.config.severity(RuleId::QueryShadowing) {
        for i in 0..plan.queries.len() {
            for j in (i + 1)..plan.queries.len() {
                let sat_i = out(ProbeCase::FullSat { query: i });
                let sat_j = out(ProbeCase::FullSat { query: j });
                let fwd = out(ProbeCase::ShadowContains { lhs: i, rhs: j });
                let bwd = out(ProbeCase::ShadowContains { lhs: j, rhs: i });
                let (Some((si, si_idx)), Some((sj, sj_idx)), Some((f, _)), Some((b, _))) =
                    (sat_i, sat_j, fwd, bwd)
                else {
                    continue;
                };
                if si.fails() || sj.fails() {
                    // A dead query trivially sits inside everything;
                    // `dead-step` reports the real defect.
                    continue;
                }
                if let Some(reason) = [f, b, si, sj].iter().find_map(|o| o.inconclusive()) {
                    if !(f.fails() && b.fails()) {
                        diags.push(unverified(
                            RuleId::QueryShadowing,
                            &plan.queries[j].name,
                            None,
                            None,
                            &format!(
                                "shadowing analysis of `{}` against `{}` inconclusive",
                                plan.queries[i].name, plan.queries[j].name
                            ),
                            reason,
                        ));
                    }
                    continue;
                }
                let (subject_idx, sat_sub, message) = match (f.holds(), b.holds()) {
                    (true, true) => (
                        j,
                        (sj, sj_idx),
                        format!(
                            "query `{}` is equivalent to query `{}`: both select exactly \
                             the same set",
                            plan.queries[j].name, plan.queries[i].name
                        ),
                    ),
                    (true, false) => (
                        i,
                        (si, si_idx),
                        format!(
                            "query `{}` is shadowed by `{}`: every node it selects is \
                             already selected there",
                            plan.queries[i].name, plan.queries[j].name
                        ),
                    ),
                    (false, true) => (
                        j,
                        (sj, sj_idx),
                        format!(
                            "query `{}` is shadowed by `{}`: every node it selects is \
                             already selected there",
                            plan.queries[j].name, plan.queries[i].name
                        ),
                    ),
                    (false, false) => continue,
                };
                let (s, s_idx) = sat_sub;
                diags.push(Diagnostic {
                    rule: RuleId::QueryShadowing,
                    severity: sev,
                    subject: plan.queries[subject_idx].name.clone(),
                    step: None,
                    span: None,
                    message,
                    evidence: Some(match s.witness() {
                        Some(xml) => Evidence::Witness {
                            problem: problem(s_idx),
                            xml: xml.to_owned(),
                        },
                        None => Evidence::Verdict {
                            problem: problem(s_idx),
                            status: "holds",
                        },
                    }),
                });
            }
        }
    }

    sort_diagnostics(&mut diags);
    let m = obs::metrics();
    for d in &diags {
        m.counter(
            "xsat_lint_findings_total",
            &[("rule", d.rule.as_str()), ("severity", d.severity.as_str())],
        )
        .inc();
    }
    diags
}

/// An info-level degradation for a rule decision whose probes came back
/// inconclusive (`unknown` budget exhaustion or a solver-level error).
fn unverified(
    rule: RuleId,
    subject: &str,
    step: Option<usize>,
    span: Option<String>,
    what: &str,
    reason: &str,
) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Info,
        subject: subject.to_owned(),
        step,
        span,
        message: format!("unverified: {what} ({reason})"),
        evidence: None,
    }
}

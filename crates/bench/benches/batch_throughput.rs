//! Service-level baseline: problems/sec for a 100-problem mixed batch on
//! the engine, cold (fresh engine, empty caches) vs. warm (same engine,
//! memo cache and worker arenas populated by a previous run).
//!
//! The warm numbers should sit far above the cold ones — a warm repeat is
//! answered entirely from the verdict memo cache — and future PRs that
//! touch the engine hot path have this as their reference.

use criterion::{criterion_group, criterion_main, Criterion};
use engine::{Engine, EngineConfig, Request};
use std::hint::black_box;
use std::time::Instant;

const DTD: &str = "<!ELEMENT r (a*, b*)> <!ELEMENT a (b?)> <!ELEMENT b EMPTY>";

/// A 100-problem batch mixing every decision op, mostly distinct problems
/// (the label grid yields a few intra-batch duplicates, as real request
/// streams do).
fn batch_requests() -> Vec<Request> {
    let labels = ["a", "b", "c", "d", "e"];
    let mut lines = vec![format!(r#"{{"op":"dtd","name":"d","source":"{DTD}"}}"#)];
    for i in 0..100 {
        // Decorrelated from the `i % 5` op selector so the 100 problems
        // are (almost all) structurally distinct.
        let l = labels[(i / 5) % labels.len()];
        let m = labels[(i / 25) % labels.len()];
        let line = match i % 5 {
            0 => format!(r#"{{"op":"contains","lhs":"{l}/{m}","rhs":"{l}/*"}}"#),
            1 => format!(r#"{{"op":"overlap","lhs":"child::{l}[child::{m}]","rhs":"child::{m}"}}"#),
            2 => format!(r#"{{"op":"sat","query":"{l}//{m}","type":"d"}}"#),
            3 => format!(r#"{{"op":"equiv","lhs":"{l}/{m}","rhs":"{l}/{m}[self::{m}]"}}"#),
            _ => format!(r#"{{"op":"empty","query":"child::{l} ∩ child::{m}"}}"#),
        };
        lines.push(line);
    }
    lines
        .iter()
        .map(|l| Request::parse(l).expect("bench request parses"))
        .collect()
}

fn engine() -> Engine {
    Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    })
}

fn bench_batch_throughput(c: &mut Criterion) {
    let requests = batch_requests();

    // One instrumented cold/warm pair outside the timing loops, for the
    // problems/sec + cache-hit report.
    let mut probe = engine();
    let cold_started = Instant::now();
    let cold = probe.run_batch(&requests);
    let cold_elapsed = cold_started.elapsed();
    let warm_started = Instant::now();
    let warm = probe.run_batch(&requests);
    let warm_elapsed = warm_started.elapsed();
    assert_eq!(cold.stats.errors, 0);
    assert_eq!(
        warm.stats.cache_hits, warm.stats.problems,
        "warm run must be fully cached"
    );
    println!(
        "batch-throughput: cold {:>8.1} problems/sec ({} unique of {}, {} cache hits)",
        cold.stats.problems_per_sec(),
        cold.stats.unique_problems,
        cold.stats.problems,
        cold.stats.cache_hits,
    );
    println!(
        "batch-throughput: warm {:>8.1} problems/sec (all {} from memo cache), speedup {:.1}x",
        warm.stats.problems_per_sec(),
        warm.stats.cache_hits,
        cold_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(1e-9),
    );

    let mut g = c.benchmark_group("batch-throughput");
    g.sample_size(10);
    g.bench_function("cold/100-problems", |b| {
        b.iter(|| {
            let mut e = engine();
            let out = e.run_batch(black_box(&requests));
            assert_eq!(out.stats.errors, 0);
            out.stats.problems
        })
    });
    let mut warm_engine = engine();
    let _ = warm_engine.run_batch(&requests);
    g.bench_function("warm/100-problems", |b| {
        b.iter(|| {
            let out = warm_engine.run_batch(black_box(&requests));
            assert_eq!(out.stats.cache_hits, out.stats.problems);
            out.stats.problems
        })
    });
    g.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);

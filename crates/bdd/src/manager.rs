//! The BDD manager: complement-edged nodes in a unique-table arena.
//!
//! Three engineering decisions define this manager (all standard in
//! industrial BDD packages, cf. Brace–Rudell–Bryant):
//!
//! * **complement edges** — a [`NodeId`] is a node index plus a complement
//!   bit, so negation is a tag flip: no traversal, no `not` cache, and `f`
//!   and `¬f` share every node. Canonicity is kept by never storing a
//!   complemented *then*-edge: `mk` rewrites `(v, l, ¬h)` to
//!   `¬(v, ¬l, h)`. There is a single terminal node (⊤); ⊥ is its
//!   complement.
//! * **a unified unique-table arena** — node data lives in one insertion
//!   ordered arena (`nodes`), and the unique table is an open-addressed
//!   slot array over it (`table`), probed linearly. No per-node `HashMap`
//!   entries, no tuple keys: a lookup hashes `(var, lo, hi)` and compares
//!   against arena rows in place.
//! * **one generational operation cache** — `ite`, `shift`, `exists` and
//!   `and_exists` share a single direct-mapped cache
//!   ([`crate::cache::OpCache`]) whose whole contents are dropped in O(1)
//!   by bumping a generation. [`Bdd::reset`] relies on it to make one
//!   long-lived manager reusable across unrelated problems without
//!   reallocating the arena.

use crate::cache::{OpCache, OP_ITE, OP_SHIFT};
use crate::hash::{FastMap, SEED};

/// Handle to a BDD node (a boolean function) within one [`Bdd`] manager.
///
/// The low bit is the complement mark, the remaining bits the arena index;
/// [`Bdd::one`] is the uncomplemented terminal and [`Bdd::zero`] its
/// complement. Two `NodeId`s of one manager are equal iff they denote the
/// same boolean function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// The ⊤ terminal: arena index 0, uncomplemented.
const ONE: NodeId = NodeId(0);
/// The ⊥ terminal: the complement edge onto the same node.
const ZERO: NodeId = NodeId(1);
/// Sentinel level for the terminal: larger than any real variable.
const TERMINAL_VAR: u32 = u32::MAX;

impl NodeId {
    #[inline]
    pub(crate) fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    #[inline]
    fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complement edge — negation as a tag flip.
    #[inline]
    fn neg(self) -> NodeId {
        NodeId(self.0 ^ 1)
    }

    /// Applies another edge's complement bit to this one.
    #[inline]
    fn xor_complement(self, other: NodeId) -> NodeId {
        NodeId(self.0 ^ (other.0 & 1))
    }

    #[inline]
    fn regular(self) -> NodeId {
        NodeId(self.0 & !1)
    }
}

/// One arena row. `hi` is always a regular (uncomplemented) edge — that is
/// the canonical-form invariant complement edges require; `lo` may carry a
/// complement bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    var: u32,
    lo: NodeId,
    hi: NodeId,
}

#[inline]
fn unique_hash(var: u32, lo: NodeId, hi: NodeId) -> u64 {
    let mut h = (u64::from(var).rotate_left(5) ^ u64::from(lo.0)).wrapping_mul(SEED);
    h = (h.rotate_left(5) ^ u64::from(hi.0)).wrapping_mul(SEED);
    h
}

/// Counters describing one manager's run since construction or the last
/// [`Bdd::reset`] — the raw material of the symbolic solver's telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BddStats {
    /// Nodes live in the arena right now (terminal included).
    pub live_nodes: usize,
    /// High-water mark of live nodes over the run.
    pub peak_nodes: usize,
    /// Nodes allocated over the run (monotone; survives garbage
    /// collection, unlike `live_nodes`).
    pub created_nodes: usize,
    /// Open-addressed unique-table slots (capacity, not occupancy).
    pub table_capacity: usize,
    /// Operation-cache lookups that found their result.
    pub cache_hits: u64,
    /// Operation-cache lookups in total.
    pub cache_lookups: u64,
}

impl BddStats {
    /// Unique-table load factor at the run's high-water mark:
    /// `peak_nodes / table_capacity`. Bounded by the table's 3/4 growth
    /// invariant (capacity only grows, and grows before the bound is
    /// crossed), and — unlike a live-node ratio — still meaningful after
    /// garbage collection and when runs are merged.
    pub fn load_factor(&self) -> f64 {
        if self.table_capacity == 0 {
            return 0.0;
        }
        self.peak_nodes as f64 / self.table_capacity as f64
    }

    /// Operation-cache hit rate over the run (0 when nothing was looked
    /// up).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.cache_lookups as f64
    }
}

/// A BDD manager: the node arena, its unique table and the operation
/// cache.
///
/// Variables are `u32` levels; the variable order is the numeric order.
/// Reduction invariants (no redundant node, shared structure, canonical
/// complement placement) are maintained by construction, so two
/// [`NodeId`]s are equal iff they denote the same boolean function.
#[derive(Debug)]
pub struct Bdd {
    /// The arena: nodes in creation order (children precede parents).
    nodes: Vec<Node>,
    /// Open-addressed unique table over the arena: a slot holds
    /// `arena index + 1`, `0` meaning empty. Power-of-two sized.
    table: Vec<u32>,
    pub(crate) cache: OpCache,
    pub(crate) quant_sets: Vec<Vec<u32>>,
    created: usize,
    peak: usize,
    /// Budget on live arena nodes, checked at allocation (`mk_raw`).
    node_budget: Option<usize>,
    /// Sticky: an allocation pushed the arena past `node_budget`. The
    /// solver polls this between operations; it stays set (even across a
    /// node-count-reducing GC) until the budget is re-armed or the manager
    /// reset, so a run that crossed its budget reliably reports it.
    budget_hit: bool,
}

impl Default for Bdd {
    fn default() -> Self {
        Bdd::new()
    }
}

const MIN_TABLE: usize = 1 << 10;

impl Bdd {
    /// Creates a manager containing only the terminal.
    pub fn new() -> Self {
        Bdd {
            nodes: vec![Node {
                var: TERMINAL_VAR,
                lo: ONE,
                hi: ONE,
            }],
            table: vec![0; MIN_TABLE],
            cache: OpCache::new(),
            quant_sets: Vec::new(),
            created: 0,
            peak: 1,
            node_budget: None,
            budget_hit: false,
        }
    }

    /// Clears the manager back to the empty state *without* releasing its
    /// memory: the arena, unique table and operation cache keep their
    /// capacity, the cache is invalidated generationally in O(1), and the
    /// run counters restart. This is what lets a long-lived worker reuse
    /// one manager across unrelated problems instead of reallocating.
    pub fn reset(&mut self) {
        self.nodes.truncate(1);
        self.table.fill(0);
        self.cache.invalidate();
        self.cache.reset_counters();
        self.quant_sets.clear();
        self.created = 0;
        self.peak = 1;
        self.node_budget = None;
        self.budget_hit = false;
    }

    /// Arms (or disarms, with `None`) the live-node budget. Allocation
    /// checks it: once the arena grows past the budget,
    /// [`Bdd::budget_exceeded`] reports the overrun until the budget is
    /// re-armed or the manager [`reset`](Bdd::reset). Arming against an
    /// already-over-budget arena trips immediately.
    pub fn set_node_budget(&mut self, budget: Option<usize>) {
        self.node_budget = budget;
        self.budget_hit = matches!(budget, Some(b) if self.nodes.len() > b);
    }

    /// `Some((live_nodes, budget))` once an allocation has pushed the
    /// arena past the armed budget — the solver's poll point for turning a
    /// memory overrun into a typed `unknown` verdict instead of an
    /// unbounded run.
    pub fn budget_exceeded(&self) -> Option<(usize, usize)> {
        if self.budget_hit {
            Some((self.nodes.len(), self.node_budget.unwrap_or(0)))
        } else {
            None
        }
    }

    /// The constant false function.
    pub fn zero(&self) -> NodeId {
        ZERO
    }

    /// The constant true function.
    pub fn one(&self) -> NodeId {
        ONE
    }

    /// Number of live nodes (the terminal included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Counters of this run: live/peak/created nodes, unique-table
    /// capacity, operation-cache hit statistics.
    pub fn stats(&self) -> BddStats {
        BddStats {
            live_nodes: self.nodes.len(),
            peak_nodes: self.peak,
            created_nodes: self.created,
            table_capacity: self.table.len(),
            cache_hits: self.cache.hits(),
            cache_lookups: self.cache.lookups(),
        }
    }

    pub(crate) fn var_of(&self, f: NodeId) -> u32 {
        self.nodes[f.index()].var
    }

    /// The children of `f` with `f`'s complement bit pushed onto them —
    /// the edges one actually follows when traversing a complemented
    /// function.
    #[inline]
    pub(crate) fn children(&self, f: NodeId) -> (NodeId, NodeId) {
        let n = self.nodes[f.index()];
        (n.lo.xor_complement(f), n.hi.xor_complement(f))
    }

    /// Whether `f` is one of the two constant functions.
    pub fn is_terminal(&self, f: NodeId) -> bool {
        f.index() == 0
    }

    /// Open-addressed lookup-or-insert of the (canonical) row
    /// `(var, lo, hi)`; `hi` must be regular.
    fn mk_raw(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        debug_assert!(!hi.is_complement());
        let mask = self.table.len() - 1;
        let mut slot = (unique_hash(var, lo, hi) >> 32) as usize & mask;
        loop {
            let entry = self.table[slot];
            if entry == 0 {
                break;
            }
            let idx = (entry - 1) as usize;
            let n = &self.nodes[idx];
            if n.var == var && n.lo == lo && n.hi == hi {
                return NodeId((idx as u32) << 1);
            }
            slot = (slot + 1) & mask;
        }
        let idx = self.nodes.len();
        assert!(idx < (1 << 31), "bdd node overflow");
        self.nodes.push(Node { var, lo, hi });
        self.table[slot] = idx as u32 + 1;
        self.created += 1;
        self.peak = self.peak.max(self.nodes.len());
        if let Some(budget) = self.node_budget {
            if self.nodes.len() > budget {
                self.budget_hit = true;
            }
        }
        // Keep the load factor under 3/4; growth rehashes every arena row.
        if (self.nodes.len() + 1) * 4 > self.table.len() * 3 {
            self.grow_table();
        }
        self.cache.maybe_grow(self.nodes.len());
        NodeId((idx as u32) << 1)
    }

    fn grow_table(&mut self) {
        self.table = vec![0; self.table.len() * 2];
        self.rehash();
    }

    /// Reinserts every arena row into the (zeroed) unique table — the one
    /// probe-insert loop shared by table growth and GC compaction.
    fn rehash(&mut self) {
        let mask = self.table.len() - 1;
        for (idx, n) in self.nodes.iter().enumerate().skip(1) {
            let mut slot = (unique_hash(n.var, n.lo, n.hi) >> 32) as usize & mask;
            while self.table[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            self.table[slot] = idx as u32 + 1;
        }
    }

    /// Creates (or reuses) the node `(var, lo, hi)`, normalizing the
    /// complement placement: a complemented then-edge moves the mark to
    /// the result.
    pub(crate) fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        debug_assert!(var < self.var_of(lo) && var < self.var_of(hi));
        if hi.is_complement() {
            self.mk_raw(var, lo.neg(), hi.neg()).neg()
        } else {
            self.mk_raw(var, lo, hi)
        }
    }

    /// The single-variable function `v`.
    pub fn var(&mut self, v: u32) -> NodeId {
        self.mk(v, ZERO, ONE)
    }

    /// The negated single-variable function `¬v`.
    pub fn nvar(&mut self, v: u32) -> NodeId {
        self.var(v).neg()
    }

    #[inline]
    fn cofactor(&self, f: NodeId, v: u32) -> (NodeId, NodeId) {
        if self.var_of(f) == v {
            self.children(f)
        } else {
            (f, f)
        }
    }

    /// If-then-else: `f ? g : h`.
    ///
    /// This is the one recursive operation; conjunction, disjunction,
    /// implication, equivalence and exclusive-or are single `ite` calls.
    /// The triple is canonicalized before the cache lookup (constant and
    /// equal-argument collapses, commutative-argument ordering, and the
    /// two complement rules `ite(¬f,g,h) = ite(f,h,g)` and
    /// `ite(f,¬g,¬h) = ¬ite(f,g,h)`), so equivalent calls share one cache
    /// line and the stored result is always complement-canonical.
    ///
    /// # Example
    ///
    /// ```
    /// use bdd::Bdd;
    ///
    /// let mut m = Bdd::new();
    /// let (x, y, z) = (m.var(0), m.var(1), m.var(2));
    /// let f = m.ite(x, y, z);
    /// // f is y where x holds and z where it does not.
    /// assert!(m.eval(f, &[true, true, false]));
    /// assert!(!m.eval(f, &[false, true, false]));
    /// assert!(m.eval(f, &[false, true, true]));
    /// ```
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        let (mut f, mut g, mut h) = (f, g, h);
        // Constant and equal-argument collapses.
        if f == ONE {
            return g;
        }
        if f == ZERO {
            return h;
        }
        if g == h {
            return g;
        }
        if f == g {
            g = ONE;
        } else if f == g.neg() {
            g = ZERO;
        }
        if f == h {
            h = ZERO;
        } else if f == h.neg() {
            h = ONE;
        }
        if g == ONE && h == ZERO {
            return f;
        }
        if g == ZERO && h == ONE {
            return f.neg();
        }
        if g == h {
            return g;
        }
        // Commutative-argument ordering: pick the lower-index function
        // first so e.g. f∧g and g∧f share one cache key.
        if g == ONE && h.index() < f.index() {
            std::mem::swap(&mut f, &mut h); // ite(f,1,h) = ite(h,1,f)
        } else if h == ZERO && g.index() < f.index() {
            std::mem::swap(&mut f, &mut g); // ite(f,g,0) = ite(g,f,0)
        } else if g == ZERO && h.index() < f.index() {
            let (nf, nh) = (f.neg(), h.neg()); // ite(f,0,h) = ite(¬h,0,¬f)
            f = nh;
            h = nf;
        } else if h == ONE && g.index() < f.index() {
            let (nf, ng) = (f.neg(), g.neg()); // ite(f,g,1) = ite(¬g,¬f,1)
            f = ng;
            g = nf;
        }
        // Complement canonicalization: regular f, regular g.
        if f.is_complement() {
            f = f.neg();
            std::mem::swap(&mut g, &mut h);
        }
        let flip = g.is_complement();
        if flip {
            g = g.neg();
            h = h.neg();
        }
        if let Some(r) = self.cache.get(OP_ITE, f.0, g.0, h.0) {
            return NodeId(r).xor_complement(NodeId(flip as u32));
        }
        let v = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactor(f, v);
        let (g0, g1) = self.cofactor(g, v);
        let (h0, h1) = self.cofactor(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.cache.put(OP_ITE, f.0, g.0, h.0, r.0);
        if flip {
            r.neg()
        } else {
            r
        }
    }

    /// Conjunction.
    ///
    /// # Example
    ///
    /// ```
    /// use bdd::Bdd;
    ///
    /// let mut m = Bdd::new();
    /// let (x, y) = (m.var(0), m.var(1));
    /// let f = m.and(x, y);
    /// assert_eq!(m.and(y, x), f); // canonical: same function, same id
    /// let nx = m.not(x);
    /// assert_eq!(m.and(f, nx), m.zero());
    /// ```
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, ZERO)
    }

    /// Disjunction.
    ///
    /// # Example
    ///
    /// ```
    /// use bdd::Bdd;
    ///
    /// let mut m = Bdd::new();
    /// let (x, y) = (m.var(0), m.var(1));
    /// let f = m.or(x, y);
    /// // De Morgan, node-for-node: ¬(x ∨ y) = ¬x ∧ ¬y.
    /// let (nx, ny) = (m.not(x), m.not(y));
    /// let g = m.and(nx, ny);
    /// assert_eq!(m.not(f), g);
    /// ```
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, ONE, g)
    }

    /// Complement — with complement edges this is a constant-time tag
    /// flip: no traversal, no new nodes, no cache.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        f.neg()
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, ONE)
    }

    /// Equivalence `f ↔ g`.
    pub fn iff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, g.neg())
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g.neg(), g)
    }

    /// Difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g.neg(), ZERO)
    }

    /// Checks `f → g` as a decision (no new nodes beyond the cache).
    pub fn implies_check(&mut self, f: NodeId, g: NodeId) -> bool {
        self.implies(f, g) == ONE
    }

    /// Renames every variable `v` of `f` to `v + delta`.
    ///
    /// The map is monotone, so the result is a well-ordered BDD built in
    /// one traversal. Used to move set functions between the interleaved
    /// `x̄` (even) and `ȳ` (odd) rails.
    ///
    /// # Panics
    ///
    /// Panics if a shifted variable would be negative.
    pub fn shift(&mut self, f: NodeId, delta: i32) -> NodeId {
        if self.is_terminal(f) || delta == 0 {
            return f;
        }
        // Shift commutes with complement: memoize on the regular part.
        let reg = f.regular();
        let shifted = if let Some(r) = self.cache.get(OP_SHIFT, reg.0, delta as u32, 0) {
            NodeId(r)
        } else {
            let v = self.var_of(reg);
            let nv = u32::try_from(i64::from(v) + i64::from(delta)).expect("negative variable");
            let (lo, hi) = self.children(reg);
            let nlo = self.shift(lo, delta);
            let nhi = self.shift(hi, delta);
            let r = self.mk(nv, nlo, nhi);
            self.cache.put(OP_SHIFT, reg.0, delta as u32, 0, r.0);
            r
        };
        shifted.xor_complement(f)
    }

    /// The set of variables on which `f` depends.
    pub fn support(&self, f: NodeId) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.index()];
        while let Some(i) = stack.pop() {
            if i == 0 || !seen.insert(i) {
                continue;
            }
            let n = &self.nodes[i];
            vars.insert(n.var);
            stack.push(n.lo.index());
            stack.push(n.hi.index());
        }
        vars.into_iter().collect()
    }

    /// Number of arena nodes reachable from `f` (its size as a diagram,
    /// the shared terminal included). `f` and `¬f` have the same size.
    pub fn size(&self, f: NodeId) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.index()];
        let mut n = 0;
        while let Some(i) = stack.pop() {
            if !seen.insert(i) {
                continue;
            }
            n += 1;
            if i != 0 {
                let node = &self.nodes[i];
                stack.push(node.lo.index());
                stack.push(node.hi.index());
            }
        }
        n
    }

    /// One satisfying assignment of `f` as `(variable, value)` pairs for
    /// the variables along the chosen path, or `None` if `f` is
    /// unsatisfiable.
    ///
    /// Variables absent from the result are don't-cares.
    pub fn sat_one(&self, f: NodeId) -> Option<Vec<(u32, bool)>> {
        if f == ZERO {
            return None;
        }
        let mut out = Vec::new();
        let mut cur = f;
        while cur != ONE {
            let v = self.var_of(cur);
            let (lo, hi) = self.children(cur);
            // A canonical node is non-redundant, so at most one branch can
            // be the constant ⊥.
            if lo != ZERO {
                out.push((v, false));
                cur = lo;
            } else {
                debug_assert_ne!(hi, ZERO);
                out.push((v, true));
                cur = hi;
            }
        }
        Some(out)
    }

    /// Number of satisfying assignments of `f` over variables `0..nvars`.
    ///
    /// Returns `f64` because counts are astronomically large for wide
    /// leans; used for statistics only.
    pub fn sat_count(&self, f: NodeId, nvars: u32) -> f64 {
        // Satisfaction probability under uniform assignments: complement
        // edges make this the natural recursion (p(¬f) = 1 − p(f)), and it
        // is insensitive to skipped levels.
        fn p(bdd: &Bdd, f: NodeId, memo: &mut FastMap<u32, f64>) -> f64 {
            if f.index() == 0 {
                return if f.is_complement() { 0.0 } else { 1.0 };
            }
            let reg = f.regular();
            let pr = if let Some(&c) = memo.get(&reg.0) {
                c
            } else {
                let (lo, hi) = bdd.children(reg);
                let c = (p(bdd, lo, memo) + p(bdd, hi, memo)) / 2.0;
                memo.insert(reg.0, c);
                c
            };
            if f.is_complement() {
                1.0 - pr
            } else {
                pr
            }
        }
        let mut memo = FastMap::default();
        p(self, f, &mut memo) * 2f64.powi(nvars as i32)
    }

    /// Mark-compact garbage collection.
    ///
    /// Keeps exactly the nodes reachable from `roots` (and the terminal),
    /// compacts the arena, rebuilds the unique table, rewrites every root
    /// in place — complement bits preserved — and invalidates the
    /// operation cache (one generation bump). Handles *not* passed as
    /// roots are invalidated; callers own the root inventory.
    pub fn gc(&mut self, roots: &mut [&mut NodeId]) {
        let n = self.nodes.len();
        let mut live = vec![false; n];
        live[0] = true;
        let mut stack: Vec<usize> = roots.iter().map(|r| r.index()).collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            stack.push(self.nodes[i].lo.index());
            stack.push(self.nodes[i].hi.index());
        }
        // Children precede parents in the arena (nodes are created bottom
        // up), so a single forward pass can remap in place.
        let mut remap: Vec<u32> = vec![0; n];
        let mut new_nodes: Vec<Node> = Vec::with_capacity(live.iter().filter(|&&b| b).count());
        new_nodes.push(self.nodes[0]);
        for i in 1..n {
            if !live[i] {
                continue;
            }
            let old = self.nodes[i];
            let idx = new_nodes.len() as u32;
            new_nodes.push(Node {
                var: old.var,
                lo: NodeId(remap[old.lo.index()] << 1).xor_complement(old.lo),
                hi: NodeId(remap[old.hi.index()] << 1),
            });
            remap[i] = idx;
        }
        for r in roots.iter_mut() {
            **r = NodeId(remap[r.index()] << 1).xor_complement(**r);
        }
        self.nodes = new_nodes;
        self.table.fill(0);
        self.rehash();
        self.cache.invalidate();
    }

    /// Evaluates `f` under a total assignment (`assignment[v]` for var
    /// `v`).
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !self.is_terminal(cur) {
            let v = self.var_of(cur) as usize;
            let (lo, hi) = self.children(cur);
            cur = if assignment[v] { hi } else { lo };
        }
        cur == ONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals() {
        let m = Bdd::new();
        assert_ne!(m.zero(), m.one());
        assert!(m.is_terminal(m.zero()));
        assert!(m.is_terminal(m.one()));
        assert_eq!(m.node_count(), 1); // one shared terminal node
    }

    #[test]
    fn boolean_laws() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let nx = m.not(x);
        assert_eq!(m.and(x, nx), m.zero());
        assert_eq!(m.or(x, nx), m.one());
        assert_eq!(m.not(nx), x);
        let xy = m.and(x, y);
        let yx = m.and(y, x);
        assert_eq!(xy, yx);
        // De Morgan.
        let lhs = m.not(xy);
        let ny = m.not(y);
        let rhs = m.or(nx, ny);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn complement_is_free() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.xor(x, y);
        let before = m.node_count();
        let nf = m.not(f);
        // Negation allocates nothing and is undone by a second flip.
        assert_eq!(m.node_count(), before);
        assert_eq!(m.not(nf), f);
        assert_ne!(nf, f);
        // f and ¬f share every arena node.
        assert_eq!(m.size(f), m.size(nf));
    }

    #[test]
    fn iff_xor() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let e = m.iff(x, y);
        let xo = m.xor(x, y);
        assert_eq!(m.not(e), xo);
        let ee = m.iff(x, x);
        assert_eq!(ee, m.one());
    }

    #[test]
    fn ite_commutative_normalization_shares_cache_lines() {
        let mut m = Bdd::new();
        let x = m.var(3);
        let y = m.var(5);
        let a = m.and(x, y);
        let hits_before = m.stats().cache_hits;
        let b = m.and(y, x); // same canonical triple → cache hit
        assert_eq!(a, b);
        assert!(m.stats().cache_hits > hits_before);
    }

    #[test]
    fn shift_is_monotone_rename() {
        let mut m = Bdd::new();
        let x0 = m.var(0);
        let x2 = m.var(2);
        let f = m.and(x0, x2);
        let g = m.shift(f, 1);
        assert_eq!(m.support(g), vec![1, 3]);
        let back = m.shift(g, -1);
        assert_eq!(back, f);
        // Shift commutes with complement.
        let nf = m.not(f);
        let ng = m.shift(nf, 1);
        assert_eq!(ng, m.not(g));
    }

    #[test]
    fn sat_one_and_eval() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let ny = m.not(y);
        let f = m.and(x, ny);
        let sat = m.sat_one(f).unwrap();
        let mut assignment = vec![false; 2];
        for (v, b) in sat {
            assignment[v as usize] = b;
        }
        assert!(m.eval(f, &assignment));
        assert!(m.sat_one(m.zero()).is_none());
        // A complemented root still yields a valid witness.
        let nf = m.not(f);
        let sat = m.sat_one(nf).unwrap();
        let mut assignment = vec![false; 2];
        for (v, b) in sat {
            assignment[v as usize] = b;
        }
        assert!(m.eval(nf, &assignment));
    }

    #[test]
    fn sat_count_small() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.or(x, y);
        assert_eq!(m.sat_count(f, 2), 3.0);
        assert_eq!(m.sat_count(m.one(), 3), 8.0);
        assert_eq!(m.sat_count(m.zero(), 3), 0.0);
        assert_eq!(m.sat_count(x, 2), 2.0);
        let nf = m.not(f);
        assert_eq!(m.sat_count(nf, 2), 1.0);
    }

    #[test]
    fn support_and_size() {
        let mut m = Bdd::new();
        let x = m.var(3);
        let y = m.var(7);
        let f = m.xor(x, y);
        assert_eq!(m.support(f), vec![3, 7]);
        // Complement edges: one terminal, one shared y-node, one x-node.
        assert_eq!(m.size(f), 3);
    }

    #[test]
    fn stats_track_the_run() {
        let mut m = Bdd::new();
        let s0 = m.stats();
        assert_eq!(s0.live_nodes, 1);
        assert_eq!(s0.created_nodes, 0);
        let x = m.var(0);
        let y = m.var(1);
        let _ = m.and(x, y);
        let s = m.stats();
        assert!(s.created_nodes >= 3);
        assert_eq!(s.peak_nodes, s.live_nodes);
        assert!(s.load_factor() > 0.0 && s.load_factor() < 0.75);
        assert!(s.cache_lookups > 0);
    }

    #[test]
    fn reset_keeps_capacity_and_clears_state() {
        let mut m = Bdd::new();
        for v in 0..64 {
            let a = m.var(v);
            let b = m.var(v + 64);
            let _ = m.xor(a, b);
        }
        let cap = m.stats().table_capacity;
        assert!(m.node_count() > 100);
        m.reset();
        assert_eq!(m.node_count(), 1);
        assert_eq!(m.stats().created_nodes, 0);
        assert_eq!(m.stats().table_capacity, cap);
        // The manager is fully usable after reset, with canonicity intact.
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        let g = m.and(y, x);
        assert_eq!(f, g);
        assert!(m.eval(f, &[true, true]));
        assert!(!m.eval(f, &[true, false]));
    }

    #[test]
    fn node_budget_is_checked_at_allocation_and_sticky() {
        let mut m = Bdd::new();
        m.set_node_budget(Some(4));
        assert!(m.budget_exceeded().is_none());
        let mut acc = m.one();
        for v in 0..16 {
            let x = m.var(v);
            acc = m.and(acc, x);
        }
        let (live, budget) = m.budget_exceeded().expect("budget crossed");
        assert!(live > budget);
        assert_eq!(budget, 4);
        // Sticky across a GC that shrinks the arena back under budget…
        let mut keep = m.one();
        m.gc(&mut [&mut keep]);
        assert!(m.node_count() <= 4);
        assert!(m.budget_exceeded().is_some());
        // …cleared by re-arming or reset.
        m.set_node_budget(Some(1024));
        assert!(m.budget_exceeded().is_none());
        m.set_node_budget(Some(4));
        // Arming against an already-oversized arena trips immediately.
        let mut m2 = Bdd::new();
        for v in 0..16 {
            let a = m2.var(v);
            let b = m2.var(v + 16);
            let _ = m2.xor(a, b);
        }
        m2.set_node_budget(Some(2));
        assert!(m2.budget_exceeded().is_some());
        m2.reset();
        assert!(m2.budget_exceeded().is_none());
    }

    #[test]
    fn unique_table_grows_past_initial_capacity() {
        let mut m = Bdd::new();
        // Force > MIN_TABLE nodes: a chain of distinct conjunctions.
        let mut acc = m.one();
        for v in 0..2048 {
            let x = m.var(v);
            acc = m.and(acc, x);
        }
        assert!(m.node_count() > MIN_TABLE / 2);
        assert!(m.stats().table_capacity > MIN_TABLE);
        // Canonicity survives growth rehashes.
        let mut acc2 = m.one();
        for v in 0..2048 {
            let x = m.var(v);
            acc2 = m.and(acc2, x);
        }
        assert_eq!(acc, acc2);
    }
}

#[cfg(test)]
mod gc_tests {
    use super::*;

    #[test]
    fn gc_preserves_roots_and_semantics() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let mut f = m.and(x, y);
        let mut g = m.or(f, z);
        // Garbage: a function we drop.
        let ny = m.not(y);
        let _dead = m.xor(ny, z);
        let before = m.node_count();
        m.gc(&mut [&mut f, &mut g]);
        assert!(m.node_count() < before);
        // Semantics preserved: f = x∧y, g = x∧y ∨ z.
        assert!(m.eval(f, &[true, true, false]));
        assert!(!m.eval(f, &[true, false, false]));
        assert!(m.eval(g, &[false, false, true]));
        // New operations still work and hash-consing still holds.
        let x2 = m.var(0);
        let y2 = m.var(1);
        let f2 = m.and(x2, y2);
        assert_eq!(f2, f);
    }

    #[test]
    fn gc_preserves_complemented_roots() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        let mut nf = m.not(f);
        let _dead = m.xor(x, y);
        m.gc(&mut [&mut nf]);
        // nf is still ¬(x∧y).
        assert!(m.eval(nf, &[true, false]));
        assert!(!m.eval(nf, &[true, true]));
        let x2 = m.var(0);
        let y2 = m.var(1);
        let f2 = m.and(x2, y2);
        assert_eq!(m.not(f2), nf);
    }

    #[test]
    fn gc_with_no_roots_keeps_terminal() {
        let mut m = Bdd::new();
        let x = m.var(5);
        let _ = m.not(x);
        m.gc(&mut []);
        assert_eq!(m.node_count(), 1);
        assert_eq!(m.zero(), NodeId(1));
        assert_eq!(m.one(), NodeId(0));
    }
}

//! Phase-scoped tracing: [`Recorder`], [`Event`], and the [`Sink`] family.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Process-wide solve-id counter; every enabled [`Recorder`] gets a fresh id
/// so events from concurrent solves interleaved in one sink stay separable.
static NEXT_SOLVE_ID: AtomicU64 = AtomicU64::new(1);

/// A scalar value attached to an [`Event`] field.
///
/// Strings are `&'static str` on purpose: every name that flows through the
/// tracer (op, backend, phase, status, resource) is a static identifier, so
/// an event never owns heap-allocated text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, sizes, microseconds).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Floating point (rates). Non-finite values serialize as `0`.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Static identifier.
    Str(&'static str),
}

impl FieldValue {
    fn write_json(&self, out: &mut String) {
        match *self {
            FieldValue::U64(v) => {
                out.push_str(&v.to_string());
            }
            FieldValue::I64(v) => {
                out.push_str(&v.to_string());
            }
            FieldValue::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push('0');
                }
            }
            FieldValue::Bool(v) => out.push_str(if v { "true" } else { "false" }),
            FieldValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
        }
    }
}

/// One structured trace event.
///
/// Serialized as a flat JSON object: the envelope fields `solve`, `seq`,
/// `t_us` and `kind` first, then the kind-specific fields in recording
/// order. See `docs/OBSERVABILITY.md` for the per-kind schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Id of the solve this event belongs to (unique per process).
    pub solve: u64,
    /// Sequence number within the solve, starting at 0.
    pub seq: u64,
    /// Microseconds since the solve's recorder was created.
    pub t_us: u64,
    /// Event kind: `solve_begin`, `phase`, `step`, `limit`, `memo`,
    /// `solve_end`.
    pub kind: &'static str,
    /// Kind-specific payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Serialize as a single JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"solve\":");
        out.push_str(&self.solve.to_string());
        out.push_str(",\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"t_us\":");
        out.push_str(&self.t_us.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind);
        out.push('"');
        for (name, value) in &self.fields {
            out.push_str(",\"");
            out.push_str(name);
            out.push_str("\":");
            value.write_json(&mut out);
        }
        out.push('}');
        out
    }
}

/// Receiver of trace events. Implementations must tolerate concurrent
/// `record` calls (the dual backend runs two solver threads under one
/// recorder).
pub trait Sink: Send + Sync + fmt::Debug {
    /// Consume one event.
    fn record(&self, event: &Event);
}

#[derive(Debug)]
struct Inner {
    sink: Arc<dyn Sink>,
    solve: u64,
    start: Instant,
    seq: AtomicU64,
}

/// Handle for emitting trace events.
///
/// Cloning is cheap (an `Arc` bump); clones share the solve id, clock and
/// sequence counter, so a recorder can be handed across threads (the dual
/// backend does). The disabled recorder ([`Recorder::noop`]) reduces every
/// call to one `Option` check.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// The disabled recorder: records nothing, costs nothing.
    pub fn noop() -> Recorder {
        Recorder { inner: None }
    }

    /// A recorder feeding `sink`, with a fresh process-unique solve id.
    pub fn new(sink: Arc<dyn Sink>) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                sink,
                solve: NEXT_SOLVE_ID.fetch_add(1, Ordering::Relaxed),
                start: Instant::now(),
                seq: AtomicU64::new(0),
            })),
        }
    }

    /// Build a recorder from an arbitrary number of sinks: zero sinks give
    /// the noop recorder, one is used directly, several are teed.
    pub fn with_sinks(mut sinks: Vec<Arc<dyn Sink>>) -> Recorder {
        match sinks.len() {
            0 => Recorder::noop(),
            1 => Recorder::new(sinks.pop().expect("len checked")),
            _ => Recorder::new(Arc::new(TeeSink::new(sinks))),
        }
    }

    /// Whether events are being recorded. Callers use this to skip
    /// gathering observation data that only feeds the tracer.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Id of the solve this recorder traces, if enabled.
    pub fn solve_id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.solve)
    }

    /// Emit one event.
    pub fn event(&self, kind: &'static str, fields: &[(&'static str, FieldValue)]) {
        let Some(inner) = &self.inner else { return };
        let event = Event {
            solve: inner.solve,
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            t_us: inner.start.elapsed().as_micros() as u64,
            kind,
            fields: fields.to_vec(),
        };
        inner.sink.record(&event);
    }

    /// Open a phase span; the returned guard emits a single `phase` event
    /// with the measured duration when dropped.
    pub fn span(&self, phase: &'static str) -> Span {
        Span {
            rec: self.clone(),
            phase,
            started: self.inner.as_ref().map(|_| Instant::now()),
        }
    }
}

/// RAII guard for a traced phase; see [`Recorder::span`].
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    phase: &'static str,
    started: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            self.rec.event(
                "phase",
                &[
                    ("phase", FieldValue::Str(self.phase)),
                    (
                        "dur_us",
                        FieldValue::U64(started.elapsed().as_micros() as u64),
                    ),
                ],
            );
        }
    }
}

/// In-memory sink: buffers events for later retrieval. Used for the
/// protocol `"trace"` field and for slow-solve capture.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Fresh empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Remove and return everything recorded so far, in order.
    pub fn drain(&self) -> Vec<Event> {
        match self.events.lock() {
            Ok(mut g) => std::mem::take(&mut *g),
            Err(poison) => std::mem::take(&mut *poison.into_inner()),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().map_or(0, |g| g.len())
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        if let Ok(mut g) = self.events.lock() {
            g.push(event.clone());
        }
    }
}

/// Sink writing one JSON line per event to an arbitrary writer,
/// flushing after each line so traces survive a crash mid-solve.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl JsonlSink {
    /// Wrap any writer.
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Create (truncating) a trace file at `path`.
    pub fn create(path: &str) -> io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink::new(Box::new(BufWriter::new(file))))
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(out, "{}", event.to_jsonl());
            let _ = out.flush();
        }
    }
}

/// Fan-out sink: forwards every event to each child in order.
#[derive(Debug)]
pub struct TeeSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl TeeSink {
    /// Tee over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl Sink for TeeSink {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_inert() {
        let rec = Recorder::noop();
        assert!(!rec.enabled());
        assert_eq!(rec.solve_id(), None);
        rec.event("step", &[("iter", FieldValue::U64(1))]);
        let _span = rec.span("compile");
    }

    #[test]
    fn events_carry_monotonic_seq_and_solve_id() {
        let mem = Arc::new(MemorySink::new());
        let rec = Recorder::new(mem.clone());
        assert!(rec.enabled());
        rec.event("solve_begin", &[("op", FieldValue::Str("contains"))]);
        {
            let _span = rec.span("compile");
        }
        rec.event("solve_end", &[("status", FieldValue::Str("holds"))]);
        let events = mem.drain();
        assert_eq!(events.len(), 3);
        let id = rec.solve_id().unwrap();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.solve, id);
            assert_eq!(e.seq, i as u64);
        }
        assert_eq!(events[0].kind, "solve_begin");
        assert_eq!(events[1].kind, "phase");
        assert_eq!(events[2].kind, "solve_end");
        assert!(mem.is_empty(), "drain empties the sink");
    }

    #[test]
    fn distinct_recorders_get_distinct_solve_ids() {
        let mem = Arc::new(MemorySink::new());
        let a = Recorder::new(mem.clone());
        let b = Recorder::new(mem.clone());
        assert_ne!(a.solve_id(), b.solve_id());
    }

    #[test]
    fn jsonl_serialization_is_flat_and_escaped() {
        let e = Event {
            solve: 7,
            seq: 2,
            t_us: 1500,
            kind: "step",
            fields: vec![
                ("iter", FieldValue::U64(3)),
                ("nodes_delta", FieldValue::I64(-12)),
                ("rate", FieldValue::F64(0.5)),
                ("changed", FieldValue::Bool(true)),
                ("backend", FieldValue::Str("symbolic")),
            ],
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"solve\":7,\"seq\":2,\"t_us\":1500,\"kind\":\"step\",\
             \"iter\":3,\"nodes_delta\":-12,\"rate\":0.5,\"changed\":true,\
             \"backend\":\"symbolic\"}"
        );
    }

    #[test]
    fn non_finite_floats_serialize_as_zero() {
        let e = Event {
            solve: 1,
            seq: 0,
            t_us: 0,
            kind: "step",
            fields: vec![("rate", FieldValue::F64(f64::NAN))],
        };
        assert!(e.to_jsonl().ends_with("\"rate\":0}"));
    }

    #[test]
    fn tee_fans_out_and_with_sinks_composes() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let rec = Recorder::with_sinks(vec![a.clone(), b.clone()]);
        rec.event("memo", &[("hit", FieldValue::Bool(false))]);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(!Recorder::with_sinks(vec![]).enabled());
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        #[derive(Debug, Default, Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let shared = Shared::default();
        let sink = Arc::new(JsonlSink::new(Box::new(shared.clone())));
        let rec = Recorder::new(sink);
        rec.event("limit", &[("resource", FieldValue::Str("iterations"))]);
        rec.event("memo", &[("hit", FieldValue::Bool(true))]);
        let bytes = shared.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"kind\":\"limit\""));
        assert!(lines[1].contains("\"hit\":true"));
    }
}

//! The engine as a library: register a workspace once, then fan a batch of
//! decision problems out across worker threads with memoized verdicts.
//!
//! ```text
//! cargo run --release --example batch_service
//! ```

use xsat::engine::{Engine, EngineConfig, Request};

fn main() -> Result<(), String> {
    let mut engine = Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });

    let lines = [
        // Register once…
        r#"{"op":"dtd","name":"d1","source":"<!ELEMENT r (x, y)> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY>"}"#,
        r#"{"op":"query","name":"all","xpath":"child::*"}"#,
        r#"{"op":"query","name":"xy","xpath":"child::x | child::y"}"#,
        // …then pose many problems against the names.
        r#"{"id":1,"op":"contains","lhs":"all","rhs":"xy","type":"d1"}"#,
        r#"{"id":2,"op":"contains","lhs":"all","rhs":"xy"}"#,
        r#"{"id":3,"op":"overlap","lhs":"child::x","rhs":"all","type":"d1"}"#,
        r#"{"id":4,"op":"covers","query":"all","by":["child::x","child::*[not(self::x)]"]}"#,
        // A repeat of id 1: answered from the memo cache.
        r#"{"id":5,"op":"contains","lhs":"all","rhs":"xy","type":"d1"}"#,
    ];
    let requests: Vec<Request> = lines
        .iter()
        .map(|l| Request::parse(l))
        .collect::<Result<_, _>>()?;

    let outcome = engine.run_batch(&requests);
    for response in &outcome.responses {
        println!("{}", response.to_json());
    }
    eprintln!("summary: {}", outcome.stats.to_value().to_json());
    Ok(())
}

//! The formula arena: hash-consing, smart constructors, negation,
//! substitution and fixpoint unfolding.

use std::collections::HashMap;

use ftree::Label;

use crate::syntax::{Formula, FormulaKind, Program, Var};

/// Arena and factory for Lµ formulas.
///
/// All formulas live in a `Logic`; [`Formula`] values are indices into it.
/// Construction hash-conses: building the same shape twice yields the same
/// id, so structural equality is id equality and downstream algorithms can
/// memoize on ids.
///
/// The constructors apply the obvious boolean simplifications
/// (`⊤ ∧ ϕ = ϕ`, `⟨a⟩⊥ = ⊥`, idempotence, …) but keep the paper's syntax
/// otherwise.
///
/// # Example
///
/// ```
/// use mulogic::Logic;
/// use ftree::Label;
///
/// let mut lg = Logic::new();
/// let a = lg.prop(Label::new("a"));
/// let t = lg.tt();
/// let f = lg.and(a, t);
/// assert_eq!(f, a); // ⊤ is the unit of ∧
/// ```
#[derive(Debug, Clone, Default)]
pub struct Logic {
    nodes: Vec<FormulaKind>,
    interned: HashMap<FormulaKind, Formula>,
    var_names: Vec<String>,
}

impl Logic {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Logic::default()
    }

    /// Number of distinct formula nodes allocated.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no formula has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The shape of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` was created by a different arena.
    pub fn kind(&self, f: Formula) -> &FormulaKind {
        &self.nodes[f.index()]
    }

    fn intern(&mut self, kind: FormulaKind) -> Formula {
        if let Some(&f) = self.interned.get(&kind) {
            return f;
        }
        let id = Formula(u32::try_from(self.nodes.len()).expect("formula arena overflow"));
        self.nodes.push(kind.clone());
        self.interned.insert(kind, id);
        id
    }

    /// Allocates a fresh fixpoint variable whose display name starts with
    /// `hint`.
    pub fn fresh_var(&mut self, hint: &str) -> Var {
        let id = u32::try_from(self.var_names.len()).expect("variable arena overflow");
        self.var_names.push(format!("{hint}{id}"));
        Var(id)
    }

    /// Allocates a fresh variable with exactly the given display name (used
    /// by the parser).
    pub(crate) fn named_var(&mut self, name: &str) -> Var {
        let id = u32::try_from(self.var_names.len()).expect("variable arena overflow");
        self.var_names.push(name.to_owned());
        Var(id)
    }

    /// The display name of `v`.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    // ----- constructors ---------------------------------------------------

    /// `⊤`.
    pub fn tt(&mut self) -> Formula {
        self.intern(FormulaKind::True)
    }

    /// `⊥` (the paper writes `σ ∧ ¬σ`).
    pub fn ff(&mut self) -> Formula {
        self.intern(FormulaKind::False)
    }

    /// Atomic proposition `σ`.
    pub fn prop(&mut self, label: Label) -> Formula {
        self.intern(FormulaKind::Prop(label))
    }

    /// Negated atomic proposition `¬σ`.
    pub fn not_prop(&mut self, label: Label) -> Formula {
        self.intern(FormulaKind::NotProp(label))
    }

    /// The start proposition `s`.
    pub fn start(&mut self) -> Formula {
        self.intern(FormulaKind::Start)
    }

    /// The negated start proposition `¬s`.
    pub fn not_start(&mut self) -> Formula {
        self.intern(FormulaKind::NotStart)
    }

    /// A fixpoint variable occurrence.
    pub fn var(&mut self, v: Var) -> Formula {
        self.intern(FormulaKind::Var(v))
    }

    /// Disjunction `ϕ ∨ ψ`, simplified.
    pub fn or(&mut self, a: Formula, b: Formula) -> Formula {
        match (self.kind(a), self.kind(b)) {
            (FormulaKind::True, _) | (_, FormulaKind::False) => a,
            (FormulaKind::False, _) | (_, FormulaKind::True) => b,
            _ if a == b => a,
            _ => self.intern(FormulaKind::Or(a, b)),
        }
    }

    /// Conjunction `ϕ ∧ ψ`, simplified.
    pub fn and(&mut self, a: Formula, b: Formula) -> Formula {
        match (self.kind(a), self.kind(b)) {
            (FormulaKind::False, _) => a,
            (_, FormulaKind::False) => b,
            (FormulaKind::True, _) => b,
            (_, FormulaKind::True) => a,
            _ if a == b => a,
            _ => self.intern(FormulaKind::And(a, b)),
        }
    }

    /// N-ary disjunction.
    pub fn or_all(&mut self, items: impl IntoIterator<Item = Formula>) -> Formula {
        let mut acc = self.ff();
        for f in items {
            acc = self.or(acc, f);
        }
        acc
    }

    /// N-ary conjunction.
    pub fn and_all(&mut self, items: impl IntoIterator<Item = Formula>) -> Formula {
        let mut acc = self.tt();
        for f in items {
            acc = self.and(acc, f);
        }
        acc
    }

    /// Existential modality `⟨a⟩ϕ` (with `⟨a⟩⊥ = ⊥`).
    pub fn diam(&mut self, a: Program, f: Formula) -> Formula {
        if matches!(self.kind(f), FormulaKind::False) {
            return f;
        }
        self.intern(FormulaKind::Diam(a, f))
    }

    /// `¬⟨a⟩⊤`: no `a`-neighbour.
    pub fn not_diam_true(&mut self, a: Program) -> Formula {
        self.intern(FormulaKind::NotDiamTrue(a))
    }

    /// N-ary least fixpoint `µ(Xᵢ = ϕᵢ) in ψ`.
    ///
    /// # Panics
    ///
    /// Panics if `bindings` is empty or binds the same variable twice.
    pub fn mu(&mut self, bindings: Vec<(Var, Formula)>, body: Formula) -> Formula {
        self.fixpoint(bindings, body, /* greatest */ false)
    }

    /// N-ary greatest fixpoint `ν(Xᵢ = ϕᵢ) in ψ`.
    ///
    /// # Panics
    ///
    /// Panics if `bindings` is empty or binds the same variable twice.
    pub fn nu(&mut self, bindings: Vec<(Var, Formula)>, body: Formula) -> Formula {
        self.fixpoint(bindings, body, /* greatest */ true)
    }

    fn fixpoint(
        &mut self,
        bindings: Vec<(Var, Formula)>,
        body: Formula,
        greatest: bool,
    ) -> Formula {
        assert!(!bindings.is_empty(), "fixpoint with no bindings");
        let mut seen = std::collections::HashSet::new();
        for (v, _) in &bindings {
            assert!(seen.insert(*v), "duplicate fixpoint binding");
        }
        let kind = if greatest {
            FormulaKind::Nu(bindings.into_boxed_slice(), body)
        } else {
            FormulaKind::Mu(bindings.into_boxed_slice(), body)
        };
        self.intern(kind)
    }

    /// The unary least fixpoint `µX.ϕ`, i.e. `µ(X = ϕ) in X`.
    ///
    /// The paper abbreviates `µX = ϕ in ϕ`; both denote the same set, and
    /// representing the body as `X` keeps formulas small.
    pub fn mu1(&mut self, v: Var, phi: Formula) -> Formula {
        let body = self.var(v);
        self.mu(vec![(v, phi)], body)
    }

    /// The unary greatest fixpoint `νX.ϕ`.
    pub fn nu1(&mut self, v: Var, phi: Formula) -> Formula {
        let body = self.var(v);
        self.nu(vec![(v, phi)], body)
    }

    // ----- derived operations ---------------------------------------------

    /// Full negation `¬ϕ`, pushed to the atoms.
    ///
    /// Uses De Morgan's laws, `¬⟨a⟩ϕ = ¬⟨a⟩⊤ ∨ ⟨a⟩¬ϕ`, and the fixpoint
    /// duality `¬µX̄ = ϕ̄ in ψ = νX̄ = ¬ϕ̄{X̄/¬X̄} in ¬ψ{X̄/¬X̄}` (and
    /// symmetrically). The substitution `X/¬X` cancels with the surrounding
    /// negation, so variables are left untouched. Negation is an involution:
    /// `lg.not(lg.not(f)) == f`.
    ///
    /// On finite trees cycle-free µ and ν coincide (Lemma 4.2), so after
    /// [`Logic::collapse_nu`] this is exactly the µ-only negation of §4.
    pub fn not(&mut self, f: Formula) -> Formula {
        let mut memo = HashMap::new();
        self.not_rec(f, &mut memo)
    }

    fn not_rec(&mut self, f: Formula, memo: &mut HashMap<Formula, Formula>) -> Formula {
        if let Some(&g) = memo.get(&f) {
            return g;
        }
        let g = match self.kind(f).clone() {
            FormulaKind::True => self.ff(),
            FormulaKind::False => self.tt(),
            FormulaKind::Prop(l) => self.not_prop(l),
            FormulaKind::NotProp(l) => self.prop(l),
            FormulaKind::Start => self.not_start(),
            FormulaKind::NotStart => self.start(),
            FormulaKind::Var(v) => self.var(v),
            FormulaKind::Or(a, b) => {
                // ¬(¬⟨a⟩⊤ ∨ ⟨a⟩ξ) = ⟨a⟩⊤ ∧ ⟨a⟩¬ξ = ⟨a⟩¬ξ — tree successors
                // are deterministic. Recognizing the shape produced by the
                // Diam case below makes negation an involution.
                if let (FormulaKind::NotDiamTrue(pa), FormulaKind::Diam(pb, xi)) =
                    (self.kind(a).clone(), self.kind(b).clone())
                {
                    if pa == pb {
                        let nxi = self.not_rec(xi, memo);
                        let v = self.diam(pa, nxi);
                        memo.insert(f, v);
                        return v;
                    }
                }
                let (na, nb) = (self.not_rec(a, memo), self.not_rec(b, memo));
                self.and(na, nb)
            }
            FormulaKind::And(a, b) => {
                let (na, nb) = (self.not_rec(a, memo), self.not_rec(b, memo));
                self.or(na, nb)
            }
            FormulaKind::Diam(a, phi) => {
                if matches!(self.kind(phi), FormulaKind::True) {
                    self.not_diam_true(a)
                } else {
                    let np = self.not_rec(phi, memo);
                    let nd = self.not_diam_true(a);
                    let dn = self.diam(a, np);
                    self.or(nd, dn)
                }
            }
            FormulaKind::NotDiamTrue(a) => {
                let t = self.tt();
                self.diam(a, t)
            }
            FormulaKind::Mu(binds, body) => {
                let nbinds = binds
                    .iter()
                    .map(|&(v, phi)| (v, self.not_rec(phi, memo)))
                    .collect();
                let nbody = self.not_rec(body, memo);
                self.nu(nbinds, nbody)
            }
            FormulaKind::Nu(binds, body) => {
                let nbinds = binds
                    .iter()
                    .map(|&(v, phi)| (v, self.not_rec(phi, memo)))
                    .collect();
                let nbody = self.not_rec(body, memo);
                self.mu(nbinds, nbody)
            }
        };
        memo.insert(f, g);
        g
    }

    /// Rewrites every greatest fixpoint into a least fixpoint.
    ///
    /// On finite focused trees, for *cycle-free* formulas, the two fixpoints
    /// have the same interpretation (Lemma 4.2); the satisfiability solver
    /// works on the µ-only result.
    pub fn collapse_nu(&mut self, f: Formula) -> Formula {
        let mut memo = HashMap::new();
        self.collapse_rec(f, &mut memo)
    }

    fn collapse_rec(&mut self, f: Formula, memo: &mut HashMap<Formula, Formula>) -> Formula {
        if let Some(&g) = memo.get(&f) {
            return g;
        }
        let g = match self.kind(f).clone() {
            FormulaKind::Or(a, b) => {
                let (ca, cb) = (self.collapse_rec(a, memo), self.collapse_rec(b, memo));
                self.or(ca, cb)
            }
            FormulaKind::And(a, b) => {
                let (ca, cb) = (self.collapse_rec(a, memo), self.collapse_rec(b, memo));
                self.and(ca, cb)
            }
            FormulaKind::Diam(a, phi) => {
                let cp = self.collapse_rec(phi, memo);
                self.diam(a, cp)
            }
            FormulaKind::Mu(binds, body) | FormulaKind::Nu(binds, body) => {
                let cbinds = binds
                    .iter()
                    .map(|&(v, phi)| (v, self.collapse_rec(phi, memo)))
                    .collect();
                let cbody = self.collapse_rec(body, memo);
                self.mu(cbinds, cbody)
            }
            _ => f,
        };
        memo.insert(f, g);
        g
    }

    /// Capture-avoiding substitution of `map` in `f`.
    ///
    /// Binders shadow: a fixpoint re-binding a substituted variable stops the
    /// substitution below it.
    pub fn subst(&mut self, f: Formula, map: &HashMap<Var, Formula>) -> Formula {
        if map.is_empty() {
            return f;
        }
        let mut memo = HashMap::new();
        self.subst_rec(f, map, &mut memo)
    }

    fn subst_rec(
        &mut self,
        f: Formula,
        map: &HashMap<Var, Formula>,
        memo: &mut HashMap<Formula, Formula>,
    ) -> Formula {
        if let Some(&g) = memo.get(&f) {
            return g;
        }
        let g = match self.kind(f).clone() {
            FormulaKind::Var(v) => map.get(&v).copied().unwrap_or(f),
            FormulaKind::Or(a, b) => {
                let (sa, sb) = (self.subst_rec(a, map, memo), self.subst_rec(b, map, memo));
                self.or(sa, sb)
            }
            FormulaKind::And(a, b) => {
                let (sa, sb) = (self.subst_rec(a, map, memo), self.subst_rec(b, map, memo));
                self.and(sa, sb)
            }
            FormulaKind::Diam(a, phi) => {
                let sp = self.subst_rec(phi, map, memo);
                self.diam(a, sp)
            }
            FormulaKind::Mu(binds, body) | FormulaKind::Nu(binds, body) => {
                let greatest = matches!(self.kind(f), FormulaKind::Nu(..));
                let shadowed: Vec<Var> = binds
                    .iter()
                    .map(|&(v, _)| v)
                    .filter(|v| map.contains_key(v))
                    .collect();
                if shadowed.is_empty() {
                    let sbinds = binds
                        .iter()
                        .map(|&(v, phi)| (v, self.subst_rec(phi, map, memo)))
                        .collect();
                    let sbody = self.subst_rec(body, map, memo);
                    self.fixpoint(sbinds, sbody, greatest)
                } else {
                    // Shadowing: drop the shadowed keys for the whole scope
                    // (binders bind uniformly in definitions and body).
                    let mut inner = map.clone();
                    for v in shadowed {
                        inner.remove(&v);
                    }
                    let mut inner_memo = HashMap::new();
                    let sbinds = binds
                        .iter()
                        .map(|&(v, phi)| (v, self.subst_rec(phi, &inner, &mut inner_memo)))
                        .collect();
                    let sbody = self.subst_rec(body, &inner, &mut inner_memo);
                    self.fixpoint(sbinds, sbody, greatest)
                }
            }
            _ => f,
        };
        memo.insert(f, g);
        g
    }

    /// One-step fixpoint unfolding `exp(ϕ)` (§6.1).
    ///
    /// For `ϕ = µX̄ = ϕ̄ in ψ`, returns `ψ{(µX̄ = ϕ̄ in Xᵢ)/Xᵢ}`; when the
    /// body is itself a bound variable `Xᵢ` the definition `ϕᵢ` is expanded
    /// first (this is the standard Fisher–Ladner unfolding and is what makes
    /// the truth-assignment derivations of Fig 15 finite).
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a least fixpoint.
    pub fn exp(&mut self, f: Formula) -> Formula {
        let FormulaKind::Mu(binds, body) = self.kind(f).clone() else {
            panic!("exp: not a least fixpoint");
        };
        let mut map = HashMap::with_capacity(binds.len());
        for &(v, _) in &binds {
            let vf = self.var(v);
            let handle = self.mu(binds.to_vec(), vf);
            map.insert(v, handle);
        }
        // If the body is a bound variable, unfold its definition once.
        let target = match self.kind(body) {
            FormulaKind::Var(v) => binds
                .iter()
                .find(|&&(bv, _)| bv == *v)
                .map_or(body, |&(_, phi)| phi),
            _ => body,
        };
        self.subst(target, &map)
    }

    /// The free fixpoint variables of `f`.
    pub fn free_vars(&self, f: Formula) -> std::collections::HashSet<Var> {
        fn go(
            lg: &Logic,
            f: Formula,
            bound: &mut Vec<Var>,
            out: &mut std::collections::HashSet<Var>,
            seen: &mut std::collections::HashSet<(Formula, usize)>,
        ) {
            if !seen.insert((f, bound.len())) {
                return;
            }
            match lg.kind(f) {
                FormulaKind::Var(v) if !bound.contains(v) => {
                    out.insert(*v);
                }
                FormulaKind::Or(a, b) | FormulaKind::And(a, b) => {
                    go(lg, *a, bound, out, seen);
                    go(lg, *b, bound, out, seen);
                }
                FormulaKind::Diam(_, p) => go(lg, *p, bound, out, seen),
                FormulaKind::Mu(binds, body) | FormulaKind::Nu(binds, body) => {
                    let n = bound.len();
                    bound.extend(binds.iter().map(|&(v, _)| v));
                    for &(_, phi) in binds {
                        go(lg, phi, bound, out, seen);
                    }
                    go(lg, *body, bound, out, seen);
                    bound.truncate(n);
                }
                _ => {}
            }
        }
        let mut out = std::collections::HashSet::new();
        let mut seen = std::collections::HashSet::new();
        go(self, f, &mut Vec::new(), &mut out, &mut seen);
        out
    }

    /// Whether `f` has no free variables.
    pub fn is_closed(&self, f: Formula) -> bool {
        self.free_vars(f).is_empty()
    }

    /// Whether `f` contains the start proposition `s` (positively or
    /// negatively).
    pub fn mentions_start(&self, f: Formula) -> bool {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(g) = stack.pop() {
            if !seen.insert(g) {
                continue;
            }
            match self.kind(g) {
                FormulaKind::Start | FormulaKind::NotStart => return true,
                FormulaKind::Or(a, b) | FormulaKind::And(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                FormulaKind::Diam(_, p) => stack.push(*p),
                FormulaKind::Mu(binds, body) | FormulaKind::Nu(binds, body) => {
                    stack.extend(binds.iter().map(|&(_, p)| p));
                    stack.push(*body);
                }
                _ => {}
            }
        }
        false
    }

    /// Syntactic size of `f` (number of syntax-tree nodes, counting shared
    /// subterms once per occurrence is avoided: shared nodes count once).
    pub fn size(&self, f: Formula) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut n = 0;
        while let Some(g) = stack.pop() {
            if !seen.insert(g) {
                continue;
            }
            n += 1;
            match self.kind(g) {
                FormulaKind::Or(a, b) | FormulaKind::And(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                FormulaKind::Diam(_, p) => stack.push(*p),
                FormulaKind::Mu(binds, body) | FormulaKind::Nu(binds, body) => {
                    stack.extend(binds.iter().map(|&(_, p)| p));
                    stack.push(*body);
                }
                _ => {}
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree::Direction;

    #[test]
    fn hash_consing() {
        let mut lg = Logic::new();
        let a = lg.prop(Label::new("a"));
        let b = lg.prop(Label::new("b"));
        let f1 = lg.and(a, b);
        let f2 = lg.and(a, b);
        assert_eq!(f1, f2);
    }

    #[test]
    fn boolean_simplifications() {
        let mut lg = Logic::new();
        let a = lg.prop(Label::new("a"));
        let tt = lg.tt();
        let ff = lg.ff();
        assert_eq!(lg.and(tt, a), a);
        assert_eq!(lg.and(a, ff), ff);
        assert_eq!(lg.or(ff, a), a);
        assert_eq!(lg.or(a, tt), tt);
        assert_eq!(lg.or(a, a), a);
        assert_eq!(lg.diam(Direction::Down1, ff), ff);
    }

    #[test]
    fn negation_involution() {
        let mut lg = Logic::new();
        let a = lg.prop(Label::new("a"));
        let v = lg.fresh_var("X");
        let vf = lg.var(v);
        let d = lg.diam(Direction::Down2, vf);
        let body = lg.or(a, d);
        let f = lg.mu1(v, body);
        let nf = lg.not(f);
        assert_ne!(nf, f);
        assert_eq!(lg.not(nf), f);
    }

    #[test]
    fn negation_of_modality() {
        let mut lg = Logic::new();
        let a = lg.prop(Label::new("a"));
        let d = lg.diam(Direction::Down1, a);
        let nd = lg.not(d);
        // ¬⟨1⟩a = ¬⟨1⟩⊤ ∨ ⟨1⟩¬a
        let expect = {
            let na = lg.not_prop(Label::new("a"));
            let dn = lg.diam(Direction::Down1, na);
            let ndt = lg.not_diam_true(Direction::Down1);
            lg.or(ndt, dn)
        };
        assert_eq!(nd, expect);
    }

    #[test]
    fn exp_unfolds_once() {
        let mut lg = Logic::new();
        // µX. a ∨ ⟨2⟩X
        let a = lg.prop(Label::new("a"));
        let x = lg.fresh_var("X");
        let xv = lg.var(x);
        let d = lg.diam(Direction::Down2, xv);
        let phi = lg.or(a, d);
        let f = lg.mu1(x, phi);
        let e = lg.exp(f);
        // a ∨ ⟨2⟩(µX = a∨⟨2⟩X in X)
        match lg.kind(e) {
            FormulaKind::Or(l, r) => {
                assert_eq!(*l, a);
                match lg.kind(*r) {
                    FormulaKind::Diam(Direction::Down2, inner) => {
                        assert!(matches!(lg.kind(*inner), FormulaKind::Mu(..)));
                        // Unfolding again gives the same formula: cl is finite.
                        assert_eq!(lg.exp(*inner), e);
                    }
                    k => panic!("unexpected shape {k:?}"),
                }
            }
            k => panic!("unexpected shape {k:?}"),
        }
    }

    #[test]
    fn subst_respects_shadowing() {
        let mut lg = Logic::new();
        let x = lg.fresh_var("X");
        let a = lg.prop(Label::new("a"));
        let xv = lg.var(x);
        // µX. X (degenerate but fine for substitution testing)
        let inner = lg.mu1(x, xv);
        let f = lg.and(xv, inner);
        let map = HashMap::from([(x, a)]);
        let g = lg.subst(f, &map);
        // Outer occurrence replaced, bound occurrence untouched.
        match lg.kind(g) {
            FormulaKind::And(l, r) => {
                assert_eq!(*l, a);
                assert_eq!(*r, inner);
            }
            k => panic!("unexpected shape {k:?}"),
        }
    }

    #[test]
    fn free_vars_and_closed() {
        let mut lg = Logic::new();
        let x = lg.fresh_var("X");
        let y = lg.fresh_var("Y");
        let xv = lg.var(x);
        let yv = lg.var(y);
        let body = lg.or(xv, yv);
        let f = lg.mu1(x, body);
        let fv = lg.free_vars(f);
        assert!(fv.contains(&y));
        assert!(!fv.contains(&x));
        assert!(!lg.is_closed(f));
    }

    #[test]
    fn collapse_nu_rewrites() {
        let mut lg = Logic::new();
        let x = lg.fresh_var("X");
        let xv = lg.var(x);
        let d = lg.diam(Direction::Down1, xv);
        let f = lg.nu1(x, d);
        let g = lg.collapse_nu(f);
        assert!(matches!(lg.kind(g), FormulaKind::Mu(..)));
    }

    #[test]
    fn mentions_start() {
        let mut lg = Logic::new();
        let s = lg.start();
        let a = lg.prop(Label::new("a"));
        let f = lg.and(a, s);
        assert!(lg.mentions_start(f));
        assert!(!lg.mentions_start(a));
    }

    #[test]
    #[should_panic(expected = "duplicate fixpoint binding")]
    fn duplicate_binding_panics() {
        let mut lg = Logic::new();
        let x = lg.fresh_var("X");
        let a = lg.prop(Label::new("a"));
        let xv = lg.var(x);
        lg.mu(vec![(x, a), (x, a)], xv);
    }
}

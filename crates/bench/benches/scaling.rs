//! Scaling with lean size (Lemma 6.7: satisfiability is `2^O(|Lean(ψ)|)`).
//!
//! A family of valid containments over growing child-step chains exercises
//! the full fixpoint. The worst case is exponential; the measured curve on
//! these structured instances is what makes the approach practical — the
//! same observation as the paper's §8.

use analyzer::Analyzer;
use bench::chain_containment;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_chains(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling/chain-containment");
    g.sample_size(10);
    for n in [2usize, 4, 6, 8, 10, 12] {
        // Print the lean size once per point so the series can be plotted.
        let mut az = Analyzer::new();
        let goal = chain_containment(&mut az, n, true);
        let s = az.solve_formula(goal).unwrap();
        assert!(!s.outcome.is_satisfiable());
        println!(
            "scaling n={n}: lean={} iterations={} bdd-nodes={:?}",
            s.stats.lean_size,
            s.stats.iterations,
            s.stats.telemetry.bdd_nodes()
        );
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut az = Analyzer::new();
                let goal = chain_containment(&mut az, black_box(n), true);
                let s = az.solve_formula(goal).unwrap();
                assert!(!s.outcome.is_satisfiable());
            });
        });
    }
    g.finish();
}

fn bench_repeated_label_chains(c: &mut Criterion) {
    // Same shape but a single repeated label: smaller alphabet, deeper
    // sharing in the BDD.
    let mut g = c.benchmark_group("scaling/chain-one-label");
    g.sample_size(10);
    for n in [4usize, 8, 12] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut az = Analyzer::new();
                let goal = chain_containment(&mut az, black_box(n), false);
                let s = az.solve_formula(goal).unwrap();
                assert!(!s.outcome.is_satisfiable());
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_chains, bench_repeated_label_chains);
criterion_main!(benches);

//! Resource governance of a solve: budgets, the resources they meter, and
//! the typed exhaustion report.
//!
//! The paper's decision procedures are EXPTIME in the lean, so a service
//! answering untrusted requests must bound every run: a hostile (or merely
//! huge) lean can otherwise pin a worker for an unbounded time or grow the
//! BDD store without limit. [`Limits`] is that admission-control contract,
//! threaded from the engine protocol (`"limits"` request objects, `xsat
//! --timeout-ms/--max-bdd-nodes/--max-lean`) through
//! [`Analyzer::solve`](../analyzer) down to
//! [`run_fixpoint`](crate::run_fixpoint) and the BDD manager's allocation
//! path. Hitting a budget is *not* an error in the solver-bug sense: it is
//! the third verdict — the caller learns which [`Resource`] ran out and can
//! retry with a larger budget.

use std::fmt;
use std::time::Duration;

use crate::bits::MAX_EXPLICIT_DIAMONDS;

/// Resource budgets of one solve.
///
/// Every field is a per-solve budget (the two directions of an equivalence
/// share the wall-clock deadline but each get a fresh node budget — the
/// manager is reset between sub-solves). `Limits::default()` is the
/// service posture: no time or node budget, but the explicit enumeration
/// capped at [`MAX_EXPLICIT_DIAMONDS`] lean diamonds; [`Limits::none`]
/// lifts every cap (the posture of the direct `solve_*` wrappers).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Limits {
    /// Wall-clock budget of the whole solve. Checked before every `Upd`
    /// iteration by [`run_fixpoint`](crate::run_fixpoint) and, on the
    /// symbolic backend, between the clauses of each relational-product
    /// fold.
    pub deadline: Option<Duration>,
    /// Budget on live BDD nodes, enforced by the manager at allocation
    /// (the check is sticky: once an allocation pushes the arena past the
    /// budget the run reports exhaustion at its next poll point).
    pub max_bdd_nodes: Option<usize>,
    /// Cap on `Upd` fixpoint iterations.
    pub max_iterations: Option<usize>,
    /// Cap on `⟨a⟩ϕ` lean entries accepted by the enumerating backends
    /// (explicit, witnessed, and the explicit half of dual mode). The
    /// enumeration is exponential in this count; the default is the
    /// paper-scale [`MAX_EXPLICIT_DIAMONDS`]. Values above the
    /// enumeration's representation limit (26) are clamped to it by the
    /// governed dispatch path, so an arbitrarily large cap still yields a
    /// typed exhaustion — never a panic.
    pub max_lean_diamonds: usize,
}

impl Limits {
    /// No budgets at all: the posture of the direct `solve_*` wrappers,
    /// under which a fixpoint run cannot exhaust.
    pub const fn none() -> Limits {
        Limits {
            deadline: None,
            max_bdd_nodes: None,
            max_iterations: None,
            max_lean_diamonds: usize::MAX,
        }
    }

    /// Whether any budget is set (the fast path skips deadline reads when
    /// none is).
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none()
            && self.max_bdd_nodes.is_none()
            && self.max_iterations.is_none()
            && self.max_lean_diamonds == usize::MAX
    }

    /// The limits that remain after `elapsed` of the wall-clock budget has
    /// been spent — what a multi-part problem (an equivalence solves two
    /// containments) hands to its next sub-solve. Errs with a
    /// [`Resource::WallClock`] exhaustion when nothing remains.
    pub fn after(&self, elapsed: Duration) -> Result<Limits, Exhausted> {
        match self.deadline {
            None => Ok(self.clone()),
            Some(total) => {
                let left = total.saturating_sub(elapsed);
                if left.is_zero() {
                    return Err(Exhausted::wall_clock(elapsed, total));
                }
                Ok(Limits {
                    deadline: Some(left),
                    ..self.clone()
                })
            }
        }
    }
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_lean_diamonds: MAX_EXPLICIT_DIAMONDS,
            ..Limits::none()
        }
    }
}

/// The meterable resources of a solve — the `resource` tag of a
/// [`ResourceExhausted`](crate::SolveError::ResourceExhausted) report and
/// of the protocol's `"status":"unknown"` verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Wall-clock time, metered in milliseconds.
    WallClock,
    /// Live BDD nodes in the symbolic backend's manager.
    BddNodes,
    /// `Upd` fixpoint iterations.
    Iterations,
    /// `⟨a⟩ϕ` lean entries presented to an enumerating backend.
    LeanDiamonds,
}

impl Resource {
    /// The protocol name of the resource.
    pub fn as_str(self) -> &'static str {
        match self {
            Resource::WallClock => "wall_clock_ms",
            Resource::BddNodes => "bdd_nodes",
            Resource::Iterations => "iterations",
            Resource::LeanDiamonds => "lean_diamonds",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A budget hit, reported by a backend or the fixpoint driver: which
/// resource ran out, how much was spent, and what the budget was.
///
/// `spent` and `limit` are in the resource's natural unit (milliseconds
/// for wall clock, counts otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    /// The resource that ran out.
    pub resource: Resource,
    /// How much was spent when the budget check fired.
    pub spent: u64,
    /// The configured budget.
    pub limit: u64,
}

impl Exhausted {
    /// A wall-clock exhaustion from the elapsed time and the deadline.
    pub fn wall_clock(elapsed: Duration, deadline: Duration) -> Exhausted {
        Exhausted {
            resource: Resource::WallClock,
            spent: elapsed.as_millis() as u64,
            limit: deadline.as_millis() as u64,
        }
    }
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::WallClock => write!(
                f,
                "resource exhausted: wall clock at {} ms, the deadline is {} ms",
                self.spent, self.limit
            ),
            Resource::BddNodes => write!(
                f,
                "resource exhausted: {} live BDD nodes, the budget is {}",
                self.spent, self.limit
            ),
            Resource::Iterations => write!(
                f,
                "resource exhausted: {} fixpoint iterations, the cap is {}",
                self.spent, self.limit
            ),
            Resource::LeanDiamonds => write!(
                f,
                "resource exhausted: lean has {} diamonds, the cap is {}",
                self.spent, self.limit
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_caps_only_the_enumeration() {
        let d = Limits::default();
        assert_eq!(d.deadline, None);
        assert_eq!(d.max_bdd_nodes, None);
        assert_eq!(d.max_iterations, None);
        assert_eq!(d.max_lean_diamonds, MAX_EXPLICIT_DIAMONDS);
        assert!(!d.is_unbounded());
        assert!(Limits::none().is_unbounded());
    }

    #[test]
    fn after_subtracts_the_deadline() {
        let l = Limits {
            deadline: Some(Duration::from_millis(100)),
            ..Limits::default()
        };
        let rest = l.after(Duration::from_millis(40)).unwrap();
        assert_eq!(rest.deadline, Some(Duration::from_millis(60)));
        let gone = l.after(Duration::from_millis(100)).unwrap_err();
        assert_eq!(gone.resource, Resource::WallClock);
        assert_eq!(gone.limit, 100);
        // Without a deadline `after` is the identity.
        assert_eq!(
            Limits::default().after(Duration::from_secs(9)).unwrap(),
            Limits::default()
        );
    }

    #[test]
    fn exhaustion_messages_name_the_resource() {
        let e = Exhausted {
            resource: Resource::Iterations,
            spent: 7,
            limit: 7,
        };
        assert_eq!(
            e.to_string(),
            "resource exhausted: 7 fixpoint iterations, the cap is 7"
        );
        assert_eq!(Resource::BddNodes.as_str(), "bdd_nodes");
        assert_eq!(Resource::WallClock.to_string(), "wall_clock_ms");
    }
}

//! Ring-buffered log of fully-traced slow solves.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::trace::Event;

/// One captured slow solve: identifying metadata plus its full trace.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Decision-problem operation name (`contains`, `sat`, …).
    pub op: &'static str,
    /// Backend that ran the solve.
    pub backend: &'static str,
    /// Final status (`holds`, `fails`, `unknown`, `error`).
    pub status: &'static str,
    /// Measured wall time of the solve in milliseconds.
    pub wall_ms: f64,
    /// The threshold (milliseconds) that was exceeded.
    pub threshold_ms: u64,
    /// Whether the verdict came from the memo cache.
    pub cached: bool,
    /// The solve's complete event trace.
    pub events: Vec<Event>,
}

/// Bounded ring buffer of [`SlowEntry`] values; pushing beyond capacity
/// evicts the oldest entry.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    inner: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    /// Default ring capacity used by the engine.
    pub const DEFAULT_CAPACITY: usize = 32;

    /// A ring holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Append an entry, evicting the oldest if the ring is full.
    pub fn push(&self, entry: SlowEntry) {
        let mut g = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        if g.len() == self.capacity {
            g.pop_front();
        }
        g.push_back(entry);
    }

    /// Snapshot of the current entries, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        match self.inner.lock() {
            Ok(g) => g.iter().cloned().collect(),
            Err(poison) => poison.into_inner().iter().cloned().collect(),
        }
    }

    /// Number of captured entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map_or(0, |g| g.len())
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all captured entries.
    pub fn clear(&self) {
        if let Ok(mut g) = self.inner.lock() {
            g.clear();
        }
    }
}

impl Default for SlowLog {
    fn default() -> SlowLog {
        SlowLog::new(SlowLog::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(op: &'static str, wall_ms: f64) -> SlowEntry {
        SlowEntry {
            op,
            backend: "symbolic",
            status: "holds",
            wall_ms,
            threshold_ms: 1,
            cached: false,
            events: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = SlowLog::new(2);
        assert!(log.is_empty());
        log.push(entry("sat", 1.0));
        log.push(entry("empty", 2.0));
        log.push(entry("contains", 3.0));
        let entries = log.entries();
        assert_eq!(log.len(), 2);
        assert_eq!(entries[0].op, "empty");
        assert_eq!(entries[1].op, "contains");
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn capacity_is_at_least_one() {
        let log = SlowLog::new(0);
        log.push(entry("sat", 1.0));
        log.push(entry("empty", 2.0));
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].op, "empty");
    }
}

//! The explicit-state reference solver (the algorithm of §6.2).
//!
//! ψ-types are enumerated as bit vectors and the `Upd` fixpoint of Fig 16
//! runs over concrete sets, split into an unmarked set `T°` and a marked set
//! `T•` (types whose proved subtree contains exactly one start mark) — the
//! four cases of `Upd`. Satisfiability is checked through the plunging
//! formula at root types (§7.1), so witness bookkeeping reduces to the
//! per-iteration snapshots used for model reconstruction.
//!
//! The implementation is word-parallel and frontier-driven:
//!
//! * table construction evaluates `status` 64 types per formula walk
//!   ([`status_columns`]) instead of once per type;
//! * a lean-aware prune removes types carrying a diamond atom no type can
//!   ever witness, shrinking the universe before the fixpoint starts;
//! * the `∆_a` compatibility check is precomputed into packed signature
//!   keys, so finding a witness is one hash lookup instead of an `O(n·d)`
//!   scan — and `Upd` steps are frontier-only: only types added in the
//!   previous iteration update the witness index.
//!
//! This backend is exponential in the number of lean diamonds and exists to
//! cross-validate the symbolic solver on small formulas; production use goes
//! through the symbolic backend.
//!
//! The fixpoint loop itself lives in the shared kernel
//! ([`run_fixpoint`](crate::kernel::run_fixpoint)); this module supplies
//! the enumerated-set [`Backend`] implementation.

use std::collections::HashMap;
use std::time::Instant;

use ftree::BinaryTree;
use mulogic::{Formula, Logic, Program};

use obs::Recorder;

use crate::bits::{status_columns, TypeBits, TypeEnumerator, MAX_EXPLICIT_DIAMONDS};
use crate::kernel::{limit_event, run_fixpoint_traced, Backend, SolveError, StepObservation};
use crate::limits::{Exhausted, Limits};
use crate::outcome::{Model, Solved, Telemetry};
use crate::prepare::Prepared;

/// The forward programs, indexed by the `ai` convention used throughout
/// this module (`ai = 0` → `⟨1⟩`, `ai = 1` → `⟨2⟩`).
const FWD: [Program; 2] = [Program::Down1, Program::Down2];

/// Precomputed per-type data over the (pruned, compacted) type universe.
///
/// The `∆_a(t, t')` relation of Def 6.2 is an equality of two bit strings
/// drawn from the `a`-relevant lean atoms: the parent contributes its
/// `⟨a⟩ϕ` memberships and the `status` of its `⟨ā⟩ϕ` arguments; the child
/// contributes the `status` of the `⟨a⟩ϕ` arguments and its `⟨ā⟩ϕ`
/// memberships. Packing both strings into one `u64` key (`want` on the
/// parent side, `give` on the child side) turns the witness search into a
/// hash-bucket lookup: `∆_a(t, t') ∧ ⟨ā⟩⊤ ∈ t'  ⇔  give[a][t'] = Some(want[a][t])`.
struct Tables {
    /// The surviving well-formed types.
    types: Vec<TypeBits>,
    /// Root candidates: `status_ψ(t)` and no pending backward modality.
    root_ok: TypeBits,
    /// Types carrying the start mark.
    start_bits: TypeBits,
    /// Per forward program, types with `⟨a⟩⊤` (needing an `a`-child).
    down: [TypeBits; 2],
    /// Per forward program, per type: the signature key its `a`-child must
    /// present.
    want: [Vec<u64>; 2],
    /// Per forward program, per type: the signature key the type presents
    /// as an `a`-child (`None` without `⟨ā⟩⊤`).
    give: [Vec<Option<u64>>; 2],
}

impl Tables {
    fn build(
        lg: &mut Logic,
        prep: &Prepared,
        limits: &Limits,
        started: Instant,
    ) -> Result<Tables, Exhausted> {
        let en = TypeEnumerator::new(&prep.lean);
        // Goals that never mention the start proposition only need the
        // unmarked half of the universe: `check` then reads `T°`, whose
        // witnesses are themselves unmarked.
        let types = en.enumerate(prep.uses_mark, limits, started)?;
        let n = types.len();
        let entries: Vec<(usize, Program, Formula)> = prep.lean.diam_entries().collect();
        let formulas: Vec<Formula> = entries
            .iter()
            .map(|&(_, _, phi)| phi)
            .chain([prep.psi])
            .collect();
        let mut cols = status_columns(lg, &prep.lean, &types, &formulas, limits, started)?;
        let psi_col = cols.pop().expect("ψ column");
        let arg_cols = cols;

        // Per-atom membership columns and the four ⟨a⟩⊤ columns.
        let dt_pos: Vec<usize> = Program::ALL
            .iter()
            .map(|&p| prep.lean.diam_true_index(p))
            .collect();
        let start_idx = prep.lean.start_index();
        let mut atom_col: Vec<TypeBits> = entries.iter().map(|_| TypeBits::empty(n)).collect();
        let mut dt_col: [TypeBits; 4] = std::array::from_fn(|_| TypeBits::empty(n));
        let mut start_col = TypeBits::empty(n);
        for (ti, t) in types.iter().enumerate() {
            for (k, &(pos, _, _)) in entries.iter().enumerate() {
                if t.get(pos) {
                    atom_col[k].set(ti, true);
                }
            }
            for (pi, &pos) in dt_pos.iter().enumerate() {
                if t.get(pos) {
                    dt_col[pi].set(ti, true);
                }
            }
            if t.get(start_idx) {
                start_col.set(ti, true);
            }
        }

        // Lean-aware dead-type prune. A diamond atom ⟨p⟩ϕ in a type needs a
        // ∆-partner `u` with `status_ϕ(u)` and `⟨p̄⟩⊤ ∈ u` — the child that
        // proves it when `p` is forward, the parent it attaches under when
        // `p` is backward. When no live type can supply one, every type
        // carrying the atom is dead: it can never enter `T°`/`T•` (forward
        // case) or serve as anyone's witness or as a root (backward case).
        // Each removal can starve further atoms, so iterate to a fixpoint.
        let mut alive = TypeBits::full(n);
        loop {
            limits.poll(started)?;
            let mut changed = false;
            for (k, &(_, p, _)) in entries.iter().enumerate() {
                let conv = Program::ALL
                    .iter()
                    .position(|&q| q == p.converse())
                    .expect("program");
                let mut supply = arg_cols[k].clone();
                supply.intersect_with(&dt_col[conv]);
                supply.intersect_with(&alive);
                if !supply.any() {
                    let mut dead = atom_col[k].clone();
                    dead.intersect_with(&alive);
                    if dead.any() {
                        alive.difference_with(&atom_col[k]);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Compact the survivors and precompute the signature keys. The
        // lean has at most 26 diamonds, so each direction's string fits a
        // 32-bit half: down-part in the low word, up-part in the high one.
        let keep: Vec<usize> = alive.iter_ones().collect();
        let m = keep.len();
        let mut tab = Tables {
            types: Vec::with_capacity(m),
            root_ok: TypeBits::empty(m),
            start_bits: TypeBits::empty(m),
            down: [TypeBits::empty(m), TypeBits::empty(m)],
            want: [Vec::with_capacity(m), Vec::with_capacity(m)],
            give: [Vec::with_capacity(m), Vec::with_capacity(m)],
        };
        for (new_i, &old_i) in keep.iter().enumerate() {
            let t = &types[old_i];
            if start_col.get(old_i) {
                tab.start_bits.set(new_i, true);
            }
            if psi_col.get(old_i) && !dt_col[2].get(old_i) && !dt_col[3].get(old_i) {
                tab.root_ok.set(new_i, true);
            }
            for (ai, &a) in FWD.iter().enumerate() {
                if dt_col[ai].get(old_i) {
                    tab.down[ai].set(new_i, true);
                }
                let conv = a.converse();
                let (mut want, mut give) = (0u64, 0u64);
                let (mut db, mut ub) = (0, 0);
                for (k, &(pos, p, _)) in entries.iter().enumerate() {
                    if p == a {
                        // ⟨a⟩ϕ ∈ t ⇔ ϕ ∈̇ t'
                        want |= u64::from(t.get(pos)) << db;
                        give |= u64::from(arg_cols[k].get(old_i)) << db;
                        db += 1;
                    } else if p == conv {
                        // ⟨ā⟩ϕ ∈ t' ⇔ ϕ ∈̇ t
                        want |= u64::from(arg_cols[k].get(old_i)) << (32 + ub);
                        give |= u64::from(t.get(pos)) << (32 + ub);
                        ub += 1;
                    }
                }
                tab.want[ai].push(want);
                tab.give[ai].push(dt_col[ai + 2].get(old_i).then_some(give));
            }
            tab.types.push(t.clone());
        }
        Ok(tab)
    }
}

/// Per-iteration cumulative snapshots of `(T°, T•)`.
type Snapshot = (TypeBits, TypeBits);

/// The enumerated-set backend state driven by the kernel's fixpoint loop.
struct Explicit {
    prep: Prepared,
    tab: Tables,
    un: TypeBits,
    mk: TypeBits,
    /// Candidate types not yet in `un` / `mk`.
    todo_un: TypeBits,
    todo_mk: TypeBits,
    /// Types added by the previous step, not yet in the witness buckets.
    front_un: Vec<usize>,
    front_mk: Vec<usize>,
    /// Per forward program: signature key → `[T° count, T• count]` of
    /// already-proved types presenting that key as an `a`-child.
    buckets: [HashMap<u64, [u32; 2]>; 2],
    snapshots: Vec<Snapshot>,
}

impl Explicit {
    fn new(
        lg: &mut Logic,
        prep: Prepared,
        limits: &Limits,
        started: Instant,
    ) -> Result<Explicit, Exhausted> {
        let tab = Tables::build(lg, &prep, limits, started)?;
        let n = tab.types.len();
        // Start-marked types never enter T°; without marks in play the
        // marked loop is vacuous and skipped entirely.
        let mut todo_un = TypeBits::full(n);
        todo_un.difference_with(&tab.start_bits);
        let todo_mk = if prep.uses_mark {
            TypeBits::full(n)
        } else {
            TypeBits::empty(n)
        };
        Ok(Explicit {
            prep,
            un: TypeBits::empty(n),
            mk: TypeBits::empty(n),
            todo_un,
            todo_mk,
            front_un: Vec::new(),
            front_mk: Vec::new(),
            buckets: [HashMap::new(), HashMap::new()],
            snapshots: Vec::new(),
            tab,
        })
    }
}

impl Backend for Explicit {
    /// Index of the root type that passed the final check.
    type Hit = usize;

    fn step(&mut self) -> Result<bool, Exhausted> {
        // Flush the previous iteration's additions into the witness index:
        // `Upd(X')` draws witnesses from the previous sets, and only newly
        // proved types can change a bucket — the frontier-only update.
        for (ai, bucket) in self.buckets.iter_mut().enumerate() {
            for &ti in &self.front_un {
                if let Some(key) = self.tab.give[ai][ti] {
                    bucket.entry(key).or_default()[0] += 1;
                }
            }
            for &ti in &self.front_mk {
                if let Some(key) = self.tab.give[ai][ti] {
                    bucket.entry(key).or_default()[1] += 1;
                }
            }
        }
        self.front_un.clear();
        self.front_mk.clear();
        let tab = &self.tab;
        let buckets = &self.buckets;
        let seen = |ai: usize, ti: usize, cls: usize| {
            buckets[ai]
                .get(&tab.want[ai][ti])
                .is_some_and(|c| c[cls] > 0)
        };
        let w_un = |ai: usize, ti: usize| !tab.down[ai].get(ti) || seen(ai, ti, 0);
        let w_mk = |ai: usize, ti: usize| tab.down[ai].get(ti) && seen(ai, ti, 1);
        // T°: unmarked types, witnesses unmarked.
        for ti in self.todo_un.iter_ones() {
            if w_un(0, ti) && w_un(1, ti) {
                self.front_un.push(ti);
            }
        }
        // T•: the three marked cases of Upd.
        for ti in self.todo_mk.iter_ones() {
            let ok = if tab.start_bits.get(ti) {
                // Mark at this node; both subtrees unmarked.
                w_un(0, ti) && w_un(1, ti)
            } else {
                // Mark strictly below, on exactly one side.
                (w_mk(0, ti) && w_un(1, ti)) || (w_un(0, ti) && w_mk(1, ti))
            };
            if ok {
                self.front_mk.push(ti);
            }
        }
        let changed = !(self.front_un.is_empty() && self.front_mk.is_empty());
        for &ti in &self.front_un {
            self.un.set(ti, true);
            self.todo_un.set(ti, false);
        }
        for &ti in &self.front_mk {
            self.mk.set(ti, true);
            self.todo_mk.set(ti, false);
        }
        self.snapshots.push((self.un.clone(), self.mk.clone()));
        Ok(changed)
    }

    fn check(&mut self) -> Option<usize> {
        let target = if self.prep.uses_mark {
            &self.mk
        } else {
            &self.un
        };
        let mut hits = target.clone();
        hits.intersect_with(&self.tab.root_ok);
        hits.first_one()
    }

    fn reconstruct(&mut self, root: usize) -> Model {
        // Top-down minimal-model reconstruction (§7.2): successors are
        // searched in the earliest snapshot first, minimizing depth.
        let bt = build(
            &self.prep,
            &self.tab,
            &self.snapshots,
            root,
            self.prep.uses_mark,
        );
        Model::from_binary(&bt)
    }

    fn telemetry(&self) -> Telemetry {
        Telemetry::Explicit {
            types: self.tab.types.len(),
        }
    }

    fn observe(&self) -> StepObservation {
        StepObservation {
            store_nodes: self.tab.types.len() as u64,
            proved: (self.un.count_ones() + self.mk.count_ones()) as u64,
            ..StepObservation::default()
        }
    }
}

/// Decides satisfiability with the explicit backend, unbounded.
///
/// # Panics
///
/// Panics if the lean has more than
/// [`MAX_EXPLICIT_DIAMONDS`](crate::MAX_EXPLICIT_DIAMONDS) diamonds or if
/// `goal` is open. The budget-governed path ([`crate::solve_with`])
/// reports oversized leans as a typed resource exhaustion instead.
pub fn solve_explicit(lg: &mut Logic, goal: Formula) -> Solved {
    let prep = Prepared::new(lg, goal);
    let diamonds = prep.lean.diam_entries().count();
    assert!(
        diamonds <= MAX_EXPLICIT_DIAMONDS,
        "lean too large for the explicit solver: {diamonds} diamonds (max {MAX_EXPLICIT_DIAMONDS})"
    );
    solve_prepared(lg, prep, &Limits::none(), &Recorder::noop())
        .expect("an unbounded explicit run cannot exhaust")
}

/// Runs the explicit backend on an already-preprocessed goal under the
/// caller's limits (the dual cross-check prepares once to bound-check the
/// lean first). The type enumeration is charged against the wall-clock
/// deadline — the driver only gets what construction left over — and the
/// construction itself polls the limits, so a cancelled portfolio racer
/// aborts instead of finishing a build nobody will read.
pub(crate) fn solve_prepared(
    lg: &mut Logic,
    prep: Prepared,
    limits: &Limits,
    rec: &Recorder,
) -> Result<Solved, SolveError> {
    let started = std::time::Instant::now();
    let (lean_size, closure_size) = (prep.lean.len(), prep.closure.len());
    let backend = {
        let _span = rec.span("enumerate");
        Explicit::new(lg, prep, limits, started)
    }
    .map_err(|e| {
        limit_event(rec, &e);
        SolveError::from(e)
    })?;
    let remaining = limits.after(started.elapsed()).inspect_err(|e| {
        limit_event(rec, e);
    })?;
    run_fixpoint_traced(backend, lean_size, closure_size, &remaining, rec)
}

fn find_child(
    tab: &Tables,
    snapshots: &[Snapshot],
    ti: usize,
    ai: usize,
    marked: bool,
) -> Option<usize> {
    let key = tab.want[ai][ti];
    snapshots.iter().find_map(|(unset, mkset)| {
        let set = if marked { mkset } else { unset };
        set.iter_ones().find(|&tj| tab.give[ai][tj] == Some(key))
    })
}

fn build(
    prep: &Prepared,
    tab: &Tables,
    snapshots: &[Snapshot],
    ti: usize,
    need_mark: bool,
) -> BinaryTree {
    let t = &tab.types[ti];
    let label = prep
        .lean
        .prop_entries()
        .find(|&(i, _)| t.get(i))
        .map(|(_, l)| l)
        .expect("every type has exactly one proposition");
    let here_marked = tab.start_bits.get(ti);
    debug_assert!(!here_marked || need_mark);
    let below = need_mark && !here_marked;

    let has1 = tab.down[0].get(ti);
    let has2 = tab.down[1].get(ti);
    // Decide which side carries the mark when it is strictly below. The
    // chosen split must be *jointly* realizable: a marked child on one side
    // and, if the other side exists, an unmarked child there (a marked
    // 1-child may be ∆-compatible even when the type was added through the
    // mark-on-2 case only).
    let (m1, m2) = if !below {
        (false, false)
    } else {
        let via1 = has1
            && find_child(tab, snapshots, ti, 0, true).is_some()
            && (!has2 || find_child(tab, snapshots, ti, 1, false).is_some());
        if via1 {
            (true, false)
        } else {
            (false, true)
        }
    };
    let child1 = has1.then(|| {
        let tj = find_child(tab, snapshots, ti, 0, m1).expect("witness exists by construction");
        build(prep, tab, snapshots, tj, m1)
    });
    let child2 = has2.then(|| {
        let tj = find_child(tab, snapshots, ti, 1, m2).expect("witness exists by construction");
        build(prep, tab, snapshots, tj, m2)
    });
    BinaryTree::new(label, here_marked, child1, child2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mulogic::ModelChecker;

    fn solve(src: &str) -> Solved {
        let mut lg = Logic::new();
        let goal = lg.parse(src).unwrap();
        solve_explicit(&mut lg, goal)
    }

    #[test]
    fn trivial_sat() {
        let s = solve("a");
        assert!(s.outcome.is_satisfiable());
        let m = s.outcome.model().unwrap();
        assert_eq!(m.roots()[0].label().as_str(), "a");
    }

    #[test]
    fn trivial_unsat() {
        let s = solve("a & ~a");
        assert!(!s.outcome.is_satisfiable());
        let s = solve("F");
        assert!(!s.outcome.is_satisfiable());
    }

    #[test]
    fn child_structure() {
        let s = solve("a & <1>b");
        let m = s.outcome.model().unwrap();
        let t = m.roots()[0].clone();
        assert_eq!(t.label().as_str(), "a");
        assert_eq!(t.children()[0].label().as_str(), "b");
    }

    #[test]
    fn model_checks_out() {
        // Every satisfiable verdict must produce a model that the
        // independent model checker accepts at the root.
        let cases = [
            "a & <1>(b & <2>c)",
            "a & ~<1>T",
            "let_mu X = b | <2>X in <1>X",
            "a & <1>(b & <-1>a)",
        ];
        for src in cases {
            let mut lg = Logic::new();
            let goal = lg.parse(src).unwrap();
            let s = solve_explicit(&mut lg, goal);
            let m = s.outcome.model().unwrap_or_else(|| panic!("{src} unsat"));
            let tree = m.tree();
            let mc = ModelChecker::new(&tree);
            let sat = mc.eval(&lg, goal);
            assert!(!sat.is_empty(), "model of {src} fails model check: {m}");
        }
    }

    #[test]
    fn marked_models_have_one_mark() {
        let s = solve("a & <1>(b & s)");
        let m = s.outcome.model().unwrap();
        assert_eq!(m.tree().mark_count(), 1, "{m}");
        let mc = ModelChecker::new(&m.tree());
        let mut lg = Logic::new();
        let goal = lg.parse("a & <1>(b & s)").unwrap();
        assert!(!mc.eval(&lg, goal).is_empty());
    }

    #[test]
    fn unsat_with_marks() {
        // Two distinct marked nodes cannot exist.
        let s = solve("s & <1>s");
        assert!(!s.outcome.is_satisfiable());
        // A mark must exist somewhere if required positively.
        let s = solve("s & ~s");
        assert!(!s.outcome.is_satisfiable());
    }

    #[test]
    fn backward_modalities() {
        // "b, being a first child of an a" — root must be a.
        let s = solve("b & <-1>a");
        let m = s.outcome.model().unwrap();
        let t = m.tree();
        assert_eq!(t.label().as_str(), "a");
        assert_eq!(t.children()[0].label().as_str(), "b");
    }

    #[test]
    fn other_label_used_when_needed() {
        // ¬a at the root forces the fresh σx label.
        let s = solve("~a & ~<1>T & ~<2>T");
        let m = s.outcome.model().unwrap();
        assert_ne!(m.roots()[0].label().as_str(), "a");
    }

    #[test]
    fn stats_populated() {
        let s = solve("a & <1>b");
        assert!(s.stats.lean_size >= 7);
        assert!(s.stats.iterations >= 2);
        assert!(s.stats.telemetry.explicit_types().unwrap() > 0);
        assert_eq!(s.stats.telemetry.backend_name(), "explicit");
    }

    #[test]
    fn dead_atom_pruning_still_sound() {
        // ⟨1⟩(b ∧ c) can never be witnessed — a node carries exactly one
        // proposition — so the prune removes every type carrying the atom
        // and the verdict must still come out unsat.
        let s = solve("a & <1>(b & c)");
        assert!(!s.outcome.is_satisfiable());
        // A satisfiable goal with the same shape survives the prune.
        let s = solve("a & <1>(b | c)");
        assert!(s.outcome.is_satisfiable());
    }

    #[test]
    fn mark_on_sibling_side_reconstruction() {
        // Regression (found by proptest): ⟨1̄⟩⟨2⟩s — "my parent has a
        // marked next sibling". The mark lives on the 2-side of the root
        // row; a ∆-compatible marked 1-child may exist spuriously and the
        // reconstruction must not commit to it when the 2-side split is the
        // realizable one.
        let mut lg = Logic::new();
        let goal = lg.parse("<-1><2>s").unwrap();
        let s = solve_explicit(&mut lg, goal);
        let m = s.outcome.model().expect("satisfiable");
        let marks: usize = m.roots().iter().map(ftree::Tree::mark_count).sum();
        assert_eq!(marks, 1, "{m}");
    }

    #[test]
    fn fixpoint_queries() {
        // descendant-style: some node below is d (via plunge this is just d
        // reachable): a with first child chain to d.
        let s = solve("a & <1>(let_mu X = d | <1>X | <2>X in X)");
        let m = s.outcome.model().unwrap();
        let xml = m.xml();
        assert!(xml.contains("<d"), "{xml}");
    }
}

//! The parallel batch executor.
//!
//! A batch is an ordered list of requests. Registrations take effect in
//! request order during a sequential resolution pass (each decision problem
//! snapshots `Arc` handles to the artifacts it references, so later
//! rebindings cannot affect earlier problems). The resolved problems are
//! then deduplicated on their canonical structural key — the problem *and*
//! the backend it runs on — and fanned out over worker threads: each
//! worker owns a long-lived [`Analyzer`] — its own formula arena and BDD
//! manager — while all workers share one verdict memo cache behind a
//! mutex. Duplicate occurrences and problems already solved in previous
//! batches (or by the sequential front end) are served from the cache and
//! reported with `"cached":true`. Dual-mode cross-check failures become
//! per-request error responses and are never cached.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use analyzer::{Analyzer, BackendChoice};

use crate::json::{obj, Value};
use crate::problem::{duration_ms, Job, Verdict};
use crate::protocol::{
    error_response, registration_response, verdict_response, Request, RequestKind,
};
use crate::workspace::Workspace;

/// Aggregate measurements of one batch run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Requests in the batch (registrations + problems + errors).
    pub requests: usize,
    /// Decision problems among them.
    pub problems: usize,
    /// Distinct problems after canonical deduplication.
    pub unique_problems: usize,
    /// Problems answered from the memo cache (duplicates within the batch
    /// plus hits from earlier work).
    pub cache_hits: usize,
    /// Requests that failed: parse or resolution errors, plus solver-level
    /// failures (dual-mode cross-check disagreements or infeasibility).
    pub errors: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall clock for the batch, in milliseconds.
    pub wall_ms: f64,
}

impl BatchStats {
    /// Solved problems per second of batch wall-clock.
    pub fn problems_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.problems as f64 / (self.wall_ms / 1000.0)
    }

    /// The stats as a JSON object (the batch summary line).
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("requests", Value::from(self.requests)),
            ("problems", Value::from(self.problems)),
            ("unique_problems", Value::from(self.unique_problems)),
            ("cache_hits", Value::from(self.cache_hits)),
            ("errors", Value::from(self.errors)),
            ("threads", Value::from(self.threads)),
            (
                "wall_ms",
                Value::Num((self.wall_ms * 1000.0).round() / 1000.0),
            ),
            (
                "problems_per_sec",
                Value::Num((self.problems_per_sec() * 10.0).round() / 10.0),
            ),
        ])
    }
}

/// The responses of a batch, in request order, plus aggregate stats.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One response per request, in the order the requests were given.
    pub responses: Vec<Value>,
    /// Aggregate measurements.
    pub stats: BatchStats,
}

/// One resolved decision problem awaiting execution.
struct PendingProblem {
    /// Index into the batch's response vector.
    slot: usize,
    /// Echoed client id.
    id: Option<Value>,
    /// Canonical op name for the response.
    op: &'static str,
    /// Index into the deduplicated job list.
    job: usize,
    /// Whether an earlier request in this batch maps to the same job.
    duplicate: bool,
}

pub(crate) fn run_batch(
    workspace: &mut Workspace,
    workers: &mut [Analyzer],
    cache: &Mutex<HashMap<Job, Verdict>>,
    default_backend: BackendChoice,
    requests: &[Request],
) -> BatchOutcome {
    let started = Instant::now();
    let mut stats = BatchStats {
        requests: requests.len(),
        threads: workers.len(),
        ..BatchStats::default()
    };

    // Pass 1 (sequential): apply registrations in order; resolve decision
    // problems against the workspace as it stood when they were posed.
    let mut responses: Vec<Option<Value>> = (0..requests.len()).map(|_| None).collect();
    let mut pending: Vec<PendingProblem> = Vec::new();
    let mut jobs: Vec<Job> = Vec::new();
    let mut job_of: HashMap<Job, usize> = HashMap::new();
    for (slot, req) in requests.iter().enumerate() {
        match &req.kind {
            RequestKind::RegisterDtd { name, source } => {
                responses[slot] = Some(match workspace.register_dtd(name, source) {
                    Ok(()) => registration_response(req.id.as_ref(), "dtd", name),
                    Err(e) => {
                        stats.errors += 1;
                        error_response(req.id.as_ref(), &e)
                    }
                });
            }
            RequestKind::RegisterQuery { name, xpath } => {
                responses[slot] = Some(match workspace.register_query(name, xpath) {
                    Ok(()) => registration_response(req.id.as_ref(), "query", name),
                    Err(e) => {
                        stats.errors += 1;
                        error_response(req.id.as_ref(), &e)
                    }
                });
            }
            RequestKind::Problem(spec) => match spec.resolve(workspace) {
                Ok(problem) => {
                    stats.problems += 1;
                    let key = Job {
                        problem,
                        backend: spec.backend.unwrap_or(default_backend),
                    };
                    let (job, duplicate) = match job_of.get(&key) {
                        Some(&j) => (j, true),
                        None => {
                            let j = jobs.len();
                            job_of.insert(key.clone(), j);
                            jobs.push(key);
                            (j, false)
                        }
                    };
                    pending.push(PendingProblem {
                        slot,
                        id: req.id.clone(),
                        op: spec.op,
                        job,
                        duplicate,
                    });
                }
                Err(e) => {
                    stats.errors += 1;
                    responses[slot] = Some(error_response(req.id.as_ref(), &e));
                }
            },
            RequestKind::Stats | RequestKind::Reset => {
                responses[slot] = Some(error_response(
                    req.id.as_ref(),
                    "`stats`/`reset` are service ops; they are not valid inside a batch",
                ));
                stats.errors += 1;
            }
        }
    }
    stats.unique_problems = jobs.len();

    // Pass 2 (parallel): fan the deduplicated jobs out over the workers.
    // `(verdict-or-error, was_cache_hit)` per job; failed cross-checks are
    // never inserted into the memo cache.
    let results: Vec<OnceLock<(Result<Verdict, String>, bool)>> =
        (0..jobs.len()).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let jobs_ref = &jobs;
    let results_ref = &results;
    let cursor_ref = &cursor;
    std::thread::scope(|scope| {
        for az in workers.iter_mut() {
            scope.spawn(move || loop {
                let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs_ref.get(i) else {
                    break;
                };
                let hit = lock(cache).get(job).cloned();
                let (verdict, cached) = match hit {
                    Some(v) => (Ok(v), true),
                    None => {
                        let v = job.problem.run(az, job.backend);
                        if let Ok(v) = &v {
                            lock(cache).insert(job.clone(), v.clone());
                        }
                        (v, false)
                    }
                };
                results_ref[i]
                    .set((verdict, cached))
                    .expect("job executed twice");
            });
        }
    });

    // Pass 3: fill problem responses in request order.
    for p in pending {
        let (result, job_was_hit) = results[p.job].get().expect("job not executed");
        let verdict = match result {
            Ok(v) => v,
            Err(e) => {
                stats.errors += 1;
                responses[p.slot] = Some(error_response(p.id.as_ref(), e));
                continue;
            }
        };
        let cached = *job_was_hit || p.duplicate;
        if cached {
            stats.cache_hits += 1;
        }
        // A cache-served answer costs ~nothing, whether the hit came from a
        // duplicate in this batch or from earlier work; the stored wall_ms
        // describes the original solving run.
        let wall_ms = if cached { 0.0 } else { verdict.wall_ms };
        responses[p.slot] = Some(verdict_response(
            p.id.as_ref(),
            p.op,
            verdict,
            cached,
            wall_ms,
        ));
    }

    stats.wall_ms = duration_ms(started.elapsed());
    BatchOutcome {
        responses: responses
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect(),
        stats,
    }
}

/// Locks ignoring poisoning: a panicked worker must not wedge the service,
/// and cached verdicts are only ever inserted whole.
pub(crate) fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

//! The JSON-lines wire protocol: requests in, verdicts out.
//!
//! Each request is one JSON object per line. Every request may carry an
//! `"id"` field (any JSON value), echoed verbatim on its response so
//! pipelined clients can correlate. Decision ops reference queries and
//! types by registered name, with inline XPath / DTD source accepted as a
//! fallback (see [`Workspace`]), and may carry a
//! `"backend"` field (`symbolic` | `explicit` | `witnessed` | `dual`)
//! selecting the solver; the backend that answered is echoed on every
//! verdict, together with its typed telemetry.
//!
//! ```text
//! {"op":"dtd","name":"d1","source":"<!ELEMENT a (b*)> <!ELEMENT b EMPTY>"}
//! {"op":"query","name":"q1","xpath":"a/b"}
//! {"op":"contains","lhs":"q1","rhs":"a/*","type":"d1"}
//! {"op":"contains","lhs":"q1","rhs":"a/*","backend":"dual"}
//! {"op":"covers","query":"child::*","by":["child::a","child::*[not(self::a)]"]}
//! {"op":"typecheck","query":"child::x","input":"din","output":"dout"}
//! {"op":"stats"}
//! ```

use std::sync::Arc;

use analyzer::{BackendChoice, Telemetry};

use crate::json::{obj, Value};
use crate::problem::{Problem, Verdict};
use crate::workspace::Workspace;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client correlation id, echoed on the response.
    pub id: Option<Value>,
    /// The operation.
    pub kind: RequestKind,
}

/// The operation of a request.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Register (or rebind) a named DTD.
    RegisterDtd {
        /// Workspace name.
        name: String,
        /// DTD source text.
        source: String,
    },
    /// Register (or rebind) a named query.
    RegisterQuery {
        /// Workspace name.
        name: String,
        /// XPath source text.
        xpath: String,
    },
    /// Pose a decision problem.
    Problem(ProblemSpec),
    /// Report engine counters.
    Stats,
    /// Drop all registrations and cached verdicts.
    Reset,
}

/// A decision problem by reference (names or inline sources), before
/// resolution against a workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemSpec {
    /// Canonical op name (aliases already folded).
    pub op: &'static str,
    /// Query references, in op-specific order.
    pub queries: Vec<String>,
    /// Type references, in op-specific order (see [`ProblemSpec::resolve`]).
    pub types: Vec<Option<String>>,
    /// Requested solver backend; `None` falls back to the engine default.
    pub backend: Option<BackendChoice>,
}

impl Request {
    /// Parses one JSON-line request.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = crate::json::parse(line).map_err(|e| e.to_string())?;
        Request::from_value(&v)
    }

    /// Interprets a parsed JSON value as a request.
    pub fn from_value(v: &Value) -> Result<Request, String> {
        let id = v.get("id").cloned();
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| "request needs a string `op` field".to_owned())?;
        let backend = backend_field(v)?;
        let kind = match op {
            "dtd" | "register-dtd" => RequestKind::RegisterDtd {
                name: str_field(v, "name")?,
                source: str_field(v, "source")?,
            },
            "query" | "register-query" => RequestKind::RegisterQuery {
                name: str_field(v, "name")?,
                xpath: str_field(v, "xpath")?,
            },
            "stats" => RequestKind::Stats,
            "reset" => RequestKind::Reset,
            "empty" | "emptiness" => RequestKind::Problem(ProblemSpec {
                op: "empty",
                queries: vec![str_field(v, "query")?],
                types: vec![opt_str_field(v, "type")],
                backend,
            }),
            "sat" | "satisfiable" => RequestKind::Problem(ProblemSpec {
                op: "sat",
                queries: vec![str_field(v, "query")?],
                types: vec![opt_str_field(v, "type")],
                backend,
            }),
            "contains" | "containment" => binary_spec("contains", v, backend)?,
            "overlap" | "overlaps" => binary_spec("overlap", v, backend)?,
            "equiv" | "equivalent" => binary_spec("equiv", v, backend)?,
            "covers" | "coverage" => {
                let mut queries = vec![str_field(v, "query")?];
                let by = v
                    .get("by")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| "`covers` needs a `by` array of query references".to_owned())?;
                if by.is_empty() {
                    return Err("`covers` needs at least one covering query".to_owned());
                }
                for item in by {
                    queries.push(
                        item.as_str()
                            .ok_or_else(|| "`by` entries must be strings".to_owned())?
                            .to_owned(),
                    );
                }
                RequestKind::Problem(ProblemSpec {
                    op: "covers",
                    queries,
                    types: vec![opt_str_field(v, "type")],
                    backend,
                })
            }
            "typecheck" | "type-check" => RequestKind::Problem(ProblemSpec {
                op: "typecheck",
                queries: vec![str_field(v, "query")?],
                types: vec![Some(str_field(v, "input")?), Some(str_field(v, "output")?)],
                backend,
            }),
            other => return Err(format!("unknown op `{other}`")),
        };
        Ok(Request { id, kind })
    }
}

/// Parses the optional `backend` field of a request.
fn backend_field(v: &Value) -> Result<Option<BackendChoice>, String> {
    match v.get("backend") {
        None => Ok(None),
        Some(b) => {
            let name = b
                .as_str()
                .ok_or_else(|| "`backend` must be a string".to_owned())?;
            name.parse().map(Some)
        }
    }
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn opt_str_field(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_owned)
}

/// Shared shape of `contains` / `overlap` / `equiv`: `lhs`, `rhs`, and
/// either one `type` for both sides or per-side `ltype` / `rtype`.
fn binary_spec(
    op: &'static str,
    v: &Value,
    backend: Option<BackendChoice>,
) -> Result<RequestKind, String> {
    let both = opt_str_field(v, "type");
    let ltype = opt_str_field(v, "ltype").or_else(|| both.clone());
    let rtype = opt_str_field(v, "rtype").or(both);
    Ok(RequestKind::Problem(ProblemSpec {
        op,
        queries: vec![str_field(v, "lhs")?, str_field(v, "rhs")?],
        types: vec![ltype, rtype],
        backend,
    }))
}

impl ProblemSpec {
    /// Resolves name references against the workspace into a structural
    /// [`Problem`].
    pub fn resolve(&self, ws: &Workspace) -> Result<Problem, String> {
        let ty = |i: usize| -> Result<Option<Arc<treetypes::Dtd>>, String> {
            match self.types.get(i).and_then(Option::as_ref) {
                Some(name) => ws.resolve_dtd(name).map(Some),
                None => Ok(None),
            }
        };
        match self.op {
            "empty" => Ok(Problem::Empty {
                query: ws.resolve_query(&self.queries[0])?,
                ty: ty(0)?,
            }),
            "sat" => Ok(Problem::Satisfiable {
                query: ws.resolve_query(&self.queries[0])?,
                ty: ty(0)?,
            }),
            "contains" => Ok(Problem::Contains {
                lhs: ws.resolve_query(&self.queries[0])?,
                ltype: ty(0)?,
                rhs: ws.resolve_query(&self.queries[1])?,
                rtype: ty(1)?,
            }),
            "overlap" => Ok(Problem::Overlap {
                lhs: ws.resolve_query(&self.queries[0])?,
                ltype: ty(0)?,
                rhs: ws.resolve_query(&self.queries[1])?,
                rtype: ty(1)?,
            }),
            "equiv" => Ok(Problem::Equivalent {
                lhs: ws.resolve_query(&self.queries[0])?,
                ltype: ty(0)?,
                rhs: ws.resolve_query(&self.queries[1])?,
                rtype: ty(1)?,
            }),
            "covers" => Ok(Problem::Covers {
                query: ws.resolve_query(&self.queries[0])?,
                ty: ty(0)?,
                by: self.queries[1..]
                    .iter()
                    .map(|q| ws.resolve_query(q))
                    .collect::<Result<_, _>>()?,
            }),
            "typecheck" => Ok(Problem::TypeCheck {
                query: ws.resolve_query(&self.queries[0])?,
                input: ws.resolve_dtd(self.types[0].as_ref().expect("typecheck input"))?,
                output: ws.resolve_dtd(self.types[1].as_ref().expect("typecheck output"))?,
            }),
            other => Err(format!("unresolvable op `{other}`")),
        }
    }
}

/// Builds the response for a successful registration.
pub fn registration_response(id: Option<&Value>, kind: &str, name: &str) -> Value {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    fields.extend([
        ("ok", Value::Bool(true)),
        ("registered", Value::from(name)),
        ("kind", Value::from(kind)),
    ]);
    obj(fields)
}

/// Builds the response for a solved (or cache-served) decision problem.
pub fn verdict_response(
    id: Option<&Value>,
    op: &str,
    verdict: &Verdict,
    cached: bool,
    wall_ms: f64,
) -> Value {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    fields.extend([
        ("ok", Value::Bool(true)),
        ("op", Value::from(op)),
        ("backend", Value::from(verdict.backend.as_str())),
        ("holds", Value::Bool(verdict.holds)),
    ]);
    match &verdict.counter_example {
        Some(xml) => fields.push(("counter_example", Value::from(xml.as_str()))),
        None => fields.push(("counter_example", Value::Null)),
    }
    fields.push(("cached", Value::Bool(cached)));
    fields.push(("wall_ms", Value::Num(round3(wall_ms))));
    let s = &verdict.stats;
    let stats = vec![
        ("lean_size", Value::from(s.lean_size)),
        ("closure_size", Value::from(s.closure_size)),
        ("iterations", Value::from(s.iterations)),
        ("solve_ms", Value::Num(round3(s.solve_ms))),
        ("telemetry", telemetry_value(&s.telemetry)),
    ];
    fields.push(("stats", obj(stats)));
    obj(fields)
}

/// Serializes per-backend telemetry as a tagged JSON object.
///
/// The symbolic payload carries the BDD kernel counters (live/peak/created
/// nodes, unique-table capacity, operation-cache traffic) plus the two
/// derived ratios — `load_factor` and `cache_hit_rate` — rounded to three
/// decimals. See `docs/PROTOCOL.md` for the normative schema.
pub fn telemetry_value(t: &Telemetry) -> Value {
    let mut fields = vec![("backend", Value::from(t.backend_name()))];
    match t {
        Telemetry::Symbolic {
            bdd_nodes,
            counters,
        } => {
            fields.push(("bdd_nodes", Value::from(*bdd_nodes)));
            fields.push(("peak_nodes", Value::from(counters.peak_nodes)));
            fields.push(("created_nodes", Value::from(counters.created_nodes)));
            fields.push(("table_capacity", Value::from(counters.table_capacity)));
            fields.push(("load_factor", Value::Num(round3(counters.load_factor()))));
            fields.push(("cache_hits", Value::from(counters.cache_hits as usize)));
            fields.push((
                "cache_lookups",
                Value::from(counters.cache_lookups as usize),
            ));
            fields.push((
                "cache_hit_rate",
                Value::Num(round3(counters.cache_hit_rate())),
            ));
        }
        Telemetry::Explicit { types } => {
            fields.push(("types", Value::from(*types)));
        }
        Telemetry::Witnessed { types, proved } => {
            fields.push(("types", Value::from(*types)));
            fields.push(("proved", Value::from(*proved)));
        }
        Telemetry::Dual { symbolic, explicit } => {
            fields.push(("symbolic", telemetry_value(symbolic)));
            fields.push(("explicit", telemetry_value(explicit)));
        }
    }
    obj(fields)
}

/// Builds an error response.
pub fn error_response(id: Option<&Value>, message: &str) -> Value {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    fields.extend([("ok", Value::Bool(false)), ("error", Value::from(message))]);
    obj(fields)
}

fn round3(ms: f64) -> f64 {
    (ms * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example() {
        let r = Request::parse(r#"{"op":"contains","lhs":"q1","rhs":"q2","type":"dtd1"}"#).unwrap();
        match r.kind {
            RequestKind::Problem(spec) => {
                assert_eq!(spec.op, "contains");
                assert_eq!(spec.queries, ["q1", "q2"]);
                assert_eq!(
                    spec.types,
                    vec![Some("dtd1".to_owned()), Some("dtd1".to_owned())]
                );
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn per_side_types_override_shared() {
        let r =
            Request::parse(r#"{"op":"equiv","lhs":"a","rhs":"b","type":"t","rtype":"u"}"#).unwrap();
        match r.kind {
            RequestKind::Problem(spec) => {
                assert_eq!(spec.types, vec![Some("t".to_owned()), Some("u".to_owned())]);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn id_is_preserved() {
        let r = Request::parse(r#"{"id":7,"op":"stats"}"#).unwrap();
        assert_eq!(r.id, Some(Value::Num(7.0)));
        assert_eq!(r.kind, RequestKind::Stats);
    }

    #[test]
    fn backend_field_parses_and_rejects() {
        let r = Request::parse(r#"{"op":"sat","query":"a","backend":"explicit"}"#).unwrap();
        match r.kind {
            RequestKind::Problem(spec) => {
                assert_eq!(spec.backend, Some(BackendChoice::Explicit));
            }
            other => panic!("unexpected kind {other:?}"),
        }
        let r = Request::parse(r#"{"op":"sat","query":"a"}"#).unwrap();
        match r.kind {
            RequestKind::Problem(spec) => assert_eq!(spec.backend, None),
            other => panic!("unexpected kind {other:?}"),
        }
        let e = Request::parse(r#"{"op":"sat","query":"a","backend":"frobnicate"}"#).unwrap_err();
        assert!(e.contains("unknown backend `frobnicate`"), "{e}");
        let e = Request::parse(r#"{"op":"sat","query":"a","backend":7}"#).unwrap_err();
        assert!(e.contains("`backend` must be a string"), "{e}");
    }

    #[test]
    fn telemetry_serializes_tagged() {
        let t = Telemetry::Dual {
            symbolic: Box::new(Telemetry::Symbolic {
                bdd_nodes: 3,
                counters: analyzer::BddCounters {
                    peak_nodes: 5,
                    created_nodes: 6,
                    table_capacity: 1024,
                    cache_hits: 3,
                    cache_lookups: 4,
                },
            }),
            explicit: Box::new(Telemetry::Explicit { types: 9 }),
        };
        let v = telemetry_value(&t);
        assert_eq!(v.get("backend").and_then(Value::as_str), Some("dual"));
        let sym = v.get("symbolic").unwrap();
        assert_eq!(sym.get("bdd_nodes").and_then(Value::as_f64), Some(3.0));
        assert_eq!(sym.get("peak_nodes").and_then(Value::as_f64), Some(5.0));
        assert_eq!(sym.get("created_nodes").and_then(Value::as_f64), Some(6.0));
        assert_eq!(
            sym.get("table_capacity").and_then(Value::as_f64),
            Some(1024.0)
        );
        assert_eq!(sym.get("load_factor").and_then(Value::as_f64), Some(0.005));
        assert_eq!(
            sym.get("cache_hit_rate").and_then(Value::as_f64),
            Some(0.75)
        );
        let exp = v.get("explicit").unwrap();
        assert_eq!(exp.get("types").and_then(Value::as_f64), Some(9.0));
    }

    #[test]
    fn rejects_malformed() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"noop":1}"#).is_err());
        assert!(Request::parse(r#"{"op":"frobnicate"}"#).is_err());
        assert!(Request::parse(r#"{"op":"contains","lhs":"a"}"#).is_err());
        assert!(Request::parse(r#"{"op":"covers","query":"a","by":[]}"#).is_err());
    }

    #[test]
    fn resolve_covers_and_typecheck() {
        let mut ws = Workspace::new();
        ws.register_dtd("d", "<!ELEMENT r (x)> <!ELEMENT x EMPTY>")
            .unwrap();
        let r =
            Request::parse(r#"{"op":"covers","query":"child::*","by":["child::x"],"type":"d"}"#)
                .unwrap();
        let RequestKind::Problem(spec) = r.kind else {
            panic!("expected problem")
        };
        let p = spec.resolve(&ws).unwrap();
        assert_eq!(p.op_name(), "covers");

        let r = Request::parse(
            r#"{"op":"typecheck","query":"child::x","input":"d","output":"<!ELEMENT x EMPTY>"}"#,
        )
        .unwrap();
        let RequestKind::Problem(spec) = r.kind else {
            panic!("expected problem")
        };
        assert_eq!(spec.resolve(&ws).unwrap().op_name(), "typecheck");
    }
}

//! The logic **Lµ**: an alternation-free modal µ-calculus with converse,
//! interpreted over finite focused trees (paper §4).
//!
//! The crate provides:
//!
//! * [`Logic`] — a hash-consing arena of formulas ([`Formula`] is a cheap
//!   copyable id), with smart constructors, full negation (De Morgan plus the
//!   fixpoint dualities), substitution and the one-step unfolding `exp(·)`;
//! * [`cycle_free`] — the syntactic cycle-freeness judgment of Fig 3, the
//!   side condition under which least and greatest fixpoints collapse on
//!   finite trees (Lemma 4.2);
//! * [`Closure`] — the Fisher–Ladner closure `cl(ψ)` and the *lean*
//!   `Lean(ψ)` of §6.1, the set of atoms from which ψ-types are built;
//! * [`status`] — the truth-assignment relation `ϕ ∈̇ t` of Fig 15,
//!   abstracted over a boolean algebra so the same code drives both the
//!   explicit solver (on bit vectors) and the symbolic solver (on BDDs);
//! * [`ModelChecker`] — the denotational semantics of Fig 2 evaluated over
//!   the foci of a concrete finite tree; used as an executable oracle in
//!   tests and to verify reconstructed counter-examples;
//! * a parser and pretty-printer for the concrete syntax the paper uses in
//!   its examples (`let_mu X = ... in ...`, `<1>T`, `~a`, `&`, `|`).
//!
//! # Example
//!
//! ```
//! use mulogic::Logic;
//!
//! let mut lg = Logic::new();
//! // µX. b ∨ ⟨2⟩X — "some following sibling is named b"
//! let f = lg.parse("let_mu X = b | <2>X in X").unwrap();
//! assert!(mulogic::cycle_free(&lg, f));
//! let nf = lg.not(f);
//! assert_eq!(lg.not(nf), f); // negation is an involution
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod closure;
mod cyclefree;
mod display;
mod logic;
mod model_check;
mod parser;
mod status;
mod syntax;

pub use closure::{Closure, Lean, LeanAtom};
pub use cyclefree::cycle_free;
pub use logic::Logic;
pub use model_check::{model_check, FociSet, ModelChecker};
pub use parser::ParseFormulaError;
pub use status::{status, BitsAlg, BoolAlg};
pub use syntax::{Formula, FormulaKind, Program, Var};

//! The literal algorithm of Fig 16: triples `(t, w₁, w₂)` with explicit
//! witness sets and the recursive `dsat` final check.
//!
//! Unlike the other two backends, this one does *not* use the plunging
//! formula of §7.1: it keeps, for every proved type, the sets of types that
//! witness its `⟨1⟩`/`⟨2⟩` obligations, and `FinalCheck` searches the
//! witness forest for a type satisfying ψ under a root with no pending
//! backward modality — exactly the paper's text. It exists to validate the
//! plunging simplification: all three backends must agree.
//!
//! State is kept as a map `(type, mark) → (w₁, w₂)` rather than a set of
//! triples: witness sets only grow, so the newest triple for a type
//! subsumes the older ones.
//!
//! The iteration loop lives in the shared kernel
//! ([`run_fixpoint`](crate::kernel::run_fixpoint)); this module supplies
//! the witness-forest [`Backend`] implementation, whose `check` is the
//! recursive `dsat` search instead of the plunge filter.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use ftree::BinaryTree;
use mulogic::{Closure, Formula, Lean, Logic, Program};

use obs::Recorder;

use crate::bits::{status_columns, TypeEnumerator, MAX_EXPLICIT_DIAMONDS};
use crate::kernel::{limit_event, run_fixpoint_traced, Backend, SolveError, StepObservation};
use crate::limits::{Exhausted, Limits};
use crate::outcome::{Model, Solved, Telemetry};

/// A node of the proof forest: a type index plus whether its proved subtree
/// contains the start mark.
type Key = (usize, bool);

struct Tables {
    types: Vec<crate::bits::TypeBits>,
    arg_status: Vec<Vec<bool>>,
    goal_status: Vec<bool>,
    diams: Vec<(usize, Program)>,
    dt: [usize; 4],
    start_idx: usize,
    /// Lean positions of the atomic propositions with their labels.
    props: Vec<(usize, ftree::Label)>,
}

impl Tables {
    fn build(
        lg: &mut Logic,
        lean: &Lean,
        goal: Formula,
        limits: &Limits,
        started: Instant,
    ) -> Result<Tables, Exhausted> {
        let en = TypeEnumerator::new(lean);
        // The enumeration and the word-parallel status evaluation both
        // poll the limits, so a cancelled portfolio racer aborts
        // mid-construction.
        let types = en.enumerate(true, limits, started)?;
        let entries: Vec<(usize, Program, Formula)> = lean.diam_entries().collect();
        let formulas: Vec<Formula> = entries
            .iter()
            .map(|&(_, _, phi)| phi)
            .chain([goal])
            .collect();
        let mut cols = status_columns(lg, lean, &types, &formulas, limits, started)?;
        let goal_col = cols.pop().expect("goal column");
        let n = types.len();
        let arg_status: Vec<Vec<bool>> = (0..n)
            .map(|ti| cols.iter().map(|c| c.get(ti)).collect())
            .collect();
        let goal_status: Vec<bool> = (0..n).map(|ti| goal_col.get(ti)).collect();
        Ok(Tables {
            types,
            arg_status,
            goal_status,
            diams: entries.iter().map(|&(i, p, _)| (i, p)).collect(),
            dt: [
                lean.diam_true_index(Program::Down1),
                lean.diam_true_index(Program::Down2),
                lean.diam_true_index(Program::Up1),
                lean.diam_true_index(Program::Up2),
            ],
            start_idx: lean.start_index(),
            props: lean.prop_entries().collect(),
        })
    }

    fn delta(&self, a: Program, ti: usize, tj: usize) -> bool {
        let conv = a.converse();
        for (k, &(pos, p)) in self.diams.iter().enumerate() {
            if p == a {
                if self.types[ti].get(pos) != self.arg_status[tj][k] {
                    return false;
                }
            } else if p == conv && self.types[tj].get(pos) != self.arg_status[ti][k] {
                return false;
            }
        }
        true
    }

    fn isparent(&self, ti: usize, a: Program) -> bool {
        let idx = match a {
            Program::Down1 => self.dt[0],
            Program::Down2 => self.dt[1],
            Program::Up1 => self.dt[2],
            Program::Up2 => self.dt[3],
        };
        self.types[ti].get(idx)
    }

    fn child_ok(&self, a: Program, ti: usize, tj: usize) -> bool {
        self.isparent(tj, a.converse()) && self.delta(a, ti, tj)
    }

    fn marked_here(&self, ti: usize) -> bool {
        self.types[ti].get(self.start_idx)
    }
}

/// `w_a(t, X)` of Fig 16 over one of the two mark classes.
///
/// Empty when `t` has no `a`-successor at all: a witness for a modality the
/// type does not claim would let `dsat` walk through a child that the
/// reconstructed model does not contain.
fn witness_set(tab: &Tables, a: Program, ti: usize, pool: &HashSet<Key>, marked: bool) -> Vec<Key> {
    if !tab.isparent(ti, a) {
        return Vec::new();
    }
    pool.iter()
        .filter(|&&(tj, m)| m == marked && tab.child_ok(a, ti, tj))
        .copied()
        .collect()
}

/// The witness-forest backend state driven by the kernel's fixpoint loop.
///
/// `X` is the set of proved keys plus their latest witness sets. The
/// witness computation is monotone in `X`, so overwriting always stores a
/// superset; `first_proved` remembers the round a key entered `X`, which
/// well-founds the reconstruction.
struct Witnessed {
    tab: Tables,
    uses_mark: bool,
    proved: HashSet<Key>,
    witnesses: HashMap<Key, (Vec<Key>, Vec<Key>)>,
    first_proved: HashMap<Key, usize>,
    round: usize,
    /// Compact XML of the reconstructed model. The kernel calls
    /// `reconstruct` before it snapshots `telemetry()`, so stashing the
    /// witness here makes it reachable from [`Telemetry::Witnessed`]
    /// instead of dying with the backend state.
    witness_xml: Option<String>,
}

impl Witnessed {
    fn new(
        lg: &mut Logic,
        lean: &Lean,
        goal: Formula,
        uses_mark: bool,
        limits: &Limits,
        started: Instant,
    ) -> Result<Witnessed, Exhausted> {
        Ok(Witnessed {
            tab: Tables::build(lg, lean, goal, limits, started)?,
            uses_mark,
            proved: HashSet::new(),
            witnesses: HashMap::new(),
            first_proved: HashMap::new(),
            round: 0,
            witness_xml: None,
        })
    }
}

impl Backend for Witnessed {
    /// A root triple plus the `dsat` witness path to a ψ-satisfying type.
    type Hit = (Key, Vec<Key>);

    fn step(&mut self) -> Result<bool, Exhausted> {
        self.round += 1;
        let tab = &self.tab;
        let n = tab.types.len();
        let prev = self.proved.clone();
        let mut changed = false;
        for ti in 0..n {
            // Unmarked triples: no mark here, unmarked witnesses.
            let it = self.round;
            let first_proved = &mut self.first_proved;
            let mut try_add = |proved: &mut HashSet<Key>,
                               witnesses: &mut HashMap<Key, (Vec<Key>, Vec<Key>)>,
                               key: Key,
                               w1: Vec<Key>,
                               w2: Vec<Key>|
             -> bool {
                let fresh = proved.insert(key);
                witnesses.insert(key, (w1, w2));
                first_proved.entry(key).or_insert(it);
                fresh
            };
            if !tab.marked_here(ti) {
                let w1 = witness_set(tab, Program::Down1, ti, &prev, false);
                let w2 = witness_set(tab, Program::Down2, ti, &prev, false);
                if (!tab.isparent(ti, Program::Down1) || !w1.is_empty())
                    && (!tab.isparent(ti, Program::Down2) || !w2.is_empty())
                {
                    changed |= try_add(&mut self.proved, &mut self.witnesses, (ti, false), w1, w2);
                }
            }
            if self.uses_mark {
                // Marked triples: the three cases of Fig 16.
                let w1u = witness_set(tab, Program::Down1, ti, &prev, false);
                let w2u = witness_set(tab, Program::Down2, ti, &prev, false);
                let ok_here = tab.marked_here(ti)
                    && (!tab.isparent(ti, Program::Down1) || !w1u.is_empty())
                    && (!tab.isparent(ti, Program::Down2) || !w2u.is_empty());
                if ok_here {
                    changed |= try_add(
                        &mut self.proved,
                        &mut self.witnesses,
                        (ti, true),
                        w1u.clone(),
                        w2u.clone(),
                    );
                }
                if !tab.marked_here(ti) {
                    let w1m = witness_set(tab, Program::Down1, ti, &prev, true);
                    let w2m = witness_set(tab, Program::Down2, ti, &prev, true);
                    // Mark below on the 1 side.
                    if tab.isparent(ti, Program::Down1)
                        && !w1m.is_empty()
                        && (!tab.isparent(ti, Program::Down2) || !w2u.is_empty())
                    {
                        changed |= try_add(
                            &mut self.proved,
                            &mut self.witnesses,
                            (ti, true),
                            w1m.clone(),
                            w2u.clone(),
                        );
                    } else if tab.isparent(ti, Program::Down2)
                        && !w2m.is_empty()
                        && (!tab.isparent(ti, Program::Down1) || !w1u.is_empty())
                    {
                        changed |=
                            try_add(&mut self.proved, &mut self.witnesses, (ti, true), w1u, w2m);
                    }
                }
            }
        }
        Ok(changed)
    }

    fn check(&mut self) -> Option<(Key, Vec<Key>)> {
        // FinalCheck: a root triple whose witness forest satisfies ψ (dsat).
        let tab = &self.tab;
        for &key in &self.proved {
            let (ti, marked) = key;
            if marked != self.uses_mark
                || tab.isparent(ti, Program::Up1)
                || tab.isparent(ti, Program::Up2)
            {
                continue;
            }
            if let Some(path) = dsat_path(tab, &self.witnesses, key, &mut HashSet::new()) {
                if std::env::var_os("XSAT_DEBUG").is_some() {
                    eprintln!("[witnessed] root {key:?} path {path:?}");
                    for &(ti, m) in &path {
                        eprintln!(
                            "  key ({ti},{m}): bits {:?} goal={}",
                            tab.types[ti], tab.goal_status[ti]
                        );
                    }
                }
                return Some((key, path));
            }
        }
        None
    }

    fn reconstruct(&mut self, (root, path): (Key, Vec<Key>)) -> Model {
        let tree = rebuild(&self.tab, &self.witnesses, &self.first_proved, root, &path);
        let model = Model::from_binary(&tree);
        self.witness_xml = Some(model.xml());
        model
    }

    fn telemetry(&self) -> Telemetry {
        Telemetry::Witnessed {
            types: self.tab.types.len(),
            proved: self.proved.len(),
            witness: self.witness_xml.clone(),
        }
    }

    fn observe(&self) -> StepObservation {
        StepObservation {
            store_nodes: self.tab.types.len() as u64,
            proved: self.proved.len() as u64,
            ..StepObservation::default()
        }
    }
}

/// Diamond count of the witnessed backend's (unplunged) lean for `goal` —
/// the enumeration-feasibility measure checked by
/// [`solve_with`](crate::solve_with): the governed dispatch path refuses
/// to enumerate leans with more than
/// [`Limits::max_lean_diamonds`](crate::Limits::max_lean_diamonds)
/// diamonds, leaving only the symbolic backend feasible. Exposed so
/// front-end analyses (the lint engine's `wildcard-explosion` rule) can
/// read the same infeasibility accounting without running a solve. The
/// arena's hash-consing makes the recomputation inside
/// [`solve_witnessed`] free of duplicate nodes.
pub fn lean_diamonds(lg: &mut Logic, goal: Formula) -> usize {
    let goal = lg.collapse_nu(goal);
    let closure = Closure::compute(lg, goal);
    let lean = Lean::compute(lg, &closure);
    lean.diam_entries().count()
}

/// Decides satisfiability with the witnessed Fig 16 algorithm, unbounded.
///
/// Exponential like [`solve_explicit`](crate::solve_explicit); meant for
/// small formulas and cross-validation.
///
/// # Panics
///
/// Panics on open goals or leans with more than
/// [`MAX_EXPLICIT_DIAMONDS`](crate::MAX_EXPLICIT_DIAMONDS) diamonds. The
/// budget-governed path ([`crate::solve_with`]) reports oversized leans as
/// a typed resource exhaustion instead.
pub fn solve_witnessed(lg: &mut Logic, goal: Formula) -> Solved {
    let diamonds = lean_diamonds(lg, goal);
    assert!(
        diamonds <= MAX_EXPLICIT_DIAMONDS,
        "lean too large for the witnessed solver: {diamonds} diamonds (max {MAX_EXPLICIT_DIAMONDS})"
    );
    solve_witnessed_bounded(lg, goal, &Limits::none(), &Recorder::noop())
        .expect("an unbounded witnessed run cannot exhaust")
}

/// [`solve_witnessed`] under the caller's limits (the kernel's governed
/// dispatch path; the lean bound has already been checked there). The
/// closure/lean computation and type enumeration are charged against the
/// wall-clock deadline: the driver only gets what construction left over.
pub(crate) fn solve_witnessed_bounded(
    lg: &mut Logic,
    goal: Formula,
    limits: &Limits,
    rec: &Recorder,
) -> Result<Solved, SolveError> {
    let started = std::time::Instant::now();
    let (lean, closure, uses_mark, goal) = {
        let _span = rec.span("lean");
        let goal = lg.collapse_nu(goal);
        assert!(lg.is_closed(goal), "satisfiability goal must be closed");
        let closure = Closure::compute(lg, goal);
        let lean = Lean::compute(lg, &closure);
        let uses_mark = lg.mentions_start(goal);
        (lean, closure, uses_mark, goal)
    };
    let backend = {
        let _span = rec.span("enumerate");
        Witnessed::new(lg, &lean, goal, uses_mark, limits, started)
    }
    .map_err(|e| {
        limit_event(rec, &e);
        SolveError::from(e)
    })?;
    let remaining = limits.after(started.elapsed()).inspect_err(|e| {
        limit_event(rec, e);
    })?;
    run_fixpoint_traced(backend, lean.len(), closure.len(), &remaining, rec)
}

/// `dsat(x, ψ)`: ψ holds at the triple's type or somewhere down its
/// witness forest. Returns the witness path from `key` (inclusive) to the
/// satisfying triple, so the reconstruction can route the model through it.
fn dsat_path(
    tab: &Tables,
    witnesses: &HashMap<Key, (Vec<Key>, Vec<Key>)>,
    key: Key,
    seen: &mut HashSet<Key>,
) -> Option<Vec<Key>> {
    if !seen.insert(key) {
        return None;
    }
    // ψ ∈̇ t: the type itself satisfies the goal (the mark flag of the key
    // does not change the type's truth assignment — `s ∈ t` already does).
    if tab.goal_status[key.0] {
        return Some(vec![key]);
    }
    let (w1, w2) = witnesses.get(&key)?;
    for &k in w1.iter().chain(w2.iter()) {
        if let Some(mut path) = dsat_path(tab, witnesses, k, seen) {
            path.insert(0, key);
            return Some(path);
        }
    }
    None
}

/// Rebuilds a satisfying tree from the witness forest (depth-first, first
/// witness).
fn rebuild(
    tab: &Tables,
    witnesses: &HashMap<Key, (Vec<Key>, Vec<Key>)>,
    first_proved: &HashMap<Key, usize>,
    key: Key,
    goal_path: &[Key],
) -> BinaryTree {
    let (ti, _marked) = key;
    let my_round = first_proved[&key];
    let (w1, w2) = witnesses.get(&key).cloned().unwrap_or_default();
    // The model must contain the ψ-satisfying node: when this key is on the
    // dsat path, the next path key is routed through whichever side's
    // witness set contains it; the other side (and everything off the path)
    // takes the earliest-proved witness, which is well-founded — when `key`
    // was first proved each required witness already existed.
    let next_on_path = match goal_path {
        [first, next, ..] if *first == key => Some(*next),
        _ => None,
    };
    let pick = |ws: &[Key], need: bool, route: Option<Key>| -> Option<Key> {
        if !need {
            return None;
        }
        if let Some(k) = route {
            return Some(k);
        }
        ws.iter()
            .filter(|k| first_proved[*k] < my_round)
            .min_by_key(|k| first_proved[*k])
            .copied()
    };
    let (route1, route2) = match next_on_path {
        Some(k) if w1.contains(&k) => (Some(k), None),
        Some(k) => (None, Some(k)),
        None => (None, None),
    };
    let tail: &[Key] = if next_on_path.is_some() {
        &goal_path[1..]
    } else {
        &[]
    };
    let c1 = pick(&w1, tab.isparent(ti, Program::Down1), route1).map(|k| {
        rebuild(
            tab,
            witnesses,
            first_proved,
            k,
            if route1.is_some() { tail } else { &[] },
        )
    });
    let c2 = pick(&w2, tab.isparent(ti, Program::Down2), route2).map(|k| {
        rebuild(
            tab,
            witnesses,
            first_proved,
            k,
            if route2.is_some() { tail } else { &[] },
        )
    });
    let lbl = label_of(tab, ti);
    BinaryTree::new(lbl, tab.marked_here(ti), c1, c2)
}

fn label_of(tab: &Tables, ti: usize) -> ftree::Label {
    tab.props
        .iter()
        .find(|&&(pos, _)| tab.types[ti].get(pos))
        .map(|&(_, l)| l)
        .expect("every type carries exactly one proposition")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mulogic::ModelChecker;

    fn solve(src: &str) -> Solved {
        let mut lg = Logic::new();
        let goal = lg.parse(src).unwrap();
        solve_witnessed(&mut lg, goal)
    }

    #[test]
    fn verdicts() {
        assert!(solve("a").outcome.is_satisfiable());
        assert!(!solve("a & ~a").outcome.is_satisfiable());
        assert!(solve("a & <1>(b & <2>c)").outcome.is_satisfiable());
        assert!(!solve("s & <1>s").outcome.is_satisfiable());
    }

    #[test]
    fn models_check_out() {
        for src in [
            "a & <1>(b & <-1>a)",
            "<-1><2>s",
            "let_mu X = b | <2>X in <1>X",
            "b & <-2>a",
        ] {
            let mut lg = Logic::new();
            let goal = lg.parse(src).unwrap();
            let s = solve_witnessed(&mut lg, goal);
            let m = s.outcome.model().unwrap_or_else(|| panic!("{src} unsat"));
            let mc = ModelChecker::new_row(m.roots());
            assert!(!mc.eval(&lg, goal).is_empty(), "{src}: {m}");
        }
    }

    #[test]
    fn goal_node_is_in_the_model() {
        // The dsat path routing must place the ψ-satisfying node in the
        // reconstructed tree even when it is not at the root.
        let mut lg = Logic::new();
        let goal = lg.parse("<-1>(a & ~b)").unwrap();
        let s = solve_witnessed(&mut lg, goal);
        let m = s.outcome.model().unwrap();
        let mc = ModelChecker::new_row(m.roots());
        assert!(!mc.eval(&lg, goal).is_empty(), "{m}");
    }

    #[test]
    fn stats() {
        let s = solve("a & <1>b");
        assert!(s.stats.telemetry.explicit_types().unwrap() > 0);
        assert_eq!(s.stats.telemetry.backend_name(), "witnessed");
        assert!(s.stats.iterations >= 2);
    }

    #[test]
    fn witness_is_reachable_from_telemetry() {
        // The reconstructed model must not die with the backend state: its
        // XML rides the telemetry wherever the stats travel.
        let s = solve("a & <1>b");
        let xml = s.outcome.model().expect("satisfiable").xml();
        assert_eq!(s.stats.telemetry.witness_xml(), Some(xml.as_str()));
        // Unsatisfiable runs carry no witness.
        let s = solve("a & ~a");
        assert!(!s.outcome.is_satisfiable());
        assert_eq!(s.stats.telemetry.witness_xml(), None);
    }
}

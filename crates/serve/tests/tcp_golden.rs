//! Golden behaviour of the TCP serving tier over real sockets: protocol
//! round-trips, shed-under-full-queue semantics (typed `unknown`, never
//! memo-cached), tenant-namespace isolation, and drain-on-shutdown
//! response ordering.

mod common;

use std::time::Duration;

use common::{b, s, start, test_config, wait_stats, Client};
use engine::Value;
use serve::ServerConfig;

#[test]
fn golden_roundtrip_over_tcp() {
    let server = start(test_config());
    let mut c = Client::connect(&server);

    let r = c.roundtrip(
        r#"{"op":"dtd","name":"d1","source":"<!ELEMENT r (x, y)> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY>"}"#,
    );
    assert_eq!(s(&r, "registered"), Some("d1"));
    let r = c.roundtrip(r#"{"op":"query","name":"q1","xpath":"child::*"}"#);
    assert_eq!(s(&r, "registered"), Some("q1"));
    let r = c.roundtrip(r#"{"op":"query","name":"q2","xpath":"child::x | child::y"}"#);
    assert_eq!(s(&r, "registered"), Some("q2"));

    let r = c.roundtrip(r#"{"id":1,"op":"contains","lhs":"q1","rhs":"q2","type":"d1"}"#);
    assert_eq!(s(&r, "status"), Some("holds"), "{}", r.to_json());
    assert_eq!(b(&r, "cached"), Some(false));

    // The repeat is served from the shared memo cache.
    let r = c.roundtrip(r#"{"id":2,"op":"contains","lhs":"q1","rhs":"q2","type":"d1"}"#);
    assert_eq!(s(&r, "status"), Some("holds"));
    assert_eq!(b(&r, "cached"), Some(true));

    // Untyped, the containment fails with a verified counter-example.
    let r = c.roundtrip(r#"{"id":3,"op":"contains","lhs":"q1","rhs":"q2"}"#);
    assert_eq!(s(&r, "status"), Some("fails"));
    assert!(r.get("counter_example").and_then(Value::as_str).is_some());

    let report = server.shutdown();
    assert!(report.drained);
}

#[test]
fn shed_under_full_queue_is_typed_unknown_and_never_cached() {
    // One worker, a queue of one: a sleeping solve on the worker plus one
    // queued sleep makes the next request shed deterministically.
    let server = start(ServerConfig {
        threads: 1,
        queue_depth: 1,
        ..test_config()
    });
    let mut control = Client::connect(&server);
    let mut c = Client::connect(&server);

    c.send(r#"{"id":"s1","op":"sleep","ms":600}"#);
    // Wait (on a separate control connection — responses are ordered per
    // connection) until the worker has taken the first sleep.
    wait_stats(&mut control, |st| {
        st.get("queue_depth").and_then(Value::as_f64) == Some(0.0)
    });
    c.send(r#"{"id":"s2","op":"sleep","ms":600}"#);
    wait_stats(&mut control, |st| {
        st.get("queue_depth").and_then(Value::as_f64) == Some(1.0)
    });

    // Queue full: this solve is shed immediately with a typed unknown —
    // on a fresh line of traffic (the control connection), so the
    // rejection is observable *now*, not behind the sleeps' responses.
    let shed = control.roundtrip(r#"{"id":"q","op":"sat","query":"child::a"}"#);
    assert_eq!(s(&shed, "status"), Some("unknown"), "{}", shed.to_json());
    assert_eq!(s(&shed, "resource"), Some("shed"));
    assert_eq!(b(&shed, "cached"), Some(false));

    // Drain the sleeps, then re-pose the same problem: it must actually
    // solve (a shed was never cached as a verdict)...
    assert_eq!(s(&c.recv().expect("s1"), "op"), Some("sleep"));
    assert_eq!(s(&c.recv().expect("s2"), "op"), Some("sleep"));
    let r = c.roundtrip(r#"{"id":"q2","op":"sat","query":"child::a"}"#);
    assert_eq!(s(&r, "status"), Some("holds"));
    assert_eq!(b(&r, "cached"), Some(false), "a shed must never be cached");
    // ...and only now is the verdict memoized.
    let r = c.roundtrip(r#"{"id":"q3","op":"sat","query":"child::a"}"#);
    assert_eq!(b(&r, "cached"), Some(true));

    server.shutdown();
}

#[test]
fn tenant_namespaces_never_alias_in_the_memo_cache() {
    let server = start(test_config());
    let mut c = Client::connect(&server);

    // The same query name, bound to different XPath in two tenants.
    let r = c.roundtrip(r#"{"op":"query","tenant":"a","name":"q1","xpath":"child::a"}"#);
    assert_eq!(s(&r, "registered"), Some("q1"));
    let r = c.roundtrip(r#"{"op":"query","tenant":"b","name":"q1","xpath":"child::b"}"#);
    assert_eq!(s(&r, "registered"), Some("q1"));

    // Tenant a: q1 ⊆ child::a holds. Tenant b: the same request text must
    // resolve b's q1 and fail — a name-keyed cache would alias them.
    let r = c.roundtrip(r#"{"id":1,"op":"contains","tenant":"a","lhs":"q1","rhs":"child::a"}"#);
    assert_eq!(s(&r, "status"), Some("holds"), "{}", r.to_json());
    let r = c.roundtrip(r#"{"id":2,"op":"contains","tenant":"b","lhs":"q1","rhs":"child::a"}"#);
    assert_eq!(s(&r, "status"), Some("fails"), "{}", r.to_json());
    assert_eq!(
        b(&r, "cached"),
        Some(false),
        "tenant b must not be served tenant a's verdict"
    );

    // Structurally identical problems DO share the cache across tenants —
    // sharing is keyed by resolved structure, never by name.
    let r =
        c.roundtrip(r#"{"id":3,"op":"contains","tenant":"b","lhs":"child::a","rhs":"child::a"}"#);
    assert_eq!(s(&r, "status"), Some("holds"));
    let r =
        c.roundtrip(r#"{"id":4,"op":"contains","tenant":"a","lhs":"child::a","rhs":"child::a"}"#);
    assert_eq!(b(&r, "cached"), Some(true));

    // Reset clears only the requesting tenant's workspace. An unknown
    // name falls back to inline XPath, so after the reset tenant a's
    // `q1` parses as `child::q1` — no longer contained in `child::a` —
    // while tenant b's registration survives untouched.
    let r = c.roundtrip(r#"{"op":"reset","tenant":"a"}"#);
    assert_eq!(s(&r, "registered"), Some("a"));
    let r = c.roundtrip(r#"{"id":5,"op":"contains","tenant":"a","lhs":"q1","rhs":"child::a"}"#);
    assert_eq!(s(&r, "status"), Some("fails"), "a's q1 binding is gone");
    let r = c.roundtrip(r#"{"id":6,"op":"contains","tenant":"b","lhs":"q1","rhs":"child::b"}"#);
    assert_eq!(s(&r, "status"), Some("holds"), "b's q1 survives a's reset");

    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_work_before_acknowledging() {
    let server = start(ServerConfig {
        threads: 2,
        ..test_config()
    });
    let mut c = Client::connect(&server);

    // A mix of real solves and a slot-holding sleep, then the shutdown.
    c.send(r#"{"id":1,"op":"sat","query":"child::a"}"#);
    c.send(r#"{"id":2,"op":"contains","lhs":"child::a","rhs":"child::*"}"#);
    c.send(r#"{"id":3,"op":"sleep","ms":150}"#);
    c.send(r#"{"id":4,"op":"shutdown"}"#);

    // Responses arrive in request order; the ack comes last, after every
    // in-flight response, and reports a clean drain.
    let r1 = c.recv().expect("id 1");
    assert_eq!(s(&r1, "status"), Some("holds"));
    let r2 = c.recv().expect("id 2");
    assert_eq!(s(&r2, "status"), Some("holds"));
    let r3 = c.recv().expect("id 3");
    assert_eq!(s(&r3, "op"), Some("sleep"));
    assert_eq!(b(&r3, "cancelled"), Some(false), "clean drain, no cancel");
    let ack = c.recv().expect("ack");
    assert_eq!(s(&ack, "op"), Some("shutdown"));
    assert_eq!(b(&ack, "drained"), Some(true), "{}", ack.to_json());
    assert_eq!(b(&ack, "forced"), Some(false));
    assert_eq!(c.recv(), None, "connection closes after the ack");

    let report = server.wait();
    assert!(report.drained && !report.forced);
}

#[test]
fn forced_drain_cancels_stragglers_through_the_token() {
    let server = start(ServerConfig {
        threads: 1,
        drain_deadline: Duration::from_millis(200),
        ..test_config()
    });
    let mut c = Client::connect(&server);
    // Far longer than the drain deadline: only cancellation ends it.
    c.send(r#"{"id":1,"op":"sleep","ms":60000}"#);
    c.send(r#"{"id":2,"op":"shutdown"}"#);
    let r1 = c.recv().expect("sleep response");
    assert_eq!(b(&r1, "cancelled"), Some(true), "{}", r1.to_json());
    let ack = c.recv().expect("ack");
    assert_eq!(b(&ack, "forced"), Some(true), "{}", ack.to_json());
    assert_eq!(b(&ack, "drained"), Some(true), "cancel converged the drain");
    let report = server.wait();
    assert!(report.forced);
}
